//! X2 handover integration tests on the assembled multi-cell network:
//! a UE walks between two cells mid-session and the dedicated MEC bearer
//! either follows it (both cells MEC-equipped) or falls back to the
//! default bearer through the core detour (target cell has no MEC).

use acacia_geo::Point;
use acacia_lte::enb::Enb;
use acacia_lte::entities::GwControl;
use acacia_lte::network::{CellConfig, LteConfig, LteNetwork};
use acacia_lte::prelude::*;
use acacia_lte::ue::{AppSelector, Ue};
use acacia_simnet::packet::proto;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;
use acacia_simnet::transport::PingAgent;

fn two_cells(second_has_mec: bool, core_detour: bool) -> LteConfig {
    LteConfig {
        cells: vec![
            CellConfig {
                pos: Point::new(0.0, 0.0),
                mec: true,
                region: 0,
            },
            CellConfig {
                pos: Point::new(40.0, 0.0),
                mec: second_has_mec,
                region: 1,
            },
        ],
        core_detour,
        ..LteConfig::default()
    }
}

/// Walk toward the far cell while pinging a MEC server on a dedicated
/// bearer. Returns (net, agent) after the walk completes.
fn walk_with_pings(cfg: LteConfig) -> (LteNetwork, acacia_simnet::sim::NodeId) {
    let mut net = LteNetwork::new(cfg);
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 9,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            mec_addr,
            Duration::from_millis(100),
            150,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    net.sim
        .schedule_timer(agent, net.sim.now(), PingAgent::KICKOFF);
    net.start_mobility(
        0,
        vec![
            Waypoint::passing(Point::new(2.0, 0.0)),
            Waypoint::passing(Point::new(38.0, 0.0)),
        ],
        4.0,
    );
    net.run_for(Duration::from_secs(16));
    (net, agent)
}

#[test]
fn handover_reanchors_dedicated_bearer_between_mec_cells() {
    let (net, agent) = walk_with_pings(two_cells(true, false));

    // The UE crossed to cell 1 via exactly one X2 handover.
    assert_eq!(net.serving_cell(0), 1);
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert_eq!(ue.handovers, 1);
    assert_eq!(ue.interruption_log.len(), 1);
    let (_, gap) = ue.interruption_log[0];
    assert!(
        gap < Duration::from_millis(500),
        "service interruption {} ms",
        gap.secs_f64() * 1e3
    );
    // Source released the context, target completed the path switch.
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[0]).ho_out_done, 1);
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).ho_in_done, 1);
    // The dedicated bearer followed the UE: relocated, not released.
    let gwc = net.sim.node_ref::<GwControl>(net.gwc);
    assert_eq!(gwc.dedicated_reanchored, 1);
    assert_eq!(gwc.dedicated_released, 0);
    assert!(net.sim.node_ref::<Ue>(net.ues[0]).has_dedicated_bearer());
    // Session continuity: at most a handful of pings lost in the gap.
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(
        a.rtts().len() >= 145,
        "{} of 150 pings survived the handover",
        a.rtts().len()
    );
    // Post-handover traffic still rides the dedicated (local) path: the
    // RTT stays at MEC level rather than core level.
    let series = acacia_simnet::stats::Series::from_durations_ms(a.rtts());
    assert!(
        series.percentile(90.0) < 25.0,
        "p90 {}",
        series.percentile(90.0)
    );
}

#[test]
fn handover_to_non_mec_cell_falls_back_to_default_bearer() {
    let (net, agent) = walk_with_pings(two_cells(false, true));

    assert_eq!(net.serving_cell(0), 1);
    // The dedicated bearer could not follow: released, not relocated.
    let gwc = net.sim.node_ref::<GwControl>(net.gwc);
    assert_eq!(gwc.dedicated_reanchored, 0);
    assert_eq!(gwc.dedicated_released, 1);
    assert!(!net.sim.node_ref::<Ue>(net.ues[0]).has_dedicated_bearer());
    // ... but the MEC server stays reachable over the default bearer via
    // the core detour, so the session survives with degraded latency.
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(
        a.rtts().len() >= 140,
        "{} of 150 pings survived the fallback",
        a.rtts().len()
    );
    let late = &a.rtts()[a.rtts().len() - 20..];
    let series = acacia_simnet::stats::Series::from_durations_ms(late);
    // Default-bearer path traverses the full core: noticeably slower than
    // the ~14 ms MEC RTT but still interactive.
    assert!(
        series.median() > 20.0,
        "fallback median {} ms",
        series.median()
    );
}
