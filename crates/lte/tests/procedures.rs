//! End-to-end procedure tests for the assembled LTE/EPC network: attach,
//! data over the default bearer, dedicated-bearer steering to the MEC,
//! idle release / service request, and the §4 control-overhead accounting.

use acacia_lte::network::{addr, LteConfig, LteNetwork};
use acacia_lte::prelude::*;
use acacia_lte::switch::FlowSwitch;
use acacia_lte::ue::{AppSelector, Ue};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::proto;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;
use acacia_simnet::transport::PingAgent;
use std::net::Ipv4Addr;

fn ue_pool_ip(n: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(addr::UE_POOL) + n)
}

#[test]
fn attach_assigns_ip_and_configures_default_bearer() {
    let mut net = LteNetwork::new(LteConfig::default());
    let ip = net.attach(0);
    assert_eq!(ip, ue_pool_ip(1));
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert_eq!(ue.state, UeState::Connected);
    assert_eq!(ue.bearers.len(), 1);
    assert_eq!(ue.bearers[0].ebi, Ebi::DEFAULT);
    // Core switches got their session rules.
    assert_eq!(net.sim.node_ref::<FlowSwitch>(net.sgw_u).rule_count(), 2);
    assert_eq!(net.sim.node_ref::<FlowSwitch>(net.pgw_u).rule_count(), 2);
    assert_eq!(
        net.sim.node_ref::<FlowSwitch>(net.local_gwu).rule_count(),
        0
    );
}

#[test]
fn ping_over_default_bearer_reaches_cloud_and_matches_latency_budget() {
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        acacia_simnet::cloud::Ec2Region::California.link_config(),
    );
    let ue_ip = net.attach(0);
    let ping = PingAgent::new(ue_ip, cloud_addr, Duration::from_millis(200), 50);
    let agent = net.connect_ue_app(0, Box::new(ping), AppSelector::protocol(proto::ICMP));
    let t0 = net.sim.now();
    net.sim.schedule_timer(agent, t0, PingAgent::KICKOFF);
    net.run_for(Duration::from_secs(15));

    let a = net.sim.node_ref::<PingAgent>(agent);
    assert_eq!(a.rtts().len(), 50, "lost {} pings", a.lost());
    let series = acacia_simnet::stats::Series::from_durations_ms(a.rtts());
    let median = series.median();
    // Paper Fig. 3(c): ~70 ms median RTT to EC2 California over LTE.
    assert!(
        (55.0..90.0).contains(&median),
        "median cloud RTT {median} ms"
    );
}

#[test]
fn dedicated_bearer_steers_only_mec_traffic_locally() {
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        acacia_simnet::cloud::Ec2Region::California.link_config(),
    );
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 7,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    // UE now holds two bearers; local GW-U has UL+DL rules.
    assert!(net.sim.node_ref::<Ue>(net.ues[0]).has_dedicated_bearer());
    assert_eq!(
        net.sim.node_ref::<FlowSwitch>(net.local_gwu).rule_count(),
        2
    );

    // Ping both destinations concurrently.
    let mec_ping = PingAgent::new(ue_ip, mec_addr, Duration::from_millis(100), 50);
    let mec_agent = net.connect_ue_app(0, Box::new(mec_ping), AppSelector::protocol(proto::ICMP));
    net.sim
        .schedule_timer(mec_agent, net.sim.now(), PingAgent::KICKOFF);
    net.run_for(Duration::from_secs(10));

    let a = net.sim.node_ref::<PingAgent>(mec_agent);
    assert_eq!(a.rtts().len(), 50, "lost {} MEC pings", a.lost());
    let series = acacia_simnet::stats::Series::from_durations_ms(a.rtts());
    // Paper Fig. 10(a): 95% of MEC RTTs within ~15 ms; all within 13-18 ms.
    let p95 = series.percentile(95.0);
    assert!(p95 < 18.0, "p95 MEC RTT {p95} ms");
    assert!(series.min() >= 10.0, "min MEC RTT {} ms", series.min());

    // The dedicated traffic went through the local GW-U, not the core.
    let local_fwd = net.sim.node_ref::<FlowSwitch>(net.local_gwu).forwarded;
    assert!(local_fwd >= 100, "local GW-U forwarded {local_fwd}");
    let _ = cloud_addr;

    // UE-side classification: MEC pings on the dedicated bearer.
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert!(
        ue.ul_dedicated >= 50,
        "dedicated UL count {}",
        ue.ul_dedicated
    );
}

#[test]
fn mec_rtt_much_lower_than_cloud_rtt() {
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        acacia_simnet::cloud::Ec2Region::California.link_config(),
    );
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 1,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    let mec_agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            mec_addr,
            Duration::from_millis(100),
            30,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let cloud_agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            cloud_addr,
            Duration::from_millis(100),
            30,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let now = net.sim.now();
    net.sim.schedule_timer(mec_agent, now, PingAgent::KICKOFF);
    net.sim.schedule_timer(cloud_agent, now, PingAgent::KICKOFF);
    net.run_for(Duration::from_secs(10));

    let mec = acacia_simnet::stats::Series::from_durations_ms(
        net.sim.node_ref::<PingAgent>(mec_agent).rtts(),
    );
    let cloud = acacia_simnet::stats::Series::from_durations_ms(
        net.sim.node_ref::<PingAgent>(cloud_agent).rtts(),
    );
    assert!(mec.len() >= 29 && cloud.len() >= 29);
    // Paper: ~70 ms cloud vs ~14 ms MEC ⇒ ≥3x network-latency reduction
    // (§7.4 reports 3.15x).
    let ratio = cloud.median() / mec.median();
    assert!(
        ratio > 3.0,
        "cloud {}ms / mec {}ms = {ratio}",
        cloud.median(),
        mec.median()
    );
}

#[test]
fn idle_release_and_service_request_match_paper_control_overhead() {
    let mut net = LteNetwork::new(LteConfig::default());
    net.attach(0);
    // Measure only the release + re-establish cycle, like §4.
    net.log.clear();
    net.trigger_idle_release(0);
    net.service_request(0);

    // "The total number of control messages (and bytes) involved with such
    // a release and reestablish sequence ... is 15 messages (2914 bytes)
    // ... Composed of: SCTP 7 (1138), GTPv2 protocol 4 (352), OpenFlow 4
    // (1424)."
    assert_eq!(net.log.count(Protocol::S1apSctp), 7, "SCTP messages");
    assert_eq!(net.log.bytes(Protocol::S1apSctp), 1138, "SCTP bytes");
    assert_eq!(net.log.count(Protocol::Gtpv2), 4, "GTPv2 messages");
    assert_eq!(net.log.bytes(Protocol::Gtpv2), 352, "GTPv2 bytes");
    assert_eq!(net.log.count(Protocol::OpenFlow), 4, "OpenFlow messages");
    assert_eq!(net.log.bytes(Protocol::OpenFlow), 1424, "OpenFlow bytes");
    assert_eq!(net.log.core_count(), 15, "total core messages");
    assert_eq!(net.log.core_bytes(), 2914, "total core bytes");
}

#[test]
fn traffic_during_idle_is_dropped_until_service_request() {
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let ue_ip = net.attach(0);
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            mec_addr,
            Duration::from_millis(50),
            100,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    net.trigger_idle_release(0);
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).state, UeState::Idle);
    // Pings while idle go nowhere.
    net.sim
        .schedule_timer(agent, net.sim.now(), PingAgent::KICKOFF);
    net.run_for(Duration::from_millis(500));
    assert!(net.sim.node_ref::<PingAgent>(agent).rtts().is_empty());
    // After a service request traffic flows again (default bearer; no MEC
    // bearer was ever created here, so pings ride the core path... which
    // has no route to the MEC router — expected: still zero. Instead just
    // assert the UE reconnected.)
    net.service_request(0);
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).state, UeState::Connected);
}

#[test]
fn per_day_control_overhead_projections() {
    // §4: "2.58MB of control traffic per day per device ... (i.e., 929
    // times per day). For a worst case ... as high as 20MB per device per
    // day (i.e., 7200 times)".
    let cycle_bytes = 2914u64;
    let typical = cycle_bytes * 929;
    let worst = cycle_bytes * 7200;
    assert!(
        (2.5e6..2.8e6).contains(&(typical as f64)),
        "typical {typical}"
    );
    assert!((19e6..22e6).contains(&(worst as f64)), "worst {worst}");
}

#[test]
fn second_ue_attaches_independently() {
    let mut net = LteNetwork::new(LteConfig {
        ue_count: 2,
        ..LteConfig::default()
    });
    let ip0 = net.attach(0);
    let ip1 = net.attach(1);
    assert_ne!(ip0, ip1);
    assert_eq!(ip1, ue_pool_ip(2));
}

#[test]
fn background_traffic_inflates_latency_at_saturation() {
    // A compact version of Fig. 3(g): with a 100 Mbps core and heavy
    // background load, cloud RTT explodes; without it, it stays near
    // base. A concurrent dedicated QCI 3 bearer to a MEC reflector is
    // the control: its traffic terminates at the local gateway, so its
    // RTT must hold the class's delay budget through the congestion.
    // Returns (cloud median ms, dedicated median ms).
    fn median_rtts(bg_bps: u64) -> (f64, f64) {
        let mut net = LteNetwork::new(LteConfig {
            core_rate_bps: 100_000_000,
            core_queue_bytes: 12 * 1024 * 1024,
            ..LteConfig::default()
        });
        let (_, cloud_addr) = net.add_cloud_server(
            Box::new(Reflector::new()),
            LinkConfig::delay_only(Duration::from_millis(2)),
        );
        let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
        let ue_ip = net.attach(0);
        net.activate_dedicated_bearer(
            0,
            PolicyRule {
                service_id: 3,
                ue_addr: ue_ip,
                server_addr: mec_addr,
                server_port: 0,
                qci: Qci(3),
                install: true,
            },
        );
        if bg_bps > 0 {
            let t0 = net.sim.now();
            net.start_background_traffic(bg_bps, t0, t0 + Duration::from_secs(30));
        }
        let agent = net.connect_ue_app(
            0,
            Box::new(PingAgent::new(
                ue_ip,
                cloud_addr,
                Duration::from_millis(500),
                20,
            )),
            AppSelector::protocol(proto::ICMP),
        );
        let mec_agent = net.connect_ue_app(
            0,
            Box::new(PingAgent::new(
                ue_ip,
                mec_addr,
                Duration::from_millis(500),
                20,
            )),
            AppSelector::protocol(proto::ICMP),
        );
        // Let the queue build for a couple of seconds first.
        let t = net.sim.now() + Duration::from_secs(3);
        net.sim.schedule_timer(agent, t, PingAgent::KICKOFF);
        net.sim.schedule_timer(mec_agent, t, PingAgent::KICKOFF);
        net.run_for(Duration::from_secs(20));
        let rtts = net.sim.node_ref::<PingAgent>(agent).rtts();
        let mec_rtts = net.sim.node_ref::<PingAgent>(mec_agent).rtts();
        (
            acacia_simnet::stats::Series::from_durations_ms(rtts).median(),
            acacia_simnet::stats::Series::from_durations_ms(mec_rtts).median(),
        )
    }

    let (unloaded, mec_unloaded) = median_rtts(0);
    let (saturated, mec_saturated) = median_rtts(110_000_000);
    assert!(unloaded < 60.0, "unloaded median {unloaded} ms");
    assert!(
        saturated > 5.0 * unloaded,
        "saturated {saturated} ms vs unloaded {unloaded} ms"
    );
    // The dedicated bearer holds QCI 3's delay budget in both regimes —
    // the congested core never touches its path.
    let budget = f64::from(Qci(3).delay_budget_ms());
    assert!(
        mec_unloaded < budget,
        "unloaded dedicated median {mec_unloaded} ms vs {budget} ms budget"
    );
    assert!(
        mec_saturated < budget,
        "saturated dedicated median {mec_saturated} ms vs {budget} ms budget"
    );
    // And congestion barely moves it while the cloud path collapses.
    assert!(
        mec_saturated < 2.0 * mec_unloaded.max(1.0),
        "dedicated RTT must not inflate: {mec_unloaded} -> {mec_saturated} ms"
    );
}
