//! The radio scheduler's strict-priority behaviour, observed through a
//! minimal host node.

use acacia_lte::ids::Ebi;
use acacia_lte::radio::{data_frame, parse_frame, RadioPayload, RadioScheduler};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId, Simulator};
use acacia_simnet::time::{Duration, Instant};
use acacia_simnet::traffic::Sink;
use std::net::Ipv4Addr;

fn ip(a: u8) -> Ipv4Addr {
    Ipv4Addr::new(192, 168, 0, a)
}

/// A node that enqueues a batch of frames with given priorities at t=0 and
/// transmits them through a RadioScheduler.
struct TxHost {
    sched: RadioScheduler,
    batch: Vec<(u8, Packet)>,
}

const RELEASE: u64 = 1;
const START: u64 = 2;

impl Node for TxHost {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            START => {
                for (prio, frame) in std::mem::take(&mut self.batch) {
                    self.sched.offer(ctx, prio, frame, RELEASE);
                }
            }
            RELEASE => {
                if let Some(frame) = self.sched.pop() {
                    ctx.send(0, frame);
                }
            }
            _ => {}
        }
    }
}

#[test]
fn high_priority_frames_jump_the_queue() {
    let mut sim = Simulator::new(3);
    // 1 Mbps transmitter: 5 same-size frames serialize over ~46 ms.
    let mut batch = Vec::new();
    for (i, prio) in [(0u64, 9u8), (1, 9), (2, 1), (3, 9), (4, 1)] {
        let inner = Packet::udp((ip(2), 1000), (ip(1), 2000), 1_100).with_id(i);
        batch.push((prio, data_frame(Ebi(5), &inner, ip(2), ip(1))));
    }
    let tx = sim.add_node(Box::new(TxHost {
        sched: RadioScheduler::new(1_000_000),
        batch,
    }));
    let rx = sim.add_node(Box::new(Sink::new()));
    sim.connect((tx, 0), (rx, 0), LinkConfig::delay_only(Duration::ZERO));
    sim.schedule_timer(tx, Instant::ZERO, START);
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(rx).packets(), 5);
    // Delivery order favours priority 1 (ids 2 and 4) over priority 9.
    // We can't read ids from the Sink, so check via delays: priorities
    // reorder *which* frame pops at each serialization slot — re-run with
    // a recording sink instead.
    struct Recorder {
        ids: Vec<u64>,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) {
            if let Some(RadioPayload::Data { inner, .. }) = parse_frame(&pkt) {
                self.ids.push(inner.id);
            }
        }
    }
    let mut sim = Simulator::new(3);
    let mut batch = Vec::new();
    for (i, prio) in [(0u64, 9u8), (1, 9), (2, 1), (3, 9), (4, 1)] {
        let inner = Packet::udp((ip(2), 1000), (ip(1), 2000), 1_100).with_id(i);
        batch.push((prio, data_frame(Ebi(5), &inner, ip(2), ip(1))));
    }
    let tx = sim.add_node(Box::new(TxHost {
        sched: RadioScheduler::new(1_000_000),
        batch,
    }));
    let rec = sim.add_node(Box::new(Recorder { ids: Vec::new() }));
    sim.connect((tx, 0), (rec, 0), LinkConfig::delay_only(Duration::ZERO));
    sim.schedule_timer(tx, Instant::ZERO, START);
    sim.run_until_idle();
    let ids = &sim.node_ref::<Recorder>(rec).ids;
    assert_eq!(ids.len(), 5);
    // Priority-1 frames (ids 2, 4) are served first, in FIFO order within
    // the class; then the priority-9 frames in FIFO order.
    assert_eq!(&ids[..], &[2, 4, 0, 1, 3], "service order {ids:?}");
}

#[test]
fn queue_bound_drops_excess_frames() {
    struct Host {
        sched: RadioScheduler,
    }
    impl Node for Host {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == START {
                for i in 0..100u64 {
                    let inner = Packet::udp((ip(2), 1), (ip(1), 2), 60_000).with_id(i);
                    let frame = data_frame(Ebi(5), &inner, ip(2), ip(1));
                    self.sched.offer(ctx, 5, frame, RELEASE);
                }
            } else if let Some(f) = self.sched.pop() {
                ctx.send(0, f);
            }
        }
    }
    let mut sim = Simulator::new(1);
    let mut sched = RadioScheduler::new(1_000_000);
    sched.queue_limit = 256 * 1024; // fits ~4 of the 60 KB frames
    let tx = sim.add_node(Box::new(Host { sched }));
    let rx = sim.add_node(Box::new(Sink::new()));
    sim.connect((tx, 0), (rx, 0), LinkConfig::delay_only(Duration::ZERO));
    sim.schedule_timer(tx, Instant::ZERO, START);
    sim.run_until_idle();
    let delivered = sim.node_ref::<Sink>(rx).packets();
    assert!((3..=5).contains(&delivered), "delivered {delivered}");
}
