//! The automatic LTE idle/promotion cycle: a device with intermittent
//! traffic is released after the inactivity timeout and promoted back by
//! the next uplink packet — paying the §4 control cost each time.

use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::overhead;
use acacia_lte::prelude::*;
use acacia_lte::ue::Ue;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::proto;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;
use acacia_simnet::transport::PingAgent;

#[test]
fn automatic_idle_release_and_data_driven_promotion() {
    // Shorten the inactivity timer so the test stays fast; the production
    // value is overhead::IDLE_TIMEOUT (11.576 s).
    let mut net = LteNetwork::new(LteConfig {
        auto_idle: Some(Duration::from_millis(800)),
        ..LteConfig::default()
    });
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        LinkConfig::delay_only(Duration::from_millis(2)),
    );
    let ue_ip = net.attach(0);

    // Sparse pings: bursts spaced wider than the idle timeout.
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(ue_ip, cloud_addr, Duration::from_secs(3), 4)),
        AppSelector::protocol(proto::ICMP),
    );
    let t0 = net.sim.now();
    net.sim.schedule_timer(agent, t0, PingAgent::KICKOFF);
    net.log.clear();
    net.run_for(Duration::from_secs(14));

    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    // Each gap exceeded the timeout: the eNB released the context, and the
    // next ping triggered an automatic service request.
    assert!(
        ue.promotions >= 2,
        "expected repeated radio promotions, saw {}",
        ue.promotions
    );
    // The buffered ping was flushed after each promotion: all pings that
    // got replies (the first of each burst rides the promotion).
    let rtts = net.sim.node_ref::<PingAgent>(agent).rtts();
    assert!(
        rtts.len() >= 3,
        "only {} pings survived the cycles",
        rtts.len()
    );

    // Each release+re-establish cycle costs the §4 batch.
    let cycles = ue.promotions;
    let bytes = net.log.core_bytes();
    assert!(
        bytes >= cycles * overhead::CYCLE_BYTES,
        "log has {bytes} B for {cycles} cycles"
    );
}

#[test]
fn steady_traffic_never_goes_idle() {
    let mut net = LteNetwork::new(LteConfig {
        auto_idle: Some(Duration::from_millis(800)),
        ..LteConfig::default()
    });
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        LinkConfig::delay_only(Duration::from_millis(2)),
    );
    let ue_ip = net.attach(0);
    // Pings every 200 ms — well inside the timeout.
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            cloud_addr,
            Duration::from_millis(200),
            40,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let t0 = net.sim.now();
    net.sim.schedule_timer(agent, t0, PingAgent::KICKOFF);
    net.run_for(Duration::from_secs(10));

    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert_eq!(
        ue.promotions, 0,
        "steady traffic must keep the UE connected"
    );
    assert_eq!(
        net.sim.node_ref::<PingAgent>(agent).rtts().len(),
        40,
        "no pings lost to idle cycles"
    );
    // Once the traffic stops (pings end at ~8 s) the inactivity timer
    // correctly demotes the UE before the 10 s horizon.
    assert_eq!(ue.state, UeState::Idle, "post-traffic demotion expected");
}

#[test]
fn production_timeout_constant_is_wired() {
    assert_eq!(overhead::IDLE_TIMEOUT.millis(), 11_576);
    // The config accepts it directly.
    let cfg = LteConfig {
        auto_idle: Some(overhead::IDLE_TIMEOUT),
        ..LteConfig::default()
    };
    assert_eq!(cfg.auto_idle.unwrap().millis(), 11_576);
}
