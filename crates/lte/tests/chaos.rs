//! Control-plane fault-injection integration tests: targeted drops of
//! individual handover messages must be absorbed by the guard-timer /
//! retransmission / cancel / re-establishment / fallback machinery, and
//! arbitrary fault schedules must never wedge a UE.

use acacia_geo::Point;
use acacia_lte::enb::Enb;
use acacia_lte::entities::GwControl;
use acacia_lte::network::{CellConfig, LteConfig, LteNetwork};
use acacia_lte::prelude::*;
use acacia_lte::ue::{AppSelector, Ue, UeState};
use acacia_simnet::fault::{FaultPlan, FaultRule, PacketClass};
use acacia_simnet::packet::proto;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;
use acacia_simnet::transport::PingAgent;
use proptest::prelude::*;

fn two_mec_cells(core_detour: bool) -> LteConfig {
    LteConfig {
        cells: vec![
            CellConfig {
                pos: Point::new(0.0, 0.0),
                mec: true,
                region: 0,
            },
            CellConfig {
                pos: Point::new(40.0, 0.0),
                mec: true,
                region: 1,
            },
        ],
        core_detour,
        ..LteConfig::default()
    }
}

/// Bring up a pinging session on a dedicated bearer, hand the network to
/// `faults` to arm its plans, then walk toward the far cell.
fn walk_under_faults(cfg: LteConfig, faults: impl FnOnce(&mut LteNetwork)) -> (LteNetwork, NodeId) {
    let mut net = LteNetwork::new(cfg);
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 9,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    // Faults arm only after attach + bearer setup: these tests target the
    // handover machinery, exactly like `LteNetwork::set_radio_loss`
    // recommends for data-plane loss.
    faults(&mut net);
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            mec_addr,
            Duration::from_millis(100),
            150,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    net.sim
        .schedule_timer(agent, net.sim.now(), PingAgent::KICKOFF);
    net.start_mobility(
        0,
        vec![
            Waypoint::passing(Point::new(2.0, 0.0)),
            Waypoint::passing(Point::new(38.0, 0.0)),
        ],
        4.0,
    );
    net.run_for(Duration::from_secs(16));
    // Let trailing guard timers resolve so "outstanding" means wedged,
    // not merely in-flight.
    net.run_for(Duration::from_secs(4));
    (net, agent)
}

fn assert_no_wedge(net: &LteNetwork) {
    for (i, &enb) in net.enbs.iter().enumerate() {
        assert_eq!(
            net.sim.node_ref::<Enb>(enb).outstanding_handovers(),
            0,
            "eNB {i} left a handover procedure open"
        );
    }
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert!(
        matches!(ue.state, UeState::Connected | UeState::Idle),
        "UE ended in {:?}",
        ue.state
    );
}

/// Dropping the first Path Switch Request makes the target eNB's guard
/// timer retransmit it; the handover still completes and the dedicated
/// bearer still re-anchors.
#[test]
fn nth_path_switch_drop_is_retransmitted() {
    let (net, agent) = walk_under_faults(two_mec_cells(false), |net| {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::drop(PacketClass::any().with_payload_tag("PSq"), 1.0).on_nth(1));
        net.sim.attach_fault_plan(net.s1ap_uplink(1), plan);
    });
    let target = net.sim.node_ref::<Enb>(net.enbs[1]);
    assert_eq!(target.ps_retx, 1, "guard timer must resend the PSq");
    assert_eq!(target.ho_in_done, 1);
    assert_eq!(net.serving_cell(0), 1);
    let gwc = net.sim.node_ref::<GwControl>(net.gwc);
    assert_eq!(gwc.dedicated_reanchored, 1);
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).state, UeState::Connected);
    assert_no_wedge(&net);
    // The retransmission delay is one guard period: pings barely notice.
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(a.rtts().len() >= 140, "{} of 150 pings", a.rtts().len());
}

/// Dropping *every* Path Switch Request exhausts the retransmission
/// budget: the target releases the session to the default bearer, and the
/// service-request path restores connectivity through the core detour.
#[test]
fn path_switch_exhaustion_falls_back_to_core_detour() {
    let (net, agent) = walk_under_faults(two_mec_cells(true), |net| {
        let plan = FaultPlan::new(1).with_rule(FaultRule::drop(
            PacketClass::any().with_payload_tag("PSq"),
            1.0,
        ));
        net.sim.attach_fault_plan(net.s1ap_uplink(1), plan);
    });
    let target = net.sim.node_ref::<Enb>(net.enbs[1]);
    assert!(target.ps_retx >= 2, "retransmissions before giving up");
    assert_eq!(target.ps_fallback, 1, "exhaustion must trigger fallback");
    assert_eq!(net.serving_cell(0), 1);
    // The dedicated bearer is gone, but the session recovered: the UE
    // reconnected (uplink data promotes it out of idle) and late pings
    // flow at core-detour latency.
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert!(!ue.has_dedicated_bearer());
    assert_eq!(ue.state, UeState::Connected);
    // The service-request restore must have flushed the stale core
    // flows (Delete Bearer Command), or downlink replies would keep
    // chasing the released context at the old cell forever.
    let gwc = net.sim.node_ref::<GwControl>(net.gwc);
    assert_eq!(gwc.dedicated_released, 1);
    assert_eq!(gwc.dedicated_active, 0);
    assert_no_wedge(&net);
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(
        a.rtts().len() >= 100,
        "{} of 150 pings survived the fallback",
        a.rtts().len()
    );
    let late = &a.rtts()[a.rtts().len() - 10..];
    let series = acacia_simnet::stats::Series::from_durations_ms(late);
    assert!(
        series.median() > 20.0,
        "late pings should ride the core detour, median {} ms",
        series.median()
    );
}

/// Dropping the first X2 Handover Request makes the source eNB's prep
/// guard retransmit it; the handover completes on the second copy.
#[test]
fn nth_handover_request_drop_is_retransmitted() {
    let (net, _) = walk_under_faults(two_mec_cells(false), |net| {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::drop(PacketClass::any().with_payload_tag("HOq"), 1.0).on_nth(1));
        net.sim.attach_fault_plan(net.x2_link(0, 1), plan);
    });
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[0]).ho_retx, 1);
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).ho_in_done, 1);
    assert_eq!(net.serving_cell(0), 1);
    assert_no_wedge(&net);
}

/// Dropping *every* X2 Handover Request means the target never answers:
/// the source cancels the preparation and keeps serving the UE itself.
#[test]
fn handover_preparation_exhaustion_cancels() {
    let (net, agent) = walk_under_faults(two_mec_cells(false), |net| {
        let plan = FaultPlan::new(1).with_rule(FaultRule::drop(
            PacketClass::any().with_payload_tag("HOq"),
            1.0,
        ));
        net.sim.attach_fault_plan(net.x2_link(0, 1), plan);
    });
    let source = net.sim.node_ref::<Enb>(net.enbs[0]);
    assert!(source.ho_retx >= 2);
    assert!(source.ho_cancelled >= 1, "preparation must be cancelled");
    // No handover ever executed; the source keeps serving.
    assert_eq!(net.serving_cell(0), 0);
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).ho_in_done, 0);
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).state, UeState::Connected);
    assert_no_wedge(&net);
    // Service continues from the (now distant) source cell.
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(a.rtts().len() >= 140, "{} of 150 pings", a.rtts().len());
}

/// Dropping the RRC Handover Command leaves the UE camped on the source
/// while the network has already switched: T304 expires and RRC
/// re-establishment on the reported target recovers the session.
#[test]
fn lost_handover_command_recovers_via_reestablishment() {
    let (net, agent) = walk_under_faults(two_mec_cells(false), |net| {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::drop(PacketClass::any().with_payload_tag("RHC"), 1.0).on_nth(1));
        net.sim.attach_fault_plan(net.radio_downlink(0, 0), plan);
    });
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert_eq!(ue.reestablishments, 1, "T304 must trigger re-establishment");
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).reest_in, 1);
    assert_eq!(net.serving_cell(0), 1);
    assert_eq!(ue.state, UeState::Connected);
    // The re-established leg still completes the path switch.
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).ho_in_done, 1);
    assert_no_wedge(&net);
    // Recovery costs ~T304 (300 ms) of interruption, visible but bounded.
    let a = net.sim.node_ref::<PingAgent>(agent);
    assert!(a.rtts().len() >= 130, "{} of 150 pings", a.rtts().len());
}

/// Duplicated control messages are idempotent end to end: doubling every
/// X2/S1AP packet changes nothing about the outcome.
#[test]
fn duplicated_control_messages_are_suppressed() {
    let (net, _) = walk_under_faults(two_mec_cells(false), |net| {
        for (endpoint, _) in net.control_fault_points() {
            let plan = FaultPlan::new(1).with_rule(FaultRule::duplicate(PacketClass::any(), 1.0));
            net.sim.attach_fault_plan(endpoint, plan);
        }
    });
    // Exactly one handover, one path switch, one re-anchor — duplicates
    // must not double-count anything.
    assert_eq!(net.sim.node_ref::<Enb>(net.enbs[1]).ho_in_done, 1);
    assert_eq!(net.serving_cell(0), 1);
    let gwc = net.sim.node_ref::<GwControl>(net.gwc);
    assert_eq!(gwc.dedicated_reanchored, 1);
    assert_no_wedge(&net);
}

/// Soak: arbitrary fault schedules on every control link — random
/// The loaded regime composed with control-plane chaos: a 100 Mbit/s
/// core saturated by a 110 Mbit/s best-effort flood while three UEs walk
/// through X2 handovers whose X2 messages are dropped 30% of the time.
/// The recovery ladder and the priority queues must compose — zero
/// wedged UEs, legal end states, and the dedicated-bearer ping streams
/// (which never cross the congested core) keep flowing throughout.
#[test]
fn x2_drops_under_core_congestion_never_wedge() {
    let mut net = LteNetwork::new(LteConfig {
        ue_count: 3,
        core_rate_bps: 100_000_000,
        core_queue_bytes: 12 * 1024 * 1024,
        ..two_mec_cells(true)
    });
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let mut agents = Vec::new();
    for i in 0..3 {
        let ue_ip = net.attach(i);
        net.activate_dedicated_bearer(
            i,
            PolicyRule {
                service_id: 9,
                ue_addr: ue_ip,
                server_addr: mec_addr,
                server_port: 0,
                qci: Qci(3),
                install: true,
            },
        );
        let agent = net.connect_ue_app(
            i,
            Box::new(PingAgent::new(
                ue_ip,
                mec_addr,
                Duration::from_millis(100),
                150,
            )),
            AppSelector::protocol(proto::ICMP),
        );
        net.sim
            .schedule_timer(agent, net.sim.now(), PingAgent::KICKOFF);
        agents.push(agent);
    }
    // Congestion on for the whole walk: the core queue fills and stays
    // full, exactly the regime of the loaded experiment.
    let t0 = net.sim.now();
    net.start_background_traffic(110_000_000, t0, t0 + Duration::from_secs(40));
    // X2 drops arm mid-congestion, after attach + bearer setup.
    let start = t0 + Duration::from_secs(1);
    let end = start + Duration::from_secs(86_400);
    for (idx, (endpoint, label)) in net.control_fault_points().into_iter().enumerate() {
        if !label.starts_with("x2[") {
            continue;
        }
        let seed = 42u64.wrapping_add((idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let plan = FaultPlan::new(seed)
            .with_rule(FaultRule::drop(PacketClass::any(), 0.3).in_window(start, end));
        net.sim.attach_fault_plan(endpoint, plan);
    }
    for i in 0..3 {
        net.start_mobility(
            i,
            vec![
                Waypoint::passing(Point::new(2.0, 0.0)),
                Waypoint::passing(Point::new(38.0, 0.0)),
            ],
            4.0,
        );
    }
    net.run_for(Duration::from_secs(16));
    // Trailing guard timers resolve: "outstanding" now means wedged.
    net.run_for(Duration::from_secs(4));

    for (i, &enb) in net.enbs.iter().enumerate() {
        assert_eq!(
            net.sim.node_ref::<Enb>(enb).outstanding_handovers(),
            0,
            "eNB {i} left a handover procedure open under congestion + X2 drops"
        );
    }
    for i in 0..3 {
        let ue = net.sim.node_ref::<Ue>(net.ues[i]);
        assert!(
            matches!(ue.state, UeState::Connected | UeState::Idle),
            "UE {i} ended in {:?}",
            ue.state
        );
    }
    // The MEC ping streams rode the dedicated bearers through all of it:
    // every UE keeps a mostly-intact stream (lost pings come only from
    // handover gaps and recovery stalls, never the congested core).
    for (i, &agent) in agents.iter().enumerate() {
        let a = net.sim.node_ref::<PingAgent>(agent);
        assert!(
            a.rtts().len() >= 100,
            "UE {i} answered only {}/{} MEC pings (lost {})",
            a.rtts().len(),
            a.sent(),
            a.lost()
        );
    }
}

/// drop/duplicate/reorder mixes — never panic, never deadlock the clock,
/// and always leave every UE in a legal state with zero open handover
/// procedures. A full LTE walk per case is far heavier than a unit
/// property, so this drives the proptest shim's deterministic per-case
/// RNG directly with a fixed case budget instead of `PROPTEST_CASES`.
#[test]
fn arbitrary_fault_schedules_never_wedge() {
    const CASES: u64 = 8;
    for case in 0..CASES {
        let mut rng = prop::TestRng::for_case("arbitrary_fault_schedules_never_wedge", case);
        let seed = Strategy::generate(&(0u64..1_000), &mut rng);
        let drop_rate = Strategy::generate(&(0.0f64..0.6), &mut rng);
        let dup_rate = Strategy::generate(&(0.0f64..0.4), &mut rng);
        let reorder_rate = Strategy::generate(&(0.0f64..0.4), &mut rng);
        let reorder_ms = Strategy::generate(&(1u64..10), &mut rng);
        let (net, _) = walk_under_faults(two_mec_cells(true), |net| {
            for (idx, (endpoint, _)) in net.control_fault_points().into_iter().enumerate() {
                let mut plan = FaultPlan::new(seed.wrapping_add(idx as u64 * 7919));
                plan.add_rule(FaultRule::drop(PacketClass::any(), drop_rate));
                plan.add_rule(FaultRule::duplicate(PacketClass::any(), dup_rate));
                plan.add_rule(FaultRule::reorder(
                    PacketClass::any(),
                    reorder_rate,
                    Duration::from_millis(reorder_ms),
                ));
                net.sim.attach_fault_plan(endpoint, plan);
            }
        });
        let ctx = format!(
            "case {case}: seed {seed} drop {drop_rate:.2} dup {dup_rate:.2} \
             reorder {reorder_rate:.2}/{reorder_ms}ms"
        );
        // The clock must have advanced through the whole schedule (no
        // deadlock), and nothing may be left half-open.
        assert!(
            net.sim.now() >= acacia_simnet::time::Instant::from_millis(16_000),
            "clock stalled at {:?} ({ctx})",
            net.sim.now()
        );
        for (i, &enb) in net.enbs.iter().enumerate() {
            assert_eq!(
                net.sim.node_ref::<Enb>(enb).outstanding_handovers(),
                0,
                "eNB {i} wedged ({ctx})"
            );
        }
        let ue = net.sim.node_ref::<Ue>(net.ues[0]);
        assert!(
            matches!(ue.state, UeState::Connected | UeState::Idle),
            "UE ended in {:?} ({ctx})",
            ue.state
        );
    }
}
