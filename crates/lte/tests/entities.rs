//! Focused tests of the EPC control-plane entities, driven by injecting
//! individual control messages (no full network needed).

use acacia_lte::entities::{
    gwc_port, mme_port, pcrf_port, GwControl, GwTopology, Hss, LocalGw, Mme, MmeUeState, Pcrf,
};
use acacia_lte::ids::Imsi;
use acacia_lte::log::MsgLog;
use acacia_lte::network::addr;
use acacia_lte::qci::Qci;
use acacia_lte::wire::{ControlMsg, PolicyRule};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::{NodeId, Simulator};
use acacia_simnet::time::{Duration, Instant};
use acacia_simnet::traffic::Sink;
use std::net::Ipv4Addr;

fn imsi() -> Imsi {
    Imsi(310_410_000_000_001)
}

fn ctrl_link() -> LinkConfig {
    LinkConfig::delay_only(Duration::from_micros(100))
}

fn inject(sim: &mut Simulator, node: NodeId, port: usize, at_us: u64, msg: ControlMsg) {
    let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
    sim.inject_packet(node, port, Instant::from_micros(at_us), pkt);
}

#[test]
fn hss_rejects_unknown_subscribers() {
    let mut sim = Simulator::new(1);
    let hss = sim.add_node(Box::new(Hss::new(addr::HSS, vec![imsi()], MsgLog::new())));
    let sink = sim.add_node(Box::new(Sink::new()));
    sim.connect((hss, 0), (sink, 0), ctrl_link());
    inject(
        &mut sim,
        hss,
        0,
        0,
        ControlMsg::S6aAuthInfoRequest { imsi: imsi() },
    );
    inject(
        &mut sim,
        hss,
        0,
        10,
        ControlMsg::S6aAuthInfoRequest { imsi: Imsi(999) },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Hss>(hss).answered, 2);
    // Both answers went out; decode them at the sink side is not possible
    // (Sink drops payloads), so assert via packet count.
    assert_eq!(sim.node_ref::<Sink>(sink).packets(), 2);
}

#[test]
fn mme_walks_the_attach_state_machine() {
    let mut sim = Simulator::new(1);
    let log = MsgLog::new();
    let mme = sim.add_node(Box::new(Mme::new(
        addr::MME,
        addr::ENB,
        addr::GWC,
        addr::HSS,
        log.clone(),
    )));
    // Sinks on every interface.
    for p in [mme_port::ENB, mme_port::GWC, mme_port::HSS] {
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect((mme, p), (sink, 0), ctrl_link());
    }
    let m = |sim: &Simulator| sim.node_ref::<Mme>(mme).ue_state(imsi());

    assert_eq!(m(&sim), MmeUeState::Unknown);
    inject(
        &mut sim,
        mme,
        mme_port::ENB,
        0,
        ControlMsg::InitialUeAttach { imsi: imsi() },
    );
    sim.run_until_idle();
    assert_eq!(m(&sim), MmeUeState::AuthWait);

    inject(
        &mut sim,
        mme,
        mme_port::HSS,
        1_000,
        ControlMsg::S6aAuthInfoAnswer {
            imsi: imsi(),
            ok: true,
        },
    );
    sim.run_until_idle();
    assert_eq!(m(&sim), MmeUeState::SessionWait);

    // Auth failure path on a different subscriber resets to Unknown.
    inject(
        &mut sim,
        mme,
        mme_port::ENB,
        2_000,
        ControlMsg::InitialUeAttach { imsi: Imsi(2) },
    );
    inject(
        &mut sim,
        mme,
        mme_port::HSS,
        3_000,
        ControlMsg::S6aAuthInfoAnswer {
            imsi: Imsi(2),
            ok: false,
        },
    );
    sim.run_until_idle();
    assert_eq!(
        sim.node_ref::<Mme>(mme).ue_state(Imsi(2)),
        MmeUeState::Unknown
    );
}

#[test]
fn pcrf_relays_rx_to_gx_and_back() {
    let mut sim = Simulator::new(1);
    let pcrf = sim.add_node(Box::new(Pcrf::new(addr::PCRF, addr::GWC, MsgLog::new())));
    let gx_sink = sim.add_node(Box::new(Sink::new()));
    let af_sink = sim.add_node(Box::new(Sink::new()));
    sim.connect((pcrf, pcrf_port::GWC), (gx_sink, 0), ctrl_link());
    sim.connect((pcrf, pcrf_port::AF), (af_sink, 0), ctrl_link());

    let rule = PolicyRule {
        service_id: 42,
        ue_addr: Ipv4Addr::new(10, 10, 0, 1),
        server_addr: Ipv4Addr::new(10, 4, 0, 1),
        server_port: 0,
        qci: Qci(7),
        install: true,
    };
    inject(
        &mut sim,
        pcrf,
        pcrf_port::AF,
        0,
        ControlMsg::RxAuthRequest { rule },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(gx_sink).packets(), 1, "Gx RAR out");
    assert_eq!(sim.node_ref::<Pcrf>(pcrf).rules_pushed, 1);

    inject(
        &mut sim,
        pcrf,
        pcrf_port::GWC,
        1_000,
        ControlMsg::GxReauthAnswer {
            service_id: 42,
            ok: true,
        },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(af_sink).packets(), 1, "Rx AAA back");

    // An answer for an unknown service id is ignored.
    inject(
        &mut sim,
        pcrf,
        pcrf_port::GWC,
        2_000,
        ControlMsg::GxReauthAnswer {
            service_id: 77,
            ok: true,
        },
    );
    sim.run_until_idle();
    assert_eq!(
        sim.node_ref::<Sink>(af_sink).packets(),
        1,
        "no spurious AAA"
    );
}

fn topo() -> GwTopology {
    GwTopology {
        sgw_u: addr::SGW_U,
        pgw_u: addr::PGW_U,
        sgw_port_enb: 1,
        sgw_port_pgw: 2,
        pgw_port_sgw: 1,
        pgw_port_inet: 2,
        locals: vec![LocalGw {
            addr: addr::LOCAL_GWU,
            ctrl_port: gwc_port::LOCAL_GWU,
            port_enb: 1,
            port_mec: 2,
            enb_ports: Vec::new(),
            enbs: Vec::new(),
            servers: vec![addr::MEC_BASE],
        }],
        ue_ip_base: addr::UE_POOL,
        sgw_enb_ports: Vec::new(),
    }
}

#[test]
fn gwc_creates_sessions_and_programs_the_pgw() {
    let mut sim = Simulator::new(1);
    let gwc = sim.add_node(Box::new(GwControl::new(addr::GWC, topo(), MsgLog::new())));
    let sinks: Vec<NodeId> = (0..5)
        .map(|p| {
            let s = sim.add_node(Box::new(Sink::new()));
            sim.connect((gwc, p), (s, 0), ctrl_link());
            s
        })
        .collect();

    inject(
        &mut sim,
        gwc,
        gwc_port::MME,
        0,
        ControlMsg::CreateSessionRequest { imsi: imsi() },
    );
    sim.run_until_idle();
    // Response to the MME plus two PGW-U flow-mods.
    assert_eq!(sim.node_ref::<Sink>(sinks[gwc_port::MME]).packets(), 1);
    assert_eq!(sim.node_ref::<Sink>(sinks[gwc_port::PGW_U]).packets(), 2);
    assert_eq!(sim.node_ref::<Sink>(sinks[gwc_port::SGW_U]).packets(), 0);
    let assigned = sim.node_ref::<GwControl>(gwc).ue_addr(imsi());
    assert!(assigned.is_some());

    // Modify Bearer installs the two SGW-U legs.
    inject(
        &mut sim,
        gwc,
        gwc_port::MME,
        1_000,
        ControlMsg::ModifyBearerRequest {
            imsi: imsi(),
            enb_teid: acacia_lte::ids::Teid(0x3001),
            enb_addr: addr::ENB,
        },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(sinks[gwc_port::SGW_U]).packets(), 2);
    assert_eq!(sim.node_ref::<Sink>(sinks[gwc_port::MME]).packets(), 2);
}

#[test]
fn gwc_rejects_rules_for_unknown_ues_and_non_mec_servers() {
    let mut sim = Simulator::new(1);
    let gwc = sim.add_node(Box::new(GwControl::new(addr::GWC, topo(), MsgLog::new())));
    let pcrf_sink = sim.add_node(Box::new(Sink::new()));
    let mme_sink = sim.add_node(Box::new(Sink::new()));
    sim.connect((gwc, gwc_port::PCRF), (pcrf_sink, 0), ctrl_link());
    sim.connect((gwc, gwc_port::MME), (mme_sink, 0), ctrl_link());

    // Unknown UE: immediate NACK on Gx.
    inject(
        &mut sim,
        gwc,
        gwc_port::PCRF,
        0,
        ControlMsg::GxReauthRequest {
            rule: PolicyRule {
                service_id: 1,
                ue_addr: Ipv4Addr::new(10, 10, 0, 99),
                server_addr: addr::MEC_BASE,
                server_port: 0,
                qci: Qci(7),
                install: true,
            },
        },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(pcrf_sink).packets(), 1);
    assert_eq!(
        sim.node_ref::<Sink>(mme_sink).packets(),
        0,
        "no bearer attempt"
    );

    // Known UE but a server that is not on the MEC: also a NACK.
    inject(
        &mut sim,
        gwc,
        gwc_port::MME,
        1_000,
        ControlMsg::CreateSessionRequest { imsi: imsi() },
    );
    sim.run_until_idle();
    let ue_addr = sim.node_ref::<GwControl>(gwc).ue_addr(imsi()).unwrap();
    inject(
        &mut sim,
        gwc,
        gwc_port::PCRF,
        2_000,
        ControlMsg::GxReauthRequest {
            rule: PolicyRule {
                service_id: 2,
                ue_addr,
                server_addr: Ipv4Addr::new(52, 0, 0, 1),
                server_port: 0,
                qci: Qci(7),
                install: true,
            },
        },
    );
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<Sink>(pcrf_sink).packets(), 2);
    assert_eq!(
        sim.node_ref::<Sink>(mme_sink).packets(),
        1,
        "only the session response"
    );
}
