//! Paging: downlink data arriving for an idle UE is buffered at the SGW-U,
//! raises a Downlink Data Notification, the MME pages, the UE answers with
//! a service request, and the buffered packets are delivered.

use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::prelude::*;
use acacia_lte::switch::FlowSwitch;
use acacia_lte::ue::Ue;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::proto;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::{Duration, Instant};
use acacia_simnet::traffic::{Sink, UdpSource};

/// A cloud-side sender pushing UDP toward the UE, and a UE-side sink.
fn setup() -> (LteNetwork, NodeId, NodeId) {
    let mut net = LteNetwork::new(LteConfig::default());
    let ue_ip = net.attach(0);
    // Cloud host that will push traffic *down* to the UE.
    let (pusher, _) = net.add_cloud_server(
        Box::new(
            UdpSource::cbr(
                (acacia_lte::network::addr::CLOUD_BASE, 7_000),
                (ue_ip, 7_777),
                400_000,
                600,
            )
            .window(Instant::from_secs(2), Instant::from_secs(4)),
        ),
        LinkConfig::delay_only(Duration::from_millis(1)),
    );
    let sink = net.connect_ue_app(0, Box::new(Sink::new()), AppSelector::port(7_777));
    (net, pusher, sink)
}

#[test]
fn downlink_data_pages_an_idle_ue() {
    let (mut net, pusher, sink) = setup();
    // Go idle first.
    net.trigger_idle_release(0);
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).state, UeState::Idle);

    // Downlink pushes start at t=2 s (while idle).
    let t = net.sim.now();
    let _ = t;
    net.sim
        .schedule_timer(pusher, Instant::from_secs(2), UdpSource::KICKOFF);
    net.run_for(Duration::from_secs(6));

    // The SGW-U raised a DDN and the page brought the UE back.
    let sgw = net.sim.node_ref::<FlowSwitch>(net.sgw_u);
    assert!(sgw.ddn_sent >= 1, "no DDN raised");
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    assert_eq!(ue.state, UeState::Connected, "paging must reconnect the UE");
    assert!(ue.promotions >= 1, "the page triggers a service request");

    // Buffered + subsequent packets reached the app.
    let delivered = net.sim.node_ref::<Sink>(sink).packets();
    assert!(delivered > 50, "only {delivered} downlink packets arrived");
    // The very first packets were buffered, not dropped: the paging buffer
    // drained on rule re-installation.
    assert_eq!(sgw.paged_packets(), 0, "paging buffer must drain");
}

#[test]
fn paging_does_not_fire_for_connected_ues() {
    let (mut net, pusher, sink) = setup();
    // Stay connected: traffic flows straight through.
    net.sim
        .schedule_timer(pusher, Instant::from_secs(2), UdpSource::KICKOFF);
    net.run_for(Duration::from_secs(6));
    let sgw = net.sim.node_ref::<FlowSwitch>(net.sgw_u);
    assert_eq!(sgw.ddn_sent, 0, "no DDN while connected");
    assert_eq!(net.sim.node_ref::<Ue>(net.ues[0]).promotions, 0);
    assert!(net.sim.node_ref::<Sink>(sink).packets() > 100);
    let _ = proto::UDP;
}
