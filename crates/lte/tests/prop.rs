//! Property-based tests for the LTE wire formats, tunnelling and TFTs.

use acacia_lte::gtpu;
use acacia_lte::ids::{Ebi, Imsi, Teid};
use acacia_lte::qci::Qci;
use acacia_lte::tft::{Direction, PacketFilter, Tft};
use acacia_lte::wire::{ControlMsg, ErabSetup, FlowActionSpec, FlowMatchSpec, PolicyRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::time::Instant;
use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> BoxedStrategy<Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from).boxed()
}

fn arb_packet() -> BoxedStrategy<Packet> {
    (
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        any::<u16>(),
        prop::sample::select(vec![1u8, 6, 17, 132]),
        any::<u8>(),
        0u32..100_000,
        prop::collection::vec(any::<u8>(), 0..128),
        any::<u64>(),
    )
        .prop_map(
            |(src, dst, sp, dp, proto, tos, app_len, payload, id)| Packet {
                src,
                dst,
                src_port: sp,
                dst_port: dp,
                protocol: proto,
                tos,
                payload: Bytes::from(payload),
                app_len,
                id,
                created: Instant::from_nanos(42),
            },
        )
        .boxed()
}

fn arb_tft() -> BoxedStrategy<Tft> {
    prop::collection::vec(
        (
            any::<u8>(),
            prop::sample::select(vec![
                Direction::Uplink,
                Direction::Downlink,
                Direction::Bidirectional,
            ]),
            prop::option::of((arb_ip(), 0u8..=32)),
            prop::option::of((any::<u16>(), any::<u16>())),
            prop::option::of(prop::sample::select(vec![1u8, 6, 17])),
        )
            .prop_map(|(precedence, direction, remote_addr, ports, protocol)| {
                PacketFilter {
                    precedence,
                    direction,
                    remote_addr,
                    remote_port: ports.map(|(a, b)| (a.min(b), a.max(b))),
                    protocol,
                }
            }),
        0..4,
    )
    .prop_map(|filters| Tft { filters })
    .boxed()
}

fn arb_msg() -> BoxedStrategy<ControlMsg> {
    let imsi = any::<u64>().prop_map(Imsi).boxed();
    let erab = (any::<u8>(), 1u8..10, any::<u32>(), arb_ip(), arb_tft())
        .prop_map(|(ebi, qci, teid, addr, tft)| ErabSetup {
            ebi: Ebi(ebi),
            qci: Qci(qci),
            gw_teid: Teid(teid),
            gw_addr: addr,
            tft,
        })
        .boxed();
    prop_oneof![
        imsi.clone()
            .prop_map(|i| ControlMsg::InitialUeAttach { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::UeContextReleaseRequest { imsi: i }),
        (imsi.clone(), erab.clone())
            .prop_map(|(i, e)| ControlMsg::ErabSetupRequest { imsi: i, erab: e }),
        (imsi.clone(), prop::collection::vec(erab, 0..2))
            .prop_map(|(i, es)| ControlMsg::InitialContextSetupRequest { imsi: i, erabs: es }),
        (imsi.clone(), any::<u32>(), arb_ip()).prop_map(|(i, t, a)| {
            ControlMsg::ModifyBearerRequest {
                imsi: i,
                enb_teid: Teid(t),
                enb_addr: a,
            }
        }),
        (
            any::<u32>(),
            arb_ip(),
            arb_ip(),
            any::<u16>(),
            1u8..10,
            any::<bool>()
        )
            .prop_map(
                |(sid, ue, srv, port, qci, install)| ControlMsg::RxAuthRequest {
                    rule: PolicyRule {
                        service_id: sid,
                        ue_addr: ue,
                        server_addr: srv,
                        server_port: port,
                        qci: Qci(qci),
                        install,
                    }
                }
            ),
        (
            any::<bool>(),
            any::<u16>(),
            prop::option::of(any::<u32>()),
            prop::option::of(arb_ip())
        )
            .prop_map(|(add, prio, teid, dst)| ControlMsg::FlowMod {
                add,
                priority: prio,
                mtch: FlowMatchSpec {
                    teid: teid.map(Teid),
                    dst,
                    src: None,
                },
                actions: vec![FlowActionSpec::GtpDecap, FlowActionSpec::Output { port: 2 }],
            }),
    ]
    .boxed()
}

/// Every `ControlMsg` variant, across all five protocol families — the
/// full-coverage generator for the encode→decode→encode identities.
fn arb_msg_any() -> BoxedStrategy<ControlMsg> {
    let imsi = any::<u64>().prop_map(Imsi).boxed();
    let erab = (any::<u8>(), 1u8..10, any::<u32>(), arb_ip(), arb_tft())
        .prop_map(|(ebi, qci, teid, addr, tft)| ErabSetup {
            ebi: Ebi(ebi),
            qci: Qci(qci),
            gw_teid: Teid(teid),
            gw_addr: addr,
            tft,
        })
        .boxed();
    let rule = (
        any::<u32>(),
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        1u8..10,
        any::<bool>(),
    )
        .prop_map(|(sid, ue, srv, port, qci, install)| PolicyRule {
            service_id: sid,
            ue_addr: ue,
            server_addr: srv,
            server_port: port,
            qci: Qci(qci),
            install,
        })
        .boxed();
    let s1ap = prop_oneof![
        imsi.clone()
            .prop_map(|i| ControlMsg::InitialUeServiceRequest { imsi: i }),
        (
            imsi.clone(),
            prop::collection::vec((any::<u8>(), any::<u32>()), 0..3)
        )
            .prop_map(|(i, ts)| ControlMsg::InitialContextSetupResponse {
                imsi: i,
                enb_teids: ts.into_iter().map(|(e, t)| (Ebi(e), Teid(t))).collect(),
            }),
        (imsi.clone(), prop::option::of(arb_ip())).prop_map(|(i, a)| {
            ControlMsg::DownlinkNasAccept {
                imsi: i,
                ue_addr: a,
            }
        }),
        (imsi.clone(), any::<u8>(), any::<u32>()).prop_map(|(i, e, t)| {
            ControlMsg::ErabSetupResponse {
                imsi: i,
                ebi: Ebi(e),
                enb_teid: Teid(t),
            }
        }),
        (imsi.clone(), any::<u8>()).prop_map(|(i, e)| ControlMsg::ErabReleaseCommand {
            imsi: i,
            ebi: Ebi(e)
        }),
        (imsi.clone(), any::<u8>()).prop_map(|(i, e)| ControlMsg::ErabReleaseResponse {
            imsi: i,
            ebi: Ebi(e)
        }),
        imsi.clone()
            .prop_map(|i| ControlMsg::UeContextReleaseCommand { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::UeContextReleaseComplete { imsi: i }),
        imsi.clone().prop_map(|i| ControlMsg::Paging { imsi: i }),
    ];
    let gtpv2 = prop_oneof![
        imsi.clone()
            .prop_map(|i| ControlMsg::CreateSessionRequest { imsi: i }),
        (imsi.clone(), arb_ip(), erab.clone()).prop_map(|(i, a, e)| {
            ControlMsg::CreateSessionResponse {
                imsi: i,
                ue_addr: a,
                erab: e,
            }
        }),
        (imsi.clone(), erab.clone())
            .prop_map(|(i, e)| ControlMsg::CreateBearerRequest { imsi: i, erab: e }),
        (imsi.clone(), any::<u8>(), any::<u32>(), arb_ip()).prop_map(|(i, e, t, a)| {
            ControlMsg::CreateBearerResponse {
                imsi: i,
                ebi: Ebi(e),
                enb_teid: Teid(t),
                enb_addr: a,
            }
        }),
        (imsi.clone(), any::<u8>()).prop_map(|(i, e)| ControlMsg::DeleteBearerRequest {
            imsi: i,
            ebi: Ebi(e)
        }),
        (imsi.clone(), any::<u8>()).prop_map(|(i, e)| ControlMsg::DeleteBearerResponse {
            imsi: i,
            ebi: Ebi(e)
        }),
        imsi.clone()
            .prop_map(|i| ControlMsg::ReleaseAccessBearersRequest { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::ReleaseAccessBearersResponse { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::ModifyBearerResponse { imsi: i }),
        any::<u32>().prop_map(|t| ControlMsg::DownlinkDataByTeid { teid: Teid(t) }),
        imsi.clone()
            .prop_map(|i| ControlMsg::DownlinkDataNotification { imsi: i }),
    ];
    let diameter = prop_oneof![
        (any::<u32>(), any::<bool>())
            .prop_map(|(s, ok)| ControlMsg::RxAuthAnswer { service_id: s, ok }),
        rule.prop_map(|r| ControlMsg::GxReauthRequest { rule: r }),
        (any::<u32>(), any::<bool>())
            .prop_map(|(s, ok)| ControlMsg::GxReauthAnswer { service_id: s, ok }),
        imsi.clone()
            .prop_map(|i| ControlMsg::S6aAuthInfoRequest { imsi: i }),
        (imsi.clone(), any::<bool>())
            .prop_map(|(i, ok)| ControlMsg::S6aAuthInfoAnswer { imsi: i, ok }),
    ];
    let rrc = prop_oneof![
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcAttachRequest { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcServiceRequest { imsi: i }),
        (any::<u8>(), 1u8..10, arb_tft(), prop::option::of(arb_ip())).prop_map(|(e, q, tft, a)| {
            ControlMsg::RrcReconfiguration {
                ebi: Ebi(e),
                qci: Qci(q),
                tft,
                ue_addr: a,
            }
        }),
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcRelease { imsi: i }),
        any::<u8>().prop_map(|e| ControlMsg::RrcBearerRelease { ebi: Ebi(e) }),
        imsi.clone().prop_map(|i| ControlMsg::RrcPaging { imsi: i }),
    ];
    // The mobility/handover additions: X2AP, path switch, bearer
    // relocation and the RRC measurement/handover trio.
    let erab_teids = prop::collection::vec((any::<u8>(), any::<u32>()), 0..3)
        .prop_map(|ts| {
            ts.into_iter()
                .map(|(e, t)| (Ebi(e), Teid(t)))
                .collect::<Vec<_>>()
        })
        .boxed();
    let handover = prop_oneof![
        (imsi.clone(), arb_ip(), erab_teids.clone(), 0u32..1000).prop_map(|(i, a, ts, tx)| {
            ControlMsg::PathSwitchRequest {
                imsi: i,
                enb_addr: a,
                erabs: ts,
                txid: tx,
            }
        }),
        (imsi.clone(), prop::collection::vec(erab.clone(), 0..2))
            .prop_map(|(i, es)| { ControlMsg::PathSwitchRequestAck { imsi: i, erabs: es } }),
        (
            imsi.clone(),
            prop::option::of(arb_ip()),
            prop::collection::vec(erab.clone(), 0..2),
            0u32..1000
        )
            .prop_map(|(i, a, es, tx)| ControlMsg::X2HandoverRequest {
                imsi: i,
                ue_addr: a,
                bearers: es,
                txid: tx,
            }),
        (imsi.clone(), erab_teids.clone(), 0u32..1000).prop_map(|(i, ts, tx)| {
            ControlMsg::X2HandoverRequestAck {
                imsi: i,
                erabs: ts,
                txid: tx,
            }
        }),
        (imsi.clone(), 0u32..1000)
            .prop_map(|(i, tx)| ControlMsg::X2HandoverCancel { imsi: i, txid: tx }),
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcReestablishmentRequest { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcReestablishmentConfirm { imsi: i }),
        (imsi.clone(), any::<u32>(), any::<u32>()).prop_map(|(i, dl, ul)| {
            ControlMsg::X2SnStatusTransfer {
                imsi: i,
                dl_count: dl,
                ul_count: ul,
            }
        }),
        imsi.clone()
            .prop_map(|i| ControlMsg::X2UeContextRelease { imsi: i }),
        (imsi.clone(), arb_ip(), erab_teids).prop_map(|(i, a, ts)| {
            ControlMsg::BearerRelocationRequest {
                imsi: i,
                enb_addr: a,
                enb_teids: ts,
            }
        }),
        (
            imsi.clone(),
            prop::collection::vec(erab, 0..2),
            prop::collection::vec(any::<u8>().prop_map(Ebi), 0..3)
        )
            .prop_map(|(i, es, rel)| ControlMsg::BearerRelocationResponse {
                imsi: i,
                erabs: es,
                released: rel,
            }),
        (imsi.clone(), any::<i32>(), arb_ip(), any::<i32>()).prop_map(|(i, s, a, t)| {
            ControlMsg::RrcMeasurementReport {
                imsi: i,
                serving_rsrp_cdbm: s,
                target_radio: a,
                target_rsrp_cdbm: t,
            }
        }),
        (imsi.clone(), arb_ip()).prop_map(|(i, a)| ControlMsg::RrcHandoverCommand {
            imsi: i,
            target_radio: a,
        }),
        imsi.clone()
            .prop_map(|i| ControlMsg::RrcHandoverConfirm { imsi: i }),
    ];
    prop_oneof![arb_msg(), s1ap, gtpv2, diameter, rrc, handover].boxed()
}

proptest! {
    /// Control messages survive encode → packet → decode.
    #[test]
    fn control_roundtrip(msg in arb_msg(), src in arb_ip(), dst in arb_ip()) {
        let pkt = msg.into_packet(src, dst);
        let back = ControlMsg::from_packet(&pkt).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// GTP-U encapsulation round-trips any packet and always adds exactly
    /// the tunnel overhead.
    #[test]
    fn gtpu_roundtrip(inner in arb_packet(), teid in any::<u32>(), a in arb_ip(), b in arb_ip()) {
        let outer = gtpu::encapsulate(&inner, Teid(teid), a, b);
        prop_assert_eq!(outer.wire_size(), inner.wire_size() + 36);
        prop_assert_eq!(gtpu::peek_teid(&outer), Some(Teid(teid)));
        let (t, back) = gtpu::decapsulate(&outer).unwrap();
        prop_assert_eq!(t, Teid(teid));
        prop_assert_eq!(back.wire_size(), inner.wire_size());
        prop_assert_eq!(back.src, inner.src);
        prop_assert_eq!(back.dst, inner.dst);
        prop_assert_eq!(back.src_port, inner.src_port);
        prop_assert_eq!(back.dst_port, inner.dst_port);
        prop_assert_eq!(back.protocol, inner.protocol);
        prop_assert_eq!(back.tos, inner.tos);
        prop_assert_eq!(back.payload, inner.payload);
        prop_assert_eq!(back.id, inner.id);
    }

    /// Double encapsulation (S1-in-S5) unwraps in order.
    #[test]
    fn gtpu_nesting(inner in arb_packet(), t1 in any::<u32>(), t2 in any::<u32>()) {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let once = gtpu::encapsulate(&inner, Teid(t1), a, a);
        let twice = gtpu::encapsulate(&once, Teid(t2), a, a);
        let (got2, mid) = gtpu::decapsulate(&twice).unwrap();
        let (got1, back) = gtpu::decapsulate(&mid).unwrap();
        prop_assert_eq!(got2, Teid(t2));
        prop_assert_eq!(got1, Teid(t1));
        prop_assert_eq!(back.wire_size(), inner.wire_size());
    }

    /// TFT matching is consistent with its filters: a packet matches the
    /// TFT iff it matches at least one filter.
    #[test]
    fn tft_matches_any(tft in arb_tft(), pkt in arb_packet()) {
        for dir in [Direction::Uplink, Direction::Downlink] {
            let whole = tft.matches(&pkt, dir);
            let any = tft.filters.iter().any(|f| f.matches(&pkt, dir));
            prop_assert_eq!(whole, any);
        }
    }

    /// A host filter built from the packet's own destination always
    /// matches uplink.
    #[test]
    fn tft_host_filter_matches_self(pkt in arb_packet()) {
        let f = PacketFilter::to_host(pkt.dst);
        prop_assert!(f.matches(&pkt, Direction::Uplink));
    }

    /// TFT wire length equals the sum of its parts.
    #[test]
    fn tft_wire_len(tft in arb_tft()) {
        let total: u32 = 1 + tft.filters.iter().map(|f| f.wire_len()).sum::<u32>();
        prop_assert_eq!(tft.wire_len(), total);
    }

    /// QCI table invariants hold for every byte value.
    #[test]
    fn qci_invariants(q in any::<u8>()) {
        let qci = Qci(q);
        prop_assert!((1..=9).contains(&qci.priority()));
        prop_assert!(qci.delay_budget_ms() >= 50);
        prop_assert!(qci.loss_rate() > 0.0 && qci.loss_rate() <= 1e-2);
    }

    /// Encoded wire size never falls below the calibrated spec (padding
    /// rounds up; unusually dense messages may legitimately exceed it).
    #[test]
    fn wire_size_at_least_spec(msg in arb_msg()) {
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        prop_assert!(pkt.wire_size() >= msg.wire_size_spec());
    }
    /// Encode → decode → re-encode is a byte-level fixed point for every
    /// message variant: the second encoding's payload, framing and padded
    /// wire size are identical to the first. Covers GTPv2-C, S1AP/SCTP,
    /// Diameter, OpenFlow and RRC.
    #[test]
    fn encode_decode_encode_identity(msg in arb_msg_any(), src in arb_ip(), dst in arb_ip()) {
        let first = msg.into_packet(src, dst);
        let decoded = ControlMsg::from_packet(&first).unwrap();
        prop_assert_eq!(&decoded, &msg);
        let second = decoded.into_packet(src, dst);
        prop_assert_eq!(&second.payload, &first.payload);
        prop_assert_eq!(second.wire_size(), first.wire_size());
        prop_assert_eq!(second.protocol, first.protocol);
        prop_assert_eq!(second.src_port, first.src_port);
        prop_assert_eq!(second.dst_port, first.dst_port);
    }

    /// Framing follows the protocol family: GTPv2-C rides UDP/2123,
    /// S1AP rides SCTP/36412, Diameter TCP/3868, OpenFlow TCP/6633.
    #[test]
    fn framing_matches_protocol_family(msg in arb_msg_any(), src in arb_ip(), dst in arb_ip()) {
        use acacia_lte::wire::Protocol;
        let pkt = msg.into_packet(src, dst);
        let (want_proto, want_port) = match msg.protocol() {
            Protocol::S1apSctp => (132u8, 36412u16),
            Protocol::X2Sctp => (132, 36422),
            Protocol::Gtpv2 => (17, 2123),
            Protocol::OpenFlow => (6, 6633),
            Protocol::Diameter => (6, 3868),
            Protocol::Rrc => (17, 36413),
        };
        prop_assert_eq!(pkt.protocol, want_proto);
        prop_assert_eq!(pkt.src_port, want_port);
        prop_assert_eq!(pkt.dst_port, want_port);
        // Padding never shrinks below the calibrated per-message size.
        prop_assert!(pkt.wire_size() >= msg.wire_size_spec());
    }

    /// Malformed input is rejected, not mis-decoded: any strict prefix of
    /// an encoded control message fails to decode (the top level is a
    /// JSON object, so truncation always breaks it), as does trailing
    /// garbage.
    #[test]
    fn malformed_control_rejected(
        msg in arb_msg_any(),
        cut in 0usize..1000,
        // Non-whitespace garbage: trailing whitespace is legal JSON.
        junk in prop::sample::select(vec![b'x', b'{', b'}', b'0', 0u8, 0xFFu8]),
    ) {
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        let len = pkt.payload.len();
        prop_assume!(len > 0);
        let cut = cut % len; // strict prefix: 0..len-1 bytes
        prop_assert!(ControlMsg::decode(&pkt.payload[..cut]).is_none());
        let mut extended = pkt.payload.to_vec();
        extended.push(junk);
        prop_assert!(ControlMsg::decode(&extended).is_none());
    }

    /// TFT encoding round-trips through the wire representation exactly
    /// (as carried inside RRC reconfiguration / E-RAB setup messages).
    #[test]
    fn tft_roundtrip(tft in arb_tft()) {
        let msg = ControlMsg::RrcReconfiguration {
            ebi: Ebi(5),
            qci: Qci(7),
            tft: tft.clone(),
            ue_addr: None,
        };
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        match ControlMsg::from_packet(&pkt).unwrap() {
            ControlMsg::RrcReconfiguration { tft: back, .. } => prop_assert_eq!(back, tft),
            other => prop_assert!(false, "wrong variant {:?}", other),
        }
    }

    /// Non-GTP-U traffic is never mistaken for a tunnel packet, and a
    /// truncated GTP-U header is rejected.
    #[test]
    fn gtpu_rejects_non_tunnel(pkt in arb_packet()) {
        prop_assume!(!(pkt.protocol == 17 && pkt.dst_port == 2152));
        prop_assert!(gtpu::decapsulate(&pkt).is_none());
        prop_assert!(gtpu::peek_teid(&pkt).is_none());
        prop_assert!(!gtpu::is_gtpu(&pkt));
    }

    /// Truncating a tunnel packet's payload below the GTP-U header (or
    /// into the inner packet) never yields a decoded inner packet.
    #[test]
    fn gtpu_rejects_truncated(inner in arb_packet(), teid in any::<u32>(), cut in 0usize..1000) {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let mut outer = gtpu::encapsulate(&inner, Teid(teid), a, a);
        let full = outer.payload.len();
        // Cutting into the inner serialization (8-byte GTP header +
        // 28-byte inner header minimum) must fail cleanly.
        let cut = cut % (8 + 28).min(full);
        outer.payload = outer.payload.slice(..cut);
        prop_assert!(gtpu::decapsulate(&outer).is_none());
    }
}
