//! Property-based tests for the LTE wire formats, tunnelling and TFTs.

use acacia_lte::gtpu;
use acacia_lte::ids::{Ebi, Imsi, Teid};
use acacia_lte::qci::Qci;
use acacia_lte::tft::{Direction, PacketFilter, Tft};
use acacia_lte::wire::{ControlMsg, ErabSetup, FlowActionSpec, FlowMatchSpec, PolicyRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::time::Instant;
use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> BoxedStrategy<Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from).boxed()
}

fn arb_packet() -> BoxedStrategy<Packet> {
    (
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        any::<u16>(),
        prop::sample::select(vec![1u8, 6, 17, 132]),
        any::<u8>(),
        0u32..100_000,
        prop::collection::vec(any::<u8>(), 0..128),
        any::<u64>(),
    )
        .prop_map(|(src, dst, sp, dp, proto, tos, app_len, payload, id)| Packet {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            protocol: proto,
            tos,
            payload: Bytes::from(payload),
            app_len,
            id,
            created: Instant::from_nanos(42),
        })
        .boxed()
}

fn arb_tft() -> BoxedStrategy<Tft> {
    prop::collection::vec(
        (
            any::<u8>(),
            prop::sample::select(vec![
                Direction::Uplink,
                Direction::Downlink,
                Direction::Bidirectional,
            ]),
            prop::option::of((arb_ip(), 0u8..=32)),
            prop::option::of((any::<u16>(), any::<u16>())),
            prop::option::of(prop::sample::select(vec![1u8, 6, 17])),
        )
            .prop_map(|(precedence, direction, remote_addr, ports, protocol)| PacketFilter {
                precedence,
                direction,
                remote_addr,
                remote_port: ports.map(|(a, b)| (a.min(b), a.max(b))),
                protocol,
            }),
        0..4,
    )
    .prop_map(|filters| Tft { filters })
    .boxed()
}

fn arb_msg() -> BoxedStrategy<ControlMsg> {
    let imsi = any::<u64>().prop_map(Imsi).boxed();
    let erab = (any::<u8>(), 1u8..10, any::<u32>(), arb_ip(), arb_tft()).prop_map(
        |(ebi, qci, teid, addr, tft)| ErabSetup {
            ebi: Ebi(ebi),
            qci: Qci(qci),
            gw_teid: Teid(teid),
            gw_addr: addr,
            tft,
        },
    ).boxed();
    prop_oneof![
        imsi.clone().prop_map(|i| ControlMsg::InitialUeAttach { imsi: i }),
        imsi.clone()
            .prop_map(|i| ControlMsg::UeContextReleaseRequest { imsi: i }),
        (imsi.clone(), erab.clone())
            .prop_map(|(i, e)| ControlMsg::ErabSetupRequest { imsi: i, erab: e }),
        (imsi.clone(), prop::collection::vec(erab, 0..2))
            .prop_map(|(i, es)| ControlMsg::InitialContextSetupRequest { imsi: i, erabs: es }),
        (imsi.clone(), any::<u32>(), arb_ip()).prop_map(|(i, t, a)| {
            ControlMsg::ModifyBearerRequest {
                imsi: i,
                enb_teid: Teid(t),
                enb_addr: a,
            }
        }),
        (any::<u32>(), arb_ip(), arb_ip(), any::<u16>(), 1u8..10, any::<bool>()).prop_map(
            |(sid, ue, srv, port, qci, install)| ControlMsg::RxAuthRequest {
                rule: PolicyRule {
                    service_id: sid,
                    ue_addr: ue,
                    server_addr: srv,
                    server_port: port,
                    qci: Qci(qci),
                    install,
                }
            }
        ),
        (any::<bool>(), any::<u16>(), prop::option::of(any::<u32>()), prop::option::of(arb_ip()))
            .prop_map(|(add, prio, teid, dst)| ControlMsg::FlowMod {
                add,
                priority: prio,
                mtch: FlowMatchSpec {
                    teid: teid.map(Teid),
                    dst,
                    src: None,
                },
                actions: vec![FlowActionSpec::GtpDecap, FlowActionSpec::Output { port: 2 }],
            }),
    ]
    .boxed()
}

proptest! {
    /// Control messages survive encode → packet → decode.
    #[test]
    fn control_roundtrip(msg in arb_msg(), src in arb_ip(), dst in arb_ip()) {
        let pkt = msg.into_packet(src, dst);
        let back = ControlMsg::from_packet(&pkt).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// GTP-U encapsulation round-trips any packet and always adds exactly
    /// the tunnel overhead.
    #[test]
    fn gtpu_roundtrip(inner in arb_packet(), teid in any::<u32>(), a in arb_ip(), b in arb_ip()) {
        let outer = gtpu::encapsulate(&inner, Teid(teid), a, b);
        prop_assert_eq!(outer.wire_size(), inner.wire_size() + 36);
        prop_assert_eq!(gtpu::peek_teid(&outer), Some(Teid(teid)));
        let (t, back) = gtpu::decapsulate(&outer).unwrap();
        prop_assert_eq!(t, Teid(teid));
        prop_assert_eq!(back.wire_size(), inner.wire_size());
        prop_assert_eq!(back.src, inner.src);
        prop_assert_eq!(back.dst, inner.dst);
        prop_assert_eq!(back.src_port, inner.src_port);
        prop_assert_eq!(back.dst_port, inner.dst_port);
        prop_assert_eq!(back.protocol, inner.protocol);
        prop_assert_eq!(back.tos, inner.tos);
        prop_assert_eq!(back.payload, inner.payload);
        prop_assert_eq!(back.id, inner.id);
    }

    /// Double encapsulation (S1-in-S5) unwraps in order.
    #[test]
    fn gtpu_nesting(inner in arb_packet(), t1 in any::<u32>(), t2 in any::<u32>()) {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let once = gtpu::encapsulate(&inner, Teid(t1), a, a);
        let twice = gtpu::encapsulate(&once, Teid(t2), a, a);
        let (got2, mid) = gtpu::decapsulate(&twice).unwrap();
        let (got1, back) = gtpu::decapsulate(&mid).unwrap();
        prop_assert_eq!(got2, Teid(t2));
        prop_assert_eq!(got1, Teid(t1));
        prop_assert_eq!(back.wire_size(), inner.wire_size());
    }

    /// TFT matching is consistent with its filters: a packet matches the
    /// TFT iff it matches at least one filter.
    #[test]
    fn tft_matches_any(tft in arb_tft(), pkt in arb_packet()) {
        for dir in [Direction::Uplink, Direction::Downlink] {
            let whole = tft.matches(&pkt, dir);
            let any = tft.filters.iter().any(|f| f.matches(&pkt, dir));
            prop_assert_eq!(whole, any);
        }
    }

    /// A host filter built from the packet's own destination always
    /// matches uplink.
    #[test]
    fn tft_host_filter_matches_self(pkt in arb_packet()) {
        let f = PacketFilter::to_host(pkt.dst);
        prop_assert!(f.matches(&pkt, Direction::Uplink));
    }

    /// TFT wire length equals the sum of its parts.
    #[test]
    fn tft_wire_len(tft in arb_tft()) {
        let total: u32 = 1 + tft.filters.iter().map(|f| f.wire_len()).sum::<u32>();
        prop_assert_eq!(tft.wire_len(), total);
    }

    /// QCI table invariants hold for every byte value.
    #[test]
    fn qci_invariants(q in any::<u8>()) {
        let qci = Qci(q);
        prop_assert!((1..=9).contains(&qci.priority()));
        prop_assert!(qci.delay_budget_ms() >= 50);
        prop_assert!(qci.loss_rate() > 0.0 && qci.loss_rate() <= 1e-2);
    }

    /// Encoded wire size never falls below the calibrated spec (padding
    /// rounds up; unusually dense messages may legitimately exceed it).
    #[test]
    fn wire_size_at_least_spec(msg in arb_msg()) {
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED);
        prop_assert!(pkt.wire_size() >= msg.wire_size_spec());
    }
}
