//! EPC control-plane entities: MME, HSS, PCRF and the combined split-GW
//! controller (SGW-C + PGW-C + PCEF) that programs the GW-U data planes
//! over OpenFlow.
//!
//! The GW-C "decouples the 3GPP control plane and the OpenFlow control
//! plane" (paper §5.4): it speaks GTPv2-C with the MME on one side and
//! pushes flow rules to the user-plane switches on the other.

use crate::ids::{Allocator, Ebi, Imsi, Teid};
use crate::log::MsgLog;
use crate::qci::Qci;
use crate::tft::{PacketFilter, Tft};
use crate::wire::{ControlMsg, ErabSetup, FlowActionSpec, FlowMatchSpec, PolicyRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// MME port map.
pub mod mme_port {
    use super::PortId;
    /// S1AP to the first eNB (additional eNBs get ports from
    /// [`super::Mme::register_enb`], starting right after `HSS`).
    pub const ENB: PortId = 0;
    /// GTP-C to the GW-C.
    pub const GWC: PortId = 1;
    /// S6a to the HSS.
    pub const HSS: PortId = 2;
}

/// Per-UE attachment state at the MME.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmeUeState {
    /// Nothing yet.
    Unknown,
    /// Waiting for HSS authentication.
    AuthWait,
    /// Waiting for the GW-C session.
    SessionWait,
    /// Waiting for the eNB context setup.
    CtxSetupWait,
    /// Waiting for Modify Bearer completion.
    ModifyWait,
    /// Fully attached and RRC-connected.
    Attached,
    /// Release in progress.
    ReleaseWait,
    /// Attached but RRC-idle.
    Idle,
    /// Service request in progress.
    ServiceWait,
}

#[derive(Debug, Clone)]
struct MmeUeCtx {
    state: MmeUeState,
    ue_addr: Option<Ipv4Addr>,
    default_erab: Option<ErabSetup>,
    enb_teid: Option<Teid>,
    /// The eNB currently serving this UE (updated by Path Switch and by
    /// the arrival port of UE-originated S1AP messages).
    enb_addr: Ipv4Addr,
    /// Last Path Switch transaction handled, keyed by the requesting eNB
    /// (transaction ids are per-eNB counters).
    last_ps: Option<(Ipv4Addr, u32)>,
    /// Cached Path Switch Request Ack payload: a retransmitted request
    /// whose answer was lost is answered from here instead of re-running
    /// the bearer relocation at the GW-C.
    ps_ack: Option<Vec<ErabSetup>>,
}

/// The Mobility Management Entity.
pub struct Mme {
    /// Own address.
    pub addr: Ipv4Addr,
    /// Registered eNBs: (S1 address, MME port), index 0 = the first eNB.
    enbs: Vec<(Ipv4Addr, PortId)>,
    gwc_addr: Ipv4Addr,
    hss_addr: Ipv4Addr,
    ues: BTreeMap<Imsi, MmeUeCtx>,
    log: MsgLog,
}

impl Mme {
    /// New MME with one eNB wired on [`mme_port::ENB`].
    pub fn new(
        addr: Ipv4Addr,
        enb_addr: Ipv4Addr,
        gwc_addr: Ipv4Addr,
        hss_addr: Ipv4Addr,
        log: MsgLog,
    ) -> Mme {
        Mme {
            addr,
            enbs: vec![(enb_addr, mme_port::ENB)],
            gwc_addr,
            hss_addr,
            ues: BTreeMap::new(),
            log,
        }
    }

    /// Register an additional eNB; returns the MME port its S1AP link must
    /// be connected to.
    pub fn register_enb(&mut self, enb_addr: Ipv4Addr) -> PortId {
        let port = mme_port::HSS + self.enbs.len();
        self.enbs.push((enb_addr, port));
        port
    }

    /// Attachment state of a UE.
    pub fn ue_state(&self, imsi: Imsi) -> MmeUeState {
        self.ues
            .get(&imsi)
            .map(|c| c.state.clone())
            .unwrap_or(MmeUeState::Unknown)
    }

    /// The eNB currently serving a UE, if the MME has heard of it.
    pub fn serving_enb(&self, imsi: Imsi) -> Option<Ipv4Addr> {
        self.ues.get(&imsi).map(|c| c.enb_addr)
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, port: PortId, dst: Ipv4Addr, msg: ControlMsg) {
        self.log.record(ctx.now(), &msg);
        ctx.send(port, msg.into_packet(self.addr, dst));
    }

    /// (port, address) of the eNB serving `imsi` (first eNB by default).
    fn enb_route(&self, imsi: Imsi) -> (PortId, Ipv4Addr) {
        let addr = self
            .ues
            .get(&imsi)
            .map(|c| c.enb_addr)
            .unwrap_or(self.enbs[0].0);
        self.enbs
            .iter()
            .find(|&&(a, _)| a == addr)
            .map(|&(a, p)| (p, a))
            .unwrap_or((self.enbs[0].1, self.enbs[0].0))
    }

    fn ctx_mut(&mut self, imsi: Imsi) -> &mut MmeUeCtx {
        let default_enb = self.enbs[0].0;
        self.ues.entry(imsi).or_insert(MmeUeCtx {
            state: MmeUeState::Unknown,
            ue_addr: None,
            default_erab: None,
            enb_teid: None,
            enb_addr: default_enb,
            last_ps: None,
            ps_ack: None,
        })
    }

    /// A UE-originated S1AP message arrived on `port`: whichever eNB owns
    /// that port is the one serving the UE now. Keeps `enb_addr` honest
    /// when the UE re-entered through a cell the MME never heard a Path
    /// Switch from (e.g. the core-detour fallback after a failed one).
    fn note_serving_enb(&mut self, imsi: Imsi, port: PortId) {
        let Some(&(addr, _)) = self.enbs.iter().find(|&&(_, p)| p == port) else {
            return;
        };
        self.ctx_mut(imsi).enb_addr = addr;
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, msg: ControlMsg) {
        use ControlMsg::*;
        match msg {
            InitialUeAttach { imsi } => {
                self.note_serving_enb(imsi, in_port);
                self.ctx_mut(imsi).state = MmeUeState::AuthWait;
                let m = S6aAuthInfoRequest { imsi };
                let hss = self.hss_addr;
                self.send(ctx, mme_port::HSS, hss, m);
            }
            S6aAuthInfoAnswer { imsi, ok } => {
                if !ok {
                    self.ctx_mut(imsi).state = MmeUeState::Unknown;
                    return;
                }
                self.ctx_mut(imsi).state = MmeUeState::SessionWait;
                let gwc = self.gwc_addr;
                self.send(ctx, mme_port::GWC, gwc, CreateSessionRequest { imsi });
            }
            CreateSessionResponse {
                imsi,
                ue_addr,
                erab,
            } => {
                {
                    let c = self.ctx_mut(imsi);
                    c.ue_addr = Some(ue_addr);
                    c.default_erab = Some(erab.clone());
                    c.state = MmeUeState::CtxSetupWait;
                }
                let (port, enb) = self.enb_route(imsi);
                self.send(
                    ctx,
                    port,
                    enb,
                    InitialContextSetupRequest {
                        imsi,
                        erabs: vec![erab],
                    },
                );
            }
            InitialUeServiceRequest { imsi } => {
                self.note_serving_enb(imsi, in_port);
                // A service request for a UE the MME still believes
                // attached means a failure path (the path-switch
                // fallback) released the radio context unilaterally.
                // Flush the stale core flows before rebuilding; the
                // flush is ordered before the Modify Bearer that the
                // restore sends on the same GTP-C link, so the rebuilt
                // rules can never be torn down by it.
                if self.ctx_mut(imsi).state == MmeUeState::Attached {
                    let gwc = self.gwc_addr;
                    self.send(ctx, mme_port::GWC, gwc, DeleteBearerCommand { imsi });
                }
                self.ctx_mut(imsi).state = MmeUeState::ServiceWait;
                let (port, enb) = self.enb_route(imsi);
                // Empty E-RAB list = restore stored bearers at the eNB.
                self.send(
                    ctx,
                    port,
                    enb,
                    InitialContextSetupRequest {
                        imsi,
                        erabs: vec![],
                    },
                );
            }
            InitialContextSetupResponse { imsi, enb_teids } => {
                let default_teid = enb_teids
                    .iter()
                    .find(|(ebi, _)| *ebi == Ebi::DEFAULT)
                    .map(|&(_, t)| t);
                {
                    let c = self.ctx_mut(imsi);
                    c.enb_teid = default_teid.or(c.enb_teid);
                    c.state = MmeUeState::ModifyWait;
                }
                let Some(teid) = self.ues[&imsi].enb_teid else {
                    // The eNB had no stored bearer to restore (the UE
                    // re-entered through a cell that never held its
                    // context): rebuild the default E-RAB from the session
                    // record instead of wedging in ServiceWait.
                    if let Some(erab) = self.ues[&imsi].default_erab.clone() {
                        self.ctx_mut(imsi).state = MmeUeState::ServiceWait;
                        let (port, enb) = self.enb_route(imsi);
                        self.send(
                            ctx,
                            port,
                            enb,
                            InitialContextSetupRequest {
                                imsi,
                                erabs: vec![erab],
                            },
                        );
                    }
                    return;
                };
                let gwc = self.gwc_addr;
                let (_, enb) = self.enb_route(imsi);
                self.send(
                    ctx,
                    mme_port::GWC,
                    gwc,
                    ModifyBearerRequest {
                        imsi,
                        enb_teid: teid,
                        enb_addr: enb,
                    },
                );
            }
            ModifyBearerResponse { imsi } => {
                let ue_addr = {
                    let c = self.ctx_mut(imsi);
                    let addr = if c.state == MmeUeState::ServiceWait
                        || c.state == MmeUeState::ModifyWait && c.ue_addr.is_none()
                    {
                        None
                    } else {
                        c.ue_addr
                    };
                    c.state = MmeUeState::Attached;
                    addr
                };
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, DownlinkNasAccept { imsi, ue_addr });
            }
            // Dedicated bearer: GW-C initiated.
            CreateBearerRequest { imsi, erab } => {
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, ErabSetupRequest { imsi, erab });
            }
            ErabSetupResponse {
                imsi,
                ebi,
                enb_teid,
            } => {
                let gwc = self.gwc_addr;
                let (_, enb) = self.enb_route(imsi);
                self.send(
                    ctx,
                    mme_port::GWC,
                    gwc,
                    CreateBearerResponse {
                        imsi,
                        ebi,
                        enb_teid,
                        enb_addr: enb,
                    },
                );
            }
            DeleteBearerRequest { imsi, ebi } => {
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, ErabReleaseCommand { imsi, ebi });
            }
            ErabReleaseResponse { imsi, ebi } => {
                let gwc = self.gwc_addr;
                self.send(ctx, mme_port::GWC, gwc, DeleteBearerResponse { imsi, ebi });
            }
            // Idle release.
            UeContextReleaseRequest { imsi } => {
                self.ctx_mut(imsi).state = MmeUeState::ReleaseWait;
                let gwc = self.gwc_addr;
                self.send(
                    ctx,
                    mme_port::GWC,
                    gwc,
                    ReleaseAccessBearersRequest { imsi },
                );
            }
            ReleaseAccessBearersResponse { imsi } => {
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, UeContextReleaseCommand { imsi });
            }
            UeContextReleaseComplete { imsi } => {
                self.ctx_mut(imsi).state = MmeUeState::Idle;
            }
            // Downlink data pending for an idle UE: page it.
            DownlinkDataNotification { imsi } if self.ctx_mut(imsi).state == MmeUeState::Idle => {
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, Paging { imsi });
            }
            // X2 handover: the target eNB owns the UE's S1 legs now.
            PathSwitchRequest {
                imsi,
                enb_addr,
                erabs,
                txid,
            } => {
                // Duplicate / retransmitted request: never re-run the
                // bearer relocation — either replay the cached Ack (its
                // first copy was lost) or let the in-flight one answer.
                if self.ctx_mut(imsi).last_ps == Some((enb_addr, txid)) {
                    if let Some(cached) = self.ctx_mut(imsi).ps_ack.clone() {
                        let (port, enb) = self.enb_route(imsi);
                        self.send(
                            ctx,
                            port,
                            enb,
                            PathSwitchRequestAck {
                                imsi,
                                erabs: cached,
                            },
                        );
                    }
                    return;
                }
                let default_teid = erabs
                    .iter()
                    .find(|(ebi, _)| *ebi == Ebi::DEFAULT)
                    .map(|&(_, t)| t);
                {
                    let c = self.ctx_mut(imsi);
                    c.enb_addr = enb_addr;
                    c.enb_teid = default_teid.or(c.enb_teid);
                    c.last_ps = Some((enb_addr, txid));
                    c.ps_ack = None;
                }
                let gwc = self.gwc_addr;
                self.send(
                    ctx,
                    mme_port::GWC,
                    gwc,
                    BearerRelocationRequest {
                        imsi,
                        enb_addr,
                        enb_teids: erabs,
                    },
                );
            }
            BearerRelocationResponse {
                imsi,
                erabs,
                released,
            } => {
                self.ctx_mut(imsi).ps_ack = Some(erabs.clone());
                let (port, enb) = self.enb_route(imsi);
                self.send(ctx, port, enb, PathSwitchRequestAck { imsi, erabs });
                // Bearers the target cell cannot serve are released via the
                // standard E-RAB release procedure.
                for ebi in released {
                    let (port, enb) = self.enb_route(imsi);
                    self.send(ctx, port, enb, ErabReleaseCommand { imsi, ebi });
                }
            }
            _ => {}
        }
    }
}

impl Node for Mme {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        if let Some(msg) = ControlMsg::from_packet(&pkt) {
            self.handle(ctx, port, msg);
        }
    }
}

/// The Home Subscriber Server: a subscriber database answering S6a
/// authentication-information requests.
pub struct Hss {
    /// Own address.
    pub addr: Ipv4Addr,
    subscribers: Vec<Imsi>,
    log: MsgLog,
    /// Requests answered.
    pub answered: u64,
}

impl Hss {
    /// New HSS with a subscriber list.
    pub fn new(addr: Ipv4Addr, subscribers: Vec<Imsi>, log: MsgLog) -> Hss {
        Hss {
            addr,
            subscribers,
            log,
            answered: 0,
        }
    }

    /// Provision another subscriber.
    pub fn add_subscriber(&mut self, imsi: Imsi) {
        self.subscribers.push(imsi);
    }
}

impl Node for Hss {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        let Some(ControlMsg::S6aAuthInfoRequest { imsi }) = ControlMsg::from_packet(&pkt) else {
            return;
        };
        let ok = self.subscribers.contains(&imsi);
        self.answered += 1;
        let msg = ControlMsg::S6aAuthInfoAnswer { imsi, ok };
        self.log.record(ctx.now(), &msg);
        ctx.send(port, msg.into_packet(self.addr, pkt.src));
    }
}

/// PCRF port map.
pub mod pcrf_port {
    use super::PortId;
    /// Gx toward the PCEF (GW-C).
    pub const GWC: PortId = 0;
    /// Rx toward application functions (ACACIA's MRS).
    pub const AF: PortId = 1;
}

/// The Policy and Charging Rules Function: turns Rx requests from
/// application functions into Gx rule pushes toward the PCEF.
pub struct Pcrf {
    /// Own address.
    pub addr: Ipv4Addr,
    gwc_addr: Ipv4Addr,
    /// service_id → AF address awaiting an answer.
    pending: BTreeMap<u32, Ipv4Addr>,
    log: MsgLog,
    /// Rules pushed so far.
    pub rules_pushed: u64,
}

impl Pcrf {
    /// New PCRF.
    pub fn new(addr: Ipv4Addr, gwc_addr: Ipv4Addr, log: MsgLog) -> Pcrf {
        Pcrf {
            addr,
            gwc_addr,
            pending: BTreeMap::new(),
            log,
            rules_pushed: 0,
        }
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, port: PortId, dst: Ipv4Addr, msg: ControlMsg) {
        self.log.record(ctx.now(), &msg);
        ctx.send(port, msg.into_packet(self.addr, dst));
    }
}

impl Node for Pcrf {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        match ControlMsg::from_packet(&pkt) {
            Some(ControlMsg::RxAuthRequest { rule }) => {
                self.pending.insert(rule.service_id, pkt.src);
                self.rules_pushed += 1;
                let gwc = self.gwc_addr;
                self.send(
                    ctx,
                    pcrf_port::GWC,
                    gwc,
                    ControlMsg::GxReauthRequest { rule },
                );
            }
            Some(ControlMsg::GxReauthAnswer { service_id, ok }) => {
                if let Some(af) = self.pending.remove(&service_id) {
                    self.send(
                        ctx,
                        pcrf_port::AF,
                        af,
                        ControlMsg::RxAuthAnswer { service_id, ok },
                    );
                }
            }
            _ => {}
        }
    }
}

/// GW-C port map.
pub mod gwc_port {
    use super::PortId;
    /// GTP-C to the MME.
    pub const MME: PortId = 0;
    /// Gx to the PCRF.
    pub const PCRF: PortId = 1;
    /// OpenFlow to the core SGW-U.
    pub const SGW_U: PortId = 2;
    /// OpenFlow to the core PGW-U.
    pub const PGW_U: PortId = 3;
    /// OpenFlow to the first local (MEC) GW-U.
    pub const LOCAL_GWU: PortId = 4;
    /// First local GW-U control port; a city-scale topology wires one
    /// local GW-U per region at `LOCAL_GWU_BASE + region_index`.
    pub const LOCAL_GWU_BASE: PortId = 4;
}

/// One local (MEC) combined S/PGW-U site the GW-C programs.
///
/// A single-site topology has exactly one of these; a city-scale sharded
/// topology carries one per region so every region's dedicated bearers
/// anchor on a gateway in that region.
#[derive(Debug, Clone)]
pub struct LocalGw {
    /// Tunnel address of this local GW-U.
    pub addr: Ipv4Addr,
    /// GW-C control port wired to this GW-U
    /// (`gwc_port::LOCAL_GWU_BASE + site_index`).
    pub ctrl_port: PortId,
    /// GW-U output port toward the eNB (default when no override).
    pub port_enb: usize,
    /// GW-U output port toward its MEC server(s).
    pub port_mec: usize,
    /// Per-eNB output port overrides (multi-cell MEC sites).
    pub enb_ports: Vec<(Ipv4Addr, usize)>,
    /// eNBs with a direct path to this GW-U (MEC-equipped cells);
    /// empty = every eNB. Dedicated bearers can only re-anchor onto these.
    pub enbs: Vec<Ipv4Addr>,
    /// MEC server addresses anchored behind this GW-U.
    pub servers: Vec<Ipv4Addr>,
}

impl LocalGw {
    /// Output port toward `enb`.
    pub fn port_for(&self, enb: Ipv4Addr) -> usize {
        self.enb_ports
            .iter()
            .find(|&&(a, _)| a == enb)
            .map(|&(_, p)| p)
            .unwrap_or(self.port_enb)
    }

    /// Does `enb` have a direct path to this GW-U?
    pub fn serves_enb(&self, enb: Ipv4Addr) -> bool {
        self.enbs.is_empty() || self.enbs.contains(&enb)
    }
}

/// Static data-plane topology the GW-C programs against.
#[derive(Debug, Clone)]
pub struct GwTopology {
    /// Core SGW-U tunnel address.
    pub sgw_u: Ipv4Addr,
    /// Core PGW-U tunnel address.
    pub pgw_u: Ipv4Addr,
    /// SGW-U port toward the eNB.
    pub sgw_port_enb: usize,
    /// SGW-U port toward the PGW-U.
    pub sgw_port_pgw: usize,
    /// PGW-U port toward the SGW-U.
    pub pgw_port_sgw: usize,
    /// PGW-U port toward the Internet.
    pub pgw_port_inet: usize,
    /// Local (MEC) GW-U sites, one per MEC-equipped region.
    pub locals: Vec<LocalGw>,
    /// Base address for UE IP assignment (host part increments).
    pub ue_ip_base: Ipv4Addr,
    /// Per-eNB SGW-U output port overrides for multi-cell topologies
    /// (empty = every eNB behind `sgw_port_enb`).
    pub sgw_enb_ports: Vec<(Ipv4Addr, usize)>,
}

impl GwTopology {
    /// SGW-U output port toward `enb`.
    pub fn sgw_port_for(&self, enb: Ipv4Addr) -> usize {
        self.sgw_enb_ports
            .iter()
            .find(|&&(a, _)| a == enb)
            .map(|&(_, p)| p)
            .unwrap_or(self.sgw_port_enb)
    }

    /// The local GW-U site anchoring `server`, if any.
    pub fn local_for_server(&self, server: Ipv4Addr) -> Option<&LocalGw> {
        self.locals.iter().find(|g| g.servers.contains(&server))
    }
}

#[derive(Debug, Clone)]
struct Session {
    ue_addr: Ipv4Addr,
    teid_sgw_ul: Teid,
    teid_sgw_dl: Teid,
    teid_pgw_ul: Teid,
    enb_teid: Option<Teid>,
    enb_addr: Option<Ipv4Addr>,
    /// Dedicated bearers: ebi → (local UL teid, rule).
    dedicated: BTreeMap<u8, (Teid, PolicyRule)>,
    /// Pending dedicated-bearer activations: ebi → (rule, local teid).
    pending_dedicated: BTreeMap<u8, (PolicyRule, Teid)>,
}

/// The combined SGW-C + PGW-C (+ PCEF) controller.
pub struct GwControl {
    /// Own control address.
    pub addr: Ipv4Addr,
    topo: GwTopology,
    alloc: Allocator,
    sessions: BTreeMap<Imsi, Session>,
    next_ue_host: u32,
    log: MsgLog,
    /// Dedicated bearers activated.
    pub dedicated_active: u64,
    /// Dedicated bearers re-anchored onto a new cell's local GW-U.
    pub dedicated_reanchored: u64,
    /// Dedicated bearers torn down because the target cell has no MEC.
    pub dedicated_released: u64,
    /// GW-U failure notices processed.
    pub gwu_failure_notices: u64,
    /// Dedicated bearers flushed because their local GW-U died (a
    /// subset of `dedicated_released`).
    pub gwu_flush_released: u64,
    /// Dedicated-bearer installs NACKed because the anchoring GW-U has
    /// no path to the UE's serving eNB (cross-region failover target).
    pub dedicated_rejected_no_path: u64,
}

impl GwControl {
    /// New GW-C over the given data-plane topology.
    pub fn new(addr: Ipv4Addr, topo: GwTopology, log: MsgLog) -> GwControl {
        GwControl {
            addr,
            topo,
            alloc: Allocator::new(),
            sessions: BTreeMap::new(),
            next_ue_host: 1,
            log,
            dedicated_active: 0,
            dedicated_reanchored: 0,
            dedicated_released: 0,
            gwu_failure_notices: 0,
            gwu_flush_released: 0,
            dedicated_rejected_no_path: 0,
        }
    }

    /// The UE address assigned to `imsi`, if attached.
    pub fn ue_addr(&self, imsi: Imsi) -> Option<Ipv4Addr> {
        self.sessions.get(&imsi).map(|s| s.ue_addr)
    }

    /// Mutable access to the data-plane topology (used when servers are
    /// added after construction).
    pub fn topology_mut(&mut self) -> &mut GwTopology {
        &mut self.topo
    }

    /// Dedicated bearers currently installed across all sessions, counted
    /// from the session table itself. Conservation invariant:
    /// `dedicated_active == dedicated_live()` whenever no activation is
    /// mid-flight (the chaos/failover soaks assert this).
    pub fn dedicated_live(&self) -> u64 {
        self.sessions.values().map(|s| s.dedicated.len() as u64).sum()
    }

    /// Dedicated-bearer activations currently mid-flight (pending
    /// CreateBearerResponse).
    pub fn dedicated_pending(&self) -> u64 {
        self.sessions
            .values()
            .map(|s| s.pending_dedicated.len() as u64)
            .sum()
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, port: PortId, dst: Ipv4Addr, msg: ControlMsg) {
        self.log.record(ctx.now(), &msg);
        ctx.send(port, msg.into_packet(self.addr, dst));
    }

    fn flowmod(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        sw_addr: Ipv4Addr,
        add: bool,
        mtch: FlowMatchSpec,
        actions: Vec<FlowActionSpec>,
    ) {
        let msg = ControlMsg::FlowMod {
            add,
            priority: 100,
            mtch,
            actions,
        };
        self.send(ctx, port, sw_addr, msg);
    }

    fn alloc_ue_ip(&mut self) -> Ipv4Addr {
        let base = u32::from(self.topo.ue_ip_base);
        let ip = Ipv4Addr::from(base + self.next_ue_host);
        self.next_ue_host += 1;
        ip
    }

    /// Program the SGW-U legs (UL toward PGW, DL toward eNB). Used both at
    /// attach (Modify Bearer) and at service-request re-establishment.
    fn install_sgw_rules(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(s) = self.sessions.get(&imsi).cloned() else {
            return;
        };
        let (Some(enb_teid), Some(enb_addr)) = (s.enb_teid, s.enb_addr) else {
            return;
        };
        let topo = self.topo.clone();
        // UL: arriving tunnelled with teid_sgw_ul → re-tunnel to the PGW-U.
        self.flowmod(
            ctx,
            gwc_port::SGW_U,
            topo.sgw_u,
            true,
            FlowMatchSpec {
                teid: Some(s.teid_sgw_ul),
                dst: None,
                src: None,
            },
            vec![
                FlowActionSpec::GtpDecap,
                FlowActionSpec::GtpEncap {
                    peer: topo.pgw_u,
                    teid: s.teid_pgw_ul,
                },
                FlowActionSpec::Output {
                    port: topo.sgw_port_pgw,
                },
            ],
        );
        // DL: arriving tunnelled with teid_sgw_dl → re-tunnel to the eNB.
        self.flowmod(
            ctx,
            gwc_port::SGW_U,
            topo.sgw_u,
            true,
            FlowMatchSpec {
                teid: Some(s.teid_sgw_dl),
                dst: None,
                src: None,
            },
            vec![
                FlowActionSpec::GtpDecap,
                FlowActionSpec::GtpEncap {
                    peer: enb_addr,
                    teid: enb_teid,
                },
                FlowActionSpec::Output {
                    port: topo.sgw_port_for(enb_addr),
                },
            ],
        );
    }

    fn remove_sgw_rules(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(s) = self.sessions.get(&imsi).cloned() else {
            return;
        };
        let topo = self.topo.clone();
        for teid in [s.teid_sgw_ul, s.teid_sgw_dl] {
            self.flowmod(
                ctx,
                gwc_port::SGW_U,
                topo.sgw_u,
                false,
                FlowMatchSpec {
                    teid: Some(teid),
                    dst: None,
                    src: None,
                },
                vec![],
            );
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        use ControlMsg::*;
        match msg {
            CreateSessionRequest { imsi } => {
                let ue_addr = self.alloc_ue_ip();
                let session = Session {
                    ue_addr,
                    teid_sgw_ul: self.alloc.teid(),
                    teid_sgw_dl: self.alloc.teid(),
                    teid_pgw_ul: self.alloc.teid(),
                    enb_teid: None,
                    enb_addr: None,
                    dedicated: BTreeMap::new(),
                    pending_dedicated: BTreeMap::new(),
                };
                let topo = self.topo.clone();
                // PGW-U UL: decap to the Internet.
                self.flowmod(
                    ctx,
                    gwc_port::PGW_U,
                    topo.pgw_u,
                    true,
                    FlowMatchSpec {
                        teid: Some(session.teid_pgw_ul),
                        dst: None,
                        src: None,
                    },
                    vec![
                        FlowActionSpec::GtpDecap,
                        FlowActionSpec::Output {
                            port: topo.pgw_port_inet,
                        },
                    ],
                );
                // PGW-U DL: plain packets to the UE → tunnel to the SGW-U.
                self.flowmod(
                    ctx,
                    gwc_port::PGW_U,
                    topo.pgw_u,
                    true,
                    FlowMatchSpec {
                        teid: None,
                        dst: Some(ue_addr),
                        src: None,
                    },
                    vec![
                        // Downlink TFT: best-effort class; the encap
                        // copies the inner ToS onto the tunnel header.
                        FlowActionSpec::SetTos {
                            tos: Qci::DEFAULT_BEARER.tos(),
                        },
                        FlowActionSpec::GtpEncap {
                            peer: topo.sgw_u,
                            teid: session.teid_sgw_dl,
                        },
                        FlowActionSpec::Output {
                            port: topo.pgw_port_sgw,
                        },
                    ],
                );
                let erab = ErabSetup {
                    ebi: Ebi::DEFAULT,
                    qci: Qci::DEFAULT_BEARER,
                    gw_teid: session.teid_sgw_ul,
                    gw_addr: topo.sgw_u,
                    tft: Tft::new(),
                };
                self.sessions.insert(imsi, session);
                self.send(
                    ctx,
                    gwc_port::MME,
                    pkt_peer(ctx),
                    CreateSessionResponse {
                        imsi,
                        ue_addr,
                        erab,
                    },
                );
            }
            ModifyBearerRequest {
                imsi,
                enb_teid,
                enb_addr,
            } => {
                if let Some(s) = self.sessions.get_mut(&imsi) {
                    s.enb_teid = Some(enb_teid);
                    s.enb_addr = Some(enb_addr);
                }
                self.install_sgw_rules(ctx, imsi);
                self.send(
                    ctx,
                    gwc_port::MME,
                    pkt_peer(ctx),
                    ModifyBearerResponse { imsi },
                );
            }
            ReleaseAccessBearersRequest { imsi } => {
                self.remove_sgw_rules(ctx, imsi);
                self.send(
                    ctx,
                    gwc_port::MME,
                    pkt_peer(ctx),
                    ReleaseAccessBearersResponse { imsi },
                );
            }
            // SGW-U saw downlink data for a released session → page.
            DownlinkDataByTeid { teid } => {
                let Some((&imsi, _)) = self.sessions.iter().find(|(_, s)| s.teid_sgw_dl == teid)
                else {
                    return;
                };
                self.send(
                    ctx,
                    gwc_port::MME,
                    self.addr,
                    DownlinkDataNotification { imsi },
                );
            }
            // PCEF side: a policy rule arrives from the PCRF.
            GxReauthRequest { rule } => {
                let Some((&imsi, _)) = self
                    .sessions
                    .iter()
                    .find(|(_, s)| s.ue_addr == rule.ue_addr)
                else {
                    let sid = rule.service_id;
                    self.send(
                        ctx,
                        gwc_port::PCRF,
                        pkt_peer(ctx),
                        GxReauthAnswer {
                            service_id: sid,
                            ok: false,
                        },
                    );
                    return;
                };
                if rule.install {
                    // Idempotent re-request (e.g. the device manager
                    // re-confirming connectivity after a handover that
                    // kept the bearer): answer success without stacking a
                    // second bearer for the same service.
                    let already = {
                        let s = &self.sessions[&imsi];
                        s.dedicated
                            .values()
                            .any(|(_, r)| r.service_id == rule.service_id)
                            || s.pending_dedicated
                                .values()
                                .any(|(r, _)| r.service_id == rule.service_id)
                    };
                    if already {
                        let sid = rule.service_id;
                        self.send(
                            ctx,
                            gwc_port::PCRF,
                            pkt_peer(ctx),
                            GxReauthAnswer {
                                service_id: sid,
                                ok: true,
                            },
                        );
                        return;
                    }
                    let Some(gw_addr) =
                        self.topo.local_for_server(rule.server_addr).map(|g| g.addr)
                    else {
                        let sid = rule.service_id;
                        self.send(
                            ctx,
                            gwc_port::PCRF,
                            pkt_peer(ctx),
                            GxReauthAnswer {
                                service_id: sid,
                                ok: false,
                            },
                        );
                        return;
                    };
                    // A local anchor only works if that GW-U has a direct
                    // path to the UE's serving eNB. A failover target in
                    // a *different* region does not — NACK so the client
                    // rides the default bearer through the core instead
                    // of blackholing uplink on a half-built local leg.
                    let reachable = match self.sessions[&imsi].enb_addr {
                        Some(enb) => self
                            .topo
                            .local_for_server(rule.server_addr)
                            .is_some_and(|g| g.serves_enb(enb)),
                        None => true,
                    };
                    if !reachable {
                        self.dedicated_rejected_no_path += 1;
                        let sid = rule.service_id;
                        self.send(
                            ctx,
                            gwc_port::PCRF,
                            pkt_peer(ctx),
                            GxReauthAnswer {
                                service_id: sid,
                                ok: false,
                            },
                        );
                        return;
                    }
                    // Network-initiated dedicated bearer with the *local*
                    // GW-U as the F-TEID target (paper step 3).
                    let ebi = Ebi(6
                        + (self.sessions[&imsi].dedicated.len() as u8
                            + self.sessions[&imsi].pending_dedicated.len() as u8));
                    let teid_local_ul = self.alloc.teid();
                    let tft = Tft::single(if rule.server_port == 0 {
                        PacketFilter::to_host(rule.server_addr)
                    } else {
                        let mut f = PacketFilter::to_host(rule.server_addr);
                        f.remote_port = Some((rule.server_port, rule.server_port));
                        f
                    });
                    let erab = ErabSetup {
                        ebi,
                        qci: rule.qci,
                        gw_teid: teid_local_ul,
                        gw_addr,
                        tft,
                    };
                    self.sessions
                        .get_mut(&imsi)
                        .expect("session exists")
                        .pending_dedicated
                        .insert(ebi.0, (rule, teid_local_ul));
                    let mme = pkt_peer_or(ctx, self.addr);
                    let _ = mme;
                    self.send(
                        ctx,
                        gwc_port::MME,
                        self.addr, // dst resolved by port topology
                        CreateBearerRequest { imsi, erab },
                    );
                } else {
                    // Removal: find the bearer serving this service.
                    let Some((&ebi, _)) = self.sessions[&imsi]
                        .dedicated
                        .iter()
                        .find(|(_, (_, r))| r.service_id == rule.service_id)
                    else {
                        let sid = rule.service_id;
                        self.send(
                            ctx,
                            gwc_port::PCRF,
                            pkt_peer(ctx),
                            GxReauthAnswer {
                                service_id: sid,
                                ok: false,
                            },
                        );
                        return;
                    };
                    self.send(
                        ctx,
                        gwc_port::MME,
                        self.addr,
                        DeleteBearerRequest {
                            imsi,
                            ebi: Ebi(ebi),
                        },
                    );
                }
            }
            CreateBearerResponse {
                imsi,
                ebi,
                enb_teid,
                enb_addr,
            } => {
                let Some(session) = self.sessions.get_mut(&imsi) else {
                    return;
                };
                let Some((rule, teid_local_ul)) = session.pending_dedicated.remove(&ebi.0) else {
                    return;
                };
                let ue_addr = session.ue_addr;
                session
                    .dedicated
                    .insert(ebi.0, (teid_local_ul, rule.clone()));
                self.dedicated_active += 1;
                let gw = self
                    .topo
                    .local_for_server(rule.server_addr)
                    .expect("dedicated rule has an owning local GW-U")
                    .clone();
                // Local GW-U UL: tunnel from the eNB → decap to MEC.
                self.flowmod(
                    ctx,
                    gw.ctrl_port,
                    gw.addr,
                    true,
                    FlowMatchSpec {
                        teid: Some(teid_local_ul),
                        dst: None,
                        src: None,
                    },
                    vec![
                        FlowActionSpec::GtpDecap,
                        FlowActionSpec::Output { port: gw.port_mec },
                    ],
                );
                // Local GW-U DL: MEC server → tunnel to the eNB.
                self.flowmod(
                    ctx,
                    gw.ctrl_port,
                    gw.addr,
                    true,
                    FlowMatchSpec {
                        teid: None,
                        dst: Some(ue_addr),
                        src: None,
                    },
                    vec![
                        // Downlink TFT: dedicated-bearer QCI class.
                        FlowActionSpec::SetTos {
                            tos: rule.qci.tos(),
                        },
                        FlowActionSpec::GtpEncap {
                            peer: enb_addr,
                            teid: enb_teid,
                        },
                        FlowActionSpec::Output {
                            port: gw.port_for(enb_addr),
                        },
                    ],
                );
                let sid = rule.service_id;
                self.send(
                    ctx,
                    gwc_port::PCRF,
                    self.addr,
                    GxReauthAnswer {
                        service_id: sid,
                        ok: true,
                    },
                );
            }
            DeleteBearerResponse { imsi, ebi } => {
                let Some(session) = self.sessions.get_mut(&imsi) else {
                    return;
                };
                let Some((teid_local_ul, rule)) = session.dedicated.remove(&ebi.0) else {
                    return;
                };
                let ue_addr = session.ue_addr;
                let gw = self
                    .topo
                    .local_for_server(rule.server_addr)
                    .expect("dedicated rule has an owning local GW-U")
                    .clone();
                self.flowmod(
                    ctx,
                    gw.ctrl_port,
                    gw.addr,
                    false,
                    FlowMatchSpec {
                        teid: Some(teid_local_ul),
                        dst: None,
                        src: None,
                    },
                    vec![],
                );
                self.flowmod(
                    ctx,
                    gw.ctrl_port,
                    gw.addr,
                    false,
                    FlowMatchSpec {
                        teid: None,
                        dst: Some(ue_addr),
                        src: None,
                    },
                    vec![],
                );
                let sid = rule.service_id;
                self.send(
                    ctx,
                    gwc_port::PCRF,
                    self.addr,
                    GxReauthAnswer {
                        service_id: sid,
                        ok: true,
                    },
                );
            }
            // Failure-path flush (MME-initiated): the radio side already
            // dropped every bearer of this UE, so tear the dedicated
            // flows down without the per-bearer E-RAB handshake and
            // release the S1-U legs — downlink arriving before the
            // restore's Modify Bearer buffers at the SGW-U instead of
            // chasing the dead eNB context, and MEC-server replies fall
            // through to the core-detour route.
            DeleteBearerCommand { imsi } => {
                let Some(s) = self.sessions.get_mut(&imsi) else {
                    return;
                };
                let ue_addr = s.ue_addr;
                let dedicated: Vec<(u8, Teid, PolicyRule)> = s
                    .dedicated
                    .iter()
                    .map(|(&ebi, (t, r))| (ebi, *t, r.clone()))
                    .collect();
                s.dedicated.clear();
                s.pending_dedicated.clear();
                // Per-TEID removals in EBI order, each to its owning GW-U,
                // then one catch-all dst=UE removal per GW-U touched (in
                // first-appearance order — identical message sequence to
                // the single-site topology when there is one GW-U).
                let mut touched: Vec<LocalGw> = Vec::new();
                for (_, teid_local_ul, rule) in &dedicated {
                    let gw = self
                        .topo
                        .local_for_server(rule.server_addr)
                        .expect("dedicated rule has an owning local GW-U")
                        .clone();
                    self.flowmod(
                        ctx,
                        gw.ctrl_port,
                        gw.addr,
                        false,
                        FlowMatchSpec {
                            teid: Some(*teid_local_ul),
                            dst: None,
                            src: None,
                        },
                        vec![],
                    );
                    if !touched.iter().any(|g| g.addr == gw.addr) {
                        touched.push(gw);
                    }
                }
                for gw in touched {
                    self.flowmod(
                        ctx,
                        gw.ctrl_port,
                        gw.addr,
                        false,
                        FlowMatchSpec {
                            teid: None,
                            dst: Some(ue_addr),
                            src: None,
                        },
                        vec![],
                    );
                }
                if !dedicated.is_empty() {
                    self.dedicated_released += dedicated.len() as u64;
                    self.dedicated_active =
                        self.dedicated_active.saturating_sub(dedicated.len() as u64);
                }
                self.remove_sgw_rules(ctx, imsi);
            }
            // Dead local GW-U: flush every dedicated bearer anchored on
            // the failed switch — controller state and PCEF accounting
            // only. The switch's flow table died with it (and a restart
            // comes back empty), so no removal FlowMods chase the dead
            // GW-U, and the default bearer via the core SGW-U is left
            // untouched. UE traffic re-classifies onto the default
            // bearer as soon as the client re-anchors away from the
            // dead MEC (the dedicated TFT stops matching).
            GwuFailureIndication { gwu_addr } => {
                self.gwu_failure_notices += 1;
                let mut flushed = 0u64;
                let topo = &self.topo;
                let owned_by_dead = |server: Ipv4Addr| {
                    topo.local_for_server(server)
                        .is_some_and(|g| g.addr == gwu_addr)
                };
                for s in self.sessions.values_mut() {
                    let before = s.dedicated.len();
                    s.dedicated.retain(|_, (_, r)| !owned_by_dead(r.server_addr));
                    flushed += (before - s.dedicated.len()) as u64;
                    // A pending activation on the dead switch can never
                    // complete; drop it so the late CreateBearerResponse
                    // (if any) is a recognised no-op.
                    s.pending_dedicated
                        .retain(|_, (r, _)| !owned_by_dead(r.server_addr));
                }
                if flushed > 0 {
                    self.gwu_flush_released += flushed;
                    self.dedicated_released += flushed;
                    self.dedicated_active = self.dedicated_active.saturating_sub(flushed);
                }
            }
            // X2 handover completed: re-anchor every S1 leg on the target
            // eNB. The default bearer's SGW-U downlink rule is rewritten;
            // dedicated bearers follow to the target's local GW-U port or,
            // when the target has no MEC path, are torn down (the session
            // falls back to the default bearer).
            BearerRelocationRequest {
                imsi,
                enb_addr,
                enb_teids,
            } => {
                let Some(s) = self.sessions.get_mut(&imsi) else {
                    return;
                };
                s.enb_addr = Some(enb_addr);
                if let Some(&(_, t)) = enb_teids.iter().find(|(ebi, _)| *ebi == Ebi::DEFAULT) {
                    s.enb_teid = Some(t);
                }
                let ue_addr = s.ue_addr;
                let teid_sgw_dl = s.teid_sgw_dl;
                let default_teid = s.enb_teid;
                // BTreeMap iteration is EBI-ordered, so the FlowMod
                // sequence is deterministic by construction.
                let dedicated: Vec<(u8, Teid, PolicyRule)> = s
                    .dedicated
                    .iter()
                    .map(|(&ebi, (t, r))| (ebi, *t, r.clone()))
                    .collect();
                let topo = self.topo.clone();
                // Rewrite the SGW-U downlink leg toward the target eNB
                // (the SGW's paging buffer absorbs the del→add window).
                if let Some(teid) = default_teid {
                    self.flowmod(
                        ctx,
                        gwc_port::SGW_U,
                        topo.sgw_u,
                        false,
                        FlowMatchSpec {
                            teid: Some(teid_sgw_dl),
                            dst: None,
                            src: None,
                        },
                        vec![],
                    );
                    self.flowmod(
                        ctx,
                        gwc_port::SGW_U,
                        topo.sgw_u,
                        true,
                        FlowMatchSpec {
                            teid: Some(teid_sgw_dl),
                            dst: None,
                            src: None,
                        },
                        vec![
                            FlowActionSpec::GtpDecap,
                            FlowActionSpec::GtpEncap {
                                peer: enb_addr,
                                teid,
                            },
                            FlowActionSpec::Output {
                                port: topo.sgw_port_for(enb_addr),
                            },
                        ],
                    );
                }
                let mut released = Vec::new();
                for (ebi, teid_local_ul, rule) in dedicated {
                    let target_teid = enb_teids.iter().find(|(e, _)| e.0 == ebi).map(|&(_, t)| t);
                    // The bearer anchors on the GW-U owning its MEC server;
                    // whether the target eNB keeps the local path is a
                    // per-site question in a multi-region topology.
                    let gw = self
                        .topo
                        .local_for_server(rule.server_addr)
                        .expect("dedicated rule has an owning local GW-U")
                        .clone();
                    let target_mec = gw.serves_enb(enb_addr);
                    if let (true, Some(new_teid)) = (target_mec, target_teid) {
                        // Relocate: point the local GW-U downlink rule at
                        // the target eNB's port and TEID.
                        self.flowmod(
                            ctx,
                            gw.ctrl_port,
                            gw.addr,
                            false,
                            FlowMatchSpec {
                                teid: None,
                                dst: Some(ue_addr),
                                src: None,
                            },
                            vec![],
                        );
                        self.flowmod(
                            ctx,
                            gw.ctrl_port,
                            gw.addr,
                            true,
                            FlowMatchSpec {
                                teid: None,
                                dst: Some(ue_addr),
                                src: None,
                            },
                            vec![
                                // Re-stamp the dedicated class after
                                // re-anchoring on the target eNB.
                                FlowActionSpec::SetTos {
                                    tos: rule.qci.tos(),
                                },
                                FlowActionSpec::GtpEncap {
                                    peer: enb_addr,
                                    teid: new_teid,
                                },
                                FlowActionSpec::Output {
                                    port: gw.port_for(enb_addr),
                                },
                            ],
                        );
                        self.dedicated_reanchored += 1;
                    } else {
                        // Fall back: tear the local rules down and release
                        // the bearer; traffic rides the default bearer.
                        self.flowmod(
                            ctx,
                            gw.ctrl_port,
                            gw.addr,
                            false,
                            FlowMatchSpec {
                                teid: Some(teid_local_ul),
                                dst: None,
                                src: None,
                            },
                            vec![],
                        );
                        self.flowmod(
                            ctx,
                            gw.ctrl_port,
                            gw.addr,
                            false,
                            FlowMatchSpec {
                                teid: None,
                                dst: Some(ue_addr),
                                src: None,
                            },
                            vec![],
                        );
                        self.sessions
                            .get_mut(&imsi)
                            .expect("session exists")
                            .dedicated
                            .remove(&ebi);
                        released.push(Ebi(ebi));
                        self.dedicated_released += 1;
                        self.dedicated_active = self.dedicated_active.saturating_sub(1);
                    }
                }
                self.send(
                    ctx,
                    gwc_port::MME,
                    pkt_peer(ctx),
                    BearerRelocationResponse {
                        imsi,
                        erabs: vec![],
                        released,
                    },
                );
            }
            _ => {}
        }
    }
}

/// The GW-C learns peers from topology wiring; packet source addressing is
/// only used for logging, so a placeholder destination is acceptable on
/// point-to-point control links. These helpers document that intent.
fn pkt_peer(_ctx: &Ctx<'_>) -> Ipv4Addr {
    Ipv4Addr::UNSPECIFIED
}

fn pkt_peer_or(_ctx: &Ctx<'_>, fallback: Ipv4Addr) -> Ipv4Addr {
    fallback
}

impl Node for GwControl {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        if let Some(msg) = ControlMsg::from_packet(&pkt) {
            self.handle(ctx, msg);
        }
    }
}
