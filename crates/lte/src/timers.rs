//! Centralized retry/guard-timer configuration.
//!
//! Every recovery-relevant interval in the LTE stack (and the MEC
//! heartbeat/lease protocol layered on top of it in `acacia_core`) lives
//! in one [`Timers`] struct so experiments can sweep them instead of
//! hunting magic numbers across `enb.rs` / `ue.rs` / `mrs.rs`. The
//! defaults reproduce the values the constants carried before
//! centralization — attaching `Timers::default()` is byte-identical to
//! the old hard-coded behaviour.

use acacia_simnet::time::Duration;

/// Guard, retry and lease intervals for the recovery ladder.
///
/// All durations are engine time. The struct is `Copy` so nodes embed it
/// by value; construct with [`Timers::default`] and override fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timers {
    /// Guard before retransmitting an unanswered X2 Handover Request
    /// (the TX2RELOCprep analogue; see DESIGN.md's substitution ledger).
    pub x2_prep_guard: Duration,
    /// Guard on the forwarding phase: if the target never signals UE
    /// Context Release, the source gives up and releases locally
    /// (TX2RELOCoverall analogue).
    pub ho_overall_guard: Duration,
    /// Guard before retransmitting an unanswered Path Switch Request.
    pub path_switch_guard: Duration,
    /// Transmissions of X2 Handover Request / Path Switch Request before
    /// the procedure is abandoned (cancel / core-detour fallback).
    pub ho_max_attempts: u32,
    /// How long after a measurement report the UE waits for downlink
    /// progress before declaring the serving leg dead and
    /// re-establishing on the reported target (T304 / RLF analogue).
    pub t304: Duration,
    /// Retry period for unanswered RRC Service Requests.
    pub sr_retry: Duration,
    /// Period at which a registered MEC service sends liveness
    /// heartbeats to the MRS.
    pub heartbeat_period: Duration,
    /// Period at which the MRS audits its lease table for missed
    /// heartbeats.
    pub lease_check_period: Duration,
    /// A server instance is evicted when at least this many of the last
    /// [`Timers::lease_window_m`] audits saw no fresh heartbeat
    /// (miss-N-of-M; tolerates isolated loss on the heartbeat path).
    pub lease_miss_n: u32,
    /// Size of the sliding audit window for miss-N-of-M eviction.
    pub lease_window_m: u32,
    /// Period at which the device manager re-validates the resolved MEC
    /// lease with the MRS; a lapsed lease triggers re-resolution and a
    /// client-side session failover.
    pub lease_recheck_period: Duration,
}

impl Timers {
    /// The documented defaults (identical to the pre-centralization
    /// constants; heartbeat/lease values sized so detection completes
    /// well inside one `figures failover` outage step).
    pub const DEFAULT: Timers = Timers {
        x2_prep_guard: Duration::from_millis(60),
        ho_overall_guard: Duration::from_millis(1500),
        path_switch_guard: Duration::from_millis(120),
        ho_max_attempts: 3,
        t304: Duration::from_millis(300),
        sr_retry: Duration::from_millis(1000),
        heartbeat_period: Duration::from_millis(100),
        lease_check_period: Duration::from_millis(120),
        lease_miss_n: 3,
        lease_window_m: 5,
        lease_recheck_period: Duration::from_millis(250),
    };
}

impl Default for Timers {
    fn default() -> Timers {
        Timers::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_constants() {
        let t = Timers::default();
        assert_eq!(t.x2_prep_guard, Duration::from_millis(60));
        assert_eq!(t.ho_overall_guard, Duration::from_millis(1500));
        assert_eq!(t.path_switch_guard, Duration::from_millis(120));
        assert_eq!(t.ho_max_attempts, 3);
        assert_eq!(t.t304, Duration::from_millis(300));
        assert_eq!(t.sr_retry, Duration::from_millis(1000));
        assert!(t.lease_miss_n <= t.lease_window_m);
    }
}
