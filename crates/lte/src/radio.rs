//! The LTE radio (Uu) interface: bearer-tagged data frames, RRC control
//! frames, and a priority-aware transmission scheduler.
//!
//! Data frames carry the EPS bearer id so the receiving side knows which
//! bearer (and thus which QoS class and S1 tunnel) a packet belongs to —
//! this is where the UE modem's UL-TFT classification becomes visible on
//! the air. RRC frames carry control messages (attach, reconfiguration
//! with TFTs, release).

use crate::ids::Ebi;
use crate::wire::ControlMsg;
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, PortId};
use acacia_simnet::time::{serialization_time, Duration, Instant};
use bytes::{BufMut, BytesMut};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// IP protocol number used for radio frames in the simulator.
pub const RADIO_PROTO: u8 = 201;

/// Frame-type discriminators.
const FRAME_DATA: u8 = 1;
const FRAME_RRC: u8 = 2;

/// Decoded radio frame content.
#[derive(Debug, Clone, PartialEq)]
pub enum RadioPayload {
    /// User data on a bearer.
    Data {
        /// Bearer the frame used.
        ebi: Ebi,
        /// The user packet.
        inner: Packet,
    },
    /// RRC signalling.
    Rrc(ControlMsg),
}

/// Build a bearer-tagged data frame carrying `inner`.
pub fn data_frame(ebi: Ebi, inner: &Packet, from: Ipv4Addr, to: Ipv4Addr) -> Packet {
    let ser = crate::gtpu::serialize_inner(inner);
    let mut b = BytesMut::with_capacity(2 + ser.len());
    b.put_u8(FRAME_DATA);
    b.put_u8(ebi.0);
    b.put_slice(&ser);
    Packet {
        src: from,
        dst: to,
        src_port: 0,
        dst_port: 0,
        protocol: RADIO_PROTO,
        tos: inner.tos,
        payload: b.freeze(),
        // Preserve the inner packet's virtual length plus hidden header
        // bytes (same accounting as GTP-U encapsulation).
        app_len: inner
            .wire_size()
            .saturating_sub(28 + inner.payload.len() as u32),
        id: inner.id,
        created: inner.created,
    }
}

/// Build an RRC control frame.
pub fn rrc_frame(msg: &ControlMsg, from: Ipv4Addr, to: Ipv4Addr) -> Packet {
    let body = serde_json::to_vec(msg).expect("rrc message serializes");
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.put_u8(FRAME_RRC);
    b.put_slice(&body);
    let mut pkt = Packet {
        src: from,
        dst: to,
        src_port: 0,
        dst_port: 0,
        protocol: RADIO_PROTO,
        tos: 255, // control frames get top scheduling priority
        payload: b.freeze(),
        app_len: 0,
        id: 0,
        created: Instant::ZERO,
    };
    let spec = msg.wire_size_spec();
    let bare = pkt.wire_size();
    if bare < spec {
        pkt.app_len = spec - bare;
    }
    pkt
}

/// Parse a radio frame.
pub fn parse_frame(pkt: &Packet) -> Option<RadioPayload> {
    if pkt.protocol != RADIO_PROTO || pkt.payload.is_empty() {
        return None;
    }
    match pkt.payload[0] {
        FRAME_DATA => {
            if pkt.payload.len() < 2 {
                return None;
            }
            let ebi = Ebi(pkt.payload[1]);
            let inner = crate::gtpu::deserialize_inner(&pkt.payload.slice(2..), pkt.created)?;
            Some(RadioPayload::Data { ebi, inner })
        }
        FRAME_RRC => {
            let msg = serde_json::from_slice(&pkt.payload[1..]).ok()?;
            Some(RadioPayload::Rrc(msg))
        }
        _ => None,
    }
}

/// A serial radio transmitter with strict-priority scheduling.
///
/// The owning node enqueues frames with a priority (lower = served first),
/// arms a release timer for each enqueue, and calls [`RadioScheduler::pop`]
/// on each timer expiry to obtain the next frame to put on the air.
pub struct RadioScheduler {
    rate_bps: u64,
    busy_until: Instant,
    seq: u64,
    queue: BTreeMap<(u8, u64), Packet>,
    /// Bytes queued (for a drop-tail bound).
    queued_bytes: u64,
    /// Queue bound in bytes.
    pub queue_limit: u64,
    /// Frames dropped at the queue.
    pub drops: u64,
}

impl RadioScheduler {
    /// Scheduler transmitting at `rate_bps`.
    pub fn new(rate_bps: u64) -> RadioScheduler {
        RadioScheduler {
            rate_bps,
            busy_until: Instant::ZERO,
            seq: 0,
            queue: BTreeMap::new(),
            queued_bytes: 0,
            queue_limit: 512 * 1024,
            drops: 0,
        }
    }

    /// Configured rate in bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the transmission rate (affects future frames).
    pub fn set_rate(&mut self, rate_bps: u64) {
        self.rate_bps = rate_bps;
    }

    /// Offer a frame with scheduling `priority`; arms `token` on `ctx` at
    /// the instant the frame finishes serialization. Returns `false` when
    /// the frame was dropped at the queue.
    pub fn offer(&mut self, ctx: &mut Ctx<'_>, priority: u8, frame: Packet, token: u64) -> bool {
        let wire = frame.wire_size() as u64;
        if self.queued_bytes + wire > self.queue_limit {
            self.drops += 1;
            return false;
        }
        // Each enqueued frame extends the transmitter busy horizon by its
        // own serialization time; priorities reorder *which* frame pops at
        // each completion, giving strict-priority service.
        let start = self.busy_until.max(ctx.now());
        let done = start + serialization_time(wire, self.rate_bps);
        self.busy_until = done;
        self.queued_bytes += wire;
        self.queue.insert((priority, self.seq), frame);
        self.seq += 1;
        ctx.schedule_at(done, token);
        true
    }

    /// Take the highest-priority queued frame (called on timer expiry).
    pub fn pop(&mut self) -> Option<Packet> {
        let key = *self.queue.keys().next()?;
        let frame = self.queue.remove(&key)?;
        self.queued_bytes -= frame.wire_size() as u64;
        Some(frame)
    }

    /// Frames currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Map a bearer QCI priority (1..9) and control traffic onto scheduler
/// priorities.
pub fn sched_priority(tos: u8) -> u8 {
    if tos == 255 {
        0 // RRC control first
    } else {
        // Higher DSCP = more important = lower scheduler priority value.
        64u8.saturating_sub(tos >> 2).max(1)
    }
}

/// Default radio-leg parameters (calibrated so UE↔MEC RTT lands at the
/// paper's 13–15 ms, Fig. 10(a)).
pub mod params {
    use super::Duration;

    /// Uplink air rate with excellent signal (Fig. 3(d): ~12 Mbps).
    pub const UL_RATE_EXCELLENT: u64 = 12_000_000;
    /// Uplink air rate with fair signal (2/4 bars).
    pub const UL_RATE_FAIR: u64 = 6_000_000;
    /// Downlink air rate.
    pub const DL_RATE: u64 = 40_000_000;
    /// One-way air propagation + HARQ/scheduling latency.
    pub const AIR_LATENCY: Duration = Duration::from_micros(5_500);
    /// Per-frame jitter bound.
    pub const AIR_JITTER: Duration = Duration::from_micros(1_200);
}

/// Port conventions shared by UE and eNB.
pub mod port {
    use super::PortId;

    /// The UE's radio port toward its first (index-0) cell.
    pub const UE_RADIO: PortId = 0;
    /// First app-facing port on the UE.
    pub const UE_APP_BASE: PortId = 1;
    /// UE radio port toward cell index `i >= 1` is `UE_CELL_BASE + i`
    /// (app ports live below this).
    pub const UE_CELL_BASE: PortId = 200;
    /// eNB: S1-U toward the core SGW-U.
    pub const ENB_S1_CORE: PortId = 1;
    /// eNB: S1-U toward the local (MEC) GW-U.
    pub const ENB_S1_MEC: PortId = 2;
    /// eNB: S1AP toward the MME.
    pub const ENB_S1AP: PortId = 3;
    /// eNB: X2 toward peer cell index `j` is `ENB_X2_BASE + j` (ports
    /// 4..ENB_RADIO_BASE, capping the topology at 36 cells — enough for a
    /// city-scale sharded build).
    pub const ENB_X2_BASE: PortId = 4;
    /// eNB: first radio port (one per attached UE).
    pub const ENB_RADIO_BASE: PortId = 40;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Imsi;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn data_frame_roundtrip() {
        let inner = Packet::udp((ip(1), 1000), (ip(2), 2000), 900).with_id(5);
        let frame = data_frame(Ebi(6), &inner, ip(1), ip(9));
        match parse_frame(&frame).unwrap() {
            RadioPayload::Data { ebi, inner: back } => {
                assert_eq!(ebi, Ebi(6));
                assert_eq!(back.dst_port, 2000);
                assert_eq!(back.wire_size(), inner.wire_size());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_frame_wire_size_covers_inner() {
        let inner = Packet::udp((ip(1), 1000), (ip(2), 2000), 900);
        let frame = data_frame(Ebi(5), &inner, ip(1), ip(9));
        // Frame adds its own IP-ish header + 2 bytes of framing + the
        // serialized inner header block.
        assert!(frame.wire_size() >= inner.wire_size());
        assert!(frame.wire_size() <= inner.wire_size() + 40);
    }

    #[test]
    fn rrc_frame_roundtrip() {
        let msg = ControlMsg::RrcAttachRequest { imsi: Imsi(99) };
        let frame = rrc_frame(&msg, ip(1), ip(9));
        match parse_frame(&frame).unwrap() {
            RadioPayload::Rrc(back) => assert_eq!(back, msg),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(frame.wire_size(), msg.wire_size_spec());
    }

    #[test]
    fn garbage_is_rejected() {
        let pkt = Packet::udp((ip(1), 1), (ip(2), 2), 10);
        assert!(parse_frame(&pkt).is_none());
    }

    #[test]
    fn sched_priority_orders_control_first() {
        use crate::qci::Qci;
        let ctrl = sched_priority(255);
        let qci5 = sched_priority(Qci(5).tos());
        let qci9 = sched_priority(Qci(9).tos());
        assert!(ctrl < qci5);
        assert!(qci5 < qci9);
    }
}
