//! Assembles the full LTE/EPC topology of the paper's Fig. 5 and drives
//! the standard procedures: attach, network-initiated dedicated bearer
//! activation, idle release and service-request re-establishment.
//!
//! ```text
//!  apps ── UE ──radio── eNB ──S1-U── SGW-U ──S5── PGW-U ── internet ── cloud
//!                        │  └─S1-U── local GW-U ── MEC servers
//!                        └──S1AP── MME ──GTP-C── GW-C ──OF── {GW-Us}
//!                                   │              │
//!                                  HSS           PCRF ──Rx── (MRS, in acacia core)
//! ```

use crate::enb::{token as enb_token, Enb};
use crate::entities::{
    gwc_port, mme_port, pcrf_port, GwControl, GwTopology, Hss, Mme, MmeUeState, Pcrf,
};
use crate::ids::Imsi;
use crate::log::MsgLog;
use crate::radio::{params, port};
use crate::switch::{FlowSwitch, SwitchCosts};
use crate::ue::{token as ue_token, AppSelector, Ue, UeState};
use crate::wire::{ControlMsg, FlowActionSpec, FlowMatchSpec, PolicyRule};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::{Node, NodeId, PortId, Simulator};
use acacia_simnet::time::{Duration, Instant};
use std::net::Ipv4Addr;

/// Well-known addresses in the reproduction's core network.
pub mod addr {
    use std::net::Ipv4Addr;

    /// eNB S1/control address.
    pub const ENB: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    /// eNB radio-side address.
    pub const ENB_RADIO: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    /// First UE radio-side address (host part increments per UE).
    pub const UE_RADIO_BASE: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 100);
    /// Core SGW-U.
    pub const SGW_U: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
    /// Core PGW-U.
    pub const PGW_U: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);
    /// Local (MEC) combined S/PGW-U.
    pub const LOCAL_GWU: Ipv4Addr = Ipv4Addr::new(10, 2, 1, 1);
    /// MME.
    pub const MME: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 1);
    /// GW-C (SGW-C + PGW-C + PCEF).
    pub const GWC: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 2);
    /// PCRF.
    pub const PCRF: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 3);
    /// HSS.
    pub const HSS: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 4);
    /// UE IP pool base (PGW assigns base+1, base+2, ...).
    pub const UE_POOL: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 0);
    /// First MEC server address.
    pub const MEC_BASE: Ipv4Addr = Ipv4Addr::new(10, 4, 0, 1);
    /// First cloud server address.
    pub const CLOUD_BASE: Ipv4Addr = Ipv4Addr::new(52, 0, 0, 1);
    /// Background traffic source.
    pub const BG_SOURCE: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);
}

/// Tunable parameters of the topology.
#[derive(Debug, Clone)]
pub struct LteConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Uplink air rate, bits/s.
    pub ul_rate_bps: u64,
    /// Downlink air rate, bits/s.
    pub dl_rate_bps: u64,
    /// One-way eNB ↔ SGW-U backhaul delay.
    pub backhaul_delay: Duration,
    /// One-way SGW-U ↔ PGW-U delay (the paper's "hierarchical routing in
    /// the core network" inflation).
    pub core_delay: Duration,
    /// One-way PGW-U ↔ Internet-exchange delay.
    pub inet_delay: Duration,
    /// Capacity of the SGW↔PGW and PGW↔internet links, bits/s.
    pub core_rate_bps: u64,
    /// Queue bound on the core links, bytes (bufferbloat knob for
    /// Fig. 3(g)/10(b)).
    pub core_queue_bytes: u64,
    /// One-way eNB ↔ local GW-U delay (MEC placement: paper measures the
    /// eNB↔MEC RTT at ~1.6 ms).
    pub mec_delay: Duration,
    /// Processing model of the core GW-Us.
    pub core_switch_costs: SwitchCosts,
    /// Processing model of the local GW-U.
    pub local_switch_costs: SwitchCosts,
    /// Subscribers to provision (one UE node each).
    pub ue_count: usize,
    /// Independent per-frame loss probability on the radio links (fault
    /// injection; residual loss after HARQ in a real deployment). Note:
    /// real LTE carries RRC/NAS on acknowledged-mode RLC, so prefer
    /// attaching first and injecting loss afterwards via
    /// [`LteNetwork::set_radio_loss`].
    pub radio_loss: f64,
    /// Automatic inactivity release at the eNB (the paper's 11.576 s
    /// timer; see [`crate::overhead::IDLE_TIMEOUT`]). `None` = procedures
    /// are driven explicitly by the harness.
    pub auto_idle: Option<Duration>,
}

impl Default for LteConfig {
    fn default() -> LteConfig {
        LteConfig {
            seed: 1,
            ul_rate_bps: params::UL_RATE_EXCELLENT,
            dl_rate_bps: params::DL_RATE,
            backhaul_delay: Duration::from_micros(1_000),
            core_delay: Duration::from_micros(5_000),
            inet_delay: Duration::from_micros(500),
            core_rate_bps: 1_000_000_000,
            core_queue_bytes: 4 * 1024 * 1024,
            mec_delay: Duration::from_micros(400),
            core_switch_costs: SwitchCosts::acacia_ovs(),
            local_switch_costs: SwitchCosts::acacia_ovs(),
            ue_count: 1,
            radio_loss: 0.0,
            auto_idle: None,
        }
    }
}

/// The assembled network with handles to every element.
pub struct LteNetwork {
    /// The underlying simulator.
    pub sim: Simulator,
    /// Shared control-plane message log.
    pub log: MsgLog,
    /// Configuration used to build it.
    pub cfg: LteConfig,
    /// UE node ids (one per subscriber).
    pub ues: Vec<NodeId>,
    /// eNB node id.
    pub enb: NodeId,
    /// MME node id.
    pub mme: NodeId,
    /// HSS node id.
    pub hss: NodeId,
    /// PCRF node id.
    pub pcrf: NodeId,
    /// GW-C node id.
    pub gwc: NodeId,
    /// Core SGW-U node id.
    pub sgw_u: NodeId,
    /// Core PGW-U node id.
    pub pgw_u: NodeId,
    /// Local (MEC) GW-U node id.
    pub local_gwu: NodeId,
    /// Router fanning out to MEC servers.
    pub mec_router: NodeId,
    /// Router fanning out to cloud servers (the Internet).
    pub inet_router: NodeId,
    next_ue_app_port: Vec<PortId>,
    mec_servers: usize,
    cloud_servers: usize,
    bg_installed: bool,
}

impl LteNetwork {
    /// Build the topology.
    pub fn new(cfg: LteConfig) -> LteNetwork {
        let mut sim = Simulator::new(cfg.seed);
        let log = MsgLog::new();

        let mut enb_node = Enb::new(addr::ENB, addr::MME, cfg.dl_rate_bps, log.clone());
        enb_node.auto_idle = cfg.auto_idle;
        enb_node.add_s1_gateway(addr::SGW_U, port::ENB_S1_CORE);
        enb_node.add_s1_gateway(addr::LOCAL_GWU, port::ENB_S1_MEC);

        // Subscribers.
        let mut imsis = Vec::new();
        let mut ue_nodes = Vec::new();
        for i in 0..cfg.ue_count {
            let imsi = Imsi(310_410_000_000_001 + i as u64);
            let radio_addr = Ipv4Addr::from(u32::from(addr::UE_RADIO_BASE) + i as u32);
            let radio_port = enb_node.add_ue(imsi, radio_addr);
            imsis.push(imsi);
            ue_nodes.push((imsi, radio_addr, radio_port));
        }

        let enb = sim.add_node(Box::new(enb_node));
        let mut ues = Vec::new();
        for &(imsi, radio_addr, radio_port) in &ue_nodes {
            let ue = sim.add_node(Box::new(Ue::new(
                imsi,
                radio_addr,
                addr::ENB_RADIO,
                cfg.ul_rate_bps,
            )));
            // The air interface: pure latency + jitter; serialization is
            // handled by the UE/eNB radio schedulers.
            sim.connect(
                (ue, port::UE_RADIO),
                (enb, radio_port),
                LinkConfig::delay_only(params::AIR_LATENCY)
                    .with_jitter(params::AIR_JITTER)
                    .with_loss(cfg.radio_loss),
            );
            ues.push(ue);
        }

        let mme = sim.add_node(Box::new(Mme::new(
            addr::MME,
            addr::ENB,
            addr::GWC,
            addr::HSS,
            log.clone(),
        )));
        let hss = sim.add_node(Box::new(Hss::new(addr::HSS, imsis.clone(), log.clone())));
        let pcrf = sim.add_node(Box::new(Pcrf::new(addr::PCRF, addr::GWC, log.clone())));

        let topo = GwTopology {
            sgw_u: addr::SGW_U,
            pgw_u: addr::PGW_U,
            local_gwu: addr::LOCAL_GWU,
            sgw_port_enb: 1,
            sgw_port_pgw: 2,
            pgw_port_sgw: 1,
            pgw_port_inet: 2,
            local_port_enb: 1,
            local_port_mec: 2,
            mec_servers: Vec::new(),
            ue_ip_base: addr::UE_POOL,
        };
        let gwc = sim.add_node(Box::new(GwControl::new(addr::GWC, topo, log.clone())));

        let mut sgw_u_node = FlowSwitch::new(addr::SGW_U, cfg.core_switch_costs);
        // The SGW buffers downlink data for idle UEs and raises Downlink
        // Data Notifications (its paging role).
        sgw_u_node.paging_enabled = true;
        let sgw_u = sim.add_node(Box::new(sgw_u_node));
        let pgw_u = sim.add_node(Box::new(FlowSwitch::new(
            addr::PGW_U,
            cfg.core_switch_costs,
        )));
        let local_gwu = sim.add_node(Box::new(FlowSwitch::new(
            addr::LOCAL_GWU,
            cfg.local_switch_costs,
        )));

        let mec_router = sim.add_node(Box::new(acacia_simnet::router::Router::new(
            acacia_simnet::router::RouteTable::new(),
        )));
        let inet_router = sim.add_node(Box::new(acacia_simnet::router::Router::new(
            acacia_simnet::router::RouteTable::new(),
        )));

        let ctrl = LinkConfig::delay_only(Duration::from_micros(500));
        // S1AP + core control mesh.
        sim.connect((enb, port::ENB_S1AP), (mme, mme_port::ENB), ctrl.clone());
        sim.connect((mme, mme_port::GWC), (gwc, gwc_port::MME), ctrl.clone());
        sim.connect((mme, mme_port::HSS), (hss, 0), ctrl.clone());
        sim.connect((gwc, gwc_port::PCRF), (pcrf, pcrf_port::GWC), ctrl.clone());
        sim.connect(
            (gwc, gwc_port::SGW_U),
            (sgw_u, FlowSwitch::CONTROL_PORT),
            ctrl.clone(),
        );
        sim.connect(
            (gwc, gwc_port::PGW_U),
            (pgw_u, FlowSwitch::CONTROL_PORT),
            ctrl.clone(),
        );
        sim.connect(
            (gwc, gwc_port::LOCAL_GWU),
            (local_gwu, FlowSwitch::CONTROL_PORT),
            ctrl,
        );

        // User plane.
        let backhaul = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.backhaul_delay)
            .with_queue(cfg.core_queue_bytes);
        let core = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.core_delay)
            .with_queue(cfg.core_queue_bytes);
        let inet = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.inet_delay)
            .with_queue(cfg.core_queue_bytes);
        let mec =
            LinkConfig::rate_limited(1_000_000_000, cfg.mec_delay).with_queue(4 * 1024 * 1024);
        sim.connect((enb, port::ENB_S1_CORE), (sgw_u, 1), backhaul);
        sim.connect((sgw_u, 2), (pgw_u, 1), core);
        sim.connect((pgw_u, 2), (inet_router, 0), inet);
        sim.connect((enb, port::ENB_S1_MEC), (local_gwu, 1), mec.clone());
        sim.connect((local_gwu, 2), (mec_router, 0), mec);

        LteNetwork {
            sim,
            log,
            cfg,
            ues,
            enb,
            mme,
            hss,
            pcrf,
            gwc,
            sgw_u,
            pgw_u,
            local_gwu,
            mec_router,
            inet_router,
            next_ue_app_port: vec![port::UE_APP_BASE; ue_nodes.len()],
            mec_servers: 0,
            cloud_servers: 0,
            bg_installed: false,
        }
    }

    /// IMSI of UE `i`.
    pub fn imsi(&self, i: usize) -> Imsi {
        Imsi(310_410_000_000_001 + i as u64)
    }

    /// Connect an application node (its port 0) to UE `ue_idx`, receiving
    /// downlink traffic selected by `selector`.
    pub fn connect_ue_app(
        &mut self,
        ue_idx: usize,
        app: Box<dyn Node>,
        selector: AppSelector,
    ) -> NodeId {
        let app_id = self.sim.add_node(app);
        let ue = self.ues[ue_idx];
        let ue_port = self.next_ue_app_port[ue_idx];
        self.next_ue_app_port[ue_idx] += 1;
        self.sim
            .connect((app_id, 0), (ue, ue_port), crate::ue::loopback());
        self.sim.node_mut::<Ue>(ue).register_app(selector, ue_port);
        app_id
    }

    /// Add a MEC server behind the local GW-U; returns `(node, address)`.
    pub fn add_mec_server(&mut self, server: Box<dyn Node>) -> (NodeId, Ipv4Addr) {
        let id = self.sim.add_node(server);
        let server_addr = Ipv4Addr::from(u32::from(addr::MEC_BASE) + self.mec_servers as u32);
        self.mec_servers += 1;
        let router_port = self.mec_servers; // ports 1..
        self.sim.connect(
            (self.mec_router, router_port),
            (id, 0),
            LinkConfig::delay_only(Duration::from_micros(100)),
        );
        // Route server-bound traffic out, and UE-bound responses back into
        // the local GW-U (default route on port 0).
        {
            let mec_router = self.mec_router;
            let mut t = acacia_simnet::router::RouteTable::new();
            t.add(acacia_simnet::router::Ipv4Net::default_route(), 0);
            for i in 0..self.mec_servers {
                let a = Ipv4Addr::from(u32::from(addr::MEC_BASE) + i as u32);
                t.add(acacia_simnet::router::Ipv4Net::host(a), i + 1);
            }
            self.sim
                .node_mut::<acacia_simnet::router::Router>(mec_router)
                .set_table(t);
        }
        // Tell the GW-C this address lives on the MEC.
        // (GwTopology is owned by the GW-C node.)
        self.with_gwc_topology(|topo| topo.mec_servers.push(server_addr));
        (id, server_addr)
    }

    /// Add a cloud server behind the Internet router over `wan` link
    /// characteristics; returns `(node, address)`.
    pub fn add_cloud_server(
        &mut self,
        server: Box<dyn Node>,
        wan: LinkConfig,
    ) -> (NodeId, Ipv4Addr) {
        let id = self.sim.add_node(server);
        let server_addr = Ipv4Addr::from(u32::from(addr::CLOUD_BASE) + self.cloud_servers as u32);
        self.cloud_servers += 1;
        let router_port = self.cloud_servers;
        self.sim
            .connect((self.inet_router, router_port), (id, 0), wan);
        {
            let inet_router = self.inet_router;
            let r = self
                .sim
                .node_mut::<acacia_simnet::router::Router>(inet_router);
            let mut t = acacia_simnet::router::RouteTable::new();
            t.add(acacia_simnet::router::Ipv4Net::default_route(), 0);
            for i in 0..self.cloud_servers {
                let a = Ipv4Addr::from(u32::from(addr::CLOUD_BASE) + i as u32);
                t.add(acacia_simnet::router::Ipv4Net::host(a), i + 1);
            }
            r.set_table(t);
        }
        (id, server_addr)
    }

    fn with_gwc_topology(&mut self, f: impl FnOnce(&mut GwTopology)) {
        let gwc = self.gwc;
        let node = self.sim.node_mut::<GwControl>(gwc);
        f(node.topology_mut());
    }

    /// Attach UE `ue_idx`: runs the full attach procedure and returns the
    /// assigned UE IP. Panics if attachment does not complete within 5 s of
    /// simulated time (a protocol bug, not an environmental condition).
    pub fn attach(&mut self, ue_idx: usize) -> Ipv4Addr {
        let start = self.sim.now();
        self.sim
            .schedule_timer(self.ues[ue_idx], start, ue_token::ATTACH);
        let imsi = self.imsi(ue_idx);
        let deadline = start + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let attached = self.sim.node_ref::<Mme>(self.mme).ue_state(imsi)
                == MmeUeState::Attached
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).state == UeState::Connected
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).ip.is_some();
            if attached {
                return self
                    .sim
                    .node_ref::<Ue>(self.ues[ue_idx])
                    .ip
                    .expect("checked");
            }
        }
        panic!("UE {ue_idx} failed to attach within 5s of simulated time");
    }

    /// Request a dedicated bearer by injecting an Rx request at the PCRF
    /// (in the full ACACIA stack the MRS sends this; `acacia` core wires a
    /// real MRS node to the PCRF's AF port). Waits for activation.
    pub fn activate_dedicated_bearer(&mut self, ue_idx: usize, rule: PolicyRule) {
        let before = self.sim.node_ref::<GwControl>(self.gwc).dedicated_active;
        let now = self.sim.now();
        let msg = ControlMsg::RxAuthRequest { rule };
        // Record the AF-side (MRS) send; the PCRF and friends record their
        // own downstream messages.
        self.log.record(now, &msg);
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, addr::PCRF);
        self.sim.inject_packet(self.pcrf, pcrf_port::AF, now, pkt);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let active = self.sim.node_ref::<GwControl>(self.gwc).dedicated_active > before
                && self
                    .sim
                    .node_ref::<Ue>(self.ues[ue_idx])
                    .has_dedicated_bearer();
            if active {
                return;
            }
        }
        panic!("dedicated bearer activation did not complete within 5s");
    }

    /// Trigger the idle-timeout release for UE `ue_idx` (the paper's
    /// 11.576 s inactivity event) and wait for the release to finish.
    pub fn trigger_idle_release(&mut self, ue_idx: usize) {
        let now = self.sim.now();
        self.sim
            .schedule_timer(self.enb, now, enb_token::IDLE_BASE + ue_idx as u64);
        let imsi = self.imsi(ue_idx);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            if self.sim.node_ref::<Mme>(self.mme).ue_state(imsi) == MmeUeState::Idle {
                return;
            }
        }
        panic!("idle release did not complete within 5s");
    }

    /// Issue a service request for an idle UE and wait for reconnection.
    pub fn service_request(&mut self, ue_idx: usize) {
        let now = self.sim.now();
        self.sim
            .schedule_timer(self.ues[ue_idx], now, ue_token::SERVICE_REQUEST);
        let imsi = self.imsi(ue_idx);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let done = self.sim.node_ref::<Mme>(self.mme).ue_state(imsi) == MmeUeState::Attached
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).state == UeState::Connected;
            if done {
                return;
            }
        }
        panic!("service request did not complete within 5s");
    }

    /// Start a background traffic source pushing `rate_bps` of UDP through
    /// the core SGW-U → PGW-U → Internet path (the competing load of
    /// Figs. 3(g)/10(b)). Returns the sink node on the Internet side.
    pub fn start_background_traffic(
        &mut self,
        rate_bps: u64,
        start: Instant,
        stop: Instant,
    ) -> NodeId {
        use acacia_simnet::traffic::{Sink, UdpSource};
        let (sink, sink_addr) = self.add_cloud_server(
            Box::new(Sink::new()),
            LinkConfig::delay_only(Duration::from_micros(200)),
        );
        let src = self.sim.add_node(Box::new(
            UdpSource::cbr((addr::BG_SOURCE, 7000), (sink_addr, 7001), rate_bps, 1_400)
                .window(start, stop),
        ));
        // Background traffic enters the SGW-U on a dedicated port and is
        // switched toward the PGW-U / Internet with plain output rules.
        const SGW_BG_PORT: usize = 3;
        self.sim.connect(
            (src, 0),
            (self.sgw_u, SGW_BG_PORT),
            LinkConfig::delay_only(Duration::from_micros(200)),
        );
        if !self.bg_installed {
            self.bg_installed = true;
            let sgw = self.sgw_u;
            self.sim.node_mut::<FlowSwitch>(sgw).install(
                1,
                FlowMatchSpec {
                    teid: None,
                    dst: None,
                    src: Some(addr::BG_SOURCE),
                },
                vec![FlowActionSpec::Output { port: 2 }],
            );
            let pgw = self.pgw_u;
            self.sim.node_mut::<FlowSwitch>(pgw).install(
                1,
                FlowMatchSpec {
                    teid: None,
                    dst: None,
                    src: Some(addr::BG_SOURCE),
                },
                vec![FlowActionSpec::Output { port: 2 }],
            );
        }
        self.sim.schedule_timer(src, start, UdpSource::KICKOFF);
        sink
    }

    /// Run the simulation for `d`.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.sim.now() + d;
        self.sim.run_until(t);
    }

    /// Set the per-frame loss probability on every radio link (both
    /// directions, every UE). Use after attach/bearer setup to model
    /// residual air-interface loss on the data path (control signalling
    /// rides acknowledged-mode RLC in real LTE).
    pub fn set_radio_loss(&mut self, loss: f64) {
        for (i, &ue) in self.ues.clone().iter().enumerate() {
            let radio_port = port::ENB_RADIO_BASE + i;
            self.sim
                .reconfigure_link((ue, port::UE_RADIO), |cfg| cfg.loss = loss);
            let enb = self.enb;
            self.sim
                .reconfigure_link((enb, radio_port), |cfg| cfg.loss = loss);
        }
    }
}
