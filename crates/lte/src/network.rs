//! Assembles the full LTE/EPC topology of the paper's Fig. 5 and drives
//! the standard procedures: attach, network-initiated dedicated bearer
//! activation, idle release and service-request re-establishment.
//!
//! ```text
//!  apps ── UE ──radio── eNB ──S1-U── SGW-U ──S5── PGW-U ── internet ── cloud
//!                        │  └─S1-U── local GW-U ── MEC servers
//!                        └──S1AP── MME ──GTP-C── GW-C ──OF── {GW-Us}
//!                                   │              │
//!                                  HSS           PCRF ──Rx── (MRS, in acacia core)
//! ```

use crate::enb::{token as enb_token, Enb};
use crate::entities::{
    gwc_port, mme_port, pcrf_port, GwControl, GwTopology, Hss, LocalGw, Mme, MmeUeState, Pcrf,
};
use crate::ids::Imsi;
use crate::log::MsgLog;
use crate::mobility::{A3Config, CellSite, Trajectory, Waypoint};
use crate::qci::Qci;
use crate::radio::{params, port};
use crate::switch::{FlowSwitch, SwitchCosts};
use crate::ue::{token as ue_token, AppSelector, Ue, UeMobility, UeState};
use crate::wire::{ControlMsg, FlowActionSpec, FlowMatchSpec, PolicyRule};
use acacia_geo::{PathLossModel, Point};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::{Node, NodeId, PortId, Simulator};
use acacia_simnet::time::{Duration, Instant};
use std::net::Ipv4Addr;

/// Well-known addresses in the reproduction's core network.
pub mod addr {
    use std::net::Ipv4Addr;

    /// eNB S1/control address.
    pub const ENB: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    /// eNB radio-side address.
    pub const ENB_RADIO: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    /// First UE radio-side address (host part increments per UE).
    pub const UE_RADIO_BASE: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 100);
    /// Core SGW-U.
    pub const SGW_U: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
    /// Core PGW-U.
    pub const PGW_U: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);
    /// Local (MEC) combined S/PGW-U.
    pub const LOCAL_GWU: Ipv4Addr = Ipv4Addr::new(10, 2, 1, 1);
    /// MME.
    pub const MME: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 1);
    /// GW-C (SGW-C + PGW-C + PCEF).
    pub const GWC: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 2);
    /// PCRF.
    pub const PCRF: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 3);
    /// HSS.
    pub const HSS: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 4);
    /// UE IP pool base (PGW assigns base+1, base+2, ...).
    pub const UE_POOL: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 0);
    /// First MEC server address.
    pub const MEC_BASE: Ipv4Addr = Ipv4Addr::new(10, 4, 0, 1);
    /// First cloud server address.
    pub const CLOUD_BASE: Ipv4Addr = Ipv4Addr::new(52, 0, 0, 1);
    /// Background traffic source.
    pub const BG_SOURCE: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);

    /// S1/control address of the eNB serving cell `i` (cell 0 is [`ENB`]).
    pub fn enb(i: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(ENB) + i as u32)
    }

    /// Radio-side address of the eNB serving cell `i`.
    pub fn enb_radio(i: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(ENB_RADIO) + i as u32)
    }

    /// Address of local GW-U site `s` (site 0 is [`LOCAL_GWU`]).
    pub fn local_gwu(s: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(LOCAL_GWU) + s as u32)
    }

    /// Address of MEC server `k` behind local GW-U site `s` (site 0's
    /// first server is [`MEC_BASE`], preserving the single-site scheme).
    pub fn mec(s: usize, k: usize) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(MEC_BASE) + ((s as u32) << 8) + k as u32)
    }
}

/// One cell of the radio topology.
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    /// Transmitter position, metres (drives the RSRP seen by moving UEs).
    pub pos: Point,
    /// Does this cell's eNB have an S1 leg to the local (MEC) GW-U? The
    /// paper's small cell does; the macrocell does not.
    pub mec: bool,
    /// Spatial region (shard affinity): the cell's eNB, its UEs and their
    /// apps all execute on shard `region % shards`. Scenarios that never
    /// run sharded can leave every cell in region 0.
    pub region: u32,
}

/// Tunable parameters of the topology.
#[derive(Debug, Clone)]
pub struct LteConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Uplink air rate, bits/s.
    pub ul_rate_bps: u64,
    /// Downlink air rate, bits/s.
    pub dl_rate_bps: u64,
    /// One-way eNB ↔ SGW-U backhaul delay.
    pub backhaul_delay: Duration,
    /// One-way SGW-U ↔ PGW-U delay (the paper's "hierarchical routing in
    /// the core network" inflation).
    pub core_delay: Duration,
    /// One-way PGW-U ↔ Internet-exchange delay.
    pub inet_delay: Duration,
    /// Capacity of the SGW↔PGW and PGW↔internet links, bits/s.
    pub core_rate_bps: u64,
    /// Queue bound on the core links, bytes (bufferbloat knob for
    /// Fig. 3(g)/10(b)).
    pub core_queue_bytes: u64,
    /// One-way eNB ↔ local GW-U delay (MEC placement: paper measures the
    /// eNB↔MEC RTT at ~1.6 ms).
    pub mec_delay: Duration,
    /// Processing model of the core GW-Us.
    pub core_switch_costs: SwitchCosts,
    /// Processing model of the local GW-U.
    pub local_switch_costs: SwitchCosts,
    /// Subscribers to provision (one UE node each).
    pub ue_count: usize,
    /// Independent per-frame loss probability on the radio links (fault
    /// injection; residual loss after HARQ in a real deployment). Note:
    /// real LTE carries RRC/NAS on acknowledged-mode RLC, so prefer
    /// attaching first and injecting loss afterwards via
    /// [`LteNetwork::set_radio_loss`].
    pub radio_loss: f64,
    /// Automatic inactivity release at the eNB (the paper's 11.576 s
    /// timer; see [`crate::overhead::IDLE_TIMEOUT`]). `None` = procedures
    /// are driven explicitly by the harness.
    pub auto_idle: Option<Duration>,
    /// Radio cells (one eNB each). The first cell is where UEs initially
    /// camp. At most `ENB_RADIO_BASE - ENB_X2_BASE` (= 36) cells.
    pub cells: Vec<CellConfig>,
    /// Per-UE visible-cell lists (`ue_cells[i]` = global cell indices UE
    /// `i` is registered on; the first entry is where it camps). Empty =
    /// every UE sees every cell, the pre-city behaviour. A city topology
    /// scopes each UE to its own region's cells so shards stay decoupled.
    pub ue_cells: Vec<Vec<usize>>,
    /// Build one local (MEC) GW-U + MEC router per region that has at
    /// least one MEC cell, instead of a single shared site. Required for
    /// near-linear shard scaling: a single local GW-U serializes every
    /// region's MEC traffic onto one shard.
    pub local_gw_per_region: bool,
    /// Path-loss model shared by all cells (RSRP ground truth).
    pub pathloss: PathLossModel,
    /// A3 handover-event parameters for moving UEs.
    pub a3: A3Config,
    /// Route MEC-server traffic from the Internet exchange through the
    /// local GW-U ("core detour"): lets a UE that lost its dedicated
    /// bearer still reach MEC servers over the default bearer, at core-
    /// network latency cost.
    pub core_detour: bool,
}

impl Default for LteConfig {
    fn default() -> LteConfig {
        LteConfig {
            seed: 1,
            ul_rate_bps: params::UL_RATE_EXCELLENT,
            dl_rate_bps: params::DL_RATE,
            backhaul_delay: Duration::from_micros(1_000),
            core_delay: Duration::from_micros(5_000),
            inet_delay: Duration::from_micros(500),
            core_rate_bps: 1_000_000_000,
            core_queue_bytes: 4 * 1024 * 1024,
            mec_delay: Duration::from_micros(400),
            core_switch_costs: SwitchCosts::acacia_ovs(),
            local_switch_costs: SwitchCosts::acacia_ovs(),
            ue_count: 1,
            radio_loss: 0.0,
            auto_idle: None,
            cells: vec![CellConfig {
                pos: Point::new(0.0, 0.0),
                mec: true,
                region: 0,
            }],
            ue_cells: Vec::new(),
            local_gw_per_region: false,
            pathloss: PathLossModel::indoor_default(),
            a3: A3Config::default(),
            core_detour: false,
        }
    }
}

/// The assembled network with handles to every element.
pub struct LteNetwork {
    /// The underlying simulator.
    pub sim: Simulator,
    /// Shared control-plane message log.
    pub log: MsgLog,
    /// Configuration used to build it.
    pub cfg: LteConfig,
    /// UE node ids (one per subscriber).
    pub ues: Vec<NodeId>,
    /// eNB node ids, one per cell (`enbs[0] == enb`).
    pub enbs: Vec<NodeId>,
    /// The first cell's eNB node id.
    pub enb: NodeId,
    /// MME node id.
    pub mme: NodeId,
    /// HSS node id.
    pub hss: NodeId,
    /// PCRF node id.
    pub pcrf: NodeId,
    /// GW-C node id.
    pub gwc: NodeId,
    /// Core SGW-U node id.
    pub sgw_u: NodeId,
    /// Core PGW-U node id.
    pub pgw_u: NodeId,
    /// First local (MEC) GW-U node id (`local_sites[0]`).
    pub local_gwu: NodeId,
    /// Router fanning out to the first site's MEC servers.
    pub mec_router: NodeId,
    /// Router fanning out to cloud servers (the Internet).
    pub inet_router: NodeId,
    /// MME-side port of each cell's S1AP link (`mme_ports[i]` ↔ cell `i`).
    mme_ports: Vec<PortId>,
    next_ue_app_port: Vec<PortId>,
    /// Local GW-U sites (one in single-site mode; one per MEC region when
    /// `local_gw_per_region` is set).
    local_sites: Vec<LocalSite>,
    /// Visible-cell list per UE (global cell indices, camp cell first).
    ue_vis: Vec<Vec<usize>>,
    /// eNB-side radio port per UE per visible cell, parallel to `ue_vis`.
    ue_radio_ports: Vec<Vec<PortId>>,
    /// Region hosting the shared core (MME/GW-C/SGW/PGW/Internet).
    core_region: u32,
    cloud_servers: usize,
    bg_installed: bool,
    detour_installed: bool,
    /// Has [`LteNetwork::enable_failover_core_path`] wired the per-site
    /// core routes? Off by default — the flag gates every route delta so
    /// existing scenarios stay byte-identical.
    mec_core_routes: bool,
}

/// One local (MEC) GW-U site: the switch, its server-side router, and the
/// servers attached so far.
struct LocalSite {
    region: u32,
    gwu: NodeId,
    router: NodeId,
    servers: Vec<Ipv4Addr>,
    /// Attached UE addresses camped in this site's region (snapshotted by
    /// [`LteNetwork::enable_failover_core_path`]); these keep the local
    /// GW-U fast path when the site router grows a core-facing default.
    ue_hosts: Vec<Ipv4Addr>,
}

/// Port on the Internet router reserved for the core-detour link toward
/// the local GW-U (cloud servers occupy ports 1..).
const INET_DETOUR_PORT: PortId = 64;
/// Port on the local GW-U reserved for the core-detour link (1 and 4+ are
/// eNB-facing, 2 faces the MEC router, 0 is OpenFlow control).
const LOCAL_DETOUR_PORT: PortId = 3;
/// Port on each *site router* reserved for the failover core-path link
/// (0 faces the local GW-U, 1.. fan out to the site's servers).
const SITE_DETOUR_PORT: PortId = 63;
/// First Internet-router port for the per-site failover links (site `s`
/// lands on `INET_SITE_BASE + s`). Only used in per-region mode, where
/// the single-site [`INET_DETOUR_PORT`] detour is asserted off, so the
/// shared base is safe.
const INET_SITE_BASE: PortId = 64;

impl LteNetwork {
    /// Build the topology.
    pub fn new(cfg: LteConfig) -> LteNetwork {
        let mut sim = Simulator::new(cfg.seed);
        let log = MsgLog::new();

        let cells = cfg.cells.clone();
        assert!(!cells.is_empty(), "topology needs >= 1 cell");
        assert!(
            cells.len() <= port::ENB_RADIO_BASE - port::ENB_X2_BASE,
            "X2 port window caps the topology at {} cells",
            port::ENB_RADIO_BASE - port::ENB_X2_BASE
        );
        assert!(
            !(cfg.core_detour && cfg.local_gw_per_region),
            "core_detour supports only the single-site local GW-U"
        );
        if !cfg.ue_cells.is_empty() {
            assert_eq!(
                cfg.ue_cells.len(),
                cfg.ue_count,
                "ue_cells must list visible cells for every UE"
            );
            for (i, vis) in cfg.ue_cells.iter().enumerate() {
                assert!(!vis.is_empty(), "UE {i} must see >= 1 cell");
                assert!(
                    vis.iter().all(|&c| c < cells.len()),
                    "UE {i} visible-cell index out of range"
                );
            }
        }
        let core_region = cells[0].region;

        // Local GW-U sites: in per-region mode, one per region with at
        // least one MEC cell (ordered by first appearance over the cell
        // list); otherwise a single site serving every MEC cell.
        let mut site_regions: Vec<u32> = Vec::new();
        if cfg.local_gw_per_region {
            for c in cells.iter().filter(|c| c.mec) {
                if !site_regions.contains(&c.region) {
                    site_regions.push(c.region);
                }
            }
            assert!(
                !site_regions.is_empty(),
                "local_gw_per_region needs >= 1 MEC cell"
            );
        } else {
            site_regions.push(
                cells
                    .iter()
                    .find(|c| c.mec)
                    .map_or(core_region, |c| c.region),
            );
        }
        let per_region = cfg.local_gw_per_region;
        let site_of_region = |r: u32| -> usize {
            if per_region {
                site_regions
                    .iter()
                    .position(|&x| x == r)
                    .expect("MEC cell region has a local site")
            } else {
                0
            }
        };

        // Per-site eNB port maps on the local GW-Us: within each site the
        // first MEC cell lands on port 1, further MEC cells from port 4
        // (2 = MEC router, 3 = core detour, 0 = OpenFlow control).
        let nsites = site_regions.len();
        let mut site_enb_ports: Vec<Vec<(Ipv4Addr, usize)>> = vec![Vec::new(); nsites];
        let mut site_enbs: Vec<Vec<Ipv4Addr>> = vec![Vec::new(); nsites];
        let mut mec_links: Vec<(usize, usize, PortId)> = Vec::new(); // (cell, site, port)
        for (i, c) in cells.iter().enumerate() {
            if c.mec {
                let s = site_of_region(c.region);
                let k = site_enbs[s].len();
                let lp = if k == 0 { 1 } else { 3 + k };
                mec_links.push((i, s, lp));
                site_enb_ports[s].push((addr::enb(i), lp));
                site_enbs[s].push(addr::enb(i));
            }
        }

        let mut enb_nodes: Vec<Enb> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut e = Enb::new(addr::enb(i), addr::MME, cfg.dl_rate_bps, log.clone());
                e.auto_idle = cfg.auto_idle;
                e.add_s1_gateway(addr::SGW_U, port::ENB_S1_CORE);
                if c.mec {
                    e.add_s1_gateway(addr::local_gwu(site_of_region(c.region)), port::ENB_S1_MEC);
                }
                e
            })
            .collect();
        // Every eNB knows every other as an X2 neighbour.
        for (i, e) in enb_nodes.iter_mut().enumerate() {
            for j in 0..cells.len() {
                if i != j {
                    e.add_x2_neighbor(addr::enb_radio(j), addr::enb(j), port::ENB_X2_BASE + j);
                }
            }
        }

        // Subscribers: each UE is registered on every cell it can see, in
        // its visibility order, and remembers the eNB-side radio port each
        // registration returned (ports differ per eNB once visibility is
        // scoped — eNBs hand out sequential ports to *their* subscribers).
        let all_cells: Vec<usize> = (0..cells.len()).collect();
        let mut imsis = Vec::new();
        let mut ue_nodes = Vec::new();
        let mut ue_vis: Vec<Vec<usize>> = Vec::new();
        let mut ue_radio_ports: Vec<Vec<PortId>> = Vec::new();
        for i in 0..cfg.ue_count {
            let imsi = Imsi(310_410_000_000_001 + i as u64);
            let radio_addr = Ipv4Addr::from(u32::from(addr::UE_RADIO_BASE) + i as u32);
            let vis: Vec<usize> = if cfg.ue_cells.is_empty() {
                all_cells.clone()
            } else {
                cfg.ue_cells[i].clone()
            };
            let ports: Vec<PortId> = vis
                .iter()
                .map(|&c| enb_nodes[c].add_ue(imsi, radio_addr))
                .collect();
            imsis.push(imsi);
            ue_nodes.push((imsi, radio_addr));
            ue_vis.push(vis);
            ue_radio_ports.push(ports);
        }

        let enbs: Vec<NodeId> = enb_nodes
            .into_iter()
            .enumerate()
            .map(|(i, e)| sim.add_node_in_region(Box::new(e), cells[i].region))
            .collect();
        let enb = enbs[0];
        // X2 mesh (direct eNB↔eNB, backhaul-class links).
        let x2 = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.backhaul_delay)
            .with_queue(cfg.core_queue_bytes);
        for i in 0..cells.len() {
            for j in (i + 1)..cells.len() {
                sim.connect(
                    (enbs[i], port::ENB_X2_BASE + j),
                    (enbs[j], port::ENB_X2_BASE + i),
                    x2.clone(),
                );
            }
        }

        let mut ues = Vec::new();
        let air = LinkConfig::delay_only(params::AIR_LATENCY)
            .with_jitter(params::AIR_JITTER)
            .with_loss(cfg.radio_loss);
        for (i, &(imsi, radio_addr)) in ue_nodes.iter().enumerate() {
            let vis = &ue_vis[i];
            let mut ue_node = Ue::new(imsi, radio_addr, addr::enb_radio(vis[0]), cfg.ul_rate_bps);
            for &c in &vis[1..] {
                ue_node.add_cell(addr::enb_radio(c));
            }
            // A UE (and, later, its apps) lives in the region of the cell
            // it camps on.
            let ue = sim.add_node_in_region(Box::new(ue_node), cells[vis[0]].region);
            // The air interfaces: pure latency + jitter; serialization is
            // handled by the UE/eNB radio schedulers.
            for (k, &c) in vis.iter().enumerate() {
                let ue_port = if k == 0 {
                    port::UE_RADIO
                } else {
                    port::UE_CELL_BASE + k
                };
                sim.connect((ue, ue_port), (enbs[c], ue_radio_ports[i][k]), air.clone());
            }
            ues.push(ue);
        }

        let mut mme_node = Mme::new(addr::MME, addr::enb(0), addr::GWC, addr::HSS, log.clone());
        let mut mme_ports = vec![mme_port::ENB];
        for i in 1..cells.len() {
            mme_ports.push(mme_node.register_enb(addr::enb(i)));
        }
        let mme = sim.add_node_in_region(Box::new(mme_node), core_region);
        let hss = sim.add_node_in_region(
            Box::new(Hss::new(addr::HSS, imsis.clone(), log.clone())),
            core_region,
        );
        let pcrf = sim.add_node_in_region(
            Box::new(Pcrf::new(addr::PCRF, addr::GWC, log.clone())),
            core_region,
        );

        // Per-cell user-plane port map on the SGW-U: cell 0 on port 1,
        // extra cells from 4 (2 = PGW, 3 = background source).
        let mut sgw_enb_ports = Vec::new();
        for (i, _) in cells.iter().enumerate() {
            let sgw_port = if i == 0 { 1 } else { 3 + i };
            sgw_enb_ports.push((addr::enb(i), sgw_port));
        }

        let topo = GwTopology {
            sgw_u: addr::SGW_U,
            pgw_u: addr::PGW_U,
            sgw_port_enb: 1,
            sgw_port_pgw: 2,
            pgw_port_sgw: 1,
            pgw_port_inet: 2,
            locals: (0..nsites)
                .map(|s| LocalGw {
                    addr: addr::local_gwu(s),
                    ctrl_port: gwc_port::LOCAL_GWU_BASE + s,
                    port_enb: site_enb_ports[s].first().map_or(1, |&(_, p)| p),
                    port_mec: 2,
                    enb_ports: site_enb_ports[s].clone(),
                    enbs: site_enbs[s].clone(),
                    servers: Vec::new(),
                })
                .collect(),
            ue_ip_base: addr::UE_POOL,
            sgw_enb_ports,
        };
        let gwc = sim.add_node_in_region(
            Box::new(GwControl::new(addr::GWC, topo, log.clone())),
            core_region,
        );

        let mut sgw_u_node = FlowSwitch::new(addr::SGW_U, cfg.core_switch_costs);
        // The SGW buffers downlink data for idle UEs and raises Downlink
        // Data Notifications (its paging role).
        sgw_u_node.paging_enabled = true;
        let sgw_u = sim.add_node_in_region(Box::new(sgw_u_node), core_region);
        let pgw_u = sim.add_node_in_region(
            Box::new(FlowSwitch::new(addr::PGW_U, cfg.core_switch_costs)),
            core_region,
        );

        // One local GW-U + MEC router per site, each living in its site's
        // region so MEC traffic stays on its region's shard.
        let mut local_sites = Vec::new();
        for (s, &region) in site_regions.iter().enumerate() {
            let gwu = sim.add_node_in_region(
                Box::new(FlowSwitch::new(addr::local_gwu(s), cfg.local_switch_costs)),
                region,
            );
            let router = sim.add_node_in_region(
                Box::new(acacia_simnet::router::Router::new(
                    acacia_simnet::router::RouteTable::new(),
                )),
                region,
            );
            local_sites.push(LocalSite {
                region,
                gwu,
                router,
                servers: Vec::new(),
                ue_hosts: Vec::new(),
            });
        }
        let local_gwu = local_sites[0].gwu;
        let mec_router = local_sites[0].router;

        let inet_router = sim.add_node_in_region(
            Box::new(acacia_simnet::router::Router::new(
                acacia_simnet::router::RouteTable::new(),
            )),
            core_region,
        );

        let ctrl = LinkConfig::delay_only(Duration::from_micros(500));
        // S1AP + core control mesh.
        for (i, &enb_i) in enbs.iter().enumerate() {
            sim.connect((enb_i, port::ENB_S1AP), (mme, mme_ports[i]), ctrl.clone());
        }
        sim.connect((mme, mme_port::GWC), (gwc, gwc_port::MME), ctrl.clone());
        sim.connect((mme, mme_port::HSS), (hss, 0), ctrl.clone());
        sim.connect((gwc, gwc_port::PCRF), (pcrf, pcrf_port::GWC), ctrl.clone());
        sim.connect(
            (gwc, gwc_port::SGW_U),
            (sgw_u, FlowSwitch::CONTROL_PORT),
            ctrl.clone(),
        );
        sim.connect(
            (gwc, gwc_port::PGW_U),
            (pgw_u, FlowSwitch::CONTROL_PORT),
            ctrl.clone(),
        );
        for (s, site) in local_sites.iter().enumerate() {
            sim.connect(
                (gwc, gwc_port::LOCAL_GWU_BASE + s),
                (site.gwu, FlowSwitch::CONTROL_PORT),
                ctrl.clone(),
            );
        }

        // User plane.
        let backhaul = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.backhaul_delay)
            .with_queue(cfg.core_queue_bytes);
        let core = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.core_delay)
            .with_queue(cfg.core_queue_bytes);
        let inet = LinkConfig::rate_limited(cfg.core_rate_bps, cfg.inet_delay)
            .with_queue(cfg.core_queue_bytes);
        let mec =
            LinkConfig::rate_limited(1_000_000_000, cfg.mec_delay).with_queue(4 * 1024 * 1024);
        for (i, &enb_i) in enbs.iter().enumerate() {
            let sgw_port = if i == 0 { 1 } else { 3 + i };
            sim.connect(
                (enb_i, port::ENB_S1_CORE),
                (sgw_u, sgw_port),
                backhaul.clone(),
            );
        }
        sim.connect((sgw_u, 2), (pgw_u, 1), core);
        sim.connect((pgw_u, 2), (inet_router, 0), inet.clone());
        for &(cell, s, lp) in &mec_links {
            sim.connect(
                (enbs[cell], port::ENB_S1_MEC),
                (local_sites[s].gwu, lp),
                mec.clone(),
            );
        }
        for site in &local_sites {
            sim.connect((site.gwu, 2), (site.router, 0), mec.clone());
        }
        if cfg.core_detour {
            // Internet exchange ↔ local GW-U shortcut so MEC servers stay
            // reachable over the default bearer.
            sim.connect(
                (local_gwu, LOCAL_DETOUR_PORT),
                (inet_router, INET_DETOUR_PORT),
                inet,
            );
        }

        let ue_count = ue_nodes.len();
        LteNetwork {
            sim,
            log,
            cfg,
            ues,
            enbs,
            enb,
            mme,
            hss,
            pcrf,
            gwc,
            sgw_u,
            pgw_u,
            local_gwu,
            mec_router,
            inet_router,
            mme_ports,
            next_ue_app_port: vec![port::UE_APP_BASE; ue_count],
            local_sites,
            ue_vis,
            ue_radio_ports,
            core_region,
            cloud_servers: 0,
            bg_installed: false,
            detour_installed: false,
            mec_core_routes: false,
        }
    }

    /// IMSI of UE `i`.
    pub fn imsi(&self, i: usize) -> Imsi {
        Imsi(310_410_000_000_001 + i as u64)
    }

    /// Connect an application node (its port 0) to UE `ue_idx`, receiving
    /// downlink traffic selected by `selector`.
    pub fn connect_ue_app(
        &mut self,
        ue_idx: usize,
        app: Box<dyn Node>,
        selector: AppSelector,
    ) -> NodeId {
        let ue = self.ues[ue_idx];
        // The app shares its UE's region (and therefore its shard).
        let app_id = self.sim.add_node_in_region(app, self.sim.region_of(ue));
        let ue_port = self.next_ue_app_port[ue_idx];
        self.next_ue_app_port[ue_idx] += 1;
        self.sim
            .connect((app_id, 0), (ue, ue_port), crate::ue::loopback());
        self.sim.node_mut::<Ue>(ue).register_app(selector, ue_port);
        app_id
    }

    /// Add a MEC server behind the first local GW-U site; returns
    /// `(node, address)`.
    pub fn add_mec_server(&mut self, server: Box<dyn Node>) -> (NodeId, Ipv4Addr) {
        self.add_mec_server_at_site(0, server)
    }

    /// Add a MEC server behind `region`'s local GW-U (requires
    /// [`LteConfig::local_gw_per_region`] and a MEC cell in that region);
    /// returns `(node, address)`.
    pub fn add_mec_server_in_region(
        &mut self,
        region: u32,
        server: Box<dyn Node>,
    ) -> (NodeId, Ipv4Addr) {
        let s = self
            .local_sites
            .iter()
            .position(|site| site.region == region)
            .unwrap_or_else(|| panic!("region {region} has no local GW-U site"));
        self.add_mec_server_at_site(s, server)
    }

    fn add_mec_server_at_site(&mut self, s: usize, server: Box<dyn Node>) -> (NodeId, Ipv4Addr) {
        let region = self.local_sites[s].region;
        let id = self.sim.add_node_in_region(server, region);
        let server_addr = addr::mec(s, self.local_sites[s].servers.len());
        self.local_sites[s].servers.push(server_addr);
        let router_port = self.local_sites[s].servers.len(); // ports 1..
        let site_router = self.local_sites[s].router;
        self.sim.connect(
            (site_router, router_port),
            (id, 0),
            LinkConfig::delay_only(Duration::from_micros(100)),
        );
        // Route server-bound traffic out, and UE-bound responses back into
        // the local GW-U (default route on port 0).
        self.rebuild_site_routes(s);
        // Tell the GW-C this address lives on site `s`'s MEC.
        // (GwTopology is owned by the GW-C node.)
        self.with_gwc_topology(|topo| topo.locals[s].servers.push(server_addr));
        if self.cfg.core_detour {
            // Static plumbing for the detour path (installed directly —
            // this is topology, not per-session OpenFlow state): Internet-
            // side traffic for this server turns toward the MEC router,
            // and anything the local GW-U cannot match (e.g. server
            // responses for a UE with no dedicated bearer) exits toward
            // the Internet exchange.
            let lg = self.local_gwu;
            let sw = self.sim.node_mut::<FlowSwitch>(lg);
            sw.install(
                2,
                FlowMatchSpec {
                    teid: None,
                    dst: Some(server_addr),
                    src: None,
                },
                vec![FlowActionSpec::Output { port: 2 }],
            );
            if !self.detour_installed {
                self.detour_installed = true;
                let sw = self.sim.node_mut::<FlowSwitch>(lg);
                sw.install(
                    1,
                    FlowMatchSpec {
                        teid: None,
                        dst: None,
                        src: None,
                    },
                    vec![FlowActionSpec::Output {
                        port: LOCAL_DETOUR_PORT,
                    }],
                );
            }
            self.rebuild_inet_routes();
        }
        (id, server_addr)
    }

    /// Add a cloud server behind the Internet router over `wan` link
    /// characteristics; returns `(node, address)`.
    pub fn add_cloud_server(
        &mut self,
        server: Box<dyn Node>,
        wan: LinkConfig,
    ) -> (NodeId, Ipv4Addr) {
        let id = self.sim.add_node_in_region(server, self.core_region);
        let server_addr = Ipv4Addr::from(u32::from(addr::CLOUD_BASE) + self.cloud_servers as u32);
        self.cloud_servers += 1;
        let router_port = self.cloud_servers;
        self.sim
            .connect((self.inet_router, router_port), (id, 0), wan);
        self.rebuild_inet_routes();
        (id, server_addr)
    }

    /// (Re)program site `s`'s server-side router: host routes fanning out
    /// to the site's servers, plus either a default back into the local
    /// GW-U (classic shape) or — with the failover core path on — host
    /// routes keeping *own-region* UEs on the GW-U fast path while
    /// everything else (foreign UEs, the cloud MRS) exits toward the
    /// Internet exchange.
    fn rebuild_site_routes(&mut self, s: usize) {
        let site_router = self.local_sites[s].router;
        let mut t = acacia_simnet::router::RouteTable::new();
        for (i, &a) in self.local_sites[s].servers.iter().enumerate() {
            t.add(acacia_simnet::router::Ipv4Net::host(a), i + 1);
        }
        if self.mec_core_routes {
            for &a in &self.local_sites[s].ue_hosts {
                t.add(acacia_simnet::router::Ipv4Net::host(a), 0);
            }
            t.add(
                acacia_simnet::router::Ipv4Net::default_route(),
                SITE_DETOUR_PORT,
            );
        } else {
            t.add(acacia_simnet::router::Ipv4Net::default_route(), 0);
        }
        self.sim
            .node_mut::<acacia_simnet::router::Router>(site_router)
            .set_table(t);
    }

    /// Make every MEC server reachable over the **default bearer through
    /// the core** (UE → SGW/PGW-U → Internet exchange → site router), and
    /// every MEC server able to reach the cloud (MRS heartbeats) and
    /// foreign-region UEs the same way. This is the data path a failed-
    /// over session rides when its new CI server sits in a different
    /// region — no local GW-U shortcut exists there — and the return path
    /// for that server's downlink.
    ///
    /// Per-region mode only (the single-site `core_detour` covers the
    /// other shape and is mutually exclusive). Call **after** every UE
    /// has attached and every MEC/cloud server has been added: the site
    /// routes snapshot the attached UE addresses so each site keeps its
    /// local fast path for its own region's UEs.
    pub fn enable_failover_core_path(&mut self) {
        assert!(
            !self.cfg.core_detour,
            "the failover core path replaces the single-site core detour"
        );
        if self.mec_core_routes {
            return;
        }
        self.mec_core_routes = true;
        let inet = LinkConfig::rate_limited(self.cfg.core_rate_bps, self.cfg.inet_delay)
            .with_queue(self.cfg.core_queue_bytes);
        // Snapshot attached UE addresses per region (region = camp cell's
        // region, which is also the UE node's shard region).
        let mut ue_hosts: Vec<(u32, Ipv4Addr)> = Vec::new();
        for i in 0..self.ues.len() {
            let imsi = self.imsi(i);
            let addr = self.sim.node_ref::<GwControl>(self.gwc).ue_addr(imsi);
            if let Some(a) = addr {
                ue_hosts.push((self.sim.region_of(self.ues[i]), a));
            }
        }
        for s in 0..self.local_sites.len() {
            let router = self.local_sites[s].router;
            self.sim.connect(
                (router, SITE_DETOUR_PORT),
                (self.inet_router, INET_SITE_BASE + s),
                inet.clone(),
            );
            let region = self.local_sites[s].region;
            self.local_sites[s].ue_hosts = ue_hosts
                .iter()
                .filter(|&&(r, _)| r == region)
                .map(|&(_, a)| a)
                .collect();
            self.rebuild_site_routes(s);
        }
        self.rebuild_inet_routes();
    }

    /// Node id and data-plane address of `region`'s local GW-U — the
    /// crash-injection target for correlated region outages.
    pub fn local_gwu_in_region(&self, region: u32) -> (NodeId, Ipv4Addr) {
        let s = self
            .local_sites
            .iter()
            .position(|site| site.region == region)
            .unwrap_or_else(|| panic!("region {region} has no local GW-U site"));
        (self.local_sites[s].gwu, addr::local_gwu(s))
    }

    /// (Re)program the Internet exchange: default route into the core,
    /// host routes for cloud servers, and — when the core detour is on —
    /// host routes steering MEC-server traffic down the detour link.
    fn rebuild_inet_routes(&mut self) {
        let inet_router = self.inet_router;
        let mut t = acacia_simnet::router::RouteTable::new();
        t.add(acacia_simnet::router::Ipv4Net::default_route(), 0);
        for i in 0..self.cloud_servers {
            let a = Ipv4Addr::from(u32::from(addr::CLOUD_BASE) + i as u32);
            t.add(acacia_simnet::router::Ipv4Net::host(a), i + 1);
        }
        if self.cfg.core_detour {
            for site in &self.local_sites {
                for &a in &site.servers {
                    t.add(acacia_simnet::router::Ipv4Net::host(a), INET_DETOUR_PORT);
                }
            }
        } else if self.mec_core_routes {
            for (s, site) in self.local_sites.iter().enumerate() {
                for &a in &site.servers {
                    t.add(acacia_simnet::router::Ipv4Net::host(a), INET_SITE_BASE + s);
                }
            }
        }
        self.sim
            .node_mut::<acacia_simnet::router::Router>(inet_router)
            .set_table(t);
    }

    fn with_gwc_topology(&mut self, f: impl FnOnce(&mut GwTopology)) {
        let gwc = self.gwc;
        let node = self.sim.node_mut::<GwControl>(gwc);
        f(node.topology_mut());
    }

    /// Attach UE `ue_idx`: runs the full attach procedure and returns the
    /// assigned UE IP. Panics if attachment does not complete within 5 s of
    /// simulated time (a protocol bug, not an environmental condition).
    pub fn attach(&mut self, ue_idx: usize) -> Ipv4Addr {
        let start = self.sim.now();
        self.sim
            .schedule_timer(self.ues[ue_idx], start, ue_token::ATTACH);
        let imsi = self.imsi(ue_idx);
        let deadline = start + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let attached = self.sim.node_ref::<Mme>(self.mme).ue_state(imsi)
                == MmeUeState::Attached
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).state == UeState::Connected
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).ip.is_some();
            if attached {
                return self
                    .sim
                    .node_ref::<Ue>(self.ues[ue_idx])
                    .ip
                    .expect("checked");
            }
        }
        panic!("UE {ue_idx} failed to attach within 5s of simulated time");
    }

    /// Request a dedicated bearer by injecting an Rx request at the PCRF
    /// (in the full ACACIA stack the MRS sends this; `acacia` core wires a
    /// real MRS node to the PCRF's AF port). Waits for activation.
    pub fn activate_dedicated_bearer(&mut self, ue_idx: usize, rule: PolicyRule) {
        let before = self.sim.node_ref::<GwControl>(self.gwc).dedicated_active;
        let now = self.sim.now();
        let msg = ControlMsg::RxAuthRequest { rule };
        // Record the AF-side (MRS) send; the PCRF and friends record their
        // own downstream messages.
        self.log.record(now, &msg);
        let pkt = msg.into_packet(Ipv4Addr::UNSPECIFIED, addr::PCRF);
        self.sim.inject_packet(self.pcrf, pcrf_port::AF, now, pkt);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let active = self.sim.node_ref::<GwControl>(self.gwc).dedicated_active > before
                && self
                    .sim
                    .node_ref::<Ue>(self.ues[ue_idx])
                    .has_dedicated_bearer();
            if active {
                return;
            }
        }
        panic!("dedicated bearer activation did not complete within 5s");
    }

    /// Trigger the idle-timeout release for UE `ue_idx` (the paper's
    /// 11.576 s inactivity event) and wait for the release to finish.
    pub fn trigger_idle_release(&mut self, ue_idx: usize) {
        let now = self.sim.now();
        // The eNB keys its idle timers by *its* subscriber index, which is
        // the UE's radio-port offset on that eNB.
        let local = (self.radio_downlink(0, ue_idx).1 - port::ENB_RADIO_BASE) as u64;
        self.sim
            .schedule_timer(self.enb, now, enb_token::IDLE_BASE + local);
        let imsi = self.imsi(ue_idx);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            if self.sim.node_ref::<Mme>(self.mme).ue_state(imsi) == MmeUeState::Idle {
                return;
            }
        }
        panic!("idle release did not complete within 5s");
    }

    /// Issue a service request for an idle UE and wait for reconnection.
    pub fn service_request(&mut self, ue_idx: usize) {
        let now = self.sim.now();
        self.sim
            .schedule_timer(self.ues[ue_idx], now, ue_token::SERVICE_REQUEST);
        let imsi = self.imsi(ue_idx);
        let deadline = now + Duration::from_secs(5);
        while self.sim.now() < deadline {
            self.sim
                .run_until(self.sim.now() + Duration::from_millis(10));
            let done = self.sim.node_ref::<Mme>(self.mme).ue_state(imsi) == MmeUeState::Attached
                && self.sim.node_ref::<Ue>(self.ues[ue_idx]).state == UeState::Connected;
            if done {
                return;
            }
        }
        panic!("service request did not complete within 5s");
    }

    /// Start a background traffic source pushing `rate_bps` of UDP through
    /// the core SGW-U → PGW-U → Internet path (the competing load of
    /// Figs. 3(g)/10(b)). Returns the sink node on the Internet side.
    pub fn start_background_traffic(
        &mut self,
        rate_bps: u64,
        start: Instant,
        stop: Instant,
    ) -> NodeId {
        use acacia_simnet::traffic::{Sink, UdpSource};
        let (sink, sink_addr) = self.add_cloud_server(
            Box::new(Sink::new()),
            LinkConfig::delay_only(Duration::from_micros(200)),
        );
        let src = self.sim.add_node_in_region(
            Box::new(
                UdpSource::cbr((addr::BG_SOURCE, 7000), (sink_addr, 7001), rate_bps, 1_400)
                    .with_tos(Qci::DEFAULT_BEARER.tos())
                    .window(start, stop),
            ),
            self.core_region,
        );
        // Background traffic enters the SGW-U on a dedicated port and is
        // switched toward the PGW-U / Internet with plain output rules.
        const SGW_BG_PORT: usize = 3;
        self.sim.connect(
            (src, 0),
            (self.sgw_u, SGW_BG_PORT),
            LinkConfig::delay_only(Duration::from_micros(200)),
        );
        if !self.bg_installed {
            self.bg_installed = true;
            let sgw = self.sgw_u;
            self.sim.node_mut::<FlowSwitch>(sgw).install(
                1,
                FlowMatchSpec {
                    teid: None,
                    dst: None,
                    src: Some(addr::BG_SOURCE),
                },
                vec![FlowActionSpec::Output { port: 2 }],
            );
            let pgw = self.pgw_u;
            self.sim.node_mut::<FlowSwitch>(pgw).install(
                1,
                FlowMatchSpec {
                    teid: None,
                    dst: None,
                    src: Some(addr::BG_SOURCE),
                },
                vec![FlowActionSpec::Output { port: 2 }],
            );
        }
        self.sim.schedule_timer(src, start, UdpSource::KICKOFF);
        sink
    }

    /// Run the simulation for `d`.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.sim.now() + d;
        self.sim.run_until(t);
    }

    /// Put UE `ue_idx` on a waypoint walk starting now. The UE samples
    /// RSRP toward every cell on the configured A3 interval and reports
    /// A3 events to its serving eNB, which runs the X2 handover.
    pub fn start_mobility(&mut self, ue_idx: usize, waypoints: Vec<Waypoint>, speed_mps: f64) {
        // Measurement sites parallel the UE's visible-cell list (local
        // cell indices), not the global cell list.
        let sites: Vec<CellSite> = self.ue_vis[ue_idx]
            .iter()
            .map(|&c| CellSite {
                pos: self.cfg.cells[c].pos,
                model: self.cfg.pathloss,
            })
            .collect();
        let now = self.sim.now();
        let trajectory = Trajectory::new(waypoints, speed_mps, now);
        // Keep measuring a little past the walk so trailing handovers
        // (e.g. at the final waypoint) still trigger, then go quiet.
        let measure_until = now + trajectory.total_duration() + Duration::from_secs(5);
        let a3 = self.cfg.a3;
        let ue = self.ues[ue_idx];
        self.sim.node_mut::<Ue>(ue).mobility =
            Some(UeMobility::new(trajectory, sites, a3, measure_until));
        self.sim.schedule_timer(ue, now, ue_token::MEASURE);
    }

    /// Global index of the cell currently serving UE `ue_idx`.
    pub fn serving_cell(&self, ue_idx: usize) -> usize {
        self.ue_vis[ue_idx][self.sim.node_ref::<Ue>(self.ues[ue_idx]).serving]
    }

    /// Transmit endpoint of the S1AP link direction: eNB `cell` → MME.
    /// Pass to [`Simulator::attach_fault_plan`] to fault that direction.
    pub fn s1ap_uplink(&self, cell: usize) -> (NodeId, PortId) {
        (self.enbs[cell], port::ENB_S1AP)
    }

    /// Transmit endpoint of the S1AP link direction: MME → eNB `cell`.
    pub fn s1ap_downlink(&self, cell: usize) -> (NodeId, PortId) {
        (self.mme, self.mme_ports[cell])
    }

    /// Transmit endpoint of the X2 direction `from_cell` → `to_cell`.
    pub fn x2_link(&self, from_cell: usize, to_cell: usize) -> (NodeId, PortId) {
        assert_ne!(from_cell, to_cell, "an eNB has no X2 link to itself");
        (self.enbs[from_cell], port::ENB_X2_BASE + to_cell)
    }

    /// Transmit endpoint of the radio downlink: eNB `cell` → UE `ue_idx`
    /// (carries both RRC frames and user data toward the UE). Panics if
    /// the UE cannot see `cell`.
    pub fn radio_downlink(&self, cell: usize, ue_idx: usize) -> (NodeId, PortId) {
        let k = self.ue_vis[ue_idx]
            .iter()
            .position(|&c| c == cell)
            .unwrap_or_else(|| panic!("UE {ue_idx} does not see cell {cell}"));
        (self.enbs[cell], self.ue_radio_ports[ue_idx][k])
    }

    /// Transmit endpoint of the shared-core uplink: SGW-U → PGW-U, the
    /// leg where background traffic and default-bearer uplink contend
    /// (the bottleneck of the paper's Fig. 3(g)). Pass to
    /// [`Simulator::link_stats`] to read its per-class queue counters.
    pub fn core_uplink(&self) -> (NodeId, PortId) {
        const SGW_PORT_PGW: PortId = 2;
        (self.sgw_u, SGW_PORT_PGW)
    }

    /// Every control-plane fault-injection point — one entry per direction
    /// of every S1AP and X2 link, in a stable cell-major order. The index
    /// of an entry is a reproducible identity for deriving per-link fault
    /// seeds; the label names the direction for reports.
    pub fn control_fault_points(&self) -> Vec<((NodeId, PortId), String)> {
        let mut points = Vec::new();
        for i in 0..self.enbs.len() {
            points.push((self.s1ap_uplink(i), format!("s1ap[{i}]->mme")));
            points.push((self.s1ap_downlink(i), format!("mme->s1ap[{i}]")));
        }
        for i in 0..self.enbs.len() {
            for j in 0..self.enbs.len() {
                if i != j {
                    points.push((self.x2_link(i, j), format!("x2[{i}->{j}]")));
                }
            }
        }
        points
    }

    /// Set the per-frame loss probability on every radio link (both
    /// directions, every UE, every cell). Use after attach/bearer setup to
    /// model residual air-interface loss on the data path (control
    /// signalling rides acknowledged-mode RLC in real LTE).
    pub fn set_radio_loss(&mut self, loss: f64) {
        for (i, &ue) in self.ues.clone().iter().enumerate() {
            for (k, &c) in self.ue_vis[i].clone().iter().enumerate() {
                let ue_port = if k == 0 {
                    port::UE_RADIO
                } else {
                    port::UE_CELL_BASE + k
                };
                let enb = self.enbs[c];
                let radio_port = self.ue_radio_ports[i][k];
                self.sim
                    .reconfigure_link((ue, ue_port), |cfg| cfg.loss = loss);
                self.sim
                    .reconfigure_link((enb, radio_port), |cfg| cfg.loss = loss);
            }
        }
    }
}
