//! QoS Class Identifiers (3GPP TS 23.203 table 6.1.7).
//!
//! A bearer carries a QCI that fixes its scheduling priority, packet delay
//! budget and loss-rate target. ACACIA's dedicated MEC bearers use the
//! non-GBR QCIs 5–9 (paper Fig. 10(a) sweeps exactly those).

use serde::{Deserialize, Serialize};

/// A QoS Class Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qci(pub u8);

impl Qci {
    /// Default-bearer QCI in commercial LTE deployments.
    pub const DEFAULT_BEARER: Qci = Qci(9);

    /// The non-GBR QCIs swept in the paper's Fig. 10(a).
    pub const NON_GBR: [Qci; 5] = [Qci(5), Qci(6), Qci(7), Qci(8), Qci(9)];

    /// Scheduling priority (lower = served first), per TS 23.203.
    pub fn priority(&self) -> u8 {
        match self.0 {
            1 => 2,
            2 => 4,
            3 => 3,
            4 => 5,
            5 => 1,
            6 => 6,
            7 => 7,
            8 => 8,
            9 => 9,
            _ => 9,
        }
    }

    /// Packet delay budget in milliseconds, per TS 23.203.
    pub fn delay_budget_ms(&self) -> u32 {
        match self.0 {
            1 => 100,
            2 => 150,
            3 => 50,
            4 => 300,
            5 => 100,
            6 => 300,
            7 => 100,
            8 | 9 => 300,
            _ => 300,
        }
    }

    /// Packet error loss rate target (as a fraction), per TS 23.203.
    pub fn loss_rate(&self) -> f64 {
        match self.0 {
            1 => 1e-2,
            2 => 1e-3,
            3 => 1e-3,
            4 => 1e-6,
            5 => 1e-6,
            6 => 1e-6,
            7 => 1e-3,
            8 | 9 => 1e-6,
            _ => 1e-6,
        }
    }

    /// Is this a guaranteed-bit-rate class?
    pub fn is_gbr(&self) -> bool {
        (1..=4).contains(&self.0)
    }

    /// DSCP/TOS byte used to mark this class's packets in the data plane.
    ///
    /// Monotone mapping: higher scheduling priority (smaller number) ⇒
    /// higher DSCP, with priority `p` mapped to DSCP `10 - p`. Priorities
    /// at or beyond 10 saturate to DSCP 0 (best effort) instead of
    /// colliding with priority 9's band, so the mapping is strictly
    /// monotone over the whole TS 23.203 priority range 1–9 and
    /// non-increasing beyond it.
    pub fn tos(&self) -> u8 {
        10u8.saturating_sub(self.priority()) << 2
    }
}

impl std::fmt::Display for Qci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QCI {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qci5_has_highest_non_gbr_priority() {
        let mut best = Qci(5);
        for q in Qci::NON_GBR {
            if q.priority() < best.priority() {
                best = q;
            }
        }
        assert_eq!(best, Qci(5));
    }

    #[test]
    fn priorities_strictly_ordered_across_fig10a_sweep() {
        let ps: Vec<u8> = Qci::NON_GBR.iter().map(|q| q.priority()).collect();
        for w in ps.windows(2) {
            assert!(w[0] < w[1], "priorities {ps:?} must increase 5→9");
        }
    }

    #[test]
    fn gbr_classification() {
        assert!(Qci(1).is_gbr());
        assert!(Qci(4).is_gbr());
        for q in Qci::NON_GBR {
            assert!(!q.is_gbr());
        }
    }

    #[test]
    fn tos_is_monotone_in_priority() {
        assert!(Qci(5).tos() > Qci(9).tos());
        assert!(Qci(7).tos() > Qci(8).tos());
    }

    #[test]
    fn tos_mapping_pinned_for_gbr_and_non_gbr() {
        // DSCP = 10 - priority, ToS = DSCP << 2. Pin every class the
        // repo's scenarios can mark so the link scheduler's class layout
        // is frozen: GBR 1–4 …
        assert_eq!(Qci(1).tos(), 32); // priority 2
        assert_eq!(Qci(2).tos(), 24); // priority 4
        assert_eq!(Qci(3).tos(), 28); // priority 3
        assert_eq!(Qci(4).tos(), 20); // priority 5
                                      // … and all of NON_GBR (5–9).
        assert_eq!(Qci(5).tos(), 36); // priority 1
        assert_eq!(Qci(6).tos(), 16); // priority 6
        assert_eq!(Qci(7).tos(), 12); // priority 7
        assert_eq!(Qci(8).tos(), 8); // priority 8
        assert_eq!(Qci(9).tos(), 4); // priority 9
    }

    #[test]
    fn tos_is_strictly_monotone_and_collision_free_across_known_classes() {
        // Sort QCIs 1–9 by scheduling priority; the ToS sequence must be
        // strictly decreasing — no two classes share a DSCP band.
        let mut qcis: Vec<Qci> = (1..=9).map(Qci).collect();
        qcis.sort_by_key(|q| q.priority());
        for w in qcis.windows(2) {
            assert!(
                w[0].tos() > w[1].tos(),
                "{} (prio {}) and {} (prio {}) must map to distinct, ordered bands",
                w[0],
                w[0].priority(),
                w[1],
                w[1].priority()
            );
        }
    }

    #[test]
    fn tos_saturates_to_best_effort_for_out_of_range_priorities() {
        // Unknown QCIs take priority 9 (ToS 4, DSCP 1); they must never
        // collide upward into a real class's band, and the former
        // priority-10 wraparound (which aliased priority 9's band) is
        // pinned out: DSCP saturates at 0.
        assert_eq!(Qci(0).tos(), 4);
        assert_eq!(Qci(77).tos(), 4);
        assert_eq!(10u8.saturating_sub(10) << 2, 0);
        assert_eq!(10u8.saturating_sub(200) << 2, 0);
    }

    #[test]
    fn delay_budgets_match_spec_anchors() {
        assert_eq!(Qci(5).delay_budget_ms(), 100);
        assert_eq!(Qci(9).delay_budget_ms(), 300);
        assert_eq!(Qci(3).delay_budget_ms(), 50);
    }
}
