//! QoS Class Identifiers (3GPP TS 23.203 table 6.1.7).
//!
//! A bearer carries a QCI that fixes its scheduling priority, packet delay
//! budget and loss-rate target. ACACIA's dedicated MEC bearers use the
//! non-GBR QCIs 5–9 (paper Fig. 10(a) sweeps exactly those).

use serde::{Deserialize, Serialize};

/// A QoS Class Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qci(pub u8);

impl Qci {
    /// Default-bearer QCI in commercial LTE deployments.
    pub const DEFAULT_BEARER: Qci = Qci(9);

    /// The non-GBR QCIs swept in the paper's Fig. 10(a).
    pub const NON_GBR: [Qci; 5] = [Qci(5), Qci(6), Qci(7), Qci(8), Qci(9)];

    /// Scheduling priority (lower = served first), per TS 23.203.
    pub fn priority(&self) -> u8 {
        match self.0 {
            1 => 2,
            2 => 4,
            3 => 3,
            4 => 5,
            5 => 1,
            6 => 6,
            7 => 7,
            8 => 8,
            9 => 9,
            _ => 9,
        }
    }

    /// Packet delay budget in milliseconds, per TS 23.203.
    pub fn delay_budget_ms(&self) -> u32 {
        match self.0 {
            1 => 100,
            2 => 150,
            3 => 50,
            4 => 300,
            5 => 100,
            6 => 300,
            7 => 100,
            8 | 9 => 300,
            _ => 300,
        }
    }

    /// Packet error loss rate target (as a fraction), per TS 23.203.
    pub fn loss_rate(&self) -> f64 {
        match self.0 {
            1 => 1e-2,
            2 => 1e-3,
            3 => 1e-3,
            4 => 1e-6,
            5 => 1e-6,
            6 => 1e-6,
            7 => 1e-3,
            8 | 9 => 1e-6,
            _ => 1e-6,
        }
    }

    /// Is this a guaranteed-bit-rate class?
    pub fn is_gbr(&self) -> bool {
        (1..=4).contains(&self.0)
    }

    /// DSCP/TOS byte used to mark this class's packets in the data plane.
    pub fn tos(&self) -> u8 {
        // Simple monotone mapping: higher priority ⇒ higher DSCP.
        (10 - self.priority().min(9)) << 2
    }
}

impl std::fmt::Display for Qci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QCI {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qci5_has_highest_non_gbr_priority() {
        let mut best = Qci(5);
        for q in Qci::NON_GBR {
            if q.priority() < best.priority() {
                best = q;
            }
        }
        assert_eq!(best, Qci(5));
    }

    #[test]
    fn priorities_strictly_ordered_across_fig10a_sweep() {
        let ps: Vec<u8> = Qci::NON_GBR.iter().map(|q| q.priority()).collect();
        for w in ps.windows(2) {
            assert!(w[0] < w[1], "priorities {ps:?} must increase 5→9");
        }
    }

    #[test]
    fn gbr_classification() {
        assert!(Qci(1).is_gbr());
        assert!(Qci(4).is_gbr());
        for q in Qci::NON_GBR {
            assert!(!q.is_gbr());
        }
    }

    #[test]
    fn tos_is_monotone_in_priority() {
        assert!(Qci(5).tos() > Qci(9).tos());
        assert!(Qci(7).tos() > Qci(8).tos());
    }

    #[test]
    fn delay_budgets_match_spec_anchors() {
        assert_eq!(Qci(5).delay_budget_ms(), 100);
        assert_eq!(Qci(9).delay_budget_ms(), 300);
        assert_eq!(Qci(3).delay_budget_ms(), 50);
    }
}
