//! # acacia-lte — an LTE/EPC stack on the simnet substrate
//!
//! A functional reproduction of the network side of the ACACIA paper:
//!
//! * [`qci`], [`ids`], [`tft`] — QoS classes, TEIDs/EBIs/IMSIs, traffic
//!   flow templates (the modem-resident uplink classifiers).
//! * [`wire`] — byte-accurate S1AP/SCTP, GTPv2-C, Diameter, OpenFlow and
//!   RRC control messages, calibrated to the paper's §4 measurement
//!   (release + re-establish = 15 messages / 2914 bytes).
//! * [`gtpu`] — GTP-U user-plane tunnelling with faithful overhead.
//! * [`radio`] — bearer-tagged radio frames and priority schedulers.
//! * [`switch`] — OpenFlow-programmed GW-U switches with slow/fast path
//!   cost models (OVS kernel cache vs OpenEPC user space, Fig. 8).
//! * [`ue`], [`enb`], [`entities`] — the protocol state machines (UE, eNB,
//!   MME, HSS, PCRF, split GW-C with PCEF).
//! * [`network`] — the assembled Fig. 5 topology plus procedure drivers
//!   (attach, network-initiated dedicated bearers to *local* MEC
//!   gateways, idle release, service request).
//! * [`log`] — shared control-message accounting.
//!
//! ```no_run
//! use acacia_lte::network::{LteConfig, LteNetwork};
//! use acacia_lte::wire::PolicyRule;
//! use acacia_lte::qci::Qci;
//! use acacia_simnet::traffic::Reflector;
//!
//! let mut net = LteNetwork::new(LteConfig::default());
//! let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
//! let ue_ip = net.attach(0);
//! net.activate_dedicated_bearer(0, PolicyRule {
//!     service_id: 1, ue_addr: ue_ip, server_addr: mec_addr,
//!     server_port: 0, qci: Qci(7), install: true,
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enb;
pub mod entities;
pub mod gtpu;
pub mod ids;
pub mod log;
pub mod mobility;
pub mod network;
pub mod overhead;
pub mod qci;
pub mod radio;
pub mod switch;
pub mod tft;
pub mod timers;
pub mod ue;
pub mod wire;

pub use ids::{Ebi, Imsi, Teid};
pub use log::MsgLog;
pub use network::{LteConfig, LteNetwork};
pub use qci::Qci;
pub use switch::{FlowSwitch, SwitchCosts};
pub use tft::{Direction, PacketFilter, Tft};
pub use timers::Timers;
pub use wire::{ControlMsg, PolicyRule, Protocol};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::ids::{Ebi, Imsi, Teid};
    pub use crate::log::MsgLog;
    pub use crate::mobility::{A3Config, CellSite, Trajectory, Waypoint};
    pub use crate::network::{addr, CellConfig, LteConfig, LteNetwork};
    pub use crate::qci::Qci;
    pub use crate::switch::{FlowSwitch, SwitchCosts};
    pub use crate::tft::{Direction, PacketFilter, Tft};
    pub use crate::ue::{AppSelector, Ue, UeState};
    pub use crate::wire::{ControlMsg, PolicyRule, Protocol};
}
