//! The GW-U data plane: an OpenFlow-programmed flow switch with GTP
//! encap/decap actions and a slow-path / fast-path processing model.
//!
//! ACACIA extends Open vSwitch "to process GTP packets in a kernel-resident
//! fast-path once a packet is matched in the user-space using OpenFlow
//! tables (called slow path)" (§6.1). The reproduction models exactly that:
//! the **first** packet of a flow pays the user-space lookup cost; later
//! packets hit the kernel flow cache and pay only the fast-path cost. The
//! baseline OpenEPC gateway processes **every** packet in user space
//! (Fig. 8's comparison).

use crate::gtpu;
use crate::ids::Teid;
use crate::wire::{ControlMsg, FlowActionSpec, FlowMatchSpec};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use acacia_simnet::time::{Duration, Instant};
use std::collections::{HashSet, VecDeque};
use std::net::Ipv4Addr;

/// An installed flow rule.
#[derive(Debug, Clone)]
pub struct FlowRule {
    /// Rule priority (higher wins).
    pub priority: u16,
    /// Match specification.
    pub mtch: FlowMatchSpec,
    /// Action list.
    pub actions: Vec<FlowActionSpec>,
    /// Packets that hit this rule.
    pub hits: u64,
}

/// Processing-cost model for a GW-U.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCosts {
    /// User-space (slow path) per-packet cost.
    pub slow_path: Duration,
    /// Kernel fast-path per-packet cost.
    pub fast_path: Duration,
    /// Does the switch have a fast path at all? `false` models the vanilla
    /// OpenEPC user-space gateway.
    pub kernel_cache: bool,
    /// Bound on packets queued for processing.
    pub queue_limit: usize,
}

impl SwitchCosts {
    /// ACACIA's OVS-based GW-U: slow first packet, fast rest.
    pub fn acacia_ovs() -> SwitchCosts {
        SwitchCosts {
            slow_path: Duration::from_micros(40),
            fast_path: Duration::from_nanos(1_100),
            kernel_cache: true,
            queue_limit: 2_000,
        }
    }

    /// Vanilla OpenEPC user-space gateway: every packet pays the slow path.
    pub fn openepc_userspace() -> SwitchCosts {
        SwitchCosts {
            slow_path: Duration::from_micros(40),
            fast_path: Duration::from_micros(40),
            kernel_cache: false,
            queue_limit: 2_000,
        }
    }

    /// An ideal (zero-cost) data plane, for Fig. 8's IDEAL line.
    pub fn ideal() -> SwitchCosts {
        SwitchCosts {
            slow_path: Duration::ZERO,
            fast_path: Duration::ZERO,
            kernel_cache: true,
            queue_limit: 10_000,
        }
    }
}

/// Flow-cache key: enough of the packet to identify a microflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    teid: Option<u32>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    protocol: u8,
}

fn cache_key(pkt: &Packet) -> CacheKey {
    CacheKey {
        teid: gtpu::peek_teid(pkt).map(|t| t.0),
        src: pkt.src,
        dst: pkt.dst,
        src_port: pkt.src_port,
        dst_port: pkt.dst_port,
        protocol: pkt.protocol,
    }
}

/// A GW-U node: receives OpenFlow messages on [`FlowSwitch::CONTROL_PORT`]
/// and user traffic on any other port.
pub struct FlowSwitch {
    /// This switch's tunnel-endpoint address.
    pub addr: Ipv4Addr,
    rules: Vec<FlowRule>,
    costs: SwitchCosts,
    cache: HashSet<CacheKey>,
    busy_until: Instant,
    pending: VecDeque<Packet>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (no matching rule).
    pub no_rule: u64,
    /// Packets dropped (processing queue full).
    pub proc_drops: u64,
    /// Packets that went through the slow path.
    pub slow_hits: u64,
    /// Packets served by the kernel flow cache.
    pub fast_hits: u64,
    /// Buffer + notify on missed GTP downlink traffic (the SGW's paging
    /// role: "contains buffers for paging functionality").
    pub paging_enabled: bool,
    page_buffer: Vec<Packet>,
    /// Downlink-data notifications sent to the controller.
    pub ddn_sent: u64,
}

const TOKEN_RELEASE: u64 = 1;

impl FlowSwitch {
    /// Port on which the switch listens for OpenFlow messages.
    pub const CONTROL_PORT: PortId = 0;

    /// New switch with the given cost model.
    pub fn new(addr: Ipv4Addr, costs: SwitchCosts) -> FlowSwitch {
        FlowSwitch {
            addr,
            rules: Vec::new(),
            costs,
            cache: HashSet::new(),
            busy_until: Instant::ZERO,
            pending: VecDeque::new(),
            forwarded: 0,
            no_rule: 0,
            proc_drops: 0,
            slow_hits: 0,
            fast_hits: 0,
            paging_enabled: false,
            page_buffer: Vec::new(),
            ddn_sent: 0,
        }
    }

    /// Packets currently held in the paging buffer.
    pub fn paged_packets(&self) -> usize {
        self.page_buffer.len()
    }

    /// Install a rule directly (bypassing OpenFlow) — used by tests and
    /// static topologies.
    pub fn install(&mut self, priority: u16, mtch: FlowMatchSpec, actions: Vec<FlowActionSpec>) {
        self.rules.push(FlowRule {
            priority,
            mtch,
            actions,
            hits: 0,
        });
        self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
        self.cache.clear();
    }

    /// Remove rules matching the spec exactly.
    pub fn remove(&mut self, mtch: &FlowMatchSpec) {
        self.rules.retain(|r| &r.mtch != mtch);
        self.cache.clear();
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn matches(
        mtch: &FlowMatchSpec,
        teid: Option<Teid>,
        effective_src: Ipv4Addr,
        effective_dst: Ipv4Addr,
    ) -> bool {
        if let Some(want) = mtch.teid {
            if teid != Some(want) {
                return false;
            }
        }
        if let Some(dst) = mtch.dst {
            if effective_dst != dst {
                return false;
            }
        }
        if let Some(src) = mtch.src {
            if effective_src != src {
                return false;
            }
        }
        true
    }

    fn lookup(&mut self, pkt: &Packet) -> Option<usize> {
        // Peek the tunnel header: for tunnelled packets, address matches
        // apply to the *inner* endpoints so rules can steer by UE/server
        // address. The inner packet is never materialized here — only the
        // rule that wins may decapsulate.
        let (teid, esrc, edst) = match gtpu::peek_inner_addrs(pkt) {
            Some((s, d)) => (gtpu::peek_teid(pkt), s, d),
            None => (None, pkt.src, pkt.dst),
        };
        let idx = self
            .rules
            .iter()
            .position(|r| Self::matches(&r.mtch, teid, esrc, edst))?;
        self.rules[idx].hits += 1;
        Some(idx)
    }

    fn execute(&mut self, ctx: &mut Ctx<'_>, rule_idx: usize, pkt: Packet) {
        let mut current = pkt;
        // Step through the rule's actions by index: cloning one small
        // action per step instead of the whole Vec keeps the per-packet
        // path allocation-free.
        for i in 0..self.rules[rule_idx].actions.len() {
            let action = self.rules[rule_idx].actions[i].clone();
            match action {
                FlowActionSpec::GtpEncap { peer, teid } => {
                    current = gtpu::encapsulate(&current, teid, self.addr, peer);
                }
                FlowActionSpec::GtpDecap => match gtpu::decapsulate(&current) {
                    Some((_, inner)) => current = inner,
                    None => {
                        self.no_rule += 1;
                        return;
                    }
                },
                FlowActionSpec::SetTos { tos } => current.tos = tos,
                FlowActionSpec::Output { port } => {
                    self.forwarded += 1;
                    ctx.send(port, current);
                    return;
                }
            }
        }
        // No terminal Output: drop.
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        match self.lookup(&pkt) {
            Some(idx) => self.execute(ctx, idx, pkt),
            None => {
                // The SGW role: buffer missed downlink tunnel traffic and
                // tell the controller so the MME can page the UE.
                if self.paging_enabled && gtpu::is_gtpu(&pkt) && self.page_buffer.len() < 256 {
                    let first = self.page_buffer.is_empty();
                    if let Some(teid) = gtpu::peek_teid(&pkt) {
                        self.page_buffer.push(pkt);
                        if first {
                            self.ddn_sent += 1;
                            let msg = ControlMsg::DownlinkDataByTeid { teid };
                            ctx.send(
                                Self::CONTROL_PORT,
                                msg.into_packet(self.addr, Ipv4Addr::UNSPECIFIED),
                            );
                        }
                        return;
                    }
                }
                self.no_rule += 1;
            }
        }
    }

    fn handle_openflow(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        if let ControlMsg::FlowMod {
            add,
            priority,
            mtch,
            actions,
        } = msg
        {
            if add {
                self.install(priority, mtch, actions);
                // New rules may cover buffered (paged) downlink packets:
                // replay them once; still-unmatched packets wait for the
                // next install.
                let buffered = std::mem::take(&mut self.page_buffer);
                for pkt in buffered {
                    match self.lookup(&pkt) {
                        Some(idx) => self.execute(ctx, idx, pkt),
                        None => self.page_buffer.push(pkt),
                    }
                }
            } else {
                self.remove(&mtch);
            }
        }
    }
}

impl Node for FlowSwitch {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        if port == Self::CONTROL_PORT {
            if let Some(msg) = ControlMsg::from_packet(&pkt) {
                self.handle_openflow(ctx, msg);
            }
            return;
        }
        // Data path: decide slow vs fast processing cost.
        let key = cache_key(&pkt);
        let cost = if self.costs.kernel_cache && self.cache.contains(&key) {
            self.fast_hits += 1;
            self.costs.fast_path
        } else {
            self.slow_hits += 1;
            if self.costs.kernel_cache {
                self.cache.insert(key);
            }
            self.costs.slow_path
        };
        if cost == Duration::ZERO {
            self.process(ctx, pkt);
            return;
        }
        if self.pending.len() >= self.costs.queue_limit {
            self.proc_drops += 1;
            return;
        }
        let start = self.busy_until.max(ctx.now());
        let done = start + cost;
        self.busy_until = done;
        self.pending.push_back(pkt);
        ctx.schedule_at(done, TOKEN_RELEASE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RELEASE {
            return;
        }
        if let Some(pkt) = self.pending.pop_front() {
            self.process(ctx, pkt);
        }
    }

    fn on_restart(&mut self) {
        // A crash-restarted switch boots with an empty flow table: per-
        // session rules only come back when the controller reinstalls
        // them (the failover ladder's rebind path). Everything volatile
        // goes: rules, the kernel cache, queued work, paging buffers.
        self.rules.clear();
        self.cache.clear();
        self.pending.clear();
        self.page_buffer.clear();
        self.busy_until = Instant::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ports;
    use acacia_simnet::link::LinkConfig;
    use acacia_simnet::sim::Simulator;
    use acacia_simnet::traffic::Sink;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn user_pkt(dst: Ipv4Addr) -> Packet {
        Packet::udp((ip(1), 40_000), (dst, 9_000), 1_000)
    }

    /// switch with: decap rule for teid 7 -> port 2, encap rule for inner
    /// dst ip(5) -> tunnel to ip(9) on port 3.
    fn build() -> (Simulator, usize, usize, usize) {
        let mut sim = Simulator::new(3);
        let mut sw = FlowSwitch::new(ip(100), SwitchCosts::acacia_ovs());
        sw.install(
            100,
            FlowMatchSpec {
                teid: Some(Teid(7)),
                dst: None,
                src: None,
            },
            vec![FlowActionSpec::GtpDecap, FlowActionSpec::Output { port: 2 }],
        );
        sw.install(
            90,
            FlowMatchSpec {
                teid: None,
                dst: Some(ip(5)),
                src: None,
            },
            vec![
                FlowActionSpec::GtpEncap {
                    peer: ip(9),
                    teid: Teid(42),
                },
                FlowActionSpec::Output { port: 3 },
            ],
        );
        let sw = sim.add_node(Box::new(sw));
        let sink2 = sim.add_node(Box::new(Sink::new()));
        let sink3 = sim.add_node(Box::new(Sink::new()));
        sim.connect((sw, 2), (sink2, 0), LinkConfig::delay_only(Duration::ZERO));
        sim.connect((sw, 3), (sink3, 0), LinkConfig::delay_only(Duration::ZERO));
        (sim, sw, sink2, sink3)
    }

    #[test]
    fn decap_rule_unwraps_tunnel() {
        let (mut sim, sw, sink2, _) = build();
        let inner = user_pkt(ip(2));
        let outer = gtpu::encapsulate(&inner, Teid(7), ip(50), ip(100));
        sim.inject_packet(sw, 1, Instant::ZERO, outer);
        sim.run_until_idle();
        let s = sim.node_ref::<Sink>(sink2);
        assert_eq!(s.packets(), 1);
        assert_eq!(s.bytes(), inner.wire_size() as u64);
    }

    #[test]
    fn encap_rule_wraps_by_inner_destination() {
        let (mut sim, sw, _, sink3) = build();
        sim.inject_packet(sw, 1, Instant::ZERO, user_pkt(ip(5)));
        sim.run_until_idle();
        let s = sim.node_ref::<Sink>(sink3);
        assert_eq!(s.packets(), 1);
        // Tunnel overhead visible on the wire.
        assert_eq!(s.bytes(), (user_pkt(ip(5)).wire_size() + 36) as u64);
    }

    #[test]
    fn unmatched_packet_is_dropped_and_counted() {
        let (mut sim, sw, ..) = build();
        sim.inject_packet(sw, 1, Instant::ZERO, user_pkt(ip(77)));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<FlowSwitch>(sw).no_rule, 1);
    }

    #[test]
    fn fast_path_kicks_in_after_first_packet() {
        let (mut sim, sw, ..) = build();
        for i in 0..10 {
            sim.inject_packet(sw, 1, Instant::from_micros(i * 100), user_pkt(ip(5)));
        }
        sim.run_until_idle();
        let s = sim.node_ref::<FlowSwitch>(sw);
        assert_eq!(s.slow_hits, 1);
        assert_eq!(s.fast_hits, 9);
    }

    #[test]
    fn userspace_switch_never_uses_fast_path() {
        let mut sim = Simulator::new(3);
        let mut sw = FlowSwitch::new(ip(100), SwitchCosts::openepc_userspace());
        sw.install(
            1,
            FlowMatchSpec {
                teid: None,
                dst: None,
                src: None,
            },
            vec![FlowActionSpec::Output { port: 2 }],
        );
        let sw = sim.add_node(Box::new(sw));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect((sw, 2), (sink, 0), LinkConfig::delay_only(Duration::ZERO));
        for i in 0..10 {
            sim.inject_packet(sw, 1, Instant::from_micros(i), user_pkt(ip(5)));
        }
        sim.run_until_idle();
        let s = sim.node_ref::<FlowSwitch>(sw);
        assert_eq!(s.slow_hits, 10);
        assert_eq!(s.fast_hits, 0);
    }

    #[test]
    fn openflow_messages_program_the_switch() {
        let mut sim = Simulator::new(3);
        let sw_node = FlowSwitch::new(ip(100), SwitchCosts::ideal());
        let sw = sim.add_node(Box::new(sw_node));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect((sw, 2), (sink, 0), LinkConfig::delay_only(Duration::ZERO));

        let flowmod = ControlMsg::FlowMod {
            add: true,
            priority: 10,
            mtch: FlowMatchSpec {
                teid: None,
                dst: Some(ip(5)),
                src: None,
            },
            actions: vec![FlowActionSpec::Output { port: 2 }],
        };
        let pkt = flowmod.into_packet(ip(200), ip(100));
        sim.inject_packet(sw, FlowSwitch::CONTROL_PORT, Instant::ZERO, pkt);
        sim.inject_packet(sw, 1, Instant::from_millis(1), user_pkt(ip(5)));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 1);
        assert_eq!(sim.node_ref::<FlowSwitch>(sw).rule_count(), 1);

        // Now delete the rule via OpenFlow and verify traffic stops.
        let del = ControlMsg::FlowMod {
            add: false,
            priority: 10,
            mtch: FlowMatchSpec {
                teid: None,
                dst: Some(ip(5)),
                src: None,
            },
            actions: vec![],
        };
        let pkt = del.into_packet(ip(200), ip(100));
        sim.inject_packet(sw, FlowSwitch::CONTROL_PORT, sim.now(), pkt);
        let t = sim.now() + Duration::from_millis(1);
        sim.inject_packet(sw, 1, t, user_pkt(ip(5)));
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 1, "no new delivery");
        assert_eq!(sim.node_ref::<FlowSwitch>(sw).no_rule, 1);
    }

    #[test]
    fn priority_orders_rules() {
        let mut sw = FlowSwitch::new(ip(1), SwitchCosts::ideal());
        sw.install(
            1,
            FlowMatchSpec {
                teid: None,
                dst: None,
                src: None,
            },
            vec![FlowActionSpec::Output { port: 9 }],
        );
        sw.install(
            100,
            FlowMatchSpec {
                teid: None,
                dst: Some(ip(5)),
                src: None,
            },
            vec![FlowActionSpec::Output { port: 2 }],
        );
        // Highest priority first in the table.
        assert_eq!(sw.rules[0].priority, 100);
    }

    #[test]
    fn gtpc_port_constant_sanity() {
        assert_ne!(ports::GTPC, ports::GTPU);
    }
}
