//! Mobility primitives: UE trajectories, per-cell RSRP, and the A3
//! handover-event tracker.
//!
//! The paper deploys ACACIA on an ip.access small cell coexisting with a
//! commercial macrocell — users continuously walk in and out of MEC
//! coverage, so the dedicated bearer must follow (or gracefully fall back
//! from) the serving cell. This module holds the *pure* pieces of that
//! story: waypoint walks driven by the simnet clock, a [`CellSite`] RSRP
//! model reusing the `geo` path-loss ground truth, and an [`A3Tracker`]
//! implementing the standard A3 entering condition (neighbour better than
//! serving by a hysteresis margin, sustained for a time-to-trigger). The
//! protocol side (X2 messages, the eNB state machine) lives in
//! [`crate::wire`] and [`crate::enb`].

use acacia_geo::{PathLossModel, Point};
use acacia_simnet::time::{Duration, Instant};

/// A stop on a walk: a position and how long the UE lingers there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waypoint {
    /// Where, in metres.
    pub pos: Point,
    /// Dwell time once the waypoint is reached.
    pub dwell: Duration,
}

impl Waypoint {
    /// A waypoint with no dwell (pass straight through).
    pub fn passing(pos: Point) -> Waypoint {
        Waypoint {
            pos,
            dwell: Duration::ZERO,
        }
    }

    /// A waypoint where the UE stops for `dwell`.
    pub fn dwelling(pos: Point, dwell: Duration) -> Waypoint {
        Waypoint { pos, dwell }
    }
}

/// A deterministic waypoint walk: straight lines at constant speed with
/// per-waypoint dwells. Positions are a pure function of elapsed time, so
/// trajectory evaluation is replayable and thread-safe.
#[derive(Debug, Clone)]
pub struct Trajectory {
    waypoints: Vec<Waypoint>,
    speed_mps: f64,
    /// Leg i: time to walk waypoint i → i+1, then dwell at i+1.
    start: Instant,
}

impl Trajectory {
    /// Build a walk through `waypoints` at `speed_mps`, starting (at the
    /// first waypoint) at simulation time `start`. Panics on an empty
    /// waypoint list or non-positive speed.
    pub fn new(waypoints: Vec<Waypoint>, speed_mps: f64, start: Instant) -> Trajectory {
        assert!(!waypoints.is_empty(), "trajectory needs >= 1 waypoint");
        assert!(speed_mps > 0.0, "speed must be positive");
        Trajectory {
            waypoints,
            speed_mps,
            start,
        }
    }

    /// Total walking + dwelling time from the first waypoint to rest at
    /// the last (the initial waypoint's dwell counts too).
    pub fn total_duration(&self) -> Duration {
        let mut total = self.waypoints[0].dwell;
        for w in self.waypoints.windows(2) {
            let walk = w[0].pos.distance(w[1].pos) / self.speed_mps;
            total = total
                .saturating_add(Duration::from_secs_f64(walk))
                .saturating_add(w[1].dwell);
        }
        total
    }

    /// Position at simulation time `now`: clamped to the first waypoint
    /// before `start` and to the last waypoint after the walk completes.
    pub fn position(&self, now: Instant) -> Point {
        let mut remaining = now.saturating_since(self.start).secs_f64();
        let mut dwell = self.waypoints[0].dwell.secs_f64();
        if remaining <= dwell {
            return self.waypoints[0].pos;
        }
        remaining -= dwell;
        for w in self.waypoints.windows(2) {
            let leg = w[0].pos.distance(w[1].pos) / self.speed_mps;
            if remaining < leg {
                return w[0].pos.lerp(w[1].pos, remaining / leg);
            }
            remaining -= leg;
            dwell = w[1].dwell.secs_f64();
            if remaining < dwell {
                return w[1].pos;
            }
            remaining -= dwell;
        }
        self.waypoints[self.waypoints.len() - 1].pos
    }
}

/// A cell's radio footprint: transmitter position plus a log-distance
/// path-loss model giving mean RSRP (no shadowing — determinism first).
#[derive(Debug, Clone, Copy)]
pub struct CellSite {
    /// Transmitter position, metres.
    pub pos: Point,
    /// Ground-truth path loss.
    pub model: PathLossModel,
}

impl CellSite {
    /// RSRP seen by a UE at `ue_pos`, in centi-dBm. Integer centi-dBm is
    /// what goes on the wire (measurement reports stay float-free and
    /// byte-deterministic).
    pub fn rsrp_cdbm(&self, ue_pos: Point) -> i32 {
        (self.model.rx_power_dbm(self.pos.distance(ue_pos)) * 100.0).round() as i32
    }
}

/// A3-event parameters (3GPP 36.331 §5.5.4.4, simplified: offset folded
/// into the hysteresis).
#[derive(Debug, Clone, Copy)]
pub struct A3Config {
    /// Neighbour must beat serving by this margin, centi-dB.
    pub hysteresis_cdb: i32,
    /// The margin must hold continuously for this long before a
    /// measurement report fires.
    pub time_to_trigger: Duration,
    /// Measurement sampling interval.
    pub interval: Duration,
}

impl Default for A3Config {
    fn default() -> A3Config {
        A3Config {
            hysteresis_cdb: 300, // 3 dB
            time_to_trigger: Duration::from_millis(256),
            interval: Duration::from_millis(120),
        }
    }
}

/// Tracks the A3 entering condition across measurement samples and fires
/// once the time-to-trigger elapses.
#[derive(Debug, Clone, Default)]
pub struct A3Tracker {
    /// Best offset-better neighbour and when it first satisfied A3.
    candidate: Option<(usize, Instant)>,
}

impl A3Tracker {
    /// Feed one measurement sample. `rsrp[serving]` is the serving cell;
    /// returns `Some(target_index)` when a neighbour has been
    /// offset-better for at least `cfg.time_to_trigger`.
    pub fn observe(
        &mut self,
        cfg: &A3Config,
        now: Instant,
        serving: usize,
        rsrp_cdbm: &[i32],
    ) -> Option<usize> {
        let serving_rsrp = rsrp_cdbm[serving];
        // Best neighbour satisfying the entering condition; ties broken by
        // lowest index for determinism.
        let best = rsrp_cdbm
            .iter()
            .enumerate()
            .filter(|&(i, &r)| i != serving && r >= serving_rsrp + cfg.hysteresis_cdb)
            .max_by_key(|&(i, &r)| (r, std::cmp::Reverse(i)))
            .map(|(i, _)| i);
        match (best, self.candidate) {
            (None, _) => {
                self.candidate = None;
                None
            }
            (Some(b), Some((c, since))) if b == c => {
                if now.saturating_since(since) >= cfg.time_to_trigger {
                    Some(b)
                } else {
                    None
                }
            }
            (Some(b), _) => {
                // New (or switched) candidate: restart the timer. Fire
                // immediately only if time-to-trigger is zero.
                self.candidate = Some((b, now));
                if cfg.time_to_trigger == Duration::ZERO {
                    Some(b)
                } else {
                    None
                }
            }
        }
    }

    /// Forget the tracked candidate (after a handover, or after sending a
    /// report, to avoid duplicate triggers while the network executes).
    pub fn reset(&mut self) {
        self.candidate = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Instant {
        Instant::ZERO
            .checked_add(Duration::from_secs_f64(s))
            .unwrap()
    }

    #[test]
    fn trajectory_interpolates_and_clamps() {
        let tr = Trajectory::new(
            vec![
                Waypoint::passing(Point::new(0.0, 0.0)),
                Waypoint::dwelling(Point::new(10.0, 0.0), Duration::from_secs(5)),
                Waypoint::passing(Point::new(10.0, 10.0)),
            ],
            1.0,
            t(1.0),
        );
        assert_eq!(tr.position(t(0.0)), Point::new(0.0, 0.0)); // before start
        assert_eq!(tr.position(t(6.0)), Point::new(5.0, 0.0)); // mid leg 1
        assert_eq!(tr.position(t(13.0)), Point::new(10.0, 0.0)); // dwelling
        assert_eq!(tr.position(t(21.0)), Point::new(10.0, 5.0)); // mid leg 2
        assert_eq!(tr.position(t(100.0)), Point::new(10.0, 10.0)); // done
        assert_eq!(tr.total_duration(), Duration::from_secs(25));
    }

    #[test]
    fn rsrp_decreases_with_distance() {
        let site = CellSite {
            pos: Point::new(0.0, 0.0),
            model: PathLossModel::indoor_default(),
        };
        let near = site.rsrp_cdbm(Point::new(2.0, 0.0));
        let far = site.rsrp_cdbm(Point::new(30.0, 0.0));
        assert!(near > far, "near {near} far {far}");
    }

    #[test]
    fn a3_requires_hysteresis_and_ttt() {
        let cfg = A3Config {
            hysteresis_cdb: 300,
            time_to_trigger: Duration::from_millis(250),
            interval: Duration::from_millis(100),
        };
        let mut a3 = A3Tracker::default();
        // Neighbour better but inside hysteresis: never triggers.
        assert_eq!(a3.observe(&cfg, t(0.0), 0, &[-9000, -8800]), None);
        // Crosses hysteresis: starts the clock.
        assert_eq!(a3.observe(&cfg, t(0.1), 0, &[-9000, -8600]), None);
        assert_eq!(a3.observe(&cfg, t(0.2), 0, &[-9000, -8600]), None);
        // 250 ms sustained: fires.
        assert_eq!(a3.observe(&cfg, t(0.35), 0, &[-9000, -8600]), Some(1));
    }

    #[test]
    fn a3_resets_when_condition_lapses() {
        let cfg = A3Config {
            hysteresis_cdb: 300,
            time_to_trigger: Duration::from_millis(200),
            interval: Duration::from_millis(100),
        };
        let mut a3 = A3Tracker::default();
        assert_eq!(a3.observe(&cfg, t(0.0), 0, &[-9000, -8600]), None);
        // Condition lapses: timer must restart.
        assert_eq!(a3.observe(&cfg, t(0.1), 0, &[-9000, -8950]), None);
        assert_eq!(a3.observe(&cfg, t(0.3), 0, &[-9000, -8600]), None);
        assert_eq!(a3.observe(&cfg, t(0.4), 0, &[-9000, -8600]), None);
        assert_eq!(a3.observe(&cfg, t(0.5), 0, &[-9000, -8600]), Some(1));
    }

    #[test]
    fn a3_zero_ttt_fires_immediately() {
        let cfg = A3Config {
            hysteresis_cdb: 100,
            time_to_trigger: Duration::ZERO,
            interval: Duration::from_millis(100),
        };
        let mut a3 = A3Tracker::default();
        assert_eq!(a3.observe(&cfg, t(0.0), 1, &[-8000, -9000]), Some(0));
    }
}
