//! Shared control-plane message accounting.
//!
//! Every control message sent by any entity is recorded here, giving the
//! per-protocol message and byte counts the paper reports in §4 (control
//! overhead of bearer release/re-establishment).

use crate::wire::{ControlMsg, Protocol};
use acacia_simnet::time::Instant;
use std::sync::{Arc, Mutex};

/// One recorded control message.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// When it was sent.
    pub at: Instant,
    /// Message name.
    pub name: &'static str,
    /// Protocol family.
    pub protocol: Protocol,
    /// On-the-wire bytes.
    pub bytes: u32,
}

/// A cheaply cloneable, shared message log. Entities on different shards
/// may record concurrently; every query is an order-independent
/// aggregation, so the interleaving of records does not affect results.
#[derive(Clone, Default)]
pub struct MsgLog {
    inner: Arc<Mutex<Vec<LogEntry>>>,
}

impl MsgLog {
    /// New empty log.
    pub fn new() -> MsgLog {
        MsgLog::default()
    }

    /// Record a message about to be sent.
    pub fn record(&self, at: Instant, msg: &ControlMsg) {
        self.inner.lock().expect("msg log poisoned").push(LogEntry {
            at,
            name: msg.name(),
            protocol: msg.protocol(),
            bytes: msg.wire_size_spec(),
        });
    }

    /// Number of messages of a protocol family.
    pub fn count(&self, protocol: Protocol) -> u64 {
        self.inner
            .lock()
            .expect("msg log poisoned")
            .iter()
            .filter(|e| e.protocol == protocol)
            .count() as u64
    }

    /// Bytes of a protocol family.
    pub fn bytes(&self, protocol: Protocol) -> u64 {
        self.inner
            .lock()
            .expect("msg log poisoned")
            .iter()
            .filter(|e| e.protocol == protocol)
            .map(|e| e.bytes as u64)
            .sum()
    }

    /// Total messages across core-network protocols (excludes radio RRC,
    /// matching the paper's §4 accounting).
    pub fn core_count(&self) -> u64 {
        self.inner
            .lock()
            .expect("msg log poisoned")
            .iter()
            .filter(|e| e.protocol != Protocol::Rrc)
            .count() as u64
    }

    /// Total bytes across core-network protocols.
    pub fn core_bytes(&self) -> u64 {
        self.inner
            .lock()
            .expect("msg log poisoned")
            .iter()
            .filter(|e| e.protocol != Protocol::Rrc)
            .map(|e| e.bytes as u64)
            .sum()
    }

    /// All entries (cloned snapshot).
    pub fn entries(&self) -> Vec<LogEntry> {
        self.inner.lock().expect("msg log poisoned").clone()
    }

    /// Forget everything (e.g. after the attach phase, before measuring a
    /// release/re-establish cycle).
    pub fn clear(&self) {
        self.inner.lock().expect("msg log poisoned").clear();
    }

    /// Total message count (all protocols).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("msg log poisoned").len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("msg log poisoned").is_empty()
    }

    /// One-line-per-protocol summary (messages / bytes), core protocols
    /// first, radio RRC last.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in [
            Protocol::S1apSctp,
            Protocol::X2Sctp,
            Protocol::Gtpv2,
            Protocol::OpenFlow,
            Protocol::Diameter,
            Protocol::Rrc,
        ] {
            let n = self.count(p);
            if n > 0 {
                out.push_str(&format!(
                    "{:>9}: {:>3} msgs {:>6} B\n",
                    p.name(),
                    n,
                    self.bytes(p)
                ));
            }
        }
        out.push_str(&format!(
            "{:>9}: {:>3} msgs {:>6} B\n",
            "core",
            self.core_count(),
            self.core_bytes()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Imsi;

    #[test]
    fn log_aggregates_by_protocol() {
        let log = MsgLog::new();
        log.record(
            Instant::ZERO,
            &ControlMsg::UeContextReleaseRequest { imsi: Imsi(1) },
        );
        log.record(
            Instant::ZERO,
            &ControlMsg::ReleaseAccessBearersRequest { imsi: Imsi(1) },
        );
        log.record(
            Instant::ZERO,
            &ControlMsg::RrcAttachRequest { imsi: Imsi(1) },
        );
        assert_eq!(log.count(Protocol::S1apSctp), 1);
        assert_eq!(log.count(Protocol::Gtpv2), 1);
        assert_eq!(log.count(Protocol::Rrc), 1);
        assert_eq!(log.core_count(), 2);
        assert_eq!(log.bytes(Protocol::S1apSctp), 140);
        assert!(log.core_bytes() > 0);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn summary_lists_used_protocols_only() {
        let log = MsgLog::new();
        log.record(
            Instant::ZERO,
            &ControlMsg::UeContextReleaseRequest { imsi: Imsi(1) },
        );
        let s = log.summary();
        assert!(s.contains("SCTP"));
        assert!(!s.contains("OpenFlow"));
        assert!(s.contains("core"));
    }

    #[test]
    fn clones_share_state_and_clear_works() {
        let a = MsgLog::new();
        let b = a.clone();
        b.record(
            Instant::ZERO,
            &ControlMsg::ModifyBearerResponse { imsi: Imsi(2) },
        );
        assert_eq!(a.len(), 1);
        a.clear();
        assert!(b.is_empty());
    }
}
