//! The UE: radio attachment, modem-resident UL-TFT classification, and an
//! app-side port mux so ordinary simnet agents (ping, sources, AR apps)
//! can run "on the phone".
//!
//! Apps connect to the UE over zero-delay loopback links (processes talking
//! to the modem). Uplink packets are classified against the installed
//! bearer TFTs **in the modem** — ACACIA's source-side traffic steering
//! (paper §5.4) — and ride the matching bearer's radio frames; everything
//! else uses the default bearer.

use crate::ids::{Ebi, Imsi};
use crate::mobility::{A3Config, A3Tracker, CellSite, Trajectory};
use crate::qci::Qci;
use crate::radio::{self, port, RadioPayload, RadioScheduler};
use crate::tft::{Direction, Tft};
use crate::timers::Timers;
use crate::wire::ControlMsg;
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId, TimerHandle};
use acacia_simnet::time::{Duration, Instant};
use std::net::Ipv4Addr;

/// How downlink packets find their way to the right app port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppSelector {
    /// Match on IP protocol (None = any).
    pub protocol: Option<u8>,
    /// Match on destination (UE-side) port (None = any).
    pub dst_port: Option<u16>,
}

impl AppSelector {
    /// Deliver everything of one protocol.
    pub fn protocol(p: u8) -> AppSelector {
        AppSelector {
            protocol: Some(p),
            dst_port: None,
        }
    }

    /// Deliver one local port.
    pub fn port(p: u16) -> AppSelector {
        AppSelector {
            protocol: None,
            dst_port: Some(p),
        }
    }

    fn matches(&self, pkt: &Packet) -> bool {
        if let Some(p) = self.protocol {
            if pkt.protocol != p {
                return false;
            }
        }
        if let Some(dp) = self.dst_port {
            if pkt.dst_port != dp {
                return false;
            }
        }
        true
    }
}

/// An installed bearer on the UE.
#[derive(Debug, Clone)]
pub struct UeBearer {
    /// Bearer id.
    pub ebi: Ebi,
    /// QoS class.
    pub qci: Qci,
    /// Uplink TFT (empty for the default bearer).
    pub tft: Tft,
}

/// Attachment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UeState {
    /// Powered on, not attached.
    Detached,
    /// Attach in progress.
    Attaching,
    /// Attached with an active RRC connection.
    Connected,
    /// Attached but RRC-idle (bearers released at the eNB).
    Idle,
}

/// Timer tokens understood by the UE node.
pub mod token {
    /// Start the attach procedure.
    pub const ATTACH: u64 = 1;
    /// Issue a service request (idle → connected).
    pub const SERVICE_REQUEST: u64 = 2;
    /// Internal: uplink radio scheduler release.
    pub const UL_RELEASE: u64 = 3;
    /// Periodic radio measurement sample (mobility).
    pub const MEASURE: u64 = 4;
    /// Handover supervision (T304 analogue): `T304_BASE + epoch` checks
    /// for downlink progress after a measurement report; a stale epoch is
    /// a no-op.
    pub const T304_BASE: u64 = 1 << 32;
    /// Service-request retry: `SR_RETRY_BASE + epoch` re-sends an
    /// unanswered RRC Service Request while data is still buffered.
    pub const SR_RETRY_BASE: u64 = 1 << 33;
}

/// Armed when a measurement report is sent; resolved by downlink progress
/// (handover worked or was cancelled in time) or by the T304 fire
/// (re-establish on the target).
#[derive(Debug, Clone, Copy)]
struct HoPending {
    /// Epoch the guard token must carry to be live.
    epoch: u64,
    /// Cell index the report proposed.
    target: usize,
    /// `dl_delivered` when the report was sent (progress baseline).
    dl_at_report: u64,
    /// When the report was sent (interruption accounting on recovery).
    reported_at: Instant,
}

/// One cell the UE can hear: the eNB's radio address and the UE-side
/// simnet port its air link is attached to.
#[derive(Debug, Clone, Copy)]
pub struct UeCell {
    /// eNB radio address (frame destination).
    pub enb_radio: Ipv4Addr,
    /// UE-side port of the per-cell air link.
    pub port: PortId,
}

/// Mobility state: where the UE walks and what it measures.
pub struct UeMobility {
    /// Waypoint walk driving the position.
    pub trajectory: Trajectory,
    /// Per-cell RSRP ground truth, parallel to the UE's cell list.
    pub sites: Vec<CellSite>,
    /// A3 event parameters.
    pub a3_cfg: A3Config,
    /// Stop sampling after this instant (keeps `run_until_idle` usable).
    pub measure_until: Instant,
    a3: A3Tracker,
}

impl UeMobility {
    /// New mobility state; measurement sampling stops at `measure_until`.
    pub fn new(
        trajectory: Trajectory,
        sites: Vec<CellSite>,
        a3_cfg: A3Config,
        measure_until: Instant,
    ) -> UeMobility {
        UeMobility {
            trajectory,
            sites,
            a3_cfg,
            measure_until,
            a3: A3Tracker::default(),
        }
    }
}

/// The UE node.
pub struct Ue {
    /// Subscriber identity.
    pub imsi: Imsi,
    /// Radio-link-local address used for frames before an IP is assigned.
    pub radio_addr: Ipv4Addr,
    /// Cells this UE has air links to (index 0 = initial serving cell).
    pub cells: Vec<UeCell>,
    /// Index into `cells` of the current serving cell.
    pub serving: usize,
    /// Assigned IP (after attach).
    pub ip: Option<Ipv4Addr>,
    /// Current state.
    pub state: UeState,
    /// Installed bearers.
    pub bearers: Vec<UeBearer>,
    /// Walk + measurement state (None for a stationary UE).
    pub mobility: Option<UeMobility>,
    /// Guard/retry intervals ([`crate::timers::Timers`]); the defaults
    /// reproduce the historical hard-coded constants.
    pub timers: Timers,
    apps: Vec<(AppSelector, PortId)>,
    ul: RadioScheduler,
    /// Uplink packets buffered while idle, flushed after the service
    /// request completes (LTE "radio promotion").
    idle_buffer: Vec<Packet>,
    /// Service requests triggered automatically by data-while-idle.
    pub promotions: u64,
    /// Uplink packets classified onto a dedicated bearer.
    pub ul_dedicated: u64,
    /// Uplink packets sent on the default bearer.
    pub ul_default: u64,
    /// Downlink user packets delivered to apps.
    pub dl_delivered: u64,
    /// Downlink packets with no matching app (dropped).
    pub dl_unclaimed: u64,
    /// Downlink frames that arrived from a cell we already left (lost on
    /// the air during handover).
    pub dl_stale: u64,
    /// Completed handovers (serving-cell switches).
    pub handovers: u64,
    /// Per-handover service interruption: (handover-command time, gap
    /// until the first downlink packet on the new cell).
    pub interruption_log: Vec<(Instant, Duration)>,
    /// Set at retune, cleared by the first post-handover downlink packet.
    pending_interrupt: Option<Instant>,
    /// RRC re-establishments performed after a dead serving leg.
    pub reestablishments: u64,
    /// Service requests re-sent by the retry timer.
    pub sr_retries: u64,
    /// Handover supervision state (one per measurement report).
    ho_pending: Option<HoPending>,
    /// Epochs distinguish the live T304 / retry timer from stale ones.
    next_epoch: u64,
    sr_epoch: u64,
    /// Engine handle of the live T304 guard: superseding reports cancel
    /// the old timer in the scheduler instead of letting it fire stale.
    t304_timer: Option<TimerHandle>,
    /// Engine handle of the live service-request retry timer.
    sr_timer: Option<TimerHandle>,
}

impl Ue {
    /// New detached UE, camped on a single cell reachable via
    /// [`port::UE_RADIO`] (multi-cell topologies add more with
    /// [`Ue::add_cell`]).
    pub fn new(imsi: Imsi, radio_addr: Ipv4Addr, enb_addr: Ipv4Addr, ul_rate_bps: u64) -> Ue {
        Ue {
            imsi,
            radio_addr,
            cells: vec![UeCell {
                enb_radio: enb_addr,
                port: port::UE_RADIO,
            }],
            serving: 0,
            ip: None,
            state: UeState::Detached,
            bearers: Vec::new(),
            mobility: None,
            timers: Timers::default(),
            apps: Vec::new(),
            ul: RadioScheduler::new(ul_rate_bps),
            idle_buffer: Vec::new(),
            promotions: 0,
            ul_dedicated: 0,
            ul_default: 0,
            dl_delivered: 0,
            dl_unclaimed: 0,
            dl_stale: 0,
            handovers: 0,
            interruption_log: Vec::new(),
            pending_interrupt: None,
            reestablishments: 0,
            sr_retries: 0,
            ho_pending: None,
            next_epoch: 0,
            sr_epoch: 0,
            t304_timer: None,
            sr_timer: None,
        }
    }

    /// Register an additional cell; its air link must be connected on UE
    /// port `UE_CELL_BASE + index`. Returns the cell index.
    pub fn add_cell(&mut self, enb_radio: Ipv4Addr) -> usize {
        let idx = self.cells.len();
        self.cells.push(UeCell {
            enb_radio,
            port: port::UE_CELL_BASE + idx,
        });
        idx
    }

    /// Radio address of the current serving cell's eNB.
    pub fn serving_enb_addr(&self) -> Ipv4Addr {
        self.cells[self.serving].enb_radio
    }

    /// UE-side port of the current serving cell's air link.
    fn serving_port(&self) -> PortId {
        self.cells[self.serving].port
    }

    /// Register an app connected on UE port `ue_port` to receive downlink
    /// packets matching `selector`.
    pub fn register_app(&mut self, selector: AppSelector, ue_port: PortId) {
        assert!(ue_port >= port::UE_APP_BASE, "app ports start at 1");
        self.apps.push((selector, ue_port));
    }

    /// The bearer a packet would ride (dedicated TFT match first,
    /// default otherwise).
    pub fn classify_uplink(&self, pkt: &Packet) -> Option<&UeBearer> {
        let dedicated = self
            .bearers
            .iter()
            .filter(|b| b.ebi != Ebi::DEFAULT)
            .find(|b| b.tft.matches(pkt, Direction::Uplink));
        dedicated.or_else(|| self.bearers.iter().find(|b| b.ebi == Ebi::DEFAULT))
    }

    /// Does the UE currently hold a dedicated bearer?
    pub fn has_dedicated_bearer(&self) -> bool {
        self.bearers.iter().any(|b| b.ebi != Ebi::DEFAULT)
    }

    fn send_rrc(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        let frame = radio::rrc_frame(&msg, self.radio_addr, self.serving_enb_addr());
        self.ul.offer(ctx, 0, frame, token::UL_RELEASE);
    }

    /// Apply an RRC message's state changes (pure; testable without a
    /// simulator context).
    fn apply_rrc(&mut self, msg: ControlMsg) {
        match msg {
            ControlMsg::RrcReconfiguration {
                ebi,
                qci,
                tft,
                ue_addr,
            } => {
                if let Some(addr) = ue_addr {
                    self.ip = Some(addr);
                }
                self.bearers.retain(|b| b.ebi != ebi);
                self.bearers.push(UeBearer { ebi, qci, tft });
                self.state = UeState::Connected;
            }
            ControlMsg::RrcRelease { .. } => {
                self.state = UeState::Idle;
            }
            ControlMsg::RrcBearerRelease { ebi } => {
                self.remove_bearer(ebi);
            }
            _ => {}
        }
    }

    fn handle_rrc(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        match msg {
            ControlMsg::RrcPaging { imsi } => {
                // Paged while idle: answer with a service request.
                if imsi == self.imsi && self.state == UeState::Idle {
                    self.promotions += 1;
                    self.send_rrc(ctx, ControlMsg::RrcServiceRequest { imsi: self.imsi });
                }
            }
            ControlMsg::RrcHandoverCommand { imsi, target_radio } if imsi == self.imsi => {
                self.retune(ctx, target_radio);
            }
            msg => {
                self.apply_rrc(msg);
                if self.state == UeState::Connected {
                    self.flush_idle_buffer(ctx);
                }
            }
        }
    }

    /// Execute a handover command: switch the serving cell to
    /// `target_radio` and confirm on the new cell. Bearer state (TFTs,
    /// IP) survives — that is the point of X2 handover.
    fn retune(&mut self, ctx: &mut Ctx<'_>, target_radio: Ipv4Addr) {
        let Some(idx) = self.cells.iter().position(|c| c.enb_radio == target_radio) else {
            return; // unknown target cell: stay put
        };
        if idx == self.serving {
            return;
        }
        self.serving = idx;
        self.handovers += 1;
        self.pending_interrupt = Some(ctx.now());
        if let Some(m) = self.mobility.as_mut() {
            m.a3.reset();
        }
        self.send_rrc(ctx, ControlMsg::RrcHandoverConfirm { imsi: self.imsi });
    }

    /// One measurement sample: position from the trajectory, RSRP per
    /// cell, A3 evaluation, and a measurement report if the event fires.
    fn measure(&mut self, ctx: &mut Ctx<'_>) {
        let Some(m) = self.mobility.as_mut() else {
            return;
        };
        let now = ctx.now();
        if now > m.measure_until {
            return; // walk over: stop re-arming
        }
        let interval = m.a3_cfg.interval;
        ctx.schedule_in(interval, token::MEASURE);
        // Only a connected UE runs connected-mode measurements.
        if self.state == UeState::Connected {
            let pos = m.trajectory.position(now);
            let rsrp: Vec<i32> = m.sites.iter().map(|s| s.rsrp_cdbm(pos)).collect();
            if let Some(target) = m.a3.observe(&m.a3_cfg, now, self.serving, &rsrp) {
                let report = ControlMsg::RrcMeasurementReport {
                    imsi: self.imsi,
                    serving_rsrp_cdbm: rsrp[self.serving],
                    target_radio: self.cells[target].enb_radio,
                    target_rsrp_cdbm: rsrp[target],
                };
                // Reset so the event re-arms only after the network acts
                // (or the condition re-establishes from scratch).
                m.a3.reset();
                self.send_rrc(ctx, report);
                // Supervise the handover this report should trigger: if no
                // downlink arrives within T304 the serving leg is dead.
                self.next_epoch += 1;
                let epoch = self.next_epoch;
                self.ho_pending = Some(HoPending {
                    epoch,
                    target,
                    dl_at_report: self.dl_delivered,
                    reported_at: now,
                });
                if let Some(h) = self.t304_timer.take() {
                    ctx.cancel_timer(h);
                }
                self.t304_timer =
                    Some(ctx.schedule_in_cancellable(self.timers.t304, token::T304_BASE + epoch));
            }
        }
    }

    /// T304 fired: no word from the network since the measurement report.
    /// If downlink progressed the procedure resolved itself (handover
    /// completed, or was cancelled while the source kept serving); if not,
    /// the serving leg is dead — jump to the reported target and
    /// re-establish the RRC connection there.
    fn on_t304(&mut self, ctx: &mut Ctx<'_>, epoch: u64) {
        match self.ho_pending {
            Some(hp) if hp.epoch == epoch => {}
            _ => return, // stale guard of an already-superseded report
        }
        self.t304_timer = None; // this fire consumed the live guard
        let hp = self.ho_pending.take().expect("checked above");
        if self.dl_delivered > hp.dl_at_report {
            return;
        }
        self.serving = hp.target;
        self.reestablishments += 1;
        self.pending_interrupt = Some(hp.reported_at);
        if let Some(m) = self.mobility.as_mut() {
            m.a3.reset();
        }
        self.send_rrc(
            ctx,
            ControlMsg::RrcReestablishmentRequest { imsi: self.imsi },
        );
    }

    /// Arm (or re-arm) the service-request retry timer, cancelling any
    /// previously armed one in the scheduler.
    fn arm_sr_retry(&mut self, ctx: &mut Ctx<'_>) {
        self.sr_epoch += 1;
        if let Some(h) = self.sr_timer.take() {
            ctx.cancel_timer(h);
        }
        self.sr_timer = Some(
            ctx.schedule_in_cancellable(self.timers.sr_retry, token::SR_RETRY_BASE + self.sr_epoch),
        );
    }

    /// Service-request retry fired: if still idle with data waiting, the
    /// request (or its answer) was lost somewhere — send it again.
    fn on_sr_retry(&mut self, ctx: &mut Ctx<'_>, epoch: u64) {
        if epoch != self.sr_epoch {
            return;
        }
        self.sr_timer = None; // this fire consumed the live timer
        if self.state == UeState::Idle && !self.idle_buffer.is_empty() {
            self.sr_retries += 1;
            self.send_rrc(ctx, ControlMsg::RrcServiceRequest { imsi: self.imsi });
            self.arm_sr_retry(ctx);
        }
    }

    /// Send packets buffered during the idle period now that the RRC
    /// connection is back.
    fn flush_idle_buffer(&mut self, ctx: &mut Ctx<'_>) {
        // The service request was answered: the pending retry is moot.
        if let Some(h) = self.sr_timer.take() {
            ctx.cancel_timer(h);
        }
        if self.idle_buffer.is_empty() {
            return;
        }
        let buffered = std::mem::take(&mut self.idle_buffer);
        for pkt in buffered {
            self.send_uplink(ctx, pkt);
        }
    }

    /// Classify an uplink packet in the modem and put it on the air.
    fn send_uplink(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some(bearer) = self.classify_uplink(&pkt) else {
            return;
        };
        let (ebi, prio) = (bearer.ebi, radio::sched_priority(bearer.qci.tos()));
        if ebi == Ebi::DEFAULT {
            self.ul_default += 1;
        } else {
            self.ul_dedicated += 1;
        }
        let mut inner = pkt;
        if let Some(ip) = self.ip {
            inner.src = ip;
        }
        inner.tos = match self.bearers.iter().find(|b| b.ebi == ebi) {
            Some(b) => b.qci.tos(),
            None => inner.tos,
        };
        let frame = radio::data_frame(ebi, &inner, self.radio_addr, self.serving_enb_addr());
        self.ul.offer(ctx, prio, frame, token::UL_RELEASE);
    }

    /// Remove a dedicated bearer (driven by an E-RAB release relayed over
    /// RRC as a reconfiguration with a match-nothing TFT in real LTE; the
    /// harness calls this directly via the eNB).
    pub fn remove_bearer(&mut self, ebi: Ebi) {
        self.bearers.retain(|b| b.ebi != ebi);
    }
}

impl Node for Ue {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        if let Some(cell) = self.cells.iter().position(|c| c.port == in_port) {
            match radio::parse_frame(&pkt) {
                // RRC is accepted from any cell: the handover command
                // arrives from the source, everything after from the
                // target.
                Some(RadioPayload::Rrc(msg)) => self.handle_rrc(ctx, msg),
                Some(RadioPayload::Data { inner, .. }) => {
                    if cell != self.serving {
                        // In-flight on the air when we retuned: lost.
                        self.dl_stale += 1;
                        return;
                    }
                    if let Some(started) = self.pending_interrupt.take() {
                        self.interruption_log
                            .push((started, ctx.now().saturating_since(started)));
                    }
                    // Deliver to every matching app (e.g. several ICMP
                    // agents); apps discard traffic that isn't theirs.
                    let targets: Vec<PortId> = self
                        .apps
                        .iter()
                        .filter(|(sel, _)| sel.matches(&inner))
                        .map(|&(_, p)| p)
                        .collect();
                    if targets.is_empty() {
                        self.dl_unclaimed += 1;
                    } else {
                        self.dl_delivered += 1;
                        for app_port in targets {
                            ctx.send(app_port, inner.clone());
                        }
                    }
                }
                None => {}
            }
            return;
        }
        // Uplink from an app: classify in the modem and ride a bearer.
        if self.state == UeState::Idle {
            // Data while idle triggers an LTE radio promotion: buffer the
            // packet, issue a service request, flush once reconnected.
            if self.idle_buffer.is_empty() {
                self.promotions += 1;
                self.send_rrc(ctx, ControlMsg::RrcServiceRequest { imsi: self.imsi });
                self.arm_sr_retry(ctx);
            }
            if self.idle_buffer.len() < 32 {
                self.idle_buffer.push(pkt);
            }
            return;
        }
        if self.state != UeState::Connected {
            return;
        }
        self.send_uplink(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tok: u64) {
        if tok >= token::SR_RETRY_BASE {
            self.on_sr_retry(ctx, tok - token::SR_RETRY_BASE);
            return;
        }
        if tok >= token::T304_BASE {
            self.on_t304(ctx, tok - token::T304_BASE);
            return;
        }
        match tok {
            token::ATTACH if self.state == UeState::Detached => {
                self.state = UeState::Attaching;
                self.send_rrc(ctx, ControlMsg::RrcAttachRequest { imsi: self.imsi });
            }
            token::SERVICE_REQUEST if self.state == UeState::Idle => {
                self.send_rrc(ctx, ControlMsg::RrcServiceRequest { imsi: self.imsi });
            }
            token::UL_RELEASE => {
                if let Some(frame) = self.ul.pop() {
                    // Frames are addressed to the eNB they were offered
                    // for; route each to that cell's air link (frames
                    // queued across a handover still reach the old cell,
                    // as they would in a real modem flush).
                    let out = self
                        .cells
                        .iter()
                        .find(|c| c.enb_radio == frame.dst)
                        .map(|c| c.port)
                        .unwrap_or_else(|| self.serving_port());
                    ctx.send(out, frame);
                }
            }
            token::MEASURE => self.measure(ctx),
            _ => {}
        }
    }
}

/// Extra latency knob: zero-delay loopback config for app↔UE links.
pub fn loopback() -> acacia_simnet::link::LinkConfig {
    acacia_simnet::link::LinkConfig::delay_only(Duration::from_micros(50))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tft::PacketFilter;
    use acacia_simnet::packet::proto;

    fn ue() -> Ue {
        let mut ue = Ue::new(
            Imsi(1),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(192, 168, 0, 1),
            radio::params::UL_RATE_EXCELLENT,
        );
        ue.ip = Some(Ipv4Addr::new(10, 10, 0, 1));
        ue.state = UeState::Connected;
        ue.bearers.push(UeBearer {
            ebi: Ebi::DEFAULT,
            qci: Qci::DEFAULT_BEARER,
            tft: Tft::new(),
        });
        ue
    }

    fn mec_ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 4, 0, 1)
    }

    #[test]
    fn classification_prefers_dedicated_tft() {
        let mut u = ue();
        u.bearers.push(UeBearer {
            ebi: Ebi(6),
            qci: Qci(7),
            tft: Tft::single(PacketFilter::to_host(mec_ip())),
        });
        let to_mec = Packet::udp((Ipv4Addr::UNSPECIFIED, 1), (mec_ip(), 9000), 10);
        let to_web = Packet::udp(
            (Ipv4Addr::UNSPECIFIED, 1),
            (Ipv4Addr::new(8, 8, 8, 8), 80),
            10,
        );
        assert_eq!(u.classify_uplink(&to_mec).unwrap().ebi, Ebi(6));
        assert_eq!(u.classify_uplink(&to_web).unwrap().ebi, Ebi::DEFAULT);
    }

    #[test]
    fn without_dedicated_bearer_everything_rides_default() {
        let u = ue();
        let to_mec = Packet::udp((Ipv4Addr::UNSPECIFIED, 1), (mec_ip(), 9000), 10);
        assert_eq!(u.classify_uplink(&to_mec).unwrap().ebi, Ebi::DEFAULT);
        assert!(!u.has_dedicated_bearer());
    }

    #[test]
    fn rrc_reconfiguration_installs_bearer_and_ip() {
        let mut u = Ue::new(
            Imsi(1),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(192, 168, 0, 1),
            1_000_000,
        );
        u.apply_rrc(ControlMsg::RrcReconfiguration {
            ebi: Ebi::DEFAULT,
            qci: Qci::DEFAULT_BEARER,
            tft: Tft::new(),
            ue_addr: Some(Ipv4Addr::new(10, 10, 0, 7)),
        });
        assert_eq!(u.ip, Some(Ipv4Addr::new(10, 10, 0, 7)));
        assert_eq!(u.state, UeState::Connected);
        assert_eq!(u.bearers.len(), 1);
        // Re-configuring the same EBI replaces, not duplicates.
        u.apply_rrc(ControlMsg::RrcReconfiguration {
            ebi: Ebi::DEFAULT,
            qci: Qci(8),
            tft: Tft::new(),
            ue_addr: None,
        });
        assert_eq!(u.bearers.len(), 1);
        assert_eq!(u.bearers[0].qci, Qci(8));
    }

    #[test]
    fn rrc_release_moves_to_idle() {
        let mut u = ue();
        u.apply_rrc(ControlMsg::RrcRelease { imsi: Imsi(1) });
        assert_eq!(u.state, UeState::Idle);
    }

    #[test]
    fn app_selector_matching() {
        let icmp = AppSelector::protocol(proto::ICMP);
        let p9000 = AppSelector::port(9000);
        let ping = Packet::icmp(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 56);
        let udp = Packet::udp((Ipv4Addr::UNSPECIFIED, 1), (Ipv4Addr::UNSPECIFIED, 9000), 1);
        assert!(icmp.matches(&ping));
        assert!(!icmp.matches(&udp));
        assert!(p9000.matches(&udp));
        assert!(!p9000.matches(&ping));
    }

    #[test]
    fn remove_bearer_drops_dedicated() {
        let mut u = ue();
        u.bearers.push(UeBearer {
            ebi: Ebi(6),
            qci: Qci(7),
            tft: Tft::single(PacketFilter::to_host(mec_ip())),
        });
        assert!(u.has_dedicated_bearer());
        u.remove_bearer(Ebi(6));
        assert!(!u.has_dedicated_bearer());
        assert_eq!(u.bearers.len(), 1);
    }
}
