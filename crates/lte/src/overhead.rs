//! Control-overhead accounting for bearer-management policies (paper §4).
//!
//! The paper's argument for on-demand dedicated bearers: LTE tears bearers
//! down after **11.576 s** of inactivity and re-establishes them on the
//! next data activity (a "radio promotion" event). Each cycle costs a
//! fixed batch of control messages; a device that *always* keeps a second
//! (MEC) bearer pays that batch **for both bearers** at every cycle, while
//! ACACIA pays it once plus a dedicated-bearer setup only when LTE-direct
//! actually finds a service.

use acacia_simnet::time::Duration;

/// The idle timer after which LTE releases a device's bearers (the paper
/// cites 11.576 s, measured by Huang et al. on a commercial network).
pub const IDLE_TIMEOUT: Duration = Duration::from_micros(11_576_000);

/// The idle timer after which LTE releases a device's bearers.
pub fn idle_timeout() -> Duration {
    IDLE_TIMEOUT
}

/// On-the-wire bytes of one default-bearer release + re-establish cycle,
/// as measured by running the real procedures (§4: 2914 bytes).
pub const CYCLE_BYTES: u64 = 2914;

/// Control bytes for activating one dedicated bearer (network-initiated,
/// Fig. 5 steps 2–4: Rx + Gx + CreateBearer pair + E-RAB setup pair + two
/// flow-mods), from the calibrated wire-size table.
pub const DEDICATED_SETUP_BYTES: u64 = 320 + 340 + 240 + 130 + 300 + 130 + 190 + 180 + 2 * 400;

/// How a device manages its MEC bearer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BearerPolicy {
    /// ACACIA: create the dedicated bearer only on a service match.
    OnDemand {
        /// MEC sessions actually started per day.
        service_matches_per_day: u32,
    },
    /// Strawman: keep a dedicated MEC bearer provisioned at all times; it
    /// is released and re-established together with the default bearer at
    /// every idle cycle.
    AlwaysOn,
}

/// Daily control-plane bytes for a device experiencing
/// `idle_cycles_per_day` release/re-establish events under `policy`.
///
/// The paper's §4 anchors: at 929 cycles/day a single always-on extra
/// bearer costs ~2.58 MB/day; at the 7200-cycle worst case ~20 MB/day.
pub fn control_bytes_per_day(policy: BearerPolicy, idle_cycles_per_day: u32) -> u64 {
    match policy {
        BearerPolicy::OnDemand {
            service_matches_per_day,
        } => {
            // The default bearer pays the cycles regardless; MEC costs only
            // per actual session.
            u64::from(idle_cycles_per_day) * CYCLE_BYTES
                + u64::from(service_matches_per_day) * DEDICATED_SETUP_BYTES
        }
        BearerPolicy::AlwaysOn => {
            // Both bearers cycle: double the per-cycle batch.
            u64::from(idle_cycles_per_day) * CYCLE_BYTES * 2
        }
    }
}

/// Extra daily bytes the always-on policy pays over on-demand.
pub fn always_on_penalty(idle_cycles_per_day: u32, service_matches_per_day: u32) -> i64 {
    control_bytes_per_day(BearerPolicy::AlwaysOn, idle_cycles_per_day) as i64
        - control_bytes_per_day(
            BearerPolicy::OnDemand {
                service_matches_per_day,
            },
            idle_cycles_per_day,
        ) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_projection_anchors() {
        // §4: "this could translate to 2.58MB of control traffic per day
        // per device ... (i.e., 929 times per day)" — that is the *extra*
        // bearer's share, i.e. one CYCLE_BYTES batch per cycle.
        let typical_extra = 929u64 * CYCLE_BYTES;
        assert!((2.5e6..2.8e6).contains(&(typical_extra as f64)));
        // "...as high as 20MB per device per day (i.e., 7200 times)".
        let worst_extra = 7_200u64 * CYCLE_BYTES;
        assert!((19e6..22e6).contains(&(worst_extra as f64)));
    }

    #[test]
    fn on_demand_wins_for_realistic_usage() {
        // A shopper starts a handful of MEC sessions a day; the phone
        // cycles idle hundreds of times.
        for cycles in [929u32, 7_200] {
            for matches in [0u32, 3, 10, 50] {
                let penalty = always_on_penalty(cycles, matches);
                assert!(
                    penalty > 0,
                    "always-on should lose at {cycles} cycles / {matches} matches"
                );
            }
        }
    }

    #[test]
    fn break_even_point_is_implausibly_high() {
        // On-demand only loses if the user starts more MEC sessions per
        // day than the phone has idle cycles × (CYCLE/SETUP) — hundreds.
        let cycles = 929u32;
        let break_even = (u64::from(cycles) * CYCLE_BYTES / DEDICATED_SETUP_BYTES) as u32;
        assert!(break_even > 700, "break-even at {break_even} sessions/day");
        assert!(always_on_penalty(cycles, break_even + 1) < 0);
    }

    #[test]
    fn idle_timeout_matches_paper() {
        assert_eq!(idle_timeout().millis(), 11_576);
    }
}
