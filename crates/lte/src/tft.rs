//! Traffic Flow Templates (3GPP TS 24.008 §10.5.6.12).
//!
//! A TFT is the packet filter attached to a bearer: essentially a list of
//! five-tuple filters with directions and precedences. ACACIA's key trick is
//! that the **uplink TFT lives in the UE's LTE modem**, so CI traffic is
//! classified at the source and steered onto the dedicated MEC bearer with
//! no network-side inspection (paper §5.4).

use acacia_simnet::packet::Packet;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Which direction(s) a filter applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// UE → network.
    #[serde(rename = "U")]
    Uplink,
    /// Network → UE.
    #[serde(rename = "D")]
    Downlink,
    /// Both.
    #[serde(rename = "B")]
    Bidirectional,
}

/// One packet filter within a TFT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketFilter {
    /// Evaluation precedence (lower evaluated first).
    #[serde(rename = "p")]
    pub precedence: u8,
    /// Direction the filter applies to.
    #[serde(rename = "d")]
    pub direction: Direction,
    /// Remote (network-side) address to match, with prefix length.
    #[serde(rename = "a", skip_serializing_if = "Option::is_none", default)]
    pub remote_addr: Option<(Ipv4Addr, u8)>,
    /// Remote port range (inclusive).
    #[serde(rename = "r", skip_serializing_if = "Option::is_none", default)]
    pub remote_port: Option<(u16, u16)>,
    /// IP protocol number.
    #[serde(rename = "x", skip_serializing_if = "Option::is_none", default)]
    pub protocol: Option<u8>,
}

impl PacketFilter {
    /// Match all traffic to a single remote host (any port/protocol).
    pub fn to_host(remote: Ipv4Addr) -> PacketFilter {
        PacketFilter {
            precedence: 0,
            direction: Direction::Bidirectional,
            remote_addr: Some((remote, 32)),
            remote_port: None,
            protocol: None,
        }
    }

    /// Match a single remote host + port + protocol.
    pub fn to_service(remote: Ipv4Addr, port: u16, protocol: u8) -> PacketFilter {
        PacketFilter {
            precedence: 0,
            direction: Direction::Bidirectional,
            remote_addr: Some((remote, 32)),
            remote_port: Some((port, port)),
            protocol: Some(protocol),
        }
    }

    /// Does `pkt`, travelling in `dir`, match this filter? The *remote* end
    /// is the destination for uplink packets and the source for downlink.
    pub fn matches(&self, pkt: &Packet, dir: Direction) -> bool {
        match (self.direction, dir) {
            (Direction::Bidirectional, _) => {}
            (Direction::Uplink, Direction::Uplink) => {}
            (Direction::Downlink, Direction::Downlink) => {}
            _ => return false,
        }
        let (remote_ip, remote_port) = match dir {
            Direction::Uplink => (pkt.dst, pkt.dst_port),
            Direction::Downlink => (pkt.src, pkt.src_port),
            Direction::Bidirectional => (pkt.dst, pkt.dst_port),
        };
        if let Some((net, plen)) = self.remote_addr {
            let mask = if plen == 0 {
                0
            } else {
                u32::MAX << (32 - plen as u32)
            };
            if (u32::from(remote_ip) & mask) != (u32::from(net) & mask) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.remote_port {
            if remote_port < lo || remote_port > hi {
                return false;
            }
        }
        if let Some(proto) = self.protocol {
            if pkt.protocol != proto {
                return false;
            }
        }
        true
    }

    /// Encoded size in bytes (TS 24.008-style component list).
    pub fn wire_len(&self) -> u32 {
        let mut len = 3; // filter id + direction + precedence
        if self.remote_addr.is_some() {
            len += 9; // type + addr + mask
        }
        if self.remote_port.is_some() {
            len += 5; // type + range
        }
        if self.protocol.is_some() {
            len += 2; // type + number
        }
        len
    }
}

/// A Traffic Flow Template: ordered packet filters.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tft {
    /// Filters, evaluated in precedence order.
    #[serde(rename = "f")]
    pub filters: Vec<PacketFilter>,
}

impl Tft {
    /// Empty (match-nothing) TFT.
    pub fn new() -> Tft {
        Tft::default()
    }

    /// A TFT with a single filter.
    pub fn single(filter: PacketFilter) -> Tft {
        Tft {
            filters: vec![filter],
        }
    }

    /// Does any filter match?
    pub fn matches(&self, pkt: &Packet, dir: Direction) -> bool {
        let mut filters: Vec<&PacketFilter> = self.filters.iter().collect();
        filters.sort_by_key(|f| f.precedence);
        filters.iter().any(|f| f.matches(pkt, dir))
    }

    /// Encoded size in bytes.
    pub fn wire_len(&self) -> u32 {
        1 + self.filters.iter().map(|f| f.wire_len()).sum::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_simnet::packet::proto;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 4, 0, a)
    }

    fn pkt(dst: Ipv4Addr, dst_port: u16, protocol: u8) -> Packet {
        let mut p = Packet::udp((Ipv4Addr::new(10, 10, 0, 1), 40_000), (dst, dst_port), 100);
        p.protocol = protocol;
        p
    }

    #[test]
    fn host_filter_matches_uplink_by_destination() {
        let f = PacketFilter::to_host(ip(1));
        assert!(f.matches(&pkt(ip(1), 80, proto::UDP), Direction::Uplink));
        assert!(!f.matches(&pkt(ip(2), 80, proto::UDP), Direction::Uplink));
    }

    #[test]
    fn downlink_matches_by_source() {
        let f = PacketFilter::to_host(ip(1));
        let mut p = pkt(ip(9), 80, proto::UDP);
        p.src = ip(1);
        assert!(f.matches(&p, Direction::Downlink));
        p.src = ip(3);
        assert!(!f.matches(&p, Direction::Downlink));
    }

    #[test]
    fn service_filter_checks_port_and_protocol() {
        let f = PacketFilter::to_service(ip(1), 9000, proto::UDP);
        assert!(f.matches(&pkt(ip(1), 9000, proto::UDP), Direction::Uplink));
        assert!(!f.matches(&pkt(ip(1), 9001, proto::UDP), Direction::Uplink));
        assert!(!f.matches(&pkt(ip(1), 9000, proto::TCP), Direction::Uplink));
    }

    #[test]
    fn direction_restricted_filter() {
        let f = PacketFilter {
            direction: Direction::Uplink,
            ..PacketFilter::to_host(ip(1))
        };
        assert!(f.matches(&pkt(ip(1), 80, proto::UDP), Direction::Uplink));
        let mut down = pkt(ip(9), 80, proto::UDP);
        down.src = ip(1);
        assert!(!f.matches(&down, Direction::Downlink));
    }

    #[test]
    fn prefix_match() {
        let f = PacketFilter {
            remote_addr: Some((Ipv4Addr::new(10, 4, 0, 0), 24)),
            ..PacketFilter::to_host(ip(0))
        };
        assert!(f.matches(&pkt(ip(77), 80, proto::UDP), Direction::Uplink));
        assert!(!f.matches(
            &pkt(Ipv4Addr::new(10, 5, 0, 1), 80, proto::UDP),
            Direction::Uplink
        ));
    }

    #[test]
    fn empty_tft_matches_nothing() {
        let t = Tft::new();
        assert!(!t.matches(&pkt(ip(1), 80, proto::UDP), Direction::Uplink));
    }

    #[test]
    fn tft_any_filter_matches() {
        let t = Tft {
            filters: vec![PacketFilter::to_host(ip(1)), PacketFilter::to_host(ip(2))],
        };
        assert!(t.matches(&pkt(ip(2), 80, proto::UDP), Direction::Uplink));
        assert!(!t.matches(&pkt(ip(3), 80, proto::UDP), Direction::Uplink));
    }

    #[test]
    fn wire_len_grows_with_components() {
        let host = PacketFilter::to_host(ip(1));
        let service = PacketFilter::to_service(ip(1), 80, proto::UDP);
        assert!(service.wire_len() > host.wire_len());
        let t = Tft {
            filters: vec![host.clone(), service],
        };
        assert_eq!(t.wire_len(), 1 + host.wire_len() + 19);
    }
}
