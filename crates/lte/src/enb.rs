//! The eNodeB: radio ↔ S1-U forwarding with GTP encapsulation, S1AP
//! signalling toward the MME, and a priority-scheduled downlink.
//!
//! ACACIA requires **no eNB modifications**: the eNB just follows the
//! standard Bearer Setup Request, which (in ACACIA) carries the *local*
//! SGW-U address for dedicated MEC bearers — so MEC traffic leaves on a
//! different S1 port without the eNB knowing anything about MEC (paper
//! §5.4 step 3).

use crate::ids::{Ebi, Imsi, Teid};
use crate::log::MsgLog;
use crate::qci::Qci;
use crate::radio::{self, port, RadioPayload, RadioScheduler};
use crate::wire::{ControlMsg, ErabSetup};
use crate::timers::Timers;
use crate::{gtpu, tft::Tft};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId, TimerHandle};
use acacia_simnet::time::Duration;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Per-bearer forwarding state at the eNB.
#[derive(Debug, Clone)]
pub struct EnbBearer {
    /// Owner.
    pub imsi: Imsi,
    /// Bearer id.
    pub ebi: Ebi,
    /// QoS class (drives downlink scheduling priority).
    pub qci: Qci,
    /// Uplink tunnel: GW-U address + TEID.
    pub gw_addr: Ipv4Addr,
    /// Uplink TEID at the GW-U.
    pub gw_teid: Teid,
    /// Downlink TEID terminating here.
    pub enb_teid: Teid,
    /// TFT to push to the UE.
    pub tft: Tft,
    /// Is the S1 leg currently active (false while RRC-idle)?
    pub active: bool,
}

/// A UE known to this eNB.
#[derive(Debug, Clone)]
struct UeEntry {
    imsi: Imsi,
    radio_addr: Ipv4Addr,
    radio_port: PortId,
    ue_addr: Option<Ipv4Addr>,
    /// Last user-plane activity (for the inactivity timer).
    last_activity: acacia_simnet::time::Instant,
    /// Is an automatic idle-check timer armed?
    idle_check_armed: bool,
}

/// An X2 neighbour of this eNB.
#[derive(Debug, Clone, Copy)]
struct X2Peer {
    /// Radio-side address of the neighbour (what measurement reports name).
    radio_addr: Ipv4Addr,
    /// S1/X2 control address of the neighbour.
    enb_addr: Ipv4Addr,
    /// Local port the X2 link is attached to.
    port: PortId,
}

/// Source-side handover progress for one UE.
#[derive(Debug, Clone)]
enum HoPhase {
    /// Handover Request sent; waiting for the target's Ack.
    Preparing {
        /// X2 port toward the target.
        port: PortId,
        /// Radio address of the target cell (for the RRC command).
        target_radio: Ipv4Addr,
        /// Control address of the target eNB (retransmission destination).
        peer_addr: Ipv4Addr,
        /// Procedure transaction id carried by the Handover Request.
        txid: u32,
        /// Handover Request transmissions so far.
        attempts: u32,
        /// Guard-timer sequence currently armed for this attempt.
        guard: u64,
        /// The request as sent, kept verbatim for retransmission.
        request: Box<ControlMsg>,
    },
    /// UE commanded to the target; downlink data is forwarded over X2
    /// until the target signals UE Context Release.
    Forwarding {
        /// X2 port toward the target.
        port: PortId,
        /// Target eNB control address (GTP-U outer destination).
        peer: Ipv4Addr,
        /// Per-bearer forwarding TEIDs allocated by the target.
        teids: BTreeMap<Ebi, Teid>,
        /// Overall guard-timer sequence: fires if the target never signals
        /// UE Context Release.
        guard: u64,
    },
}

/// Target-side state of one incoming handover, kept until the Path Switch
/// completes (or falls back).
#[derive(Debug, Clone)]
struct HoInCtx {
    /// X2 port toward the source eNB.
    x2_port: PortId,
    /// Source eNB control address.
    src_addr: Ipv4Addr,
    /// Transaction id of the admitting Handover Request: duplicates are
    /// re-acked with the same E-RABs instead of re-admitted.
    ho_txid: u32,
    /// E-RABs admitted for this handover (echoed on duplicate requests).
    admitted: Vec<(Ebi, Teid)>,
    /// Path Switch procedure state, present once the UE has arrived.
    ps: Option<PsState>,
}

/// An in-flight Path Switch Request with its retransmission budget.
#[derive(Debug, Clone)]
struct PsState {
    /// Path Switch Request transmissions so far.
    attempts: u32,
    /// Guard-timer sequence currently armed for this attempt.
    guard: u64,
    /// The request as sent, kept verbatim for retransmission.
    request: Box<ControlMsg>,
}

/// Timer tokens understood by the eNB.
pub mod token {
    /// Downlink radio scheduler release.
    pub const DL_RELEASE: u64 = 1;
    /// Declare UE `token - IDLE_BASE` idle and start the release procedure
    /// (the paper's 11.576 s inactivity event, triggered by the harness).
    pub const IDLE_BASE: u64 = 1000;
    /// Automatic inactivity check for UE `token - IDLE_CHECK_BASE`.
    pub const IDLE_CHECK_BASE: u64 = 2000;
    /// Handover guard timers: `HO_GUARD_BASE + seq` identifies one arming
    /// of a preparation / forwarding / path-switch guard. A fire whose
    /// sequence no longer matches any live procedure is a no-op, so
    /// completed procedures never need to cancel their timers.
    pub const HO_GUARD_BASE: u64 = 1 << 32;
}

/// The eNB node.
pub struct Enb {
    /// Control/S1 address of this eNB.
    pub addr: Ipv4Addr,
    /// MME address.
    pub mme_addr: Ipv4Addr,
    /// Known S1-U gateway addresses → output port (core SGW-U vs local
    /// MEC GW-U).
    pub s1_ports: HashMap<Ipv4Addr, PortId>,
    ues: Vec<UeEntry>,
    bearers: Vec<EnbBearer>,
    next_teid: u32,
    dl: RadioScheduler,
    /// Automatic inactivity release: after this much user-plane silence the
    /// eNB starts the UE-context release (the paper's 11.576 s timer).
    /// `None` disables the mechanism (procedures driven by the harness).
    pub auto_idle: Option<acacia_simnet::time::Duration>,
    log: MsgLog,
    /// Guard/retry intervals ([`crate::timers::Timers`]); the defaults
    /// reproduce the historical hard-coded constants.
    pub timers: Timers,
    /// X2 neighbours (peer cells).
    x2_peers: Vec<X2Peer>,
    /// Outgoing handovers in progress, keyed by UE.
    ho: BTreeMap<Imsi, HoPhase>,
    /// Incoming handovers awaiting Path Switch completion.
    ho_in: BTreeMap<Imsi, HoInCtx>,
    /// Next procedure transaction id.
    next_txid: u32,
    /// Next guard-timer sequence number.
    next_guard: u64,
    /// Engine timer handle for each live guard seq: procedures that end
    /// before their guard fires cancel it in the scheduler instead of
    /// relying on the fire being a stale no-op.
    guard_timers: BTreeMap<u64, TimerHandle>,
    /// Uplink user packets forwarded onto S1.
    pub ul_forwarded: u64,
    /// Downlink user frames scheduled to UEs.
    pub dl_forwarded: u64,
    /// Packets dropped for missing bearer state.
    pub no_bearer: u64,
    /// Handovers completed with this eNB as source.
    pub ho_out_done: u64,
    /// Handovers completed with this eNB as target.
    pub ho_in_done: u64,
    /// Downlink packets forwarded over X2 during handover execution.
    pub x2_forwarded: u64,
    /// X2 Handover Requests retransmitted after a guard expiry (source).
    pub ho_retx: u64,
    /// Handovers cancelled after exhausting Handover Request attempts
    /// (source side; the UE stays on this cell).
    pub ho_cancelled: u64,
    /// Incoming handovers torn down by an X2 Handover Cancel (target).
    pub ho_in_cancelled: u64,
    /// Forwarding phases expired by the overall guard (lost UE Context
    /// Release): the source released the UE context locally.
    pub ho_out_expired: u64,
    /// Path Switch Requests retransmitted after a guard expiry (target).
    pub ps_retx: u64,
    /// Path Switch procedures abandoned after exhausting attempts: the UE
    /// was released to re-enter via a core-routed service request.
    pub ps_fallback: u64,
    /// RRC re-establishment requests served (target side).
    pub reest_in: u64,
}

impl Enb {
    /// New eNB.
    pub fn new(addr: Ipv4Addr, mme_addr: Ipv4Addr, dl_rate_bps: u64, log: MsgLog) -> Enb {
        Enb {
            addr,
            mme_addr,
            s1_ports: HashMap::new(),
            ues: Vec::new(),
            bearers: Vec::new(),
            next_teid: 0x3000,
            dl: RadioScheduler::new(dl_rate_bps),
            auto_idle: None,
            log,
            timers: Timers::default(),
            x2_peers: Vec::new(),
            ho: BTreeMap::new(),
            ho_in: BTreeMap::new(),
            next_txid: 1,
            next_guard: 0,
            guard_timers: BTreeMap::new(),
            ul_forwarded: 0,
            dl_forwarded: 0,
            no_bearer: 0,
            ho_out_done: 0,
            ho_in_done: 0,
            x2_forwarded: 0,
            ho_retx: 0,
            ho_cancelled: 0,
            ho_in_cancelled: 0,
            ho_out_expired: 0,
            ps_retx: 0,
            ps_fallback: 0,
            reest_in: 0,
        }
    }

    /// Register an X2 neighbour cell reachable via `port`. Measurement
    /// reports identify targets by their radio address.
    pub fn add_x2_neighbor(&mut self, radio_addr: Ipv4Addr, enb_addr: Ipv4Addr, port: PortId) {
        self.x2_peers.push(X2Peer {
            radio_addr,
            enb_addr,
            port,
        });
    }

    /// Register a UE served by this eNB; returns its radio port.
    pub fn add_ue(&mut self, imsi: Imsi, radio_addr: Ipv4Addr) -> PortId {
        let radio_port = port::ENB_RADIO_BASE + self.ues.len();
        self.ues.push(UeEntry {
            imsi,
            radio_addr,
            radio_port,
            ue_addr: None,
            last_activity: acacia_simnet::time::Instant::ZERO,
            idle_check_armed: false,
        });
        radio_port
    }

    /// Register an S1-U gateway reachable via `out_port`.
    pub fn add_s1_gateway(&mut self, gw_addr: Ipv4Addr, out_port: PortId) {
        self.s1_ports.insert(gw_addr, out_port);
    }

    /// Bearer state for inspection.
    pub fn bearers(&self) -> &[EnbBearer] {
        &self.bearers
    }

    /// Handover procedures still open at this eNB (source + target side).
    /// A drained simulation must end with zero everywhere — anything else
    /// is a wedged UE.
    pub fn outstanding_handovers(&self) -> usize {
        self.ho.len() + self.ho_in.len()
    }

    fn alloc_txid(&mut self) -> u32 {
        let t = self.next_txid;
        self.next_txid += 1;
        t
    }

    /// Arm a handover guard timer; returns the sequence number the fire
    /// must match to be considered live.
    fn arm_guard(&mut self, ctx: &mut Ctx<'_>, after: Duration) -> u64 {
        let seq = self.next_guard;
        self.next_guard += 1;
        let handle = ctx.schedule_in_cancellable(after, token::HO_GUARD_BASE + seq);
        self.guard_timers.insert(seq, handle);
        seq
    }

    /// Cancel a still-armed guard timer (the procedure it supervised
    /// resolved first). A seq whose timer already fired is a no-op.
    fn cancel_guard(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        if let Some(handle) = self.guard_timers.remove(&seq) {
            ctx.cancel_timer(handle);
        }
    }

    fn ue_by_radio_port(&self, p: PortId) -> Option<&UeEntry> {
        self.ues.iter().find(|u| u.radio_port == p)
    }

    fn ue_by_imsi(&self, imsi: Imsi) -> Option<&UeEntry> {
        self.ues.iter().find(|u| u.imsi == imsi)
    }

    fn alloc_teid(&mut self) -> Teid {
        let t = Teid(self.next_teid);
        self.next_teid += 1;
        t
    }

    fn send_s1ap(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        self.log.record(ctx.now(), &msg);
        ctx.send(port::ENB_S1AP, msg.into_packet(self.addr, self.mme_addr));
    }

    fn send_x2(
        &mut self,
        ctx: &mut Ctx<'_>,
        x2_port: PortId,
        peer_addr: Ipv4Addr,
        msg: ControlMsg,
    ) {
        self.log.record(ctx.now(), &msg);
        ctx.send(x2_port, msg.into_packet(self.addr, peer_addr));
    }

    fn send_rrc(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi, msg: ControlMsg) {
        let Some(ue) = self.ue_by_imsi(imsi) else {
            return;
        };
        let (radio_port, radio_addr) = (ue.radio_port, ue.radio_addr);
        self.log.record(ctx.now(), &msg);
        let frame = radio::rrc_frame(&msg, self.addr, radio_addr);
        // Control frames bypass the data scheduler (SRBs have absolute
        // priority); model as direct send.
        ctx.send(radio_port, frame);
    }

    fn handle_radio(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        let Some(ue) = self.ue_by_radio_port(in_port) else {
            return;
        };
        let imsi = ue.imsi;
        match radio::parse_frame(&pkt) {
            Some(RadioPayload::Rrc(msg)) => {
                self.log.record(ctx.now(), &msg); // UE-originated RRC
                match msg {
                    ControlMsg::RrcAttachRequest { .. } => {
                        self.send_s1ap(ctx, ControlMsg::InitialUeAttach { imsi });
                    }
                    ControlMsg::RrcServiceRequest { .. } => {
                        self.send_s1ap(ctx, ControlMsg::InitialUeServiceRequest { imsi });
                    }
                    ControlMsg::RrcMeasurementReport { target_radio, .. } => {
                        self.start_handover(ctx, imsi, target_radio);
                    }
                    ControlMsg::RrcHandoverConfirm { .. } if self.ho_in.contains_key(&imsi) => {
                        // Target side: the UE has arrived on our radio;
                        // switch its S1 path toward us.
                        self.ue_arrived(ctx, imsi);
                    }
                    ControlMsg::RrcReestablishmentRequest { .. } => {
                        self.handle_reestablishment(ctx, imsi);
                    }
                    _ => {}
                }
            }
            Some(RadioPayload::Data { ebi, inner }) => {
                self.touch_activity(ctx, imsi);
                let Some(bearer) = self
                    .bearers
                    .iter()
                    .find(|b| b.imsi == imsi && b.ebi == ebi && b.active)
                else {
                    self.no_bearer += 1;
                    return;
                };
                let Some(&out_port) = self.s1_ports.get(&bearer.gw_addr) else {
                    self.no_bearer += 1;
                    return;
                };
                let outer = gtpu::encapsulate(&inner, bearer.gw_teid, self.addr, bearer.gw_addr);
                self.ul_forwarded += 1;
                ctx.send(out_port, outer);
            }
            None => {}
        }
    }

    /// Source-side handover admission: a measurement report arrived for a
    /// known X2 neighbour. Sends the X2 Handover Request carrying every
    /// active bearer context (standard X2AP — the eNB needs no knowledge
    /// of which gateway is "local").
    fn start_handover(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi, target_radio: Ipv4Addr) {
        if self.ho.contains_key(&imsi) {
            return; // one handover at a time per UE
        }
        let Some(peer) = self
            .x2_peers
            .iter()
            .find(|p| p.radio_addr == target_radio)
            .copied()
        else {
            return; // unknown neighbour: ignore the report
        };
        let ue_addr = self.ue_by_imsi(imsi).and_then(|u| u.ue_addr);
        let bearers: Vec<ErabSetup> = self
            .bearers
            .iter()
            .filter(|b| b.imsi == imsi && b.active)
            .map(|b| ErabSetup {
                ebi: b.ebi,
                qci: b.qci,
                gw_addr: b.gw_addr,
                gw_teid: b.gw_teid,
                tft: b.tft.clone(),
            })
            .collect();
        if bearers.is_empty() {
            return; // nothing to hand over
        }
        let txid = self.alloc_txid();
        let request = ControlMsg::X2HandoverRequest {
            imsi,
            ue_addr,
            bearers,
            txid,
        };
        let guard = self.arm_guard(ctx, self.timers.x2_prep_guard);
        self.ho.insert(
            imsi,
            HoPhase::Preparing {
                port: peer.port,
                target_radio,
                peer_addr: peer.enb_addr,
                txid,
                attempts: 1,
                guard,
                request: Box::new(request.clone()),
            },
        );
        self.send_x2(ctx, peer.port, peer.enb_addr, request);
    }

    /// Target side: the UE is on our radio (Handover Confirm or RRC
    /// re-establishment). Start the Path Switch procedure — or keep the
    /// one already running if this is a duplicate arrival.
    fn ue_arrived(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(hin) = self.ho_in.get(&imsi) else {
            return;
        };
        if hin.ps.is_some() {
            return; // duplicate confirm: the procedure is already running
        }
        let erabs: Vec<(Ebi, Teid)> = self
            .bearers
            .iter()
            .filter(|b| b.imsi == imsi && b.active)
            .map(|b| (b.ebi, b.enb_teid))
            .collect();
        let txid = self.alloc_txid();
        let request = ControlMsg::PathSwitchRequest {
            imsi,
            enb_addr: self.addr,
            erabs,
            txid,
        };
        let guard = self.arm_guard(ctx, self.timers.path_switch_guard);
        if let Some(hin) = self.ho_in.get_mut(&imsi) {
            hin.ps = Some(PsState {
                attempts: 1,
                guard,
                request: Box::new(request.clone()),
            });
        }
        self.send_s1ap(ctx, request);
    }

    /// An RRC re-establishment request arrived on our radio: the UE lost
    /// its serving cell mid-procedure (e.g. the Handover Command never
    /// made it) and picked us. Resume whatever context we hold.
    fn handle_reestablishment(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        self.reest_in += 1;
        if self.ho_in.contains_key(&imsi) {
            // Admitted over X2 but never confirmed: treat the
            // re-establishment as the arrival and run the Path Switch.
            self.send_rrc(ctx, imsi, ControlMsg::RrcReestablishmentConfirm { imsi });
            self.ue_arrived(ctx, imsi);
        } else if self.bearers.iter().any(|b| b.imsi == imsi && b.active) {
            // Context already live here (duplicate request): just confirm.
            self.send_rrc(ctx, imsi, ControlMsg::RrcReestablishmentConfirm { imsi });
        } else {
            // Nothing to resume: release the UE; its buffered traffic
            // re-enters through the standard service request.
            self.send_rrc(ctx, imsi, ControlMsg::RrcRelease { imsi });
        }
    }

    /// Path Switch gave up (every retransmission lost): fall back to the
    /// core path. The old cell is told to release, dedicated bearers are
    /// dropped (the core still anchors them at the old cell), and the UE
    /// is pushed to idle so a service request re-anchors its default
    /// bearer here through the MME.
    fn path_switch_fallback(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(hin) = self.ho_in.remove(&imsi) else {
            return;
        };
        self.ps_fallback += 1;
        self.send_x2(
            ctx,
            hin.x2_port,
            hin.src_addr,
            ControlMsg::X2UeContextRelease { imsi },
        );
        let dedicated: Vec<Ebi> = self
            .bearers
            .iter()
            .filter(|b| b.imsi == imsi && b.ebi != Ebi::DEFAULT)
            .map(|b| b.ebi)
            .collect();
        for ebi in dedicated {
            self.bearers.retain(|b| !(b.imsi == imsi && b.ebi == ebi));
            self.send_rrc(ctx, imsi, ControlMsg::RrcBearerRelease { ebi });
        }
        for b in self.bearers.iter_mut().filter(|b| b.imsi == imsi) {
            b.active = false;
        }
        self.send_rrc(ctx, imsi, ControlMsg::RrcRelease { imsi });
    }

    fn handle_x2(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        if gtpu::is_gtpu(&pkt) {
            // Forwarded downlink data from the source cell; our bearer
            // TEIDs were installed at Handover Request time.
            self.handle_s1u(ctx, pkt);
            return;
        }
        let Some(msg) = ControlMsg::from_packet(&pkt) else {
            return;
        };
        match msg {
            // Target side: admit the UE and install its bearers. No RRC
            // toward the UE — it keeps its bearer/TFT configuration across
            // the handover (only the serving cell changes).
            ControlMsg::X2HandoverRequest {
                imsi,
                ue_addr,
                bearers,
                txid,
            } => {
                if let Some(hin) = self.ho_in.get(&imsi) {
                    if hin.ho_txid == txid {
                        // Duplicate (or retransmitted) request for an
                        // admission we already answered: re-ack the same
                        // E-RABs instead of allocating fresh TEIDs.
                        let erabs = hin.admitted.clone();
                        self.send_x2(
                            ctx,
                            in_port,
                            pkt.src,
                            ControlMsg::X2HandoverRequestAck { imsi, erabs, txid },
                        );
                        return;
                    }
                    // A different transaction supersedes the stale
                    // admission (the source cancelled and retried); fall
                    // through to a fresh one.
                }
                if let Some(addr) = ue_addr {
                    if let Some(ue) = self.ues.iter_mut().find(|u| u.imsi == imsi) {
                        ue.ue_addr = Some(addr);
                    }
                }
                let mut erabs = Vec::new();
                for erab in &bearers {
                    let enb_teid = self.setup_erab(erab, imsi);
                    erabs.push((erab.ebi, enb_teid));
                }
                self.ho_in.insert(
                    imsi,
                    HoInCtx {
                        x2_port: in_port,
                        src_addr: pkt.src,
                        ho_txid: txid,
                        admitted: erabs.clone(),
                        ps: None,
                    },
                );
                self.send_x2(
                    ctx,
                    in_port,
                    pkt.src,
                    ControlMsg::X2HandoverRequestAck { imsi, erabs, txid },
                );
            }
            // Source side: target is ready. Freeze the UE's downlink onto
            // the X2 forwarding tunnel and command the UE over.
            ControlMsg::X2HandoverRequestAck { imsi, erabs, txid } => {
                let Some(HoPhase::Preparing {
                    port,
                    target_radio,
                    txid: want,
                    guard: prep_guard,
                    ..
                }) = self.ho.get(&imsi).cloned()
                else {
                    return;
                };
                if txid != want {
                    return; // stale ack of a superseded attempt
                }
                // Preparation succeeded: retire its guard in the scheduler.
                self.cancel_guard(ctx, prep_guard);
                self.send_x2(
                    ctx,
                    port,
                    pkt.src,
                    ControlMsg::X2SnStatusTransfer {
                        imsi,
                        dl_count: self.dl_forwarded as u32,
                        ul_count: self.ul_forwarded as u32,
                    },
                );
                let guard = self.arm_guard(ctx, self.timers.ho_overall_guard);
                self.ho.insert(
                    imsi,
                    HoPhase::Forwarding {
                        port,
                        peer: pkt.src,
                        teids: erabs.into_iter().collect(),
                        guard,
                    },
                );
                self.send_rrc(
                    ctx,
                    imsi,
                    ControlMsg::RrcHandoverCommand { imsi, target_radio },
                );
            }
            // Target side: the source gave up on an admission we granted.
            // Honoured only while the UE has not arrived — a cancel racing
            // a successful arrival loses.
            ControlMsg::X2HandoverCancel { imsi, txid } => {
                let Some(hin) = self.ho_in.get(&imsi) else {
                    return;
                };
                if hin.ho_txid != txid || hin.ps.is_some() {
                    return;
                }
                let admitted = hin.admitted.clone();
                self.ho_in.remove(&imsi);
                self.bearers.retain(|b| {
                    !(b.imsi == imsi && admitted.iter().any(|&(_, t)| t == b.enb_teid))
                });
                self.ho_in_cancelled += 1;
            }
            // Target side: PDCP sequence state from the source. The data
            // path here is packet-based, so the counts are informational.
            ControlMsg::X2SnStatusTransfer { .. } => {}
            // Source side: the path switch completed; drop the UE context
            // and stop forwarding.
            ControlMsg::X2UeContextRelease { imsi } => {
                match self.ho.remove(&imsi) {
                    Some(HoPhase::Preparing { guard, .. })
                    | Some(HoPhase::Forwarding { guard, .. }) => self.cancel_guard(ctx, guard),
                    None => {}
                }
                self.bearers.retain(|b| b.imsi != imsi);
                self.ho_out_done += 1;
            }
            _ => {}
        }
    }

    fn handle_s1u(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some((teid, inner)) = gtpu::decapsulate(&pkt) else {
            return;
        };
        let Some(bearer) = self.bearers.iter().find(|b| b.enb_teid == teid) else {
            self.no_bearer += 1;
            return;
        };
        let (imsi, ebi, prio) = (
            bearer.imsi,
            bearer.ebi,
            radio::sched_priority(bearer.qci.tos()),
        );
        self.touch_activity(ctx, imsi);
        // During handover execution the UE is tuning to the target cell:
        // forward its downlink over X2 instead of the (dead) radio leg.
        if let Some(HoPhase::Forwarding {
            port, peer, teids, ..
        }) = self.ho.get(&imsi)
        {
            if let Some(&fwd_teid) = teids.get(&ebi) {
                let (port, peer) = (*port, *peer);
                let outer = gtpu::encapsulate(&inner, fwd_teid, self.addr, peer);
                self.x2_forwarded += 1;
                ctx.send(port, outer);
                return;
            }
        }
        let Some(ue) = self.ue_by_imsi(imsi) else {
            return;
        };
        let frame = radio::data_frame(ebi, &inner, self.addr, ue.radio_addr);
        self.dl_forwarded += 1;
        self.dl.offer(ctx, prio, frame, token::DL_RELEASE);
    }

    /// Record user-plane activity and (re)arm the inactivity timer.
    fn touch_activity(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(timeout) = self.auto_idle else {
            return;
        };
        let Some(idx) = self.ues.iter().position(|u| u.imsi == imsi) else {
            return;
        };
        self.ues[idx].last_activity = ctx.now();
        if !self.ues[idx].idle_check_armed {
            self.ues[idx].idle_check_armed = true;
            ctx.schedule_in(timeout, token::IDLE_CHECK_BASE + idx as u64);
        }
    }

    fn setup_erab(&mut self, erab: &ErabSetup, imsi: Imsi) -> Teid {
        let enb_teid = self.alloc_teid();
        // Replace any stale state for the same (imsi, ebi).
        self.bearers
            .retain(|b| !(b.imsi == imsi && b.ebi == erab.ebi));
        self.bearers.push(EnbBearer {
            imsi,
            ebi: erab.ebi,
            qci: erab.qci,
            gw_addr: erab.gw_addr,
            gw_teid: erab.gw_teid,
            enb_teid,
            tft: erab.tft.clone(),
            active: true,
        });
        enb_teid
    }

    /// A handover guard fired. Resolve the sequence number against every
    /// live procedure; anything that does not match completed (or was
    /// superseded) in the meantime and the fire is a no-op.
    fn on_ho_guard(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        // This seq's timer just fired; its handle is spent.
        self.guard_timers.remove(&seq);
        // Source side: unanswered Handover Request.
        let prep = self.ho.iter().find_map(|(&imsi, p)| match p {
            HoPhase::Preparing { guard, .. } if *guard == seq => Some(imsi),
            _ => None,
        });
        if let Some(imsi) = prep {
            let Some(HoPhase::Preparing {
                port,
                peer_addr,
                txid,
                attempts,
                request,
                ..
            }) = self.ho.get(&imsi).cloned()
            else {
                return;
            };
            if attempts < self.timers.ho_max_attempts {
                let new_guard = self.arm_guard(ctx, self.timers.x2_prep_guard);
                if let Some(HoPhase::Preparing {
                    attempts, guard, ..
                }) = self.ho.get_mut(&imsi)
                {
                    *attempts += 1;
                    *guard = new_guard;
                }
                self.ho_retx += 1;
                self.send_x2(ctx, port, peer_addr, (*request).clone());
            } else {
                // TX2RELOCprep analogue expired: cancel. The UE never left
                // this cell; measurement may retrigger the handover later.
                self.ho.remove(&imsi);
                self.ho_cancelled += 1;
                self.send_x2(
                    ctx,
                    port,
                    peer_addr,
                    ControlMsg::X2HandoverCancel { imsi, txid },
                );
            }
            return;
        }
        // Source side: the forwarding phase never closed (lost UE Context
        // Release). Release the old context locally.
        let fwd = self.ho.iter().find_map(|(&imsi, p)| match p {
            HoPhase::Forwarding { guard, .. } if *guard == seq => Some(imsi),
            _ => None,
        });
        if let Some(imsi) = fwd {
            self.ho.remove(&imsi);
            self.bearers.retain(|b| b.imsi != imsi);
            self.ho_out_expired += 1;
            return;
        }
        // Target side: unanswered Path Switch Request.
        let psq = self.ho_in.iter().find_map(|(&imsi, h)| match &h.ps {
            Some(ps) if ps.guard == seq => Some(imsi),
            _ => None,
        });
        if let Some(imsi) = psq {
            let (attempts, request) = {
                let ps = self.ho_in[&imsi].ps.as_ref().expect("matched above");
                (ps.attempts, ps.request.clone())
            };
            if attempts < self.timers.ho_max_attempts {
                let new_guard = self.arm_guard(ctx, self.timers.path_switch_guard);
                if let Some(ps) = self.ho_in.get_mut(&imsi).and_then(|h| h.ps.as_mut()) {
                    ps.attempts += 1;
                    ps.guard = new_guard;
                }
                self.ps_retx += 1;
                self.send_s1ap(ctx, (*request).clone());
            } else {
                self.path_switch_fallback(ctx, imsi);
            }
        }
    }

    fn handle_s1ap(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some(msg) = ControlMsg::from_packet(&pkt) else {
            return;
        };
        match msg {
            ControlMsg::InitialContextSetupRequest { imsi, erabs } => {
                let mut enb_teids = Vec::new();
                if erabs.is_empty() {
                    // Service-request restoration: reactivate stored
                    // bearers and report their (fresh) TEIDs.
                    let stored: Vec<(Ebi, Teid)> = self
                        .bearers
                        .iter_mut()
                        .filter(|b| b.imsi == imsi)
                        .map(|b| {
                            b.active = true;
                            (b.ebi, b.enb_teid)
                        })
                        .collect();
                    enb_teids = stored;
                } else {
                    for erab in &erabs {
                        let teid = self.setup_erab(erab, imsi);
                        enb_teids.push((erab.ebi, teid));
                    }
                }
                self.send_s1ap(
                    ctx,
                    ControlMsg::InitialContextSetupResponse { imsi, enb_teids },
                );
            }
            ControlMsg::DownlinkNasAccept { imsi, ue_addr } => {
                if let Some(addr) = ue_addr {
                    if let Some(ue) = self.ues.iter_mut().find(|u| u.imsi == imsi) {
                        ue.ue_addr = Some(addr);
                    }
                }
                // Push (or refresh) RRC configuration for every active
                // bearer of this UE.
                let ue_addr = self.ue_by_imsi(imsi).and_then(|u| u.ue_addr);
                let configs: Vec<(Ebi, Qci, Tft)> = self
                    .bearers
                    .iter()
                    .filter(|b| b.imsi == imsi && b.active)
                    .map(|b| (b.ebi, b.qci, b.tft.clone()))
                    .collect();
                for (ebi, qci, tft) in configs {
                    self.send_rrc(
                        ctx,
                        imsi,
                        ControlMsg::RrcReconfiguration {
                            ebi,
                            qci,
                            tft,
                            ue_addr,
                        },
                    );
                }
            }
            ControlMsg::ErabSetupRequest { imsi, erab } => {
                let enb_teid = self.setup_erab(&erab, imsi);
                self.send_rrc(
                    ctx,
                    imsi,
                    ControlMsg::RrcReconfiguration {
                        ebi: erab.ebi,
                        qci: erab.qci,
                        tft: erab.tft.clone(),
                        ue_addr: None,
                    },
                );
                self.send_s1ap(
                    ctx,
                    ControlMsg::ErabSetupResponse {
                        imsi,
                        ebi: erab.ebi,
                        enb_teid,
                    },
                );
            }
            ControlMsg::ErabReleaseCommand { imsi, ebi } => {
                self.bearers.retain(|b| !(b.imsi == imsi && b.ebi == ebi));
                self.send_rrc(ctx, imsi, ControlMsg::RrcBearerRelease { ebi });
                self.send_s1ap(ctx, ControlMsg::ErabReleaseResponse { imsi, ebi });
            }
            ControlMsg::Paging { imsi } => {
                self.send_rrc(ctx, imsi, ControlMsg::RrcPaging { imsi });
            }
            ControlMsg::UeContextReleaseCommand { imsi } => {
                for b in self.bearers.iter_mut().filter(|b| b.imsi == imsi) {
                    b.active = false;
                }
                self.send_rrc(ctx, imsi, ControlMsg::RrcRelease { imsi });
                self.send_s1ap(ctx, ControlMsg::UeContextReleaseComplete { imsi });
            }
            // Target side: the core has re-anchored the S1 legs on us.
            // Adopt any updated uplink F-TEIDs and tell the source to
            // release the old UE context.
            ControlMsg::PathSwitchRequestAck { imsi, erabs } => {
                for erab in &erabs {
                    if let Some(b) = self
                        .bearers
                        .iter_mut()
                        .find(|b| b.imsi == imsi && b.ebi == erab.ebi)
                    {
                        b.gw_addr = erab.gw_addr;
                        b.gw_teid = erab.gw_teid;
                    }
                }
                // Idempotent: a duplicate Ack after the context is gone
                // (or after a fallback already released it) is ignored.
                if let Some(hin) = self.ho_in.remove(&imsi) {
                    if let Some(ps) = &hin.ps {
                        self.cancel_guard(ctx, ps.guard);
                    }
                    self.ho_in_done += 1;
                    self.send_x2(
                        ctx,
                        hin.x2_port,
                        hin.src_addr,
                        ControlMsg::X2UeContextRelease { imsi },
                    );
                }
            }
            _ => {}
        }
    }
}

impl Node for Enb {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        if in_port >= port::ENB_RADIO_BASE {
            self.handle_radio(ctx, in_port, pkt);
        } else if in_port == port::ENB_S1AP {
            self.handle_s1ap(ctx, pkt);
        } else if in_port >= port::ENB_X2_BASE {
            self.handle_x2(ctx, in_port, pkt);
        } else {
            self.handle_s1u(ctx, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tok: u64) {
        if tok >= token::HO_GUARD_BASE {
            self.on_ho_guard(ctx, tok - token::HO_GUARD_BASE);
            return;
        }
        if tok == token::DL_RELEASE {
            if let Some(frame) = self.dl.pop() {
                if let Some(ue) = self.ues.iter().find(|u| u.radio_addr == frame.dst) {
                    let p = ue.radio_port;
                    ctx.send(p, frame);
                }
            }
            return;
        }
        if tok >= token::IDLE_CHECK_BASE {
            let idx = (tok - token::IDLE_CHECK_BASE) as usize;
            let Some(timeout) = self.auto_idle else {
                return;
            };
            let Some(ue) = self.ues.get_mut(idx) else {
                return;
            };
            let idle_for = ctx.now().saturating_since(ue.last_activity);
            if idle_for >= timeout {
                ue.idle_check_armed = false;
                let imsi = ue.imsi;
                // Only release if the UE still has an active bearer.
                if self.bearers.iter().any(|b| b.imsi == imsi && b.active) {
                    self.send_s1ap(ctx, ControlMsg::UeContextReleaseRequest { imsi });
                }
            } else {
                // Activity happened since; re-check when the remaining
                // window elapses.
                let remaining = timeout - idle_for;
                ctx.schedule_in(remaining, tok);
            }
            return;
        }
        if tok >= token::IDLE_BASE {
            let idx = (tok - token::IDLE_BASE) as usize;
            if let Some(ue) = self.ues.get(idx) {
                let imsi = ue.imsi;
                self.send_s1ap(ctx, ControlMsg::UeContextReleaseRequest { imsi });
            }
        }
    }
}
