//! The eNodeB: radio ↔ S1-U forwarding with GTP encapsulation, S1AP
//! signalling toward the MME, and a priority-scheduled downlink.
//!
//! ACACIA requires **no eNB modifications**: the eNB just follows the
//! standard Bearer Setup Request, which (in ACACIA) carries the *local*
//! SGW-U address for dedicated MEC bearers — so MEC traffic leaves on a
//! different S1 port without the eNB knowing anything about MEC (paper
//! §5.4 step 3).

use crate::ids::{Ebi, Imsi, Teid};
use crate::log::MsgLog;
use crate::qci::Qci;
use crate::radio::{self, port, RadioPayload, RadioScheduler};
use crate::wire::{ControlMsg, ErabSetup};
use crate::{gtpu, tft::Tft};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Per-bearer forwarding state at the eNB.
#[derive(Debug, Clone)]
pub struct EnbBearer {
    /// Owner.
    pub imsi: Imsi,
    /// Bearer id.
    pub ebi: Ebi,
    /// QoS class (drives downlink scheduling priority).
    pub qci: Qci,
    /// Uplink tunnel: GW-U address + TEID.
    pub gw_addr: Ipv4Addr,
    /// Uplink TEID at the GW-U.
    pub gw_teid: Teid,
    /// Downlink TEID terminating here.
    pub enb_teid: Teid,
    /// TFT to push to the UE.
    pub tft: Tft,
    /// Is the S1 leg currently active (false while RRC-idle)?
    pub active: bool,
}

/// A UE known to this eNB.
#[derive(Debug, Clone)]
struct UeEntry {
    imsi: Imsi,
    radio_addr: Ipv4Addr,
    radio_port: PortId,
    ue_addr: Option<Ipv4Addr>,
    /// Last user-plane activity (for the inactivity timer).
    last_activity: acacia_simnet::time::Instant,
    /// Is an automatic idle-check timer armed?
    idle_check_armed: bool,
}

/// An X2 neighbour of this eNB.
#[derive(Debug, Clone, Copy)]
struct X2Peer {
    /// Radio-side address of the neighbour (what measurement reports name).
    radio_addr: Ipv4Addr,
    /// S1/X2 control address of the neighbour.
    enb_addr: Ipv4Addr,
    /// Local port the X2 link is attached to.
    port: PortId,
}

/// Source-side handover progress for one UE.
#[derive(Debug, Clone)]
enum HoPhase {
    /// Handover Request sent; waiting for the target's Ack.
    Preparing {
        /// X2 port toward the target.
        port: PortId,
        /// Radio address of the target cell (for the RRC command).
        target_radio: Ipv4Addr,
    },
    /// UE commanded to the target; downlink data is forwarded over X2
    /// until the target signals UE Context Release.
    Forwarding {
        /// X2 port toward the target.
        port: PortId,
        /// Target eNB control address (GTP-U outer destination).
        peer: Ipv4Addr,
        /// Per-bearer forwarding TEIDs allocated by the target.
        teids: BTreeMap<Ebi, Teid>,
    },
}

/// Timer tokens understood by the eNB.
pub mod token {
    /// Downlink radio scheduler release.
    pub const DL_RELEASE: u64 = 1;
    /// Declare UE `token - IDLE_BASE` idle and start the release procedure
    /// (the paper's 11.576 s inactivity event, triggered by the harness).
    pub const IDLE_BASE: u64 = 1000;
    /// Automatic inactivity check for UE `token - IDLE_CHECK_BASE`.
    pub const IDLE_CHECK_BASE: u64 = 2000;
}

/// The eNB node.
pub struct Enb {
    /// Control/S1 address of this eNB.
    pub addr: Ipv4Addr,
    /// MME address.
    pub mme_addr: Ipv4Addr,
    /// Known S1-U gateway addresses → output port (core SGW-U vs local
    /// MEC GW-U).
    pub s1_ports: HashMap<Ipv4Addr, PortId>,
    ues: Vec<UeEntry>,
    bearers: Vec<EnbBearer>,
    next_teid: u32,
    dl: RadioScheduler,
    /// Automatic inactivity release: after this much user-plane silence the
    /// eNB starts the UE-context release (the paper's 11.576 s timer).
    /// `None` disables the mechanism (procedures driven by the harness).
    pub auto_idle: Option<acacia_simnet::time::Duration>,
    log: MsgLog,
    /// X2 neighbours (peer cells).
    x2_peers: Vec<X2Peer>,
    /// Outgoing handovers in progress, keyed by UE.
    ho: BTreeMap<Imsi, HoPhase>,
    /// Incoming handovers awaiting Path Switch completion:
    /// IMSI → (X2 port toward the source, source eNB address).
    ho_in: BTreeMap<Imsi, (PortId, Ipv4Addr)>,
    /// Uplink user packets forwarded onto S1.
    pub ul_forwarded: u64,
    /// Downlink user frames scheduled to UEs.
    pub dl_forwarded: u64,
    /// Packets dropped for missing bearer state.
    pub no_bearer: u64,
    /// Handovers completed with this eNB as source.
    pub ho_out_done: u64,
    /// Handovers completed with this eNB as target.
    pub ho_in_done: u64,
    /// Downlink packets forwarded over X2 during handover execution.
    pub x2_forwarded: u64,
}

impl Enb {
    /// New eNB.
    pub fn new(addr: Ipv4Addr, mme_addr: Ipv4Addr, dl_rate_bps: u64, log: MsgLog) -> Enb {
        Enb {
            addr,
            mme_addr,
            s1_ports: HashMap::new(),
            ues: Vec::new(),
            bearers: Vec::new(),
            next_teid: 0x3000,
            dl: RadioScheduler::new(dl_rate_bps),
            auto_idle: None,
            log,
            x2_peers: Vec::new(),
            ho: BTreeMap::new(),
            ho_in: BTreeMap::new(),
            ul_forwarded: 0,
            dl_forwarded: 0,
            no_bearer: 0,
            ho_out_done: 0,
            ho_in_done: 0,
            x2_forwarded: 0,
        }
    }

    /// Register an X2 neighbour cell reachable via `port`. Measurement
    /// reports identify targets by their radio address.
    pub fn add_x2_neighbor(&mut self, radio_addr: Ipv4Addr, enb_addr: Ipv4Addr, port: PortId) {
        self.x2_peers.push(X2Peer {
            radio_addr,
            enb_addr,
            port,
        });
    }

    /// Register a UE served by this eNB; returns its radio port.
    pub fn add_ue(&mut self, imsi: Imsi, radio_addr: Ipv4Addr) -> PortId {
        let radio_port = port::ENB_RADIO_BASE + self.ues.len();
        self.ues.push(UeEntry {
            imsi,
            radio_addr,
            radio_port,
            ue_addr: None,
            last_activity: acacia_simnet::time::Instant::ZERO,
            idle_check_armed: false,
        });
        radio_port
    }

    /// Register an S1-U gateway reachable via `out_port`.
    pub fn add_s1_gateway(&mut self, gw_addr: Ipv4Addr, out_port: PortId) {
        self.s1_ports.insert(gw_addr, out_port);
    }

    /// Bearer state for inspection.
    pub fn bearers(&self) -> &[EnbBearer] {
        &self.bearers
    }

    fn ue_by_radio_port(&self, p: PortId) -> Option<&UeEntry> {
        self.ues.iter().find(|u| u.radio_port == p)
    }

    fn ue_by_imsi(&self, imsi: Imsi) -> Option<&UeEntry> {
        self.ues.iter().find(|u| u.imsi == imsi)
    }

    fn alloc_teid(&mut self) -> Teid {
        let t = Teid(self.next_teid);
        self.next_teid += 1;
        t
    }

    fn send_s1ap(&mut self, ctx: &mut Ctx<'_>, msg: ControlMsg) {
        self.log.record(ctx.now(), &msg);
        ctx.send(port::ENB_S1AP, msg.into_packet(self.addr, self.mme_addr));
    }

    fn send_x2(
        &mut self,
        ctx: &mut Ctx<'_>,
        x2_port: PortId,
        peer_addr: Ipv4Addr,
        msg: ControlMsg,
    ) {
        self.log.record(ctx.now(), &msg);
        ctx.send(x2_port, msg.into_packet(self.addr, peer_addr));
    }

    fn send_rrc(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi, msg: ControlMsg) {
        let Some(ue) = self.ue_by_imsi(imsi) else {
            return;
        };
        let (radio_port, radio_addr) = (ue.radio_port, ue.radio_addr);
        self.log.record(ctx.now(), &msg);
        let frame = radio::rrc_frame(&msg, self.addr, radio_addr);
        // Control frames bypass the data scheduler (SRBs have absolute
        // priority); model as direct send.
        ctx.send(radio_port, frame);
    }

    fn handle_radio(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        let Some(ue) = self.ue_by_radio_port(in_port) else {
            return;
        };
        let imsi = ue.imsi;
        match radio::parse_frame(&pkt) {
            Some(RadioPayload::Rrc(msg)) => {
                self.log.record(ctx.now(), &msg); // UE-originated RRC
                match msg {
                    ControlMsg::RrcAttachRequest { .. } => {
                        self.send_s1ap(ctx, ControlMsg::InitialUeAttach { imsi });
                    }
                    ControlMsg::RrcServiceRequest { .. } => {
                        self.send_s1ap(ctx, ControlMsg::InitialUeServiceRequest { imsi });
                    }
                    ControlMsg::RrcMeasurementReport { target_radio, .. } => {
                        self.start_handover(ctx, imsi, target_radio);
                    }
                    ControlMsg::RrcHandoverConfirm { .. } if self.ho_in.contains_key(&imsi) => {
                        // Target side: the UE has arrived on our radio;
                        // switch its S1 path toward us.
                        let erabs: Vec<(Ebi, Teid)> = self
                            .bearers
                            .iter()
                            .filter(|b| b.imsi == imsi && b.active)
                            .map(|b| (b.ebi, b.enb_teid))
                            .collect();
                        let enb_addr = self.addr;
                        self.send_s1ap(
                            ctx,
                            ControlMsg::PathSwitchRequest {
                                imsi,
                                enb_addr,
                                erabs,
                            },
                        );
                    }
                    _ => {}
                }
            }
            Some(RadioPayload::Data { ebi, inner }) => {
                self.touch_activity(ctx, imsi);
                let Some(bearer) = self
                    .bearers
                    .iter()
                    .find(|b| b.imsi == imsi && b.ebi == ebi && b.active)
                else {
                    self.no_bearer += 1;
                    return;
                };
                let Some(&out_port) = self.s1_ports.get(&bearer.gw_addr) else {
                    self.no_bearer += 1;
                    return;
                };
                let outer = gtpu::encapsulate(&inner, bearer.gw_teid, self.addr, bearer.gw_addr);
                self.ul_forwarded += 1;
                ctx.send(out_port, outer);
            }
            None => {}
        }
    }

    /// Source-side handover admission: a measurement report arrived for a
    /// known X2 neighbour. Sends the X2 Handover Request carrying every
    /// active bearer context (standard X2AP — the eNB needs no knowledge
    /// of which gateway is "local").
    fn start_handover(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi, target_radio: Ipv4Addr) {
        if self.ho.contains_key(&imsi) {
            return; // one handover at a time per UE
        }
        let Some(peer) = self
            .x2_peers
            .iter()
            .find(|p| p.radio_addr == target_radio)
            .copied()
        else {
            return; // unknown neighbour: ignore the report
        };
        let ue_addr = self.ue_by_imsi(imsi).and_then(|u| u.ue_addr);
        let bearers: Vec<ErabSetup> = self
            .bearers
            .iter()
            .filter(|b| b.imsi == imsi && b.active)
            .map(|b| ErabSetup {
                ebi: b.ebi,
                qci: b.qci,
                gw_addr: b.gw_addr,
                gw_teid: b.gw_teid,
                tft: b.tft.clone(),
            })
            .collect();
        if bearers.is_empty() {
            return; // nothing to hand over
        }
        self.ho.insert(
            imsi,
            HoPhase::Preparing {
                port: peer.port,
                target_radio,
            },
        );
        self.send_x2(
            ctx,
            peer.port,
            peer.enb_addr,
            ControlMsg::X2HandoverRequest {
                imsi,
                ue_addr,
                bearers,
            },
        );
    }

    fn handle_x2(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        if gtpu::is_gtpu(&pkt) {
            // Forwarded downlink data from the source cell; our bearer
            // TEIDs were installed at Handover Request time.
            self.handle_s1u(ctx, pkt);
            return;
        }
        let Some(msg) = ControlMsg::from_packet(&pkt) else {
            return;
        };
        match msg {
            // Target side: admit the UE and install its bearers. No RRC
            // toward the UE — it keeps its bearer/TFT configuration across
            // the handover (only the serving cell changes).
            ControlMsg::X2HandoverRequest {
                imsi,
                ue_addr,
                bearers,
            } => {
                if let Some(addr) = ue_addr {
                    if let Some(ue) = self.ues.iter_mut().find(|u| u.imsi == imsi) {
                        ue.ue_addr = Some(addr);
                    }
                }
                let mut erabs = Vec::new();
                for erab in &bearers {
                    let enb_teid = self.setup_erab(erab, imsi);
                    erabs.push((erab.ebi, enb_teid));
                }
                self.ho_in.insert(imsi, (in_port, pkt.src));
                self.send_x2(
                    ctx,
                    in_port,
                    pkt.src,
                    ControlMsg::X2HandoverRequestAck { imsi, erabs },
                );
            }
            // Source side: target is ready. Freeze the UE's downlink onto
            // the X2 forwarding tunnel and command the UE over.
            ControlMsg::X2HandoverRequestAck { imsi, erabs } => {
                let Some(HoPhase::Preparing { port, target_radio }) = self.ho.get(&imsi).cloned()
                else {
                    return;
                };
                self.send_x2(
                    ctx,
                    port,
                    pkt.src,
                    ControlMsg::X2SnStatusTransfer {
                        imsi,
                        dl_count: self.dl_forwarded as u32,
                        ul_count: self.ul_forwarded as u32,
                    },
                );
                self.ho.insert(
                    imsi,
                    HoPhase::Forwarding {
                        port,
                        peer: pkt.src,
                        teids: erabs.into_iter().collect(),
                    },
                );
                self.send_rrc(
                    ctx,
                    imsi,
                    ControlMsg::RrcHandoverCommand { imsi, target_radio },
                );
            }
            // Target side: PDCP sequence state from the source. The data
            // path here is packet-based, so the counts are informational.
            ControlMsg::X2SnStatusTransfer { .. } => {}
            // Source side: the path switch completed; drop the UE context
            // and stop forwarding.
            ControlMsg::X2UeContextRelease { imsi } => {
                self.ho.remove(&imsi);
                self.bearers.retain(|b| b.imsi != imsi);
                self.ho_out_done += 1;
            }
            _ => {}
        }
    }

    fn handle_s1u(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some((teid, inner)) = gtpu::decapsulate(&pkt) else {
            return;
        };
        let Some(bearer) = self.bearers.iter().find(|b| b.enb_teid == teid) else {
            self.no_bearer += 1;
            return;
        };
        let (imsi, ebi, prio) = (
            bearer.imsi,
            bearer.ebi,
            radio::sched_priority(bearer.qci.tos()),
        );
        self.touch_activity(ctx, imsi);
        // During handover execution the UE is tuning to the target cell:
        // forward its downlink over X2 instead of the (dead) radio leg.
        if let Some(HoPhase::Forwarding { port, peer, teids }) = self.ho.get(&imsi) {
            if let Some(&fwd_teid) = teids.get(&ebi) {
                let (port, peer) = (*port, *peer);
                let outer = gtpu::encapsulate(&inner, fwd_teid, self.addr, peer);
                self.x2_forwarded += 1;
                ctx.send(port, outer);
                return;
            }
        }
        let Some(ue) = self.ue_by_imsi(imsi) else {
            return;
        };
        let frame = radio::data_frame(ebi, &inner, self.addr, ue.radio_addr);
        self.dl_forwarded += 1;
        self.dl.offer(ctx, prio, frame, token::DL_RELEASE);
    }

    /// Record user-plane activity and (re)arm the inactivity timer.
    fn touch_activity(&mut self, ctx: &mut Ctx<'_>, imsi: Imsi) {
        let Some(timeout) = self.auto_idle else {
            return;
        };
        let Some(idx) = self.ues.iter().position(|u| u.imsi == imsi) else {
            return;
        };
        self.ues[idx].last_activity = ctx.now();
        if !self.ues[idx].idle_check_armed {
            self.ues[idx].idle_check_armed = true;
            ctx.schedule_in(timeout, token::IDLE_CHECK_BASE + idx as u64);
        }
    }

    fn setup_erab(&mut self, erab: &ErabSetup, imsi: Imsi) -> Teid {
        let enb_teid = self.alloc_teid();
        // Replace any stale state for the same (imsi, ebi).
        self.bearers
            .retain(|b| !(b.imsi == imsi && b.ebi == erab.ebi));
        self.bearers.push(EnbBearer {
            imsi,
            ebi: erab.ebi,
            qci: erab.qci,
            gw_addr: erab.gw_addr,
            gw_teid: erab.gw_teid,
            enb_teid,
            tft: erab.tft.clone(),
            active: true,
        });
        enb_teid
    }

    fn handle_s1ap(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let Some(msg) = ControlMsg::from_packet(&pkt) else {
            return;
        };
        match msg {
            ControlMsg::InitialContextSetupRequest { imsi, erabs } => {
                let mut enb_teids = Vec::new();
                if erabs.is_empty() {
                    // Service-request restoration: reactivate stored
                    // bearers and report their (fresh) TEIDs.
                    let stored: Vec<(Ebi, Teid)> = self
                        .bearers
                        .iter_mut()
                        .filter(|b| b.imsi == imsi)
                        .map(|b| {
                            b.active = true;
                            (b.ebi, b.enb_teid)
                        })
                        .collect();
                    enb_teids = stored;
                } else {
                    for erab in &erabs {
                        let teid = self.setup_erab(erab, imsi);
                        enb_teids.push((erab.ebi, teid));
                    }
                }
                self.send_s1ap(
                    ctx,
                    ControlMsg::InitialContextSetupResponse { imsi, enb_teids },
                );
            }
            ControlMsg::DownlinkNasAccept { imsi, ue_addr } => {
                if let Some(addr) = ue_addr {
                    if let Some(ue) = self.ues.iter_mut().find(|u| u.imsi == imsi) {
                        ue.ue_addr = Some(addr);
                    }
                }
                // Push (or refresh) RRC configuration for every active
                // bearer of this UE.
                let ue_addr = self.ue_by_imsi(imsi).and_then(|u| u.ue_addr);
                let configs: Vec<(Ebi, Qci, Tft)> = self
                    .bearers
                    .iter()
                    .filter(|b| b.imsi == imsi && b.active)
                    .map(|b| (b.ebi, b.qci, b.tft.clone()))
                    .collect();
                for (ebi, qci, tft) in configs {
                    self.send_rrc(
                        ctx,
                        imsi,
                        ControlMsg::RrcReconfiguration {
                            ebi,
                            qci,
                            tft,
                            ue_addr,
                        },
                    );
                }
            }
            ControlMsg::ErabSetupRequest { imsi, erab } => {
                let enb_teid = self.setup_erab(&erab, imsi);
                self.send_rrc(
                    ctx,
                    imsi,
                    ControlMsg::RrcReconfiguration {
                        ebi: erab.ebi,
                        qci: erab.qci,
                        tft: erab.tft.clone(),
                        ue_addr: None,
                    },
                );
                self.send_s1ap(
                    ctx,
                    ControlMsg::ErabSetupResponse {
                        imsi,
                        ebi: erab.ebi,
                        enb_teid,
                    },
                );
            }
            ControlMsg::ErabReleaseCommand { imsi, ebi } => {
                self.bearers.retain(|b| !(b.imsi == imsi && b.ebi == ebi));
                self.send_rrc(ctx, imsi, ControlMsg::RrcBearerRelease { ebi });
                self.send_s1ap(ctx, ControlMsg::ErabReleaseResponse { imsi, ebi });
            }
            ControlMsg::Paging { imsi } => {
                self.send_rrc(ctx, imsi, ControlMsg::RrcPaging { imsi });
            }
            ControlMsg::UeContextReleaseCommand { imsi } => {
                for b in self.bearers.iter_mut().filter(|b| b.imsi == imsi) {
                    b.active = false;
                }
                self.send_rrc(ctx, imsi, ControlMsg::RrcRelease { imsi });
                self.send_s1ap(ctx, ControlMsg::UeContextReleaseComplete { imsi });
            }
            // Target side: the core has re-anchored the S1 legs on us.
            // Adopt any updated uplink F-TEIDs and tell the source to
            // release the old UE context.
            ControlMsg::PathSwitchRequestAck { imsi, erabs } => {
                for erab in &erabs {
                    if let Some(b) = self
                        .bearers
                        .iter_mut()
                        .find(|b| b.imsi == imsi && b.ebi == erab.ebi)
                    {
                        b.gw_addr = erab.gw_addr;
                        b.gw_teid = erab.gw_teid;
                    }
                }
                if let Some((x2_port, src_addr)) = self.ho_in.remove(&imsi) {
                    self.ho_in_done += 1;
                    self.send_x2(
                        ctx,
                        x2_port,
                        src_addr,
                        ControlMsg::X2UeContextRelease { imsi },
                    );
                }
            }
            _ => {}
        }
    }
}

impl Node for Enb {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        if in_port >= port::ENB_RADIO_BASE {
            self.handle_radio(ctx, in_port, pkt);
        } else if in_port == port::ENB_S1AP {
            self.handle_s1ap(ctx, pkt);
        } else if in_port >= port::ENB_X2_BASE {
            self.handle_x2(ctx, in_port, pkt);
        } else {
            self.handle_s1u(ctx, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tok: u64) {
        if tok == token::DL_RELEASE {
            if let Some(frame) = self.dl.pop() {
                if let Some(ue) = self.ues.iter().find(|u| u.radio_addr == frame.dst) {
                    let p = ue.radio_port;
                    ctx.send(p, frame);
                }
            }
            return;
        }
        if tok >= token::IDLE_CHECK_BASE {
            let idx = (tok - token::IDLE_CHECK_BASE) as usize;
            let Some(timeout) = self.auto_idle else {
                return;
            };
            let Some(ue) = self.ues.get_mut(idx) else {
                return;
            };
            let idle_for = ctx.now().saturating_since(ue.last_activity);
            if idle_for >= timeout {
                ue.idle_check_armed = false;
                let imsi = ue.imsi;
                // Only release if the UE still has an active bearer.
                if self.bearers.iter().any(|b| b.imsi == imsi && b.active) {
                    self.send_s1ap(ctx, ControlMsg::UeContextReleaseRequest { imsi });
                }
            } else {
                // Activity happened since; re-check when the remaining
                // window elapses.
                let remaining = timeout - idle_for;
                ctx.schedule_in(remaining, tok);
            }
            return;
        }
        if tok >= token::IDLE_BASE {
            let idx = (tok - token::IDLE_BASE) as usize;
            if let Some(ue) = self.ues.get(idx) {
                let imsi = ue.imsi;
                self.send_s1ap(ctx, ControlMsg::UeContextReleaseRequest { imsi });
            }
        }
    }
}
