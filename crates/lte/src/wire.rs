//! Control-plane wire formats: S1AP-over-SCTP, GTPv2-C, Diameter and
//! OpenFlow messages, with byte-accurate on-the-wire sizes.
//!
//! Message *contents* are encoded with a compact self-describing payload
//! (decodable by any receiving node); message *sizes* are fixed by a
//! per-message wire-size table calibrated to the paper's testbed
//! measurement (§4): one idle-release + re-establishment sequence costs
//! exactly **15 messages / 2914 bytes — SCTP 7 (1138), GTPv2 4 (352),
//! OpenFlow 4 (1424)**. Encoders pad (via the packet's virtual length) up
//! to the calibrated size, so byte accounting matches the OpenEPC testbed
//! while the payloads remain fully functional.

use crate::ids::{Ebi, Imsi, Teid};
use crate::qci::Qci;
use crate::tft::Tft;
use acacia_simnet::packet::{proto, Packet};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Well-known control-plane ports.
pub mod ports {
    /// GTP-C (GTPv2) UDP port.
    pub const GTPC: u16 = 2123;
    /// GTP-U UDP port.
    pub const GTPU: u16 = 2152;
    /// S1AP SCTP port.
    pub const S1AP: u16 = 36412;
    /// OpenFlow controller TCP port.
    pub const OPENFLOW: u16 = 6633;
    /// Diameter port.
    pub const DIAMETER: u16 = 3868;
    /// X2AP SCTP port (inter-eNB handover signalling).
    pub const X2AP: u16 = 36422;
}

/// Protocol family of a control message (for byte accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// S1AP carried over SCTP (eNB ↔ MME).
    S1apSctp,
    /// X2AP carried over SCTP (eNB ↔ eNB handover signalling).
    X2Sctp,
    /// GTPv2-C (MME ↔ GW-C).
    Gtpv2,
    /// OpenFlow (GW-C ↔ GW-U).
    OpenFlow,
    /// Diameter (Rx/Gx/S6a: MRS/PCRF/HSS signalling).
    Diameter,
    /// Radio-side RRC/NAS (UE ↔ eNB), not part of the §4 core counts.
    Rrc,
}

impl Protocol {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::S1apSctp => "SCTP",
            Protocol::X2Sctp => "X2AP",
            Protocol::Gtpv2 => "GTPv2",
            Protocol::OpenFlow => "OpenFlow",
            Protocol::Diameter => "Diameter",
            Protocol::Rrc => "RRC",
        }
    }
}

/// E-RAB parameters carried in setup messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErabSetup {
    /// Bearer id.
    pub ebi: Ebi,
    /// QoS class.
    pub qci: Qci,
    /// GTP TEID the eNB must send uplink traffic to.
    pub gw_teid: Teid,
    /// Address of the (possibly local/MEC) SGW-U terminating the S1 bearer.
    pub gw_addr: Ipv4Addr,
    /// Uplink TFT to push to the UE (empty for the default bearer).
    pub tft: Tft,
}

/// A PCC rule passed from PCRF to the PCEF (paper step 2: "The PCRF
/// dynamically generates policy rules, which consist of service ID, QCI,
/// and flow information").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Application/service identifier.
    pub service_id: u32,
    /// UE address the rule applies to.
    pub ue_addr: Ipv4Addr,
    /// CI server address.
    pub server_addr: Ipv4Addr,
    /// Server port (0 = any).
    pub server_port: u16,
    /// QoS class for the dedicated bearer.
    pub qci: Qci,
    /// Install (true) or remove (false).
    pub install: bool,
}

/// Flow-match specification for OpenFlow rules on the GW-Us.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowMatchSpec {
    /// Match on the GTP tunnel id of encapsulated traffic.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub teid: Option<Teid>,
    /// Match on the inner/outer destination address.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub dst: Option<Ipv4Addr>,
    /// Match on the inner/outer source address.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub src: Option<Ipv4Addr>,
}

/// Actions attached to an OpenFlow rule. Encap/decap transform the packet
/// in place (OVS logical-port style); `Output` is terminal. An action list
/// with no `Output` drops the packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowActionSpec {
    /// GTP-encapsulate toward `(peer, teid)`.
    GtpEncap {
        /// Remote tunnel endpoint.
        peer: Ipv4Addr,
        /// Tunnel id to stamp.
        teid: Teid,
    },
    /// GTP-decapsulate.
    GtpDecap,
    /// Stamp the packet's IP ToS byte (TFT-style QCI marking; a subsequent
    /// `GtpEncap` copies the inner ToS onto the outer header).
    SetTos {
        /// ToS byte to stamp (DSCP in the top six bits).
        tos: u8,
    },
    /// Send out of `port` (terminal).
    Output {
        /// Output port.
        port: usize,
    },
}

/// All control-plane messages exchanged in the reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMsg {
    // ---- S1AP (eNB <-> MME), over SCTP ----
    /// Initial UE message carrying a NAS Attach Request.
    #[serde(rename = "IUA")]
    InitialUeAttach {
        /// Subscriber.
        imsi: Imsi,
    },
    /// Initial UE message carrying a NAS Service Request (idle → active).
    #[serde(rename = "IUS")]
    InitialUeServiceRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MME → eNB: set up the UE context and its E-RAB(s).
    #[serde(rename = "ICSq")]
    InitialContextSetupRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Bearers to establish.
        erabs: Vec<ErabSetup>,
    },
    /// eNB → MME: context set up; reports eNB-side TEIDs.
    #[serde(rename = "ICSp")]
    InitialContextSetupResponse {
        /// Subscriber.
        imsi: Imsi,
        /// (EBI, eNB TEID) pairs for the established bearers.
        enb_teids: Vec<(Ebi, Teid)>,
    },
    /// MME → eNB: NAS Service Accept / Attach Accept.
    #[serde(rename = "DNA")]
    DownlinkNasAccept {
        /// Subscriber.
        imsi: Imsi,
        /// UE IP address assigned by the PGW (attach only).
        ue_addr: Option<Ipv4Addr>,
    },
    /// MME → eNB: establish one dedicated E-RAB (paper step 3's Bearer
    /// Setup Request; carries the *local* SGW-U address).
    #[serde(rename = "ESq")]
    ErabSetupRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer parameters.
        erab: ErabSetup,
    },
    /// eNB → MME: dedicated E-RAB established.
    #[serde(rename = "ESp")]
    ErabSetupResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
        /// eNB-side TEID for downlink.
        enb_teid: Teid,
    },
    /// MME → eNB: release a dedicated E-RAB.
    #[serde(rename = "ERC")]
    ErabReleaseCommand {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
    },
    /// eNB → MME: E-RAB released.
    #[serde(rename = "ERR")]
    ErabReleaseResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
    },
    /// eNB → MME: UE has gone idle, please release.
    #[serde(rename = "UCRq")]
    UeContextReleaseRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MME → eNB: release the UE context.
    #[serde(rename = "UCRc")]
    UeContextReleaseCommand {
        /// Subscriber.
        imsi: Imsi,
    },
    /// eNB → MME: context released.
    #[serde(rename = "UCRd")]
    UeContextReleaseComplete {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MME → eNB: page an idle UE (downlink data pending).
    #[serde(rename = "PAG")]
    Paging {
        /// Subscriber.
        imsi: Imsi,
    },
    /// Target eNB → MME after an X2 handover: the UE now terminates its
    /// S1 bearers here; switch the downlink path.
    #[serde(rename = "PSq")]
    PathSwitchRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Target eNB S1 address.
        enb_addr: Ipv4Addr,
        /// (EBI, target-eNB downlink TEID) for every switched bearer.
        erabs: Vec<(Ebi, Teid)>,
        /// Procedure transaction id: retransmissions reuse it, so the MME
        /// can answer duplicates from its ack cache instead of switching
        /// the path twice.
        #[serde(rename = "tx", default)]
        txid: u32,
    },
    /// MME → target eNB: path switch complete; carries any updated uplink
    /// F-TEIDs the target must use from now on.
    #[serde(rename = "PSa")]
    PathSwitchRequestAck {
        /// Subscriber.
        imsi: Imsi,
        /// Updated bearer parameters (empty when nothing changed).
        erabs: Vec<ErabSetup>,
    },

    // ---- X2AP (eNB <-> eNB), over SCTP ----
    /// Source eNB → target eNB: prepare an incoming handover with the
    /// UE's current bearer set.
    #[serde(rename = "HOq")]
    X2HandoverRequest {
        /// Subscriber.
        imsi: Imsi,
        /// UE IP address (if already assigned).
        ue_addr: Option<Ipv4Addr>,
        /// Bearers to admit at the target.
        bearers: Vec<ErabSetup>,
        /// Procedure transaction id: a retransmitted request carries the
        /// same id and is re-acked with the already-admitted TEIDs.
        #[serde(rename = "tx", default)]
        txid: u32,
    },
    /// Target eNB → source eNB: handover admitted; the returned TEIDs
    /// double as the X2 downlink-forwarding tunnel endpoints.
    #[serde(rename = "HOa")]
    X2HandoverRequestAck {
        /// Subscriber.
        imsi: Imsi,
        /// (EBI, target-eNB TEID) per admitted bearer.
        erabs: Vec<(Ebi, Teid)>,
        /// Echo of the request's transaction id — lets the source discard
        /// acks of an attempt it has already cancelled.
        #[serde(rename = "tx", default)]
        txid: u32,
    },
    /// Source eNB → target eNB: abandon a prepared handover (the source's
    /// preparation guard — the TX2RELOCprep/overall analogue — expired
    /// without an ack). The target drops any admitted context.
    #[serde(rename = "HOc")]
    X2HandoverCancel {
        /// Subscriber.
        imsi: Imsi,
        /// Transaction id of the abandoned preparation.
        #[serde(rename = "tx", default)]
        txid: u32,
    },
    /// Source eNB → target eNB: PDCP sequence-number status at the moment
    /// of handover (lossless-handover bookkeeping).
    #[serde(rename = "SNS")]
    X2SnStatusTransfer {
        /// Subscriber.
        imsi: Imsi,
        /// Next expected downlink PDCP SN.
        dl_count: u32,
        /// Next expected uplink PDCP SN.
        ul_count: u32,
    },
    /// Target eNB → source eNB: path switch done; release the old UE
    /// context and stop forwarding.
    #[serde(rename = "XUR")]
    X2UeContextRelease {
        /// Subscriber.
        imsi: Imsi,
    },

    // ---- GTPv2-C (MME <-> GW-C) ----
    /// MME → GW-C: create the default-bearer session.
    #[serde(rename = "CSq")]
    CreateSessionRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// GW-C → MME: session created.
    #[serde(rename = "CSp")]
    CreateSessionResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Address assigned to the UE.
        ue_addr: Ipv4Addr,
        /// SGW-U S1 uplink TEID + address for the default bearer.
        erab: ErabSetup,
    },
    /// GW-C → MME: network-initiated dedicated bearer (paper step 2/3).
    #[serde(rename = "CBq")]
    CreateBearerRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer parameters, F-TEID pointing at the **local** GW-U.
        erab: ErabSetup,
    },
    /// MME → GW-C: dedicated bearer outcome.
    #[serde(rename = "CBp")]
    CreateBearerResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
        /// eNB downlink TEID.
        enb_teid: Teid,
        /// eNB address.
        enb_addr: Ipv4Addr,
    },
    /// GW-C → MME (relayed): delete a dedicated bearer.
    #[serde(rename = "DBq")]
    DeleteBearerRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
    },
    /// MME → GW-C: bearer deleted.
    #[serde(rename = "DBp")]
    DeleteBearerResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Bearer id.
        ebi: Ebi,
    },
    /// MME → GW-C: flush every dedicated bearer of a subscriber whose
    /// radio context was released by a failure path (e.g. the
    /// path-switch fallback) without the per-bearer handshake — the
    /// radio side is already gone, so only the core flows need tearing
    /// down.
    #[serde(rename = "DBc")]
    DeleteBearerCommand {
        /// Subscriber.
        imsi: Imsi,
    },
    /// O&M / failure-detection plane → GW-C: a local GW-U died; flush
    /// every dedicated bearer anchored on it (the `DBc` stale-flow
    /// flush generalised to a whole switch). The dead switch's flow
    /// table died with it — and a restarted GW-U comes back empty — so
    /// no removal FlowMods are addressed to the failed GW-U itself.
    #[serde(rename = "GWUF")]
    GwuFailureIndication {
        /// Data-plane address of the failed local GW-U.
        gwu_addr: Ipv4Addr,
    },
    /// MME → GW-C: UE idle; release S1-U downlink path.
    #[serde(rename = "RABq")]
    ReleaseAccessBearersRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// GW-C → MME: released.
    #[serde(rename = "RABp")]
    ReleaseAccessBearersResponse {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MME → GW-C: (re)attach the eNB leg after service request.
    #[serde(rename = "MBq")]
    ModifyBearerRequest {
        /// Subscriber.
        imsi: Imsi,
        /// eNB downlink TEID.
        enb_teid: Teid,
        /// eNB address.
        enb_addr: Ipv4Addr,
    },
    /// GW-C → MME: modified.
    #[serde(rename = "MBp")]
    ModifyBearerResponse {
        /// Subscriber.
        imsi: Imsi,
    },
    /// SGW-U → GW-C: downlink data arrived for a released bearer (the
    /// tunnel id identifies the session); triggers paging.
    #[serde(rename = "DDNt")]
    DownlinkDataByTeid {
        /// S1 downlink TEID the packet carried.
        teid: Teid,
    },
    /// GW-C → MME: Downlink Data Notification for an idle subscriber.
    #[serde(rename = "DDN")]
    DownlinkDataNotification {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MME → GW-C after a path switch: re-anchor every bearer's S1 leg on
    /// the target eNB (a Modify Bearer carrying the full bearer list).
    #[serde(rename = "BRq")]
    BearerRelocationRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Target eNB S1 address.
        enb_addr: Ipv4Addr,
        /// (EBI, target-eNB downlink TEID) per bearer.
        enb_teids: Vec<(Ebi, Teid)>,
    },
    /// GW-C → MME: relocation outcome — re-anchored bearers keep their
    /// uplink F-TEIDs; bearers the target cell cannot serve (no local
    /// GW-U) are listed in `released`.
    #[serde(rename = "BRp")]
    BearerRelocationResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Updated bearer parameters for the target eNB (may be empty).
        erabs: Vec<ErabSetup>,
        /// Dedicated bearers torn down because the target has no MEC path.
        released: Vec<Ebi>,
    },

    // ---- Diameter (MRS/AF -> PCRF -> PCEF, MME -> HSS) ----
    /// Rx AAR: the MRS (an AF) requests resources for a CI flow.
    #[serde(rename = "RxQ")]
    RxAuthRequest {
        /// Policy rule describing the flow.
        rule: PolicyRule,
    },
    /// Rx AAA: PCRF answer.
    #[serde(rename = "RxA")]
    RxAuthAnswer {
        /// Service the answer refers to.
        service_id: u32,
        /// Accepted?
        ok: bool,
    },
    /// Gx RAR: PCRF pushes a rule to the PCEF.
    #[serde(rename = "GxQ")]
    GxReauthRequest {
        /// The rule.
        rule: PolicyRule,
    },
    /// Gx RAA: PCEF answer.
    #[serde(rename = "GxA")]
    GxReauthAnswer {
        /// Service the answer refers to.
        service_id: u32,
        /// Installed?
        ok: bool,
    },
    /// S6a Authentication-Information-Request (MME → HSS).
    #[serde(rename = "AIR")]
    S6aAuthInfoRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// S6a Authentication-Information-Answer (HSS → MME).
    #[serde(rename = "AIA")]
    S6aAuthInfoAnswer {
        /// Subscriber.
        imsi: Imsi,
        /// Is the subscriber known/authorized?
        ok: bool,
    },

    // ---- OpenFlow (GW-C -> GW-U) ----
    /// Install or remove a flow rule on a GW-U.
    #[serde(rename = "FM")]
    FlowMod {
        /// Add (true) or delete (false).
        add: bool,
        /// Rule priority.
        priority: u16,
        /// Match spec.
        mtch: FlowMatchSpec,
        /// Actions.
        actions: Vec<FlowActionSpec>,
    },

    // ---- RRC/NAS over the radio (UE <-> eNB) ----
    /// NAS attach request (UE → eNB, piggybacked on RRC).
    #[serde(rename = "RAq")]
    RrcAttachRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// NAS service request (idle → active).
    #[serde(rename = "RSq")]
    RrcServiceRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// RRC Connection Reconfiguration: carries the new radio bearer id,
    /// QoS and **the uplink TFT** the modem will classify with (paper
    /// step 3).
    #[serde(rename = "RRc")]
    RrcReconfiguration {
        /// Bearer id.
        ebi: Ebi,
        /// QoS class.
        qci: Qci,
        /// Uplink TFT (empty = match-nothing for default bearer).
        tft: Tft,
        /// UE address (assigned at attach).
        ue_addr: Option<Ipv4Addr>,
    },
    /// RRC release (network told UE to go idle).
    #[serde(rename = "RRl")]
    RrcRelease {
        /// Subscriber.
        imsi: Imsi,
    },
    /// RRC-side removal of one dedicated bearer.
    #[serde(rename = "RBR")]
    RrcBearerRelease {
        /// Bearer to drop.
        ebi: Ebi,
    },
    /// Paging indication on the radio (PCH).
    #[serde(rename = "RPG")]
    RrcPaging {
        /// Subscriber being paged.
        imsi: Imsi,
    },
    /// UE → serving eNB: A3-event measurement report (a neighbour cell is
    /// offset-better than the serving cell). RSRP in centi-dBm keeps the
    /// wire format integer-exact.
    #[serde(rename = "RMR")]
    RrcMeasurementReport {
        /// Subscriber.
        imsi: Imsi,
        /// Serving-cell RSRP, centi-dBm.
        serving_rsrp_cdbm: i32,
        /// Radio address of the reported neighbour cell.
        target_radio: Ipv4Addr,
        /// Neighbour-cell RSRP, centi-dBm.
        target_rsrp_cdbm: i32,
    },
    /// Source eNB → UE: retune to the target cell (the RRC reconfiguration
    /// with `mobilityControlInfo`).
    #[serde(rename = "RHC")]
    RrcHandoverCommand {
        /// Subscriber.
        imsi: Imsi,
        /// Radio address of the target cell.
        target_radio: Ipv4Addr,
    },
    /// UE → target eNB: synchronized on the new cell (RRC reconfiguration
    /// complete).
    #[serde(rename = "RHF")]
    RrcHandoverConfirm {
        /// Subscriber.
        imsi: Imsi,
    },
    /// UE → eNB: the T304 analogue expired without downlink progress (the
    /// HandoverCommand or the post-handover path never materialised); the
    /// UE re-establishes on the cell it can still hear.
    #[serde(rename = "REq")]
    RrcReestablishmentRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// eNB → UE: re-establishment accepted; the UE resumes on this cell.
    #[serde(rename = "REc")]
    RrcReestablishmentConfirm {
        /// Subscriber.
        imsi: Imsi,
    },
}

impl ControlMsg {
    /// Protocol family (decides transport and byte accounting bucket).
    pub fn protocol(&self) -> Protocol {
        use ControlMsg::*;
        match self {
            InitialUeAttach { .. }
            | InitialUeServiceRequest { .. }
            | InitialContextSetupRequest { .. }
            | InitialContextSetupResponse { .. }
            | DownlinkNasAccept { .. }
            | ErabSetupRequest { .. }
            | ErabSetupResponse { .. }
            | ErabReleaseCommand { .. }
            | ErabReleaseResponse { .. }
            | UeContextReleaseRequest { .. }
            | UeContextReleaseCommand { .. }
            | UeContextReleaseComplete { .. }
            | Paging { .. }
            | PathSwitchRequest { .. }
            | PathSwitchRequestAck { .. } => Protocol::S1apSctp,
            X2HandoverRequest { .. }
            | X2HandoverRequestAck { .. }
            | X2HandoverCancel { .. }
            | X2SnStatusTransfer { .. }
            | X2UeContextRelease { .. } => Protocol::X2Sctp,
            CreateSessionRequest { .. }
            | CreateSessionResponse { .. }
            | CreateBearerRequest { .. }
            | CreateBearerResponse { .. }
            | DeleteBearerRequest { .. }
            | DeleteBearerResponse { .. }
            | DeleteBearerCommand { .. }
            | GwuFailureIndication { .. }
            | ReleaseAccessBearersRequest { .. }
            | ReleaseAccessBearersResponse { .. }
            | ModifyBearerRequest { .. }
            | ModifyBearerResponse { .. }
            | DownlinkDataByTeid { .. }
            | DownlinkDataNotification { .. }
            | BearerRelocationRequest { .. }
            | BearerRelocationResponse { .. } => Protocol::Gtpv2,
            RxAuthRequest { .. }
            | RxAuthAnswer { .. }
            | GxReauthRequest { .. }
            | GxReauthAnswer { .. }
            | S6aAuthInfoRequest { .. }
            | S6aAuthInfoAnswer { .. } => Protocol::Diameter,
            FlowMod { .. } => Protocol::OpenFlow,
            RrcAttachRequest { .. }
            | RrcServiceRequest { .. }
            | RrcReconfiguration { .. }
            | RrcRelease { .. }
            | RrcBearerRelease { .. }
            | RrcPaging { .. }
            | RrcMeasurementReport { .. }
            | RrcHandoverCommand { .. }
            | RrcHandoverConfirm { .. }
            | RrcReestablishmentRequest { .. }
            | RrcReestablishmentConfirm { .. } => Protocol::Rrc,
        }
    }

    /// Short message name for logs.
    pub fn name(&self) -> &'static str {
        use ControlMsg::*;
        match self {
            InitialUeAttach { .. } => "InitialUE(Attach)",
            InitialUeServiceRequest { .. } => "InitialUE(ServiceRequest)",
            InitialContextSetupRequest { .. } => "InitialContextSetupRequest",
            InitialContextSetupResponse { .. } => "InitialContextSetupResponse",
            DownlinkNasAccept { .. } => "DownlinkNAS(Accept)",
            ErabSetupRequest { .. } => "E-RABSetupRequest",
            ErabSetupResponse { .. } => "E-RABSetupResponse",
            ErabReleaseCommand { .. } => "E-RABReleaseCommand",
            ErabReleaseResponse { .. } => "E-RABReleaseResponse",
            UeContextReleaseRequest { .. } => "UEContextReleaseRequest",
            UeContextReleaseCommand { .. } => "UEContextReleaseCommand",
            UeContextReleaseComplete { .. } => "UEContextReleaseComplete",
            Paging { .. } => "Paging",
            PathSwitchRequest { .. } => "PathSwitchRequest",
            PathSwitchRequestAck { .. } => "PathSwitchRequestAcknowledge",
            X2HandoverRequest { .. } => "X2HandoverRequest",
            X2HandoverRequestAck { .. } => "X2HandoverRequestAcknowledge",
            X2HandoverCancel { .. } => "X2HandoverCancel",
            X2SnStatusTransfer { .. } => "X2SnStatusTransfer",
            X2UeContextRelease { .. } => "X2UEContextRelease",
            CreateSessionRequest { .. } => "CreateSessionRequest",
            CreateSessionResponse { .. } => "CreateSessionResponse",
            CreateBearerRequest { .. } => "CreateBearerRequest",
            CreateBearerResponse { .. } => "CreateBearerResponse",
            DeleteBearerRequest { .. } => "DeleteBearerRequest",
            DeleteBearerResponse { .. } => "DeleteBearerResponse",
            DeleteBearerCommand { .. } => "DeleteBearerCommand",
            GwuFailureIndication { .. } => "GwuFailureIndication",
            ReleaseAccessBearersRequest { .. } => "ReleaseAccessBearersRequest",
            ReleaseAccessBearersResponse { .. } => "ReleaseAccessBearersResponse",
            ModifyBearerRequest { .. } => "ModifyBearerRequest",
            ModifyBearerResponse { .. } => "ModifyBearerResponse",
            DownlinkDataByTeid { .. } => "DownlinkDataNotification(TEID)",
            DownlinkDataNotification { .. } => "DownlinkDataNotification",
            BearerRelocationRequest { .. } => "BearerRelocationRequest",
            BearerRelocationResponse { .. } => "BearerRelocationResponse",
            RxAuthRequest { .. } => "Rx-AAR",
            RxAuthAnswer { .. } => "Rx-AAA",
            GxReauthRequest { .. } => "Gx-RAR",
            GxReauthAnswer { .. } => "Gx-RAA",
            S6aAuthInfoRequest { .. } => "S6a-AIR",
            S6aAuthInfoAnswer { .. } => "S6a-AIA",
            FlowMod { add: true, .. } => "FlowMod(add)",
            FlowMod { add: false, .. } => "FlowMod(del)",
            RrcAttachRequest { .. } => "RRC(AttachRequest)",
            RrcServiceRequest { .. } => "RRC(ServiceRequest)",
            RrcReconfiguration { .. } => "RRCConnectionReconfiguration",
            RrcRelease { .. } => "RRCConnectionRelease",
            RrcBearerRelease { .. } => "RRC(BearerRelease)",
            RrcPaging { .. } => "RRC(Paging)",
            RrcMeasurementReport { .. } => "RRC(MeasurementReport)",
            RrcHandoverCommand { .. } => "RRC(HandoverCommand)",
            RrcHandoverConfirm { .. } => "RRC(HandoverConfirm)",
            RrcReestablishmentRequest { .. } => "RRC(ReestablishmentRequest)",
            RrcReestablishmentConfirm { .. } => "RRC(ReestablishmentConfirm)",
        }
    }

    /// Calibrated total on-the-wire size (IP + transport + message) in
    /// bytes. The idle-release + re-establishment sequence sums to the
    /// paper's measured 2914 bytes; see module docs.
    pub fn wire_size_spec(&self) -> u32 {
        use ControlMsg::*;
        match self {
            // S1AP/SCTP — the §4 sequence uses the six marked (*) messages:
            InitialUeAttach { .. } => 140,
            InitialUeServiceRequest { .. } => 120,     // (*)
            InitialContextSetupRequest { .. } => 280,  // (*)
            InitialContextSetupResponse { .. } => 120, // (*)
            DownlinkNasAccept { .. } => 110,           // (*)
            ErabSetupRequest { .. } => 300,
            ErabSetupResponse { .. } => 130,
            ErabReleaseCommand { .. } => 120,
            ErabReleaseResponse { .. } => 110,
            UeContextReleaseRequest { .. } => 140,  // (*)
            UeContextReleaseCommand { .. } => 180,  // (*)
            UeContextReleaseComplete { .. } => 188, // (*)
            Paging { .. } => 110,
            PathSwitchRequest { .. } => 150,
            PathSwitchRequestAck { .. } => 260,
            // X2AP (handover preparation/execution, not in the §4 counts).
            X2HandoverRequest { .. } => 420,
            X2HandoverRequestAck { .. } => 120,
            X2HandoverCancel { .. } => 90,
            X2SnStatusTransfer { .. } => 110,
            X2UeContextRelease { .. } => 80,
            // GTPv2 — §4 sequence: Release pair + Modify pair = 352 bytes.
            CreateSessionRequest { .. } => 220,
            CreateSessionResponse { .. } => 260,
            CreateBearerRequest { .. } => 240,
            CreateBearerResponse { .. } => 130,
            DeleteBearerRequest { .. } => 95,
            DeleteBearerResponse { .. } => 90,
            DeleteBearerCommand { .. } => 85,
            GwuFailureIndication { .. } => 70,
            ReleaseAccessBearersRequest { .. } => 70, // (*)
            ReleaseAccessBearersResponse { .. } => 70, // (*)
            ModifyBearerRequest { .. } => 120,        // (*)
            ModifyBearerResponse { .. } => 92,        // (*)
            DownlinkDataByTeid { .. } => 66,
            DownlinkDataNotification { .. } => 70,
            BearerRelocationRequest { .. } => 120,
            BearerRelocationResponse { .. } => 240,
            // Diameter.
            RxAuthRequest { .. } => 320,
            RxAuthAnswer { .. } => 180,
            GxReauthRequest { .. } => 340,
            GxReauthAnswer { .. } => 190,
            S6aAuthInfoRequest { .. } => 230,
            S6aAuthInfoAnswer { .. } => 300,
            // OpenFlow — §4 sequence: 2 deletes + 2 adds = 1424 bytes.
            FlowMod { add, .. } => {
                if *add {
                    400 // (*)
                } else {
                    312 // (*)
                }
            }
            // RRC (radio side, not in the §4 core counts).
            RrcAttachRequest { .. } => 90,
            RrcServiceRequest { .. } => 70,
            RrcReconfiguration { .. } => 210,
            RrcRelease { .. } => 60,
            RrcBearerRelease { .. } => 70,
            RrcPaging { .. } => 60,
            RrcMeasurementReport { .. } => 140,
            RrcHandoverCommand { .. } => 96,
            RrcHandoverConfirm { .. } => 64,
            RrcReestablishmentRequest { .. } => 72,
            RrcReestablishmentConfirm { .. } => 88,
        }
    }

    /// Encode into a packet from `src` to `dst`, with transport chosen by
    /// protocol family and wire size padded to [`Self::wire_size_spec`].
    pub fn into_packet(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        let body = serde_json::to_vec(self).expect("control message serializes");
        let (protocol, port) = match self.protocol() {
            Protocol::S1apSctp => (proto::SCTP, ports::S1AP),
            Protocol::X2Sctp => (proto::SCTP, ports::X2AP),
            Protocol::Gtpv2 => (proto::UDP, ports::GTPC),
            Protocol::OpenFlow => (proto::TCP, ports::OPENFLOW),
            Protocol::Diameter => (proto::TCP, ports::DIAMETER),
            Protocol::Rrc => (proto::UDP, ports::S1AP + 1),
        };
        let mut pkt = Packet {
            src,
            dst,
            src_port: port,
            dst_port: port,
            protocol,
            tos: 0,
            payload: Bytes::from(body),
            app_len: 0,
            id: 0,
            created: acacia_simnet::time::Instant::ZERO,
        };
        let bare = pkt.wire_size();
        let spec = self.wire_size_spec();
        // Pad up to the calibrated size; unusually information-dense
        // messages (e.g. a TFT with many filters) legitimately exceed it
        // and go out at their natural size.
        pkt.app_len = spec.saturating_sub(bare);
        pkt
    }

    /// Decode a control message from a packet payload.
    pub fn decode(payload: &[u8]) -> Option<ControlMsg> {
        serde_json::from_slice(payload).ok()
    }

    /// Decode from a packet.
    pub fn from_packet(pkt: &Packet) -> Option<ControlMsg> {
        Self::decode(&pkt.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imsi() -> Imsi {
        Imsi(310_410_000_000_001)
    }

    fn sample_messages() -> Vec<ControlMsg> {
        use ControlMsg::*;
        let erab = ErabSetup {
            ebi: Ebi(6),
            qci: Qci(7),
            gw_teid: Teid(0x2001),
            gw_addr: Ipv4Addr::new(10, 2, 1, 1),
            tft: Tft::single(crate::tft::PacketFilter::to_host(Ipv4Addr::new(
                10, 4, 0, 1,
            ))),
        };
        vec![
            InitialUeAttach { imsi: imsi() },
            InitialUeServiceRequest { imsi: imsi() },
            InitialContextSetupRequest {
                imsi: imsi(),
                erabs: vec![erab.clone()],
            },
            InitialContextSetupResponse {
                imsi: imsi(),
                enb_teids: vec![(Ebi(5), Teid(0x3001))],
            },
            DownlinkNasAccept {
                imsi: imsi(),
                ue_addr: Some(Ipv4Addr::new(10, 10, 0, 1)),
            },
            ErabSetupRequest {
                imsi: imsi(),
                erab: erab.clone(),
            },
            ErabSetupResponse {
                imsi: imsi(),
                ebi: Ebi(6),
                enb_teid: Teid(0x3002),
            },
            UeContextReleaseRequest { imsi: imsi() },
            UeContextReleaseCommand { imsi: imsi() },
            UeContextReleaseComplete { imsi: imsi() },
            CreateSessionRequest { imsi: imsi() },
            CreateBearerRequest {
                imsi: imsi(),
                erab: erab.clone(),
            },
            ReleaseAccessBearersRequest { imsi: imsi() },
            ReleaseAccessBearersResponse { imsi: imsi() },
            ModifyBearerRequest {
                imsi: imsi(),
                enb_teid: Teid(0x3001),
                enb_addr: Ipv4Addr::new(10, 1, 0, 1),
            },
            ModifyBearerResponse { imsi: imsi() },
            RxAuthRequest {
                rule: PolicyRule {
                    service_id: 7,
                    ue_addr: Ipv4Addr::new(10, 10, 0, 1),
                    server_addr: Ipv4Addr::new(10, 4, 0, 1),
                    server_port: 9000,
                    qci: Qci(7),
                    install: true,
                },
            },
            FlowMod {
                add: true,
                priority: 100,
                mtch: FlowMatchSpec {
                    teid: Some(Teid(0x2001)),
                    dst: None,
                    src: None,
                },
                actions: vec![FlowActionSpec::GtpDecap, FlowActionSpec::Output { port: 2 }],
            },
            RrcReconfiguration {
                ebi: Ebi(6),
                qci: Qci(7),
                tft: erab.tft.clone(),
                ue_addr: None,
            },
            PathSwitchRequest {
                imsi: imsi(),
                enb_addr: Ipv4Addr::new(10, 1, 0, 2),
                erabs: vec![(Ebi(5), Teid(0x3005)), (Ebi(6), Teid(0x3006))],
                txid: 3,
            },
            PathSwitchRequestAck {
                imsi: imsi(),
                erabs: vec![erab.clone()],
            },
            X2HandoverRequest {
                imsi: imsi(),
                ue_addr: Some(Ipv4Addr::new(10, 10, 0, 1)),
                bearers: vec![erab.clone()],
                txid: 7,
            },
            X2HandoverRequestAck {
                imsi: imsi(),
                erabs: vec![(Ebi(5), Teid(0x3005)), (Ebi(6), Teid(0x3006))],
                txid: 7,
            },
            X2HandoverCancel {
                imsi: imsi(),
                txid: 7,
            },
            X2SnStatusTransfer {
                imsi: imsi(),
                dl_count: 421,
                ul_count: 197,
            },
            X2UeContextRelease { imsi: imsi() },
            BearerRelocationRequest {
                imsi: imsi(),
                enb_addr: Ipv4Addr::new(10, 1, 0, 2),
                enb_teids: vec![(Ebi(5), Teid(0x3005)), (Ebi(6), Teid(0x3006))],
            },
            BearerRelocationResponse {
                imsi: imsi(),
                erabs: vec![erab.clone()],
                released: vec![Ebi(6)],
            },
            RrcMeasurementReport {
                imsi: imsi(),
                serving_rsrp_cdbm: -9810,
                target_radio: Ipv4Addr::new(192, 168, 0, 2),
                target_rsrp_cdbm: -9120,
            },
            RrcHandoverCommand {
                imsi: imsi(),
                target_radio: Ipv4Addr::new(192, 168, 0, 2),
            },
            RrcHandoverConfirm { imsi: imsi() },
            RrcReestablishmentRequest { imsi: imsi() },
            RrcReestablishmentConfirm { imsi: imsi() },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for msg in sample_messages() {
            let pkt = msg.into_packet(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 3, 0, 1));
            let back = ControlMsg::from_packet(&pkt).expect("decodes");
            assert_eq!(back, msg, "roundtrip of {}", msg.name());
        }
    }

    #[test]
    fn wire_sizes_match_spec_exactly() {
        for msg in sample_messages() {
            let pkt = msg.into_packet(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 3, 0, 1));
            assert_eq!(
                pkt.wire_size(),
                msg.wire_size_spec(),
                "wire size of {}",
                msg.name()
            );
        }
    }

    #[test]
    fn section4_sequence_totals() {
        // The exact §4 release + re-establish sequence: 15 messages,
        // 2914 bytes split SCTP 7/1138, GTPv2 4/352, OpenFlow 4/1424.
        use ControlMsg::*;
        let del = |_: u32| FlowMod {
            add: false,
            priority: 100,
            mtch: FlowMatchSpec {
                teid: Some(Teid(1)),
                dst: None,
                src: None,
            },
            actions: vec![],
        };
        let add = |_: u32| FlowMod {
            add: true,
            priority: 100,
            mtch: FlowMatchSpec {
                teid: Some(Teid(1)),
                dst: None,
                src: None,
            },
            actions: vec![
                FlowActionSpec::GtpEncap {
                    peer: Ipv4Addr::new(10, 1, 0, 1),
                    teid: Teid(2),
                },
                FlowActionSpec::Output { port: 1 },
            ],
        };
        let seq: Vec<ControlMsg> = vec![
            // Release.
            UeContextReleaseRequest { imsi: imsi() },
            ReleaseAccessBearersRequest { imsi: imsi() },
            ReleaseAccessBearersResponse { imsi: imsi() },
            UeContextReleaseCommand { imsi: imsi() },
            UeContextReleaseComplete { imsi: imsi() },
            del(1),
            del(2),
            // Re-establish.
            InitialUeServiceRequest { imsi: imsi() },
            InitialContextSetupRequest {
                imsi: imsi(),
                erabs: vec![],
            },
            InitialContextSetupResponse {
                imsi: imsi(),
                enb_teids: vec![(Ebi(5), Teid(0x3001))],
            },
            DownlinkNasAccept {
                imsi: imsi(),
                ue_addr: None,
            },
            ModifyBearerRequest {
                imsi: imsi(),
                enb_teid: Teid(0x3001),
                enb_addr: Ipv4Addr::new(10, 1, 0, 1),
            },
            ModifyBearerResponse { imsi: imsi() },
            add(1),
            add(2),
        ];
        assert_eq!(seq.len(), 15);
        let mut by_proto: std::collections::HashMap<&'static str, (u32, u32)> = Default::default();
        for m in &seq {
            let e = by_proto.entry(m.protocol().name()).or_default();
            e.0 += 1;
            e.1 += m.wire_size_spec();
        }
        assert_eq!(by_proto["SCTP"], (7, 1138));
        assert_eq!(by_proto["GTPv2"], (4, 352));
        assert_eq!(by_proto["OpenFlow"], (4, 1424));
        let total: u32 = seq.iter().map(|m| m.wire_size_spec()).sum();
        assert_eq!(total, 2914);
    }

    #[test]
    fn protocol_families_use_expected_transports() {
        let m = ControlMsg::UeContextReleaseRequest { imsi: imsi() };
        let p = m.into_packet(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 3, 0, 1));
        assert_eq!(p.protocol, proto::SCTP);
        assert_eq!(p.dst_port, ports::S1AP);

        let m = ControlMsg::ModifyBearerResponse { imsi: imsi() };
        let p = m.into_packet(Ipv4Addr::new(10, 3, 0, 2), Ipv4Addr::new(10, 3, 0, 1));
        assert_eq!(p.protocol, proto::UDP);
        assert_eq!(p.dst_port, ports::GTPC);

        let m = ControlMsg::FlowMod {
            add: true,
            priority: 1,
            mtch: FlowMatchSpec {
                teid: None,
                dst: None,
                src: None,
            },
            actions: vec![],
        };
        let p = m.into_packet(Ipv4Addr::new(10, 3, 0, 2), Ipv4Addr::new(10, 2, 0, 1));
        assert_eq!(p.protocol, proto::TCP);
        assert_eq!(p.dst_port, ports::OPENFLOW);

        let m = ControlMsg::X2UeContextRelease { imsi: imsi() };
        let p = m.into_packet(Ipv4Addr::new(10, 1, 0, 2), Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(p.protocol, proto::SCTP);
        assert_eq!(p.dst_port, ports::X2AP);
    }
}
