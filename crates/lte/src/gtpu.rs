//! GTP-U user-plane tunnelling: byte-accurate encapsulation of user packets
//! inside UDP/2152 tunnel packets, keyed by TEID.

use crate::ids::Teid;
use crate::wire::ports;
use acacia_simnet::packet::{proto, Packet};
use acacia_simnet::time::Instant;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// GTP-U header length (mandatory part), bytes.
pub const GTPU_HEADER: u32 = 8;

/// Serialize a packet's headers + payload for carriage inside a tunnel.
/// The inner packet's *virtual* app length is preserved as a number, so the
/// outer packet can account for it without allocating.
pub fn serialize_inner(pkt: &Packet) -> Bytes {
    let mut b = BytesMut::with_capacity(26 + pkt.payload.len());
    b.put_u32(u32::from(pkt.src));
    b.put_u32(u32::from(pkt.dst));
    b.put_u16(pkt.src_port);
    b.put_u16(pkt.dst_port);
    b.put_u8(pkt.protocol);
    b.put_u8(pkt.tos);
    b.put_u32(pkt.app_len);
    b.put_u64(pkt.id);
    b.put_u16(pkt.payload.len() as u16);
    b.put_slice(&pkt.payload);
    b.freeze()
}

/// Reverse of [`serialize_inner`]. Returns `None` on malformed input.
///
/// Takes the serialized frame as a [`Bytes`] so the inner payload can be
/// re-sliced out of the tunnel buffer without copying — decapsulation and
/// radio deframing are per-packet hot paths.
pub fn deserialize_inner(data: &Bytes, created: Instant) -> Option<Packet> {
    if data.len() < 26 {
        return None;
    }
    let src = Ipv4Addr::from(u32::from_be_bytes(data[0..4].try_into().ok()?));
    let dst = Ipv4Addr::from(u32::from_be_bytes(data[4..8].try_into().ok()?));
    let src_port = u16::from_be_bytes(data[8..10].try_into().ok()?);
    let dst_port = u16::from_be_bytes(data[10..12].try_into().ok()?);
    let protocol = data[12];
    let tos = data[13];
    let app_len = u32::from_be_bytes(data[14..18].try_into().ok()?);
    let id = u64::from_be_bytes(data[18..26].try_into().ok()?);
    if data.len() < 28 {
        return None;
    }
    let plen = u16::from_be_bytes(data[26..28].try_into().ok()?) as usize;
    if data.len() < 28 + plen {
        return None;
    }
    Some(Packet {
        src,
        dst,
        src_port,
        dst_port,
        protocol,
        tos,
        payload: data.slice(28..28 + plen),
        app_len,
        id,
        created,
    })
}

/// Encapsulate `inner` in a GTP-U tunnel packet from `src_gw` to `dst_gw`
/// with tunnel id `teid`.
///
/// The outer wire size is `IP + UDP + GTP header + inner wire size`,
/// faithfully modelling tunnel overhead.
pub fn encapsulate(inner: &Packet, teid: Teid, src_gw: Ipv4Addr, dst_gw: Ipv4Addr) -> Packet {
    let mut b = BytesMut::with_capacity(8 + 28 + inner.payload.len());
    // GTP-U mandatory header: version/flags, type (255 = G-PDU), length,
    // TEID.
    b.put_u8(0x30);
    b.put_u8(255);
    b.put_u16(0); // length filled conceptually; sizes tracked via wire model
    b.put_u32(teid.0);
    b.put_slice(&serialize_inner(inner));
    Packet {
        src: src_gw,
        dst: dst_gw,
        src_port: ports::GTPU,
        dst_port: ports::GTPU,
        protocol: proto::UDP,
        tos: inner.tos,
        payload: b.freeze(),
        // Account for the inner packet's virtual payload plus the bytes of
        // its IP/L4 headers that our compact serialization doesn't store
        // one-for-one.
        app_len: inner.app_len
            + inner
                .wire_size()
                .saturating_sub(28 + inner.payload.len() as u32 + inner.app_len),
        id: inner.id,
        created: inner.created,
    }
}

/// Decapsulate a GTP-U packet; returns the TEID and the inner packet.
pub fn decapsulate(outer: &Packet) -> Option<(Teid, Packet)> {
    if outer.protocol != proto::UDP || outer.dst_port != ports::GTPU {
        return None;
    }
    let p = &outer.payload;
    if p.len() < 8 || p[1] != 255 {
        return None;
    }
    let teid = Teid(u32::from_be_bytes(p[4..8].try_into().ok()?));
    let inner = deserialize_inner(&p.slice(8..), outer.created)?;
    Some((teid, inner))
}

/// Read the inner packet's `(src, dst)` addresses from a GTP-U packet
/// without materializing the inner packet (cheap flow-table matching).
///
/// Validates the same framing invariants as [`decapsulate`] so the two
/// agree on which packets are well-formed tunnels.
pub fn peek_inner_addrs(pkt: &Packet) -> Option<(Ipv4Addr, Ipv4Addr)> {
    if !is_gtpu(pkt) {
        return None;
    }
    let p = &pkt.payload;
    if p.len() < 8 || p[1] != 255 {
        return None;
    }
    let d = &p[8..];
    if d.len() < 28 {
        return None;
    }
    let plen = u16::from_be_bytes(d[26..28].try_into().ok()?) as usize;
    if d.len() < 28 + plen {
        return None;
    }
    let src = Ipv4Addr::from(u32::from_be_bytes(d[0..4].try_into().ok()?));
    let dst = Ipv4Addr::from(u32::from_be_bytes(d[4..8].try_into().ok()?));
    Some((src, dst))
}

/// Is this packet a GTP-U tunnel packet?
pub fn is_gtpu(pkt: &Packet) -> bool {
    pkt.protocol == proto::UDP && pkt.dst_port == ports::GTPU
}

/// Read the TEID from a GTP-U header without deserializing the inner
/// packet (cheap flow-cache keying).
pub fn peek_teid(pkt: &Packet) -> Option<Teid> {
    if !is_gtpu(pkt) || pkt.payload.len() < 8 || pkt.payload[1] != 255 {
        return None;
    }
    Some(Teid(u32::from_be_bytes(pkt.payload[4..8].try_into().ok()?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn inner() -> Packet {
        Packet::udp((ip(1), 40_000), (ip(2), 9_000), 1400)
            .with_tos(46)
            .with_id(77)
            .with_created(Instant::from_millis(3))
    }

    #[test]
    fn encap_decap_roundtrip_preserves_inner() {
        let p = inner();
        let outer = encapsulate(&p, Teid(0xabcd), ip(10), ip(11));
        let (teid, back) = decapsulate(&outer).unwrap();
        assert_eq!(teid, Teid(0xabcd));
        assert_eq!(back.src, p.src);
        assert_eq!(back.dst, p.dst);
        assert_eq!(back.src_port, p.src_port);
        assert_eq!(back.dst_port, p.dst_port);
        assert_eq!(back.protocol, p.protocol);
        assert_eq!(back.tos, p.tos);
        assert_eq!(back.app_len, p.app_len);
        assert_eq!(back.id, p.id);
        assert_eq!(back.wire_size(), p.wire_size());
    }

    #[test]
    fn outer_wire_size_adds_tunnel_overhead() {
        let p = inner();
        let outer = encapsulate(&p, Teid(1), ip(10), ip(11));
        // Outer = inner + IP(20) + UDP(8) + GTP(8) = inner + 36.
        assert_eq!(outer.wire_size(), p.wire_size() + 36);
    }

    #[test]
    fn nested_encapsulation_also_roundtrips() {
        // S5 bearer inside S1 bearer style double tunnel.
        let p = inner();
        let once = encapsulate(&p, Teid(1), ip(10), ip(11));
        let twice = encapsulate(&once, Teid(2), ip(20), ip(21));
        assert_eq!(twice.wire_size(), p.wire_size() + 72);
        let (t2, mid) = decapsulate(&twice).unwrap();
        assert_eq!(t2, Teid(2));
        let (t1, back) = decapsulate(&mid).unwrap();
        assert_eq!(t1, Teid(1));
        assert_eq!(back.wire_size(), p.wire_size());
        assert_eq!(back.dst_port, 9_000);
    }

    #[test]
    fn inner_with_real_payload_survives() {
        let mut p = inner();
        p.payload = Bytes::from_static(b"hello control bytes");
        p.app_len = 0;
        let outer = encapsulate(&p, Teid(9), ip(10), ip(11));
        let (_, back) = decapsulate(&outer).unwrap();
        assert_eq!(&back.payload[..], b"hello control bytes");
        assert_eq!(back.wire_size(), p.wire_size());
    }

    #[test]
    fn peek_inner_addrs_agrees_with_decapsulate() {
        let p = inner();
        let outer = encapsulate(&p, Teid(7), ip(10), ip(11));
        assert_eq!(peek_inner_addrs(&outer), Some((p.src, p.dst)));
        // Non-tunnel and truncated packets peek as None, exactly where
        // decapsulate fails.
        assert_eq!(peek_inner_addrs(&p), None);
        let mut cut = outer.clone();
        cut.payload = cut.payload.slice(0..20);
        assert!(decapsulate(&cut).is_none());
        assert_eq!(peek_inner_addrs(&cut), None);
    }

    #[test]
    fn decapsulated_payload_shares_the_tunnel_buffer() {
        let mut p = inner();
        p.payload = Bytes::from_static(b"shared zero-copy payload");
        let outer = encapsulate(&p, Teid(3), ip(10), ip(11));
        let (_, back) = decapsulate(&outer).unwrap();
        // The inner payload is a sub-slice of the outer buffer, not a copy.
        let outer_range =
            outer.payload.as_ptr() as usize..outer.payload.as_ptr() as usize + outer.payload.len();
        assert!(outer_range.contains(&(back.payload.as_ptr() as usize)));
        assert_eq!(&back.payload[..], b"shared zero-copy payload");
    }

    #[test]
    fn non_gtp_packets_do_not_decapsulate() {
        let p = inner();
        assert!(decapsulate(&p).is_none());
        assert!(!is_gtpu(&p));
        let outer = encapsulate(&p, Teid(1), ip(10), ip(11));
        assert!(is_gtpu(&outer));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let mut outer = encapsulate(&inner(), Teid(1), ip(10), ip(11));
        outer.payload = outer.payload.slice(0..10);
        assert!(decapsulate(&outer).is_none());
        outer.payload = Bytes::new();
        assert!(decapsulate(&outer).is_none());
    }
}
