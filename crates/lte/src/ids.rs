//! Identifiers used across the EPC: TEIDs, bearer ids, UE identities.

use serde::{Deserialize, Serialize};

/// GTP Tunnel Endpoint Identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Teid(pub u32);

impl std::fmt::Display for Teid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "teid:{:#x}", self.0)
    }
}

/// EPS Bearer Identity (4-bit in the spec; 5..15 valid for bearers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ebi(pub u8);

impl Ebi {
    /// First EBI handed out to the default bearer.
    pub const DEFAULT: Ebi = Ebi(5);
}

impl std::fmt::Display for Ebi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ebi:{}", self.0)
    }
}

/// Subscriber identity (abbreviated IMSI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Imsi(pub u64);

impl std::fmt::Display for Imsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "imsi:{}", self.0)
    }
}

/// Monotonic allocator for TEIDs, EBIs etc.
#[derive(Debug, Default)]
pub struct Allocator {
    next_teid: u32,
    next_ebi: u8,
}

impl Allocator {
    /// Fresh allocator.
    pub fn new() -> Allocator {
        Allocator {
            next_teid: 0x1000,
            next_ebi: Ebi::DEFAULT.0,
        }
    }

    /// Allocate a TEID.
    pub fn teid(&mut self) -> Teid {
        let t = Teid(self.next_teid);
        self.next_teid += 1;
        t
    }

    /// Allocate an EBI (wraps at 15, the 4-bit ceiling, back to 5).
    pub fn ebi(&mut self) -> Ebi {
        let e = Ebi(self.next_ebi);
        self.next_ebi = if self.next_ebi >= 15 {
            5
        } else {
            self.next_ebi + 1
        };
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_monotone_and_unique() {
        let mut a = Allocator::new();
        let t1 = a.teid();
        let t2 = a.teid();
        assert_ne!(t1, t2);
        assert!(t2.0 > t1.0);
    }

    #[test]
    fn first_ebi_is_the_default_bearer() {
        let mut a = Allocator::new();
        assert_eq!(a.ebi(), Ebi::DEFAULT);
        assert_eq!(a.ebi(), Ebi(6));
    }

    #[test]
    fn ebi_wraps_within_four_bits() {
        let mut a = Allocator::new();
        let mut last = Ebi(0);
        for _ in 0..20 {
            last = a.ebi();
            assert!((5..=15).contains(&last.0));
        }
        let _ = last;
    }

    #[test]
    fn display_formats() {
        assert_eq!(Teid(0x10).to_string(), "teid:0x10");
        assert_eq!(Ebi(5).to_string(), "ebi:5");
        assert_eq!(Imsi(123).to_string(), "imsi:123");
    }
}
