//! Property-based tests for geometry, path loss and tri-lateration.

use acacia_geo::floor::{FloorPlan, WalkPath};
use acacia_geo::pathloss::{FittedPathLoss, PathLossModel};
use acacia_geo::point::{Point, Rect};
use acacia_geo::trilateration::{trilaterate, RangeMeasurement};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.1f64..27.9, 0.1f64..14.9).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Distance is a metric: symmetric, zero iff equal, triangle holds.
    #[test]
    fn distance_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        prop_assert!(a.distance(a) < 1e-12);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    /// Rect::distance_to is zero exactly for contained points.
    #[test]
    fn rect_distance_zero_iff_inside(p in arb_point()) {
        let r = Rect::new(4.0, 5.0, 20.0, 12.0);
        if r.contains(p) {
            prop_assert_eq!(r.distance_to(p), 0.0);
        } else {
            prop_assert!(r.distance_to(p) > 0.0);
        }
    }

    /// Exact ranges from ≥3 spread landmarks recover the position.
    #[test]
    fn trilateration_exact_recovery(truth in arb_point(), extra in 0usize..4) {
        let floor = FloorPlan::retail_store();
        let landmarks: Vec<Point> = floor.landmarks.iter().take(3 + extra).map(|l| l.pos).collect();
        let ms: Vec<RangeMeasurement> = landmarks
            .iter()
            .map(|&l| RangeMeasurement::new(l, truth.distance(l)))
            .collect();
        let sol = trilaterate(&ms).unwrap();
        prop_assert!(
            sol.position.distance(truth) < 1e-3,
            "error {} at {:?}",
            sol.position.distance(truth),
            truth
        );
    }

    /// Bounded range noise produces bounded position error (stability).
    #[test]
    fn trilateration_stability(truth in arb_point(), noise in -1.5f64..1.5) {
        let floor = FloorPlan::retail_store();
        let ms: Vec<RangeMeasurement> = floor
            .landmarks
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                RangeMeasurement::new(l.pos, (truth.distance(l.pos) + sign * noise).max(0.0))
            })
            .collect();
        let sol = trilaterate(&ms).unwrap();
        prop_assert!(
            sol.position.distance(truth) < 6.0 * noise.abs() + 0.5,
            "error {} for noise {}",
            sol.position.distance(truth),
            noise
        );
    }

    /// The path-loss fit inverts its own model exactly on clean samples.
    #[test]
    fn pathloss_fit_inverts(pl0 in 30.0f64..80.0, n in 2.0f64..4.5, d in 0.5f64..80.0) {
        let model = PathLossModel { tx_power_dbm: 23.0, pl0_db: pl0, exponent: n };
        let samples: Vec<(f64, f64)> = [0.5, 1.0, 2.0, 5.0, 12.0, 30.0, 70.0]
            .iter()
            .map(|&x| (x, model.rx_power_dbm(x)))
            .collect();
        let fit = FittedPathLoss::fit(&samples).unwrap();
        let rx = model.rx_power_dbm(d);
        prop_assert!((fit.predict_distance(rx) - d).abs() / d < 1e-6);
    }

    /// rxPower is strictly decreasing with distance.
    #[test]
    fn pathloss_monotone(d1 in 0.2f64..500.0, d2 in 0.2f64..500.0) {
        prop_assume!(d1 < d2 - 1e-9);
        let m = PathLossModel::indoor_default();
        prop_assert!(m.rx_power_dbm(d1) > m.rx_power_dbm(d2));
    }

    /// Walk paths: position_at is continuous-ish and clamped.
    #[test]
    fn walkpath_bounds(t in -100.0f64..1000.0) {
        let w = WalkPath::fig6_walk();
        let p = w.position_at(t);
        // The walkway floor contains the whole path.
        let floor = FloorPlan::walkway();
        prop_assert!(floor.bounds.contains(p) || floor.bounds.distance_to(p) < 1e-9);
        // Small time steps move small distances (max speed bound).
        let q = w.position_at(t + 1.0);
        let speed = p.distance(q);
        prop_assert!(speed <= w.length() / w.duration_s() + 1e-9);
    }

    /// Every floor point near a subsection set: subsections_near with a
    /// radius covering the whole floor returns all 21.
    #[test]
    fn subsections_near_total_cover(p in arb_point()) {
        let floor = FloorPlan::retail_store();
        prop_assert_eq!(floor.subsections_near(p, 100.0).len(), 21);
        // Zero radius returns exactly the containing subsection.
        let zero = floor.subsections_near(p, 0.0);
        let own = floor.subsection_at(p).unwrap();
        prop_assert!(zero.contains(&own));
    }
}
