//! Radio path-loss models and the paper's rxPower→distance regression.
//!
//! ACACIA converts LTE-direct received-power readings into distances using a
//! **linear regression of rxPower against log-distance**, fitted once per
//! environment (§5.5: "a linear regression model for the path loss between a
//! user and landmark is constructed for the given environment, which is a
//! one-time overhead").

use serde::{Deserialize, Serialize};

/// Log-distance path-loss ground truth used by the channel simulator.
///
/// `rx(d) = tx_power_dbm - pl0_db - 10·n·log10(d)` with distances clamped to
/// 10 cm so the model never blows up at zero range.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Transmit power in dBm (LTE-direct UE class ~23 dBm).
    pub tx_power_dbm: f64,
    /// Reference loss at 1 m, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (2 free space, ~2.5-4 indoors).
    pub exponent: f64,
}

impl PathLossModel {
    /// Indoor retail-environment defaults giving roughly the -60..-105 dBm
    /// span visible in the paper's Fig. 6(c).
    pub fn indoor_default() -> PathLossModel {
        PathLossModel {
            tx_power_dbm: 23.0,
            pl0_db: 63.0,
            exponent: 3.8,
        }
    }

    /// Mean received power at distance `d` metres (no shadowing).
    pub fn rx_power_dbm(&self, d: f64) -> f64 {
        let d = d.max(0.1);
        self.tx_power_dbm - self.pl0_db - 10.0 * self.exponent * d.log10()
    }

    /// Invert the model exactly (useful for sanity checks).
    pub fn distance_for(&self, rx_dbm: f64) -> f64 {
        10f64.powf((self.tx_power_dbm - self.pl0_db - rx_dbm) / (10.0 * self.exponent))
    }
}

/// A fitted `rxPower = alpha + beta·log10(distance)` regression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedPathLoss {
    /// Intercept (dBm at 1 m).
    pub alpha: f64,
    /// Slope (dB per decade of distance; negative).
    pub beta: f64,
}

/// Errors from the regression fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples.
    TooFewSamples,
    /// All distances identical (slope undefined).
    DegenerateDistances,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "need at least two calibration samples"),
            FitError::DegenerateDistances => {
                write!(f, "calibration samples must span more than one distance")
            }
        }
    }
}

impl std::error::Error for FitError {}

impl FittedPathLoss {
    /// Ordinary least squares over `(distance_m, rx_dbm)` calibration
    /// samples.
    pub fn fit(samples: &[(f64, f64)]) -> Result<FittedPathLoss, FitError> {
        if samples.len() < 2 {
            return Err(FitError::TooFewSamples);
        }
        let xs: Vec<f64> = samples.iter().map(|&(d, _)| d.max(0.1).log10()).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, rx)| rx).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx < 1e-12 {
            return Err(FitError::DegenerateDistances);
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let beta = sxy / sxx;
        let alpha = my - beta * mx;
        Ok(FittedPathLoss { alpha, beta })
    }

    /// Predicted received power at distance `d`.
    pub fn rx_power_dbm(&self, d: f64) -> f64 {
        self.alpha + self.beta * d.max(0.1).log10()
    }

    /// Predicted distance for a received power reading. Distances are
    /// clamped to `[0.1, 1000]` m — extrapolating a noisy regression beyond
    /// that is meaningless indoors.
    pub fn predict_distance(&self, rx_dbm: f64) -> f64 {
        if self.beta.abs() < 1e-12 {
            return 0.1;
        }
        10f64
            .powf((rx_dbm - self.alpha) / self.beta)
            .clamp(0.1, 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_monotonically_decreases_with_distance() {
        let m = PathLossModel::indoor_default();
        let mut last = f64::INFINITY;
        for d in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
            let rx = m.rx_power_dbm(d);
            assert!(rx < last, "rx at {d} m was {rx}");
            last = rx;
        }
    }

    #[test]
    fn model_inversion_roundtrips() {
        let m = PathLossModel::indoor_default();
        for d in [1.0, 3.0, 10.0, 30.0] {
            let rx = m.rx_power_dbm(d);
            assert!((m.distance_for(rx) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn rx_span_matches_paper_figure() {
        // Fig. 6(c) shows rxPower between roughly -50 and -105 dBm over the
        // walk; our defaults must land in that ballpark for 1..50 m.
        let m = PathLossModel::indoor_default();
        assert!(m.rx_power_dbm(1.0) > -70.0);
        assert!(m.rx_power_dbm(50.0) < -85.0);
    }

    #[test]
    fn fit_recovers_exact_model() {
        let m = PathLossModel::indoor_default();
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&d| (d, m.rx_power_dbm(d)))
            .collect();
        let fit = FittedPathLoss::fit(&samples).unwrap();
        assert!((fit.beta - (-10.0 * m.exponent)).abs() < 1e-9);
        for d in [1.5, 3.0, 12.0] {
            assert!((fit.predict_distance(m.rx_power_dbm(d)) - d).abs() < 1e-6);
        }
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert_eq!(
            FittedPathLoss::fit(&[(1.0, -50.0)]),
            Err(FitError::TooFewSamples)
        );
        assert_eq!(
            FittedPathLoss::fit(&[(2.0, -50.0), (2.0, -55.0), (2.0, -60.0)]),
            Err(FitError::DegenerateDistances)
        );
    }

    #[test]
    fn predict_distance_clamps_extremes() {
        let fit = FittedPathLoss {
            alpha: -15.0,
            beta: -28.0,
        };
        assert_eq!(fit.predict_distance(50.0), 0.1);
        assert_eq!(fit.predict_distance(-500.0), 1000.0);
    }

    #[test]
    fn flat_fit_degrades_gracefully() {
        let fit = FittedPathLoss {
            alpha: -60.0,
            beta: 0.0,
        };
        assert_eq!(fit.predict_distance(-60.0), 0.1);
    }
}
