//! Floor plans: sections, subsections, landmarks and checkpoints.
//!
//! The paper's retail-store AR evaluation divides a store floor into **5
//! sections** and **21 subsections** with **7 LTE-direct landmarks** and
//! **24 checkpoints** (Fig. 9(a)); the earlier feasibility experiment walks
//! past **3 landmarks** with 4 checkpoints (Fig. 6(a)). Both layouts ship
//! here as presets; arbitrary plans can be constructed too.

use crate::point::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A fixed LTE-direct publisher position ("sales person smartphone").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Landmark {
    /// Service/landmark name broadcast over LTE-direct (e.g. "laptops").
    pub name: String,
    /// Position on the floor.
    pub pos: Point,
}

/// A measurement position used in the evaluation ("C1".."C24").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint label.
    pub name: String,
    /// Position on the floor.
    pub pos: Point,
}

/// A named subsection of a section — the granularity at which the AR object
/// database is geo-tagged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subsection {
    /// Display name, e.g. "food-2".
    pub name: String,
    /// Area covered.
    pub rect: Rect,
    /// Index into [`FloorPlan::sections`].
    pub section: usize,
}

/// A complete store floor plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloorPlan {
    /// Outer bounds of the floor.
    pub bounds: Rect,
    /// Coarse sections ("food", "toys", ...). Paper Fig. 9(a) uses 5.
    pub sections: Vec<(String, Rect)>,
    /// Fine subsections. Paper Fig. 9(a) uses 21.
    pub subsections: Vec<Subsection>,
    /// LTE-direct landmarks. Paper Fig. 9(a) uses 7.
    pub landmarks: Vec<Landmark>,
    /// Evaluation checkpoints. Paper Fig. 9(a) uses 24.
    pub checkpoints: Vec<Checkpoint>,
}

impl FloorPlan {
    /// Index of the subsection containing `p` (if any).
    pub fn subsection_at(&self, p: Point) -> Option<usize> {
        self.subsections.iter().position(|s| s.rect.contains(p))
    }

    /// Index of the section containing `p` (if any).
    pub fn section_at(&self, p: Point) -> Option<usize> {
        self.sections.iter().position(|(_, r)| r.contains(p))
    }

    /// Indices of all subsections whose area intersects the disc of radius
    /// `radius` around `center` — ACACIA's search-space for a location
    /// estimate with the given uncertainty.
    pub fn subsections_near(&self, center: Point, radius: f64) -> Vec<usize> {
        self.subsections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.rect.distance_to(center) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all subsections belonging to `section`.
    pub fn subsections_of_section(&self, section: usize) -> Vec<usize> {
        self.subsections
            .iter()
            .enumerate()
            .filter(|(_, s)| s.section == section)
            .map(|(i, _)| i)
            .collect()
    }

    /// Look up a landmark by name.
    pub fn landmark(&self, name: &str) -> Option<&Landmark> {
        self.landmarks.iter().find(|l| l.name == name)
    }

    /// The Fig. 9(a) retail-store layout: a 28 m × 15 m floor split into a
    /// 7×3 grid of 4 m × 5 m subsections, grouped into 5 sections, with 7
    /// landmarks and 24 checkpoints.
    pub fn retail_store() -> FloorPlan {
        let bounds = Rect::new(0.0, 0.0, 28.0, 15.0);
        let section_names = ["food", "toys", "electronics", "clothing", "sports"];
        // Column groups per section: 21 = 6 + 3 + 6 + 3 + 3 subsections.
        let section_cols: [&[usize]; 5] = [&[0, 1], &[2], &[3, 4], &[5], &[6]];
        let mut sections = Vec::new();
        let mut subsections = Vec::new();
        for (si, cols) in section_cols.iter().enumerate() {
            let x0 = *cols.first().expect("empty section") as f64 * 4.0;
            let x1 = (*cols.last().expect("empty section") + 1) as f64 * 4.0;
            sections.push((section_names[si].to_string(), Rect::new(x0, 0.0, x1, 15.0)));
            for &col in cols.iter() {
                for row in 0..3 {
                    let r = Rect::new(
                        col as f64 * 4.0,
                        row as f64 * 5.0,
                        (col + 1) as f64 * 4.0,
                        (row + 1) as f64 * 5.0,
                    );
                    subsections.push(Subsection {
                        name: format!("{}-{}", section_names[si], subsections.len()),
                        rect: r,
                        section: si,
                    });
                }
            }
        }
        // 7 landmarks in a zig-zag covering the floor.
        let landmark_pos = [
            (2.0, 2.5),
            (6.0, 12.5),
            (10.0, 7.5),
            (14.0, 2.5),
            (18.0, 12.5),
            (22.0, 7.5),
            (26.0, 2.5),
        ];
        let landmarks = landmark_pos
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Landmark {
                name: format!("L{}", i + 1),
                pos: Point::new(x, y),
            })
            .collect();
        // 24 checkpoints on an 8×3 grid of aisle positions.
        let mut checkpoints = Vec::new();
        for row in 0..3 {
            for col in 0..8 {
                let idx = row * 8 + col + 1;
                checkpoints.push(Checkpoint {
                    name: format!("C{idx}"),
                    pos: Point::new(1.75 + col as f64 * 3.5, 2.5 + row as f64 * 5.0),
                });
            }
        }
        FloorPlan {
            bounds,
            sections,
            subsections,
            landmarks,
            checkpoints,
        }
    }

    /// Render the floor as ASCII art (one character per metre): `L` marks
    /// landmarks, `c` checkpoints, `|` section boundaries. Used by the
    /// examples to visualize the Fig. 9(a)/6(a) layouts.
    pub fn ascii_art(&self) -> String {
        let w = self.bounds.width().ceil() as usize;
        let h = self.bounds.height().ceil() as usize;
        let mut grid = vec![vec![' '; w]; h];
        // Section boundaries (vertical edges interior to the floor).
        for (_, rect) in &self.sections {
            let x = rect.max.x;
            if x < self.bounds.max.x - 1e-9 {
                let col = (x as usize).min(w - 1);
                for row in grid.iter_mut() {
                    row[col] = '|';
                }
            }
        }
        let mut put = |p: Point, ch: char| {
            let col = (p.x.floor() as usize).min(w - 1);
            let row = (p.y.floor() as usize).min(h - 1);
            grid[h - 1 - row][col] = ch; // y grows north; rows print top-down
        };
        for c in &self.checkpoints {
            put(c.pos, 'c');
        }
        for l in &self.landmarks {
            put(l.pos, 'L');
        }
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(w));
        out.push_str("+\n");
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(w));
        out.push_str("+\n");
        out
    }

    /// The Fig. 6(a) feasibility layout: an open 50 m × 20 m area with three
    /// landmarks and a four-checkpoint walking path.
    pub fn walkway() -> FloorPlan {
        let bounds = Rect::new(0.0, 0.0, 50.0, 20.0);
        let landmarks = vec![
            Landmark {
                name: "L1".into(),
                pos: Point::new(5.0, 5.0),
            },
            Landmark {
                name: "L2".into(),
                pos: Point::new(25.0, 15.0),
            },
            Landmark {
                name: "L3".into(),
                pos: Point::new(45.0, 5.0),
            },
        ];
        let checkpoints = vec![
            Checkpoint {
                name: "C1".into(),
                pos: Point::new(5.0, 8.0),
            },
            Checkpoint {
                name: "C2".into(),
                pos: Point::new(18.0, 12.0),
            },
            Checkpoint {
                name: "C3".into(),
                pos: Point::new(32.0, 12.0),
            },
            Checkpoint {
                name: "C4".into(),
                pos: Point::new(45.0, 8.0),
            },
        ];
        FloorPlan {
            bounds,
            sections: vec![("walkway".into(), bounds)],
            subsections: vec![Subsection {
                name: "walkway".into(),
                rect: bounds,
                section: 0,
            }],
            landmarks,
            checkpoints,
        }
    }
}

/// A piecewise-linear walking path traversed at constant speed, used to
/// generate the Fig. 6(b,c) rxPower/SNR-vs-time traces.
#[derive(Debug, Clone)]
pub struct WalkPath {
    waypoints: Vec<Point>,
    /// Total traversal time in seconds.
    duration_s: f64,
    /// Cumulative arc length at each waypoint.
    cum_len: Vec<f64>,
}

impl WalkPath {
    /// Path through `waypoints`, walked over `duration_s` seconds.
    pub fn new(waypoints: Vec<Point>, duration_s: f64) -> WalkPath {
        assert!(waypoints.len() >= 2, "path needs at least two waypoints");
        assert!(duration_s > 0.0, "duration must be positive");
        let mut cum_len = vec![0.0];
        for w in waypoints.windows(2) {
            let d = w[0].distance(w[1]);
            cum_len.push(cum_len.last().expect("nonempty") + d);
        }
        WalkPath {
            waypoints,
            duration_s,
            cum_len,
        }
    }

    /// Total path length in metres.
    pub fn length(&self) -> f64 {
        *self.cum_len.last().expect("nonempty")
    }

    /// Total traversal time in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Position after walking for `t_s` seconds (clamped to the endpoints).
    pub fn position_at(&self, t_s: f64) -> Point {
        let frac = (t_s / self.duration_s).clamp(0.0, 1.0);
        let target = frac * self.length();
        for i in 1..self.cum_len.len() {
            if target <= self.cum_len[i] {
                let seg = self.cum_len[i] - self.cum_len[i - 1];
                let local = if seg == 0.0 {
                    0.0
                } else {
                    (target - self.cum_len[i - 1]) / seg
                };
                return self.waypoints[i - 1].lerp(self.waypoints[i], local);
            }
        }
        *self.waypoints.last().expect("nonempty")
    }

    /// The Fig. 6(a) walk: from landmark 1 past landmark 2 to landmark 3,
    /// traversed in 550 seconds.
    pub fn fig6_walk() -> WalkPath {
        WalkPath::new(
            vec![
                Point::new(5.0, 8.0),
                Point::new(18.0, 12.0),
                Point::new(25.0, 12.0),
                Point::new(32.0, 12.0),
                Point::new(45.0, 8.0),
            ],
            550.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retail_store_matches_paper_counts() {
        let f = FloorPlan::retail_store();
        assert_eq!(f.sections.len(), 5);
        assert_eq!(f.subsections.len(), 21);
        assert_eq!(f.landmarks.len(), 7);
        assert_eq!(f.checkpoints.len(), 24);
    }

    #[test]
    fn subsections_tile_the_floor() {
        let f = FloorPlan::retail_store();
        // Every interior point belongs to exactly one subsection and one
        // section.
        for i in 0..28 {
            for j in 0..15 {
                let p = Point::new(i as f64 + 0.5, j as f64 + 0.5);
                let subs: Vec<_> = f
                    .subsections
                    .iter()
                    .filter(|s| s.rect.contains(p))
                    .collect();
                assert_eq!(subs.len(), 1, "point {p:?}");
                assert!(f.section_at(p).is_some());
            }
        }
    }

    #[test]
    fn subsection_section_links_are_consistent() {
        let f = FloorPlan::retail_store();
        for s in &f.subsections {
            let section_rect = f.sections[s.section].1;
            assert!(section_rect.contains(s.rect.center()));
        }
        for si in 0..f.sections.len() {
            assert!(!f.subsections_of_section(si).is_empty());
        }
        let total: usize = (0..5).map(|si| f.subsections_of_section(si).len()).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn all_checkpoints_and_landmarks_inside_bounds() {
        for f in [FloorPlan::retail_store(), FloorPlan::walkway()] {
            for c in &f.checkpoints {
                assert!(f.bounds.contains(c.pos), "{}", c.name);
            }
            for l in &f.landmarks {
                assert!(f.bounds.contains(l.pos), "{}", l.name);
            }
        }
    }

    #[test]
    fn subsections_near_grows_with_radius() {
        let f = FloorPlan::retail_store();
        let p = Point::new(14.0, 7.5);
        let tight = f.subsections_near(p, 1.0);
        let wide = f.subsections_near(p, 6.0);
        let all = f.subsections_near(p, 100.0);
        assert!(!tight.is_empty());
        assert!(tight.len() < wide.len());
        assert_eq!(all.len(), 21);
        // The paper reports ACACIA pruning to 2–6 subsections with ~3 m
        // localization error.
        let typical = f.subsections_near(p, 3.0);
        assert!(
            (2..=6).contains(&typical.len()),
            "pruned to {} subsections",
            typical.len()
        );
    }

    #[test]
    fn landmark_lookup_by_name() {
        let f = FloorPlan::retail_store();
        assert!(f.landmark("L1").is_some());
        assert!(f.landmark("L8").is_none());
    }

    #[test]
    fn walk_path_interpolates_monotonically() {
        let w = WalkPath::fig6_walk();
        assert!(w.length() > 40.0);
        let start = w.position_at(0.0);
        let end = w.position_at(550.0);
        assert_eq!(start, Point::new(5.0, 8.0));
        assert_eq!(end, Point::new(45.0, 8.0));
        // x progresses monotonically along this particular path.
        let mut last_x = start.x;
        for t in (0..=550).step_by(10) {
            let p = w.position_at(t as f64);
            assert!(p.x >= last_x - 1e-9);
            last_x = p.x;
        }
        // Clamping beyond the end.
        assert_eq!(w.position_at(1000.0), end);
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn walk_path_needs_two_points() {
        let _ = WalkPath::new(vec![Point::new(0.0, 0.0)], 10.0);
    }

    #[test]
    fn ascii_art_shows_all_markers() {
        let f = FloorPlan::retail_store();
        let art = f.ascii_art();
        let landmarks = art.chars().filter(|&c| c == 'L').count();
        let checkpoints = art.chars().filter(|&c| c == 'c').count();
        assert_eq!(landmarks, 7, "{art}");
        // A couple of checkpoints share a cell with a landmark and are
        // overdrawn by the 'L'.
        assert!(checkpoints >= 20, "{checkpoints} checkpoints visible");
        assert!(art.contains('|'), "section boundaries rendered");
        // 28 columns + 2 border chars + newline per row; 15 rows + 2 borders.
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 17);
        assert!(lines.iter().all(|l| l.chars().count() == 30));
    }
}
