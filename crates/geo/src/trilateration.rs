//! Tri-lateration: estimating a position from ranges to known landmarks.
//!
//! ACACIA localizes a subscriber by converting LTE-direct rxPower readings
//! into distances (via [`FittedPathLoss`](crate::pathloss::FittedPathLoss))
//! and solving the classic range-intersection problem against landmark
//! coordinates (§5.5, citing Borenstein et al.'s mobile-robot positioning
//! survey). We solve the nonlinear least-squares formulation with a damped
//! Gauss-Newton iteration seeded by a closed-form linearized solution.

use crate::point::Point;

/// A single range observation: a landmark at a known position and the
/// estimated distance to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeMeasurement {
    /// Landmark position.
    pub landmark: Point,
    /// Estimated distance to the landmark, metres (non-negative).
    pub distance: f64,
}

impl RangeMeasurement {
    /// Construct a measurement.
    pub fn new(landmark: Point, distance: f64) -> RangeMeasurement {
        RangeMeasurement {
            landmark,
            distance: distance.max(0.0),
        }
    }
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrilaterationError {
    /// Fewer than three range measurements.
    TooFewMeasurements,
    /// The landmark geometry is (numerically) degenerate — e.g. all
    /// landmarks coincide.
    DegenerateGeometry,
}

impl std::fmt::Display for TrilaterationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrilaterationError::TooFewMeasurements => {
                write!(f, "tri-lateration needs at least three landmarks")
            }
            TrilaterationError::DegenerateGeometry => {
                write!(f, "landmark geometry is degenerate")
            }
        }
    }
}

impl std::error::Error for TrilaterationError {}

/// Result of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrilaterationSolution {
    /// Estimated position.
    pub position: Point,
    /// Root-mean-square range residual at the solution, metres. A large
    /// residual signals inconsistent (noisy) ranges.
    pub rms_residual: f64,
    /// Gauss-Newton iterations consumed.
    pub iterations: usize,
}

/// Solve for the position that best explains the range measurements, in the
/// least-squares sense.
pub fn trilaterate(
    measurements: &[RangeMeasurement],
) -> Result<TrilaterationSolution, TrilaterationError> {
    if measurements.len() < 3 {
        return Err(TrilaterationError::TooFewMeasurements);
    }
    // Degeneracy check: landmarks must span an area, not a single point.
    let spread = landmark_spread(measurements);
    if spread < 1e-6 {
        return Err(TrilaterationError::DegenerateGeometry);
    }

    let mut x = match linear_seed(measurements) {
        // Singular linearization (e.g. collinear landmarks): fall back to a
        // weighted centroid nudged off the landmark line — starting exactly
        // on a symmetry axis leaves the y-gradient identically zero.
        None => weighted_centroid(measurements).offset(0.11, 0.13),
        Some(seed) => seed,
    };
    if !x.x.is_finite() || !x.y.is_finite() {
        x = weighted_centroid(measurements).offset(0.11, 0.13);
    }

    // Damped Gauss-Newton (Levenberg style): minimize
    //   f(x) = Σ_i (||x - L_i|| - d_i)^2.
    let mut lambda = 1e-3;
    let mut cost = cost_at(measurements, x);
    let mut iterations = 0;
    for _ in 0..100 {
        iterations += 1;
        // Accumulate J^T J (2x2) and J^T r (2x1).
        let (mut a11, mut a12, mut a22) = (0.0f64, 0.0, 0.0);
        let (mut g1, mut g2) = (0.0f64, 0.0);
        for m in measurements {
            let dx = x.x - m.landmark.x;
            let dy = x.y - m.landmark.y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let r = dist - m.distance;
            let jx = dx / dist;
            let jy = dy / dist;
            a11 += jx * jx;
            a12 += jx * jy;
            a22 += jy * jy;
            g1 += jx * r;
            g2 += jy * r;
        }
        // Solve (A + λ·diag(A)) Δ = -g.
        let d11 = a11 * (1.0 + lambda);
        let d22 = a22 * (1.0 + lambda);
        let det = d11 * d22 - a12 * a12;
        if det.abs() < 1e-15 {
            lambda *= 10.0;
            if lambda > 1e8 {
                break;
            }
            continue;
        }
        let step_x = (-g1 * d22 + g2 * a12) / det;
        let step_y = (-g2 * d11 + g1 * a12) / det;
        let candidate = Point::new(x.x + step_x, x.y + step_y);
        let new_cost = cost_at(measurements, candidate);
        if new_cost < cost {
            x = candidate;
            let improvement = cost - new_cost;
            cost = new_cost;
            lambda = (lambda * 0.5).max(1e-12);
            if improvement < 1e-12 || (step_x * step_x + step_y * step_y) < 1e-16 {
                break;
            }
        } else {
            lambda *= 10.0;
            if lambda > 1e8 {
                break;
            }
        }
    }

    if !x.x.is_finite() || !x.y.is_finite() {
        return Err(TrilaterationError::DegenerateGeometry);
    }
    Ok(TrilaterationSolution {
        position: x,
        rms_residual: (cost / measurements.len() as f64).sqrt(),
        iterations,
    })
}

/// Closed-form linearized seed: subtracting the first range equation from
/// the rest turns circles into lines; solve the resulting overdetermined
/// linear system via 2x2 normal equations. Returns `None` when singular
/// (e.g. collinear landmarks).
fn linear_seed(measurements: &[RangeMeasurement]) -> Option<Point> {
    let first = measurements[0];
    let l1 = first.landmark;
    let k1 = l1.x * l1.x + l1.y * l1.y - first.distance * first.distance;
    let (mut a11, mut a12, mut a22) = (0.0f64, 0.0, 0.0);
    let (mut b1, mut b2) = (0.0f64, 0.0);
    for m in &measurements[1..] {
        let li = m.landmark;
        let ax = 2.0 * (li.x - l1.x);
        let ay = 2.0 * (li.y - l1.y);
        let ki = li.x * li.x + li.y * li.y - m.distance * m.distance;
        let b = ki - k1;
        a11 += ax * ax;
        a12 += ax * ay;
        a22 += ay * ay;
        b1 += ax * b;
        b2 += ay * b;
    }
    let det = a11 * a22 - a12 * a12;
    if det.abs() < 1e-9 {
        return None;
    }
    Some(Point::new(
        (b1 * a22 - b2 * a12) / det,
        (b2 * a11 - b1 * a12) / det,
    ))
}

/// Centroid of landmarks weighted by inverse distance — a robust fallback
/// seed when the linear system is singular.
fn weighted_centroid(measurements: &[RangeMeasurement]) -> Point {
    let mut wx = 0.0;
    let mut wy = 0.0;
    let mut wsum = 0.0;
    for m in measurements {
        let w = 1.0 / (m.distance + 0.5);
        wx += m.landmark.x * w;
        wy += m.landmark.y * w;
        wsum += w;
    }
    Point::new(wx / wsum, wy / wsum)
}

fn cost_at(measurements: &[RangeMeasurement], x: Point) -> f64 {
    measurements
        .iter()
        .map(|m| {
            let r = x.distance(m.landmark) - m.distance;
            r * r
        })
        .sum()
}

/// Maximum pairwise landmark separation (degeneracy metric).
fn landmark_spread(measurements: &[RangeMeasurement]) -> f64 {
    let mut max = 0.0f64;
    for (i, a) in measurements.iter().enumerate() {
        for b in &measurements[i + 1..] {
            max = max.max(a.landmark.distance(b.landmark));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges_from(truth: Point, landmarks: &[Point]) -> Vec<RangeMeasurement> {
        landmarks
            .iter()
            .map(|&l| RangeMeasurement::new(l, truth.distance(l)))
            .collect()
    }

    #[test]
    fn exact_ranges_recover_position() {
        let truth = Point::new(7.3, 4.1);
        let landmarks = [
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(10.0, 15.0),
        ];
        let sol = trilaterate(&ranges_from(truth, &landmarks)).unwrap();
        assert!(sol.position.distance(truth) < 1e-6, "{:?}", sol);
        assert!(sol.rms_residual < 1e-6);
    }

    #[test]
    fn more_landmarks_do_not_hurt_exact_case() {
        let truth = Point::new(13.0, 9.0);
        let landmarks = [
            Point::new(2.0, 2.5),
            Point::new(6.0, 12.5),
            Point::new(10.0, 7.5),
            Point::new(14.0, 2.5),
            Point::new(18.0, 12.5),
            Point::new(22.0, 7.5),
            Point::new(26.0, 2.5),
        ];
        let sol = trilaterate(&ranges_from(truth, &landmarks)).unwrap();
        assert!(sol.position.distance(truth) < 1e-6);
    }

    #[test]
    fn noisy_ranges_give_bounded_error() {
        let truth = Point::new(10.0, 5.0);
        let landmarks = [
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(10.0, 15.0),
            Point::new(0.0, 15.0),
        ];
        // +/- 1 m of alternating bias on the ranges.
        let ms: Vec<RangeMeasurement> = landmarks
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
                RangeMeasurement::new(l, (truth.distance(l) + noise).max(0.0))
            })
            .collect();
        let sol = trilaterate(&ms).unwrap();
        assert!(
            sol.position.distance(truth) < 2.5,
            "error {}",
            sol.position.distance(truth)
        );
        assert!(sol.rms_residual > 0.1, "noise must show up in residual");
    }

    #[test]
    fn too_few_measurements_rejected() {
        let ms = vec![
            RangeMeasurement::new(Point::new(0.0, 0.0), 5.0),
            RangeMeasurement::new(Point::new(10.0, 0.0), 5.0),
        ];
        assert_eq!(
            trilaterate(&ms).unwrap_err(),
            TrilaterationError::TooFewMeasurements
        );
    }

    #[test]
    fn coincident_landmarks_rejected() {
        let p = Point::new(5.0, 5.0);
        let ms = vec![
            RangeMeasurement::new(p, 3.0),
            RangeMeasurement::new(p, 4.0),
            RangeMeasurement::new(p, 5.0),
        ];
        assert_eq!(
            trilaterate(&ms).unwrap_err(),
            TrilaterationError::DegenerateGeometry
        );
    }

    #[test]
    fn collinear_landmarks_still_return_best_effort() {
        // Collinear geometry has a mirror ambiguity; the solver should still
        // converge to one of the two mirror solutions.
        let truth = Point::new(5.0, 3.0);
        let landmarks = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        let sol = trilaterate(&ranges_from(truth, &landmarks)).unwrap();
        let mirror = Point::new(truth.x, -truth.y);
        let err = sol
            .position
            .distance(truth)
            .min(sol.position.distance(mirror));
        assert!(err < 1e-3, "position {:?}", sol.position);
    }

    #[test]
    fn negative_distances_are_clamped() {
        let m = RangeMeasurement::new(Point::new(0.0, 0.0), -3.0);
        assert_eq!(m.distance, 0.0);
    }
}
