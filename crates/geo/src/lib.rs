//! # acacia-geo — geometry and localization for ACACIA
//!
//! Floor plans (sections / subsections / landmarks / checkpoints), the
//! rxPower→distance path-loss regression, and the tri-lateration solver that
//! turns LTE-direct readings into coarse indoor locations (paper §5.5).
//!
//! ```
//! use acacia_geo::prelude::*;
//!
//! // Fit the one-time calibration regression from (distance, rxPower)
//! // samples, then localize from three landmark readings.
//! let model = PathLossModel::indoor_default();
//! let samples: Vec<(f64, f64)> = [1.0, 2.0, 5.0, 10.0, 20.0]
//!     .iter().map(|&d| (d, model.rx_power_dbm(d))).collect();
//! let fit = FittedPathLoss::fit(&samples).unwrap();
//!
//! let truth = Point::new(8.0, 5.0);
//! let landmarks = [Point::new(0.0, 0.0), Point::new(20.0, 0.0), Point::new(10.0, 15.0)];
//! let ranges: Vec<RangeMeasurement> = landmarks.iter().map(|&l| {
//!     let rx = model.rx_power_dbm(truth.distance(l));
//!     RangeMeasurement::new(l, fit.predict_distance(rx))
//! }).collect();
//! let est = trilaterate(&ranges).unwrap();
//! assert!(est.position.distance(truth) < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod floor;
pub mod pathloss;
pub mod point;
pub mod trilateration;

pub use floor::{Checkpoint, FloorPlan, Landmark, Subsection, WalkPath};
pub use pathloss::{FitError, FittedPathLoss, PathLossModel};
pub use point::{Point, Rect};
pub use trilateration::{trilaterate, RangeMeasurement, TrilaterationError, TrilaterationSolution};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::floor::{Checkpoint, FloorPlan, Landmark, Subsection, WalkPath};
    pub use crate::pathloss::{FittedPathLoss, PathLossModel};
    pub use crate::point::{Point, Rect};
    pub use crate::trilateration::{trilaterate, RangeMeasurement, TrilaterationSolution};
}
