//! 2-D points and rectangles in metres.

use serde::{Deserialize, Serialize};

/// A point on the floor plan, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// East-west coordinate, metres.
    pub x: f64,
    /// North-south coordinate, metres.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: `self` at t=0, `other` at t=1.
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Component-wise addition.
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, inclusive of its lower bound and exclusive of
/// its upper bound (so adjacent rectangles tile without overlap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Build from corner coordinates; normalizes orientation.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect {
            min: Point::new(x0.min(x1), y0.min(y1)),
            max: Point::new(x0.max(x1), y0.max(y1)),
        }
    }

    /// Half-open containment test.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// Geometric centre.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Shortest distance from `p` to the rectangle (0 when inside).
    pub fn distance_to(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
        assert_eq!(Point::new(1.0, 1.0).distance(Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -2.0));
    }

    #[test]
    fn rect_normalizes_and_contains_half_open() {
        let r = Rect::new(10.0, 10.0, 0.0, 0.0);
        assert_eq!(r.min, Point::new(0.0, 0.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(9.999, 9.999)));
        assert!(!r.contains(Point::new(10.0, 5.0)));
        assert_eq!(r.center(), Point::new(5.0, 5.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 10.0);
    }

    #[test]
    fn rect_distance_to_point() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.distance_to(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.distance_to(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(r.distance_to(Point::new(5.0, 6.0)), 5.0);
    }
}
