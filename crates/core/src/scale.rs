//! Multi-UE scale-out scenario: N independent AR sessions crossing the
//! same two-cell MEC topology.
//!
//! The paper evaluates ACACIA per-session; this scenario asks how the
//! *infrastructure* behaves as sessions multiply: N UEs attach, perform
//! the MRS connectivity handshake (each getting a dedicated bearer to the
//! shared MEC server), and walk staggered there-and-back trajectories
//! that hand each of them over twice. The interesting outputs are the
//! control-plane signalling volume (X2 / S1AP / GTP-C message counts grow
//! with the handover count, not the data volume) and the simulation
//! engine's event throughput, which the `figures scale` benchmark tracks
//! as UEs scale from 1 to 128.
//!
//! The per-UE frame interval has a floor of `N × per_frame_budget` so the
//! *aggregate* offered load at the serial MEC server stays below its
//! capacity — scale-out of sessions, not of one server's compute. Without
//! this the server's queue grows without bound at high N and every
//! session wedges behind it, which is a compute-sizing story, not a
//! mobility one.

use crate::arclient::{ArFrontend, ArFrontendConfig};
use crate::arserver::{ArServer, ArServerConfig};
use crate::locmgr::{LocalizationManager, LocalizationMetadata};
use crate::mrs::{port as mrs_port, Mrs, ServerInstance};
use crate::msg::APP_PORT;
use crate::scenario::SERVICE;
use crate::search::SearchStrategy;
use acacia_geo::floor::FloorPlan;
use acacia_geo::Point;
use acacia_lte::enb::Enb;
use acacia_lte::entities::{pcrf_port, GwControl};
use acacia_lte::mobility::Waypoint;
use acacia_lte::network::{CellConfig, LteConfig, LteNetwork};
use acacia_lte::ue::{AppSelector, Ue};
use acacia_lte::wire::Protocol;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::{Duration, Instant};
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;

/// Scale-out scenario parameters.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of UEs running concurrent AR sessions.
    pub ue_count: usize,
    /// Master seed.
    pub seed: u64,
    /// Frames each session captures.
    pub frame_count: u64,
    /// Per-UE pacing between captures, sized so a session spans the walk
    /// (and therefore its handovers). See [`ScaleConfig::frame_interval`].
    pub base_frame_interval: Duration,
    /// Serial-server time budget one frame may consume: the effective
    /// interval never drops below `ue_count × per_frame_budget`, keeping
    /// the aggregate frame rate below the shared server's capacity at
    /// any scale.
    pub per_frame_budget: Duration,
    /// Walk speed, m/s.
    pub speed_mps: f64,
    /// Start offset between consecutive UEs. Sized to one
    /// [`frame_interval`](ScaleConfig::frame_interval) spread across the
    /// whole population, so frame captures interleave into a steady
    /// arrival stream at the serial server — bursty arrivals queue past
    /// the client's stall timeout and trigger a re-upload storm.
    pub stagger: Duration,
    /// Objects per subsection in the database.
    pub db_per_subsection: usize,
    /// Matching execution cap.
    pub exec_cap: usize,
    /// Shared-core link rate (S-GW ↔ P-GW ↔ Internet), bits/s. The
    /// default matches [`LteConfig::default`]; the loaded scenario lowers
    /// it to put background traffic through and above capacity.
    pub core_rate_bps: u64,
    /// Shared-core queue bound, bytes.
    pub core_queue_bytes: u64,
}

impl ScaleConfig {
    /// The benchmark configuration for a given UE count.
    pub fn figure(ue_count: usize) -> ScaleConfig {
        let mut cfg = ScaleConfig {
            ue_count,
            seed: 42,
            frame_count: 8,
            base_frame_interval: Duration::from_millis(2_500),
            // Measured serial-server occupancy per frame is ~220 ms
            // (decode + detect + match at exec_cap 24, one object per
            // subsection); 300 ms caps utilization near 73% at any N.
            per_frame_budget: Duration::from_millis(300),
            speed_mps: 4.0,
            stagger: Duration::from_nanos(0),
            db_per_subsection: 1,
            exec_cap: 24,
            core_rate_bps: 1_000_000_000,
            core_queue_bytes: 4 * 1024 * 1024,
        };
        // Captures land `interval / N` apart — a uniform ring, never a
        // burst, so the server queue stays bounded by its utilization.
        cfg.stagger = Duration::from_nanos(cfg.frame_interval().nanos() / ue_count as u64);
        cfg
    }

    /// Smaller/faster variant for tests.
    pub fn smoke(ue_count: usize) -> ScaleConfig {
        ScaleConfig {
            frame_count: 4,
            speed_mps: 6.0,
            ..ScaleConfig::figure(ue_count)
        }
    }

    /// The effective per-UE frame interval: the base interval, raised to
    /// `ue_count × per_frame_budget` once the UE count is large enough
    /// that the base pacing would oversubscribe the serial server.
    pub fn frame_interval(&self) -> Duration {
        let floor = Duration::from_nanos(self.per_frame_budget.nanos() * self.ue_count as u64);
        self.base_frame_interval.max(floor)
    }
}

/// Per-UE outcome of a scale-out run.
#[derive(Debug, Clone)]
pub struct ScaleUeReport {
    /// Frames that completed end-to-end.
    pub frames_done: u64,
    /// Serving-cell switches completed.
    pub handovers: u64,
    /// Client-side retransmissions.
    pub retransmissions: u64,
}

/// Results of a scale-out run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// UEs that ran.
    pub ue_count: usize,
    /// Frames each session was asked to complete.
    pub frames_requested: u64,
    /// Per-UE outcomes, in UE-index order.
    pub ues: Vec<ScaleUeReport>,
    /// X2AP messages on the wire (handover signalling).
    pub x2_msgs: u64,
    /// S1AP messages on the wire (path switches, attach, paging).
    pub s1ap_msgs: u64,
    /// GTPv2-C messages on the wire (bearer management).
    pub gtpc_msgs: u64,
    /// Total core-network signalling bytes (excludes radio RRC).
    pub core_signalling_bytes: u64,
    /// Dedicated bearers relocated onto a new cell's local gateway.
    pub dedicated_reanchored: u64,
    /// Downlink packets forwarded over X2 during handover execution.
    pub x2_forwarded: u64,
    /// Engine events dispatched over the whole run.
    pub events_processed: u64,
    /// Simulated time the run covered.
    pub sim_elapsed: Duration,
}

impl ScaleReport {
    /// Sessions that did not complete every requested frame.
    pub fn wedged(&self) -> usize {
        self.ues
            .iter()
            .filter(|u| u.frames_done < self.frames_requested)
            .count()
    }

    /// Total handovers across every UE.
    pub fn total_handovers(&self) -> u64 {
        self.ues.iter().map(|u| u.handovers).sum()
    }
}

/// Same geometry as the mobility scenario: two cells 40 m apart, walks
/// between 2 m and 38 m cross the A3 boundary once in each direction.
const CELL_SPACING_M: f64 = 40.0;
const WALK_NEAR_M: f64 = 2.0;
const WALK_FAR_M: f64 = 38.0;
/// One-way walk length, shared with the loaded scenario's probe sizing.
pub(crate) const WALK_SPAN_M: f64 = WALK_FAR_M - WALK_NEAR_M;

/// Timing anchors of a scheduled run, in simulated time.
#[derive(Debug, Clone, Copy)]
pub struct ScaleTimeline {
    /// When [`ScaleScenario::schedule`] was called.
    pub start: Instant,
    /// Total stagger span: the last UE's session kicks off at
    /// `start + stagger_total` (and its MRS handshake completes shortly
    /// after). Load injected later than this can no longer starve a
    /// bearer setup.
    pub stagger_total: Duration,
    /// When the last UE finishes its walk.
    pub walk_end: Instant,
    /// Hard stop for [`ScaleScenario::await_sessions`].
    pub deadline: Instant,
}

/// A built scale-out scenario.
pub struct ScaleScenario {
    /// The network (owns the simulator).
    pub net: LteNetwork,
    /// Client nodes, in UE-index order.
    pub clients: Vec<NodeId>,
    /// The shared MEC server node.
    pub server: NodeId,
    cfg: ScaleConfig,
}

impl ScaleScenario {
    /// Build the scenario: N UEs attached, MRS wired, clients connected.
    pub fn build(cfg: ScaleConfig) -> ScaleScenario {
        assert!(cfg.ue_count >= 1, "scale-out needs at least one UE");
        let mut net = LteNetwork::new(LteConfig {
            seed: cfg.seed,
            ue_count: cfg.ue_count,
            core_rate_bps: cfg.core_rate_bps,
            core_queue_bytes: cfg.core_queue_bytes,
            cells: vec![
                CellConfig {
                    pos: Point::new(0.0, 0.0),
                    mec: true,
                    region: 0,
                },
                CellConfig {
                    pos: Point::new(CELL_SPACING_M, 0.0),
                    mec: true,
                    region: 1,
                },
            ],
            // Safety net: a UE that loses its path switch can still reach
            // the MEC server over the default bearer + core detour.
            core_detour: true,
            ..LteConfig::default()
        });

        let floor = FloorPlan::retail_store();
        let db = ObjectDb::retail_cached(cfg.db_per_subsection, cfg.seed);
        let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(
            &floor,
            &acacia_d2d::technology::ProximityTech::LteDirect.pathloss(),
        ));
        let server_addr = acacia_lte::network::addr::MEC_BASE;
        let (server, assigned) = net.add_mec_server(Box::new(ArServer::new(
            ArServerConfig {
                device: Device::I7Octa,
                strategy: SearchStrategy::Naive,
                exec_cap: cfg.exec_cap,
                ..ArServerConfig::new(server_addr)
            },
            db.clone(),
            floor,
            locmgr,
        )));
        assert_eq!(assigned, server_addr);

        let mrs_addr = acacia_lte::network::addr::CLOUD_BASE;
        let mut mrs_node = Mrs::new(mrs_addr);
        mrs_node.register_service(
            SERVICE,
            ServerInstance {
                addr: server_addr,
                distance: 1.0,
            },
        );
        let (mrs, assigned) = net.add_cloud_server(
            Box::new(mrs_node),
            LinkConfig::delay_only(Duration::from_micros(800)),
        );
        assert_eq!(assigned, mrs_addr);
        net.sim.connect(
            (mrs, mrs_port::RX),
            (net.pcrf, pcrf_port::AF),
            LinkConfig::delay_only(Duration::from_micros(500)),
        );

        // Every user photographs the same subsection; the vision work is
        // identical across UEs, keeping the benchmark's host time in the
        // network and engine rather than the feature pipeline.
        let scene_ids: Vec<u64> = db.in_subsections(&[0]).iter().map(|o| o.id).collect();
        let frame_interval = cfg.frame_interval();

        let mut clients = Vec::with_capacity(cfg.ue_count);
        for i in 0..cfg.ue_count {
            let ue_ip = net.attach(i);
            let client_cfg = ArFrontendConfig {
                ue_ip,
                server: server_addr,
                mrs: Some((mrs_addr, SERVICE.to_string())),
                frame_count: cfg.frame_count,
                min_frame_interval: Some(frame_interval),
                scene_ids: scene_ids.clone(),
                ..ArFrontendConfig::new(ue_ip, server_addr)
            };
            let client = net.connect_ue_app(
                i,
                Box::new(ArFrontend::new(client_cfg)),
                AppSelector::port(APP_PORT),
            );
            clients.push(client);
        }

        ScaleScenario {
            net,
            clients,
            server,
            cfg,
        }
    }

    /// Schedule every session kickoff and walk, returning the run's
    /// timing anchors. Composable: the loaded scenario schedules its
    /// background load and probes against the same timeline before
    /// letting the sessions run.
    pub fn schedule(&mut self) -> ScaleTimeline {
        let start = self.net.sim.now();
        let walk_s = 2.0 * (WALK_FAR_M - WALK_NEAR_M) / self.cfg.speed_mps;
        for (i, &client) in self.clients.iter().enumerate() {
            let offset = Duration::from_nanos(self.cfg.stagger.nanos() * i as u64);
            self.net
                .sim
                .schedule_timer(client, start + offset, ArFrontend::KICKOFF);
            // The walk begins with the UE's stagger dwell at the near end,
            // so handovers spread out the same way the sessions do.
            self.net.start_mobility(
                i,
                vec![
                    Waypoint::dwelling(Point::new(WALK_NEAR_M, 0.0), offset),
                    Waypoint::passing(Point::new(WALK_FAR_M, 0.0)),
                    Waypoint::passing(Point::new(WALK_NEAR_M, 0.0)),
                ],
                self.cfg.speed_mps,
            );
        }

        // Deadline: every stagger has elapsed, every walk has finished,
        // every session has had twice its paced duration plus slack for
        // the server queue and recovery timers.
        let stagger_total =
            Duration::from_nanos(self.cfg.stagger.nanos() * self.cfg.ue_count as u64);
        let session =
            Duration::from_nanos(self.cfg.frame_interval().nanos() * self.cfg.frame_count.max(1));
        let walk_end = start + stagger_total + Duration::from_secs_f64(walk_s);
        let deadline =
            walk_end + Duration::from_nanos(session.nanos() * 2) + Duration::from_secs(30);
        ScaleTimeline {
            start,
            stagger_total,
            walk_end,
            deadline,
        }
    }

    /// Run until every session completes (or the timeline's deadline),
    /// then drain in-flight traffic so counters settle.
    pub fn await_sessions(&mut self, timeline: &ScaleTimeline) {
        while self.net.sim.now() < timeline.deadline {
            let t = self.net.sim.now() + Duration::from_millis(200);
            self.net.sim.run_until(t);
            // Sessions may finish before the last UE crosses back; keep
            // the network running until the walks (and their trailing
            // handovers) are over so the signalling counts are complete.
            if self.net.sim.now() < timeline.walk_end {
                continue;
            }
            let all_done = self
                .clients
                .iter()
                .all(|&c| self.net.sim.node_ref::<ArFrontend>(c).done());
            if all_done {
                break;
            }
        }
        // Drain in-flight traffic so counters settle.
        let drain = self.net.sim.now() + Duration::from_millis(500);
        self.net.sim.run_until(drain);
    }

    /// Collect the report for a run that began at `timeline.start`.
    pub fn collect(&self, timeline: &ScaleTimeline) -> ScaleReport {
        let mut ues = Vec::with_capacity(self.cfg.ue_count);
        for (i, &client) in self.clients.iter().enumerate() {
            let c = self.net.sim.node_ref::<ArFrontend>(client);
            let ue = self.net.sim.node_ref::<Ue>(self.net.ues[i]);
            ues.push(ScaleUeReport {
                frames_done: c.frames.len() as u64,
                handovers: ue.handovers,
                retransmissions: c.retransmissions,
            });
        }
        let mut x2_forwarded = 0;
        for &enb in &self.net.enbs {
            x2_forwarded += self.net.sim.node_ref::<Enb>(enb).x2_forwarded;
        }
        let gwc = self.net.sim.node_ref::<GwControl>(self.net.gwc);
        ScaleReport {
            ue_count: self.cfg.ue_count,
            frames_requested: self.cfg.frame_count,
            ues,
            x2_msgs: self.net.log.count(Protocol::X2Sctp),
            s1ap_msgs: self.net.log.count(Protocol::S1apSctp),
            gtpc_msgs: self.net.log.count(Protocol::Gtpv2),
            core_signalling_bytes: self.net.log.core_bytes(),
            dedicated_reanchored: gwc.dedicated_reanchored,
            x2_forwarded,
            events_processed: self.net.sim.events_processed(),
            sim_elapsed: self.net.sim.now() - timeline.start,
        }
    }

    /// Run every session to completion (or a generous deadline) and
    /// collect the report.
    pub fn run(mut self) -> ScaleReport {
        let timeline = self.schedule();
        self.await_sessions(&timeline);
        self.collect(&timeline)
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ScaleConfig>();
    assert_send::<ScaleReport>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ues_complete_and_hand_over() {
        let report = ScaleScenario::build(ScaleConfig::smoke(2)).run();
        assert_eq!(report.ue_count, 2);
        assert_eq!(report.wedged(), 0, "every session completes");
        assert!(
            report.ues.iter().all(|u| u.handovers >= 2),
            "each UE crosses the boundary twice: {:?}",
            report.ues
        );
        assert!(report.x2_msgs > 0, "handovers produce X2 signalling");
        assert!(report.events_processed > 0);
    }

    #[test]
    fn signalling_grows_with_ue_count() {
        let one = ScaleScenario::build(ScaleConfig::smoke(1)).run();
        let four = ScaleScenario::build(ScaleConfig::smoke(4)).run();
        assert_eq!(one.wedged(), 0);
        assert_eq!(four.wedged(), 0);
        assert!(
            four.x2_msgs > one.x2_msgs,
            "more UEs, more handover signalling: {} vs {}",
            four.x2_msgs,
            one.x2_msgs
        );
        assert!(four.total_handovers() > one.total_handovers());
    }

    #[test]
    fn interval_floor_scales_with_ue_count() {
        let small = ScaleConfig::figure(8);
        let big = ScaleConfig::figure(128);
        assert_eq!(small.frame_interval(), small.base_frame_interval);
        assert_eq!(
            big.frame_interval().nanos(),
            big.per_frame_budget.nanos() * 128
        );
        assert!(big.frame_interval() > big.base_frame_interval);
    }
}
