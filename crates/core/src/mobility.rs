//! The mobility scenario: an AR session that survives X2 handovers.
//!
//! The paper's deployment is a MEC-equipped small cell coexisting with a
//! commercial macrocell (§6, §8): users walk in and out of MEC coverage
//! mid-session. This scenario walks a UE from the small cell to a far
//! cell and back while the AR session runs, exercising three variants:
//!
//! * **ACACIA-reanchor** — both cells are MEC-equipped; the dedicated
//!   bearer is re-anchored onto the target cell's local gateway at every
//!   handover (Path Switch → Bearer Relocation at the GW-C).
//! * **Default-fallback** — the far cell has no MEC path; the dedicated
//!   bearer is torn down at handover and traffic falls back to the
//!   default bearer, reaching the MEC server through the core detour.
//!   The device manager re-creates the bearer when the UE walks back.
//! * **Cloud** — conventional EPC baseline: the server is remote and
//!   handovers only move the default bearer.
//!
//! The device-manager leg of the story runs here too: the driver watches
//! the serving cell and feeds changes to [`DeviceManager::on_cell_change`],
//! whose `Create` actions trigger the client's idempotent mid-stream MRS
//! re-anchor handshake.

use crate::arclient::{ArFrontend, ArFrontendConfig, FrameStats};
use crate::arserver::{ArServer, ArServerConfig};
use crate::device_manager::{ConnectivityAction, DeviceManager, ServiceInfo};
use crate::locmgr::{LocalizationManager, LocalizationMetadata};
use crate::mrs::{port as mrs_port, Mrs, ServerInstance};
use crate::msg::APP_PORT;
use crate::scenario::SERVICE;
use crate::search::SearchStrategy;
use acacia_d2d::modem::Modem;
use acacia_geo::floor::FloorPlan;
use acacia_geo::Point;
use acacia_lte::enb::Enb;
use acacia_lte::entities::{pcrf_port, GwControl};
use acacia_lte::mobility::Waypoint;
use acacia_lte::network::{CellConfig, LteConfig, LteNetwork};
use acacia_lte::ue::{AppSelector, Ue};
use acacia_simnet::cloud::Ec2Region;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::proto;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::Duration;
use acacia_simnet::transport::PingAgent;
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;
use std::net::Ipv4Addr;

/// Which mobility variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobilityMode {
    /// Both cells MEC-equipped: the dedicated bearer follows the UE.
    Reanchor,
    /// Far cell without MEC: fall back to the default bearer + core
    /// detour, re-create the bearer on return.
    Fallback,
    /// Remote server over the default bearer (conventional EPC).
    Cloud,
}

impl MobilityMode {
    /// All variants, in presentation order.
    pub const ALL: [MobilityMode; 3] = [
        MobilityMode::Reanchor,
        MobilityMode::Fallback,
        MobilityMode::Cloud,
    ];

    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            MobilityMode::Reanchor => "ACACIA-reanchor",
            MobilityMode::Fallback => "default-fallback",
            MobilityMode::Cloud => "CLOUD",
        }
    }
}

/// Mobility scenario parameters.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Variant under test.
    pub mode: MobilityMode,
    /// Master seed.
    pub seed: u64,
    /// Frames the AR session captures.
    pub frame_count: u64,
    /// Pacing between captures (keeps the session spanning the walk).
    pub frame_interval: Duration,
    /// Walk speed, m/s.
    pub speed_mps: f64,
    /// Dwell at the far end before walking back.
    pub far_dwell: Duration,
    /// Objects per subsection in the database.
    pub db_per_subsection: usize,
    /// Matching execution cap.
    pub exec_cap: usize,
    /// Cloud region (CLOUD mode's server placement).
    pub region: Ec2Region,
    /// Install the Internet-exchange ↔ local GW-U core-detour link even
    /// when the mode would not normally need it. The chaos scenario sets
    /// this so a Reanchor session that loses its path switch can still
    /// reach the MEC server over the default bearer.
    pub force_core_detour: bool,
}

impl MobilityConfig {
    /// The figure configuration: a ~27 s there-and-back walk under a
    /// paced AR session long enough to cover both handovers.
    pub fn figure(mode: MobilityMode) -> MobilityConfig {
        MobilityConfig {
            mode,
            seed: 42,
            frame_count: 45,
            frame_interval: Duration::from_millis(600),
            speed_mps: 3.0,
            far_dwell: Duration::from_secs(3),
            db_per_subsection: 1,
            exec_cap: 24,
            region: Ec2Region::California,
            force_core_detour: false,
        }
    }

    /// Smaller/faster variant for tests.
    pub fn smoke(mode: MobilityMode) -> MobilityConfig {
        MobilityConfig {
            frame_count: 12,
            frame_interval: Duration::from_millis(1_200),
            speed_mps: 5.0,
            far_dwell: Duration::from_secs(1),
            ..MobilityConfig::figure(mode)
        }
    }
}

/// Results of a mobility session.
#[derive(Debug, Clone)]
pub struct MobilityReport {
    /// Variant that produced it.
    pub mode: MobilityMode,
    /// Per-frame stats (latency CDF material).
    pub frames: Vec<FrameStats>,
    /// Frames the session was asked to complete.
    pub frames_requested: u64,
    /// Serving-cell switches the UE completed.
    pub handovers: u64,
    /// Per-handover service interruption, milliseconds.
    pub interruptions_ms: Vec<f64>,
    /// Downlink packets forwarded over X2 during handover execution.
    pub x2_forwarded: u64,
    /// User packets lost to mobility (stale-cell deliveries + missing
    /// bearer state at an eNB).
    pub lost: u64,
    /// Client-side retransmissions (selective-repeat recoveries).
    pub retransmissions: u64,
    /// Liveness probes (sent, lost): a 25 ms ICMP stream to the AR server
    /// that meters the data path at finer grain than the paced frames.
    pub probes: (u64, u64),
    /// Mid-stream MRS re-anchor handshakes (requests, acks).
    pub reanchors: (u64, u64),
    /// Dedicated bearers relocated to a new cell's local gateway.
    pub dedicated_reanchored: u64,
    /// Dedicated bearers released at handover (fallback path).
    pub dedicated_released: u64,
    /// Engine events dispatched over the whole run (throughput metering;
    /// deterministic for a fixed config and seed).
    pub events_processed: u64,
}

impl MobilityReport {
    /// Did every requested frame complete (zero application failures)?
    pub fn session_complete(&self) -> bool {
        self.frames.len() as u64 == self.frames_requested
    }

    /// Mean end-to-end frame latency, seconds.
    pub fn mean_total_s(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(FrameStats::total_s).sum::<f64>() / self.frames.len() as f64
    }
}

/// Two cells 40 m apart; the UE walks from 2 m to 38 m and back. With
/// the indoor path-loss default and 3 dB hysteresis the A3 crossover
/// sits near 22 m outbound (and symmetrically near 18 m inbound).
const CELL_SPACING_M: f64 = 40.0;
const WALK_NEAR_M: f64 = 2.0;
const WALK_FAR_M: f64 = 38.0;

/// A built mobility scenario.
pub struct MobilityScenario {
    /// The network (owns the simulator).
    pub net: LteNetwork,
    /// Client node.
    pub client: NodeId,
    /// Server node.
    pub server: NodeId,
    /// Liveness-probe node.
    pub probe: NodeId,
    pub(crate) cfg: MobilityConfig,
    pub(crate) dm: DeviceManager,
}

impl MobilityScenario {
    /// Build the scenario.
    pub fn build(cfg: MobilityConfig) -> MobilityScenario {
        let far_mec = cfg.mode == MobilityMode::Reanchor;
        let mut net = LteNetwork::new(LteConfig {
            seed: cfg.seed,
            cells: vec![
                CellConfig {
                    pos: Point::new(0.0, 0.0),
                    mec: true,
                    region: 0,
                },
                CellConfig {
                    pos: Point::new(CELL_SPACING_M, 0.0),
                    mec: far_mec,
                    region: 1,
                },
            ],
            core_detour: cfg.mode == MobilityMode::Fallback || cfg.force_core_detour,
            ..LteConfig::default()
        });

        let floor = FloorPlan::retail_store();
        let db = ObjectDb::retail_cached(cfg.db_per_subsection, cfg.seed);
        let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(
            &floor,
            &acacia_d2d::technology::ProximityTech::LteDirect.pathloss(),
        ));
        let make_server = |addr: Ipv4Addr| {
            ArServer::new(
                ArServerConfig {
                    device: Device::I7Octa,
                    strategy: SearchStrategy::Naive,
                    exec_cap: cfg.exec_cap,
                    ..ArServerConfig::new(addr)
                },
                db.clone(),
                floor.clone(),
                locmgr.clone(),
            )
        };

        let (server, server_addr, uses_mrs) = match cfg.mode {
            MobilityMode::Cloud => {
                let addr = acacia_lte::network::addr::CLOUD_BASE;
                let (server, assigned) =
                    net.add_cloud_server(Box::new(make_server(addr)), cfg.region.link_config());
                assert_eq!(assigned, addr);
                (server, addr, false)
            }
            MobilityMode::Reanchor | MobilityMode::Fallback => {
                let addr = acacia_lte::network::addr::MEC_BASE;
                let (server, assigned) = net.add_mec_server(Box::new(make_server(addr)));
                assert_eq!(assigned, addr);
                let mrs_addr = acacia_lte::network::addr::CLOUD_BASE;
                let mut mrs_node = Mrs::new(mrs_addr);
                mrs_node.register_service(
                    SERVICE,
                    ServerInstance {
                        addr,
                        distance: 1.0,
                    },
                );
                let (mrs, assigned) = net.add_cloud_server(
                    Box::new(mrs_node),
                    LinkConfig::delay_only(Duration::from_micros(800)),
                );
                assert_eq!(assigned, mrs_addr);
                net.sim.connect(
                    (mrs, mrs_port::RX),
                    (net.pcrf, pcrf_port::AF),
                    LinkConfig::delay_only(Duration::from_micros(500)),
                );
                (server, addr, true)
            }
        };

        let ue_ip = net.attach(0);

        // The user photographs objects from one subsection; which one is
        // immaterial to the mobility story.
        let scene_ids: Vec<u64> = db.in_subsections(&[0]).iter().map(|o| o.id).collect();

        let client_cfg = ArFrontendConfig {
            ue_ip,
            server: server_addr,
            mrs: uses_mrs.then(|| (acacia_lte::network::addr::CLOUD_BASE, SERVICE.to_string())),
            frame_count: cfg.frame_count,
            min_frame_interval: Some(cfg.frame_interval),
            scene_ids,
            ..ArFrontendConfig::new(ue_ip, server_addr)
        };
        let client = net.connect_ue_app(
            0,
            Box::new(ArFrontend::new(client_cfg)),
            AppSelector::port(APP_PORT),
        );

        // The liveness probe: one echo every 25 ms for the whole session,
        // answered by the AR server, riding whatever bearer the TFT puts
        // AR-server traffic on. Its loss count meters the handover gaps.
        let walk_s = 2.0 * (WALK_FAR_M - WALK_NEAR_M) / cfg.speed_mps;
        let probe_interval = Duration::from_millis(25);
        let probe_count = (Duration::from_secs_f64(walk_s) + cfg.far_dwell).millis() / 25;
        let probe = net.connect_ue_app(
            0,
            Box::new(PingAgent::new(
                ue_ip,
                server_addr,
                probe_interval,
                probe_count,
            )),
            AppSelector::protocol(proto::ICMP),
        );

        // The device manager's connectivity ledger: the CI app opted in
        // at launch, so serving-cell changes drive (re-)creates.
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: SERVICE.to_string(),
                interests: vec![],
            },
        );
        if uses_mrs {
            let _ = dm.on_app_launch(app);
            dm.on_mrs_ack(SERVICE, true);
        }

        MobilityScenario {
            net,
            client,
            server,
            probe,
            cfg,
            dm,
        }
    }

    /// Run the session: start the AR client and the walk together, watch
    /// the serving cell, and feed changes through the device manager.
    pub fn run(self) -> MobilityReport {
        self.run_detailed().0
    }

    /// [`run`](MobilityScenario::run), but hand the network back too so a
    /// caller can inspect post-run element state (recovery counters, link
    /// statistics, wedged-procedure checks).
    pub(crate) fn run_detailed(mut self) -> (MobilityReport, LteNetwork) {
        let start = self.net.sim.now();
        self.net
            .sim
            .schedule_timer(self.client, start, ArFrontend::KICKOFF);
        self.net
            .sim
            .schedule_timer(self.probe, start, PingAgent::KICKOFF);
        self.net.start_mobility(
            0,
            vec![
                Waypoint::passing(Point::new(WALK_NEAR_M, 0.0)),
                Waypoint::dwelling(Point::new(WALK_FAR_M, 0.0), self.cfg.far_dwell),
                Waypoint::passing(Point::new(WALK_NEAR_M, 0.0)),
            ],
            self.cfg.speed_mps,
        );

        let walk_s = 2.0 * (WALK_FAR_M - WALK_NEAR_M) / self.cfg.speed_mps;
        let deadline = start
            + Duration::from_secs_f64(walk_s)
            + self.cfg.far_dwell
            + Duration::from_secs(10 + 2 * self.cfg.frame_count);
        let mut serving = self.net.serving_cell(0);
        while self.net.sim.now() < deadline {
            let t = self.net.sim.now() + Duration::from_millis(100);
            self.net.sim.run_until(t);
            let now_serving = self.net.serving_cell(0);
            if now_serving != serving {
                serving = now_serving;
                // The device-manager leg: a cell change either re-creates
                // MEC connectivity (idempotent when the network already
                // re-anchored) or records the fallback to default.
                let cell_is_mec = self.net.cfg.cells[serving].mec;
                for action in self.dm.on_cell_change(cell_is_mec) {
                    if matches!(action, ConnectivityAction::Create { .. }) {
                        let now = self.net.sim.now();
                        self.net
                            .sim
                            .schedule_timer(self.client, now, ArFrontend::REANCHOR);
                    }
                }
            }
            if self.net.sim.node_ref::<ArFrontend>(self.client).done() {
                break;
            }
        }
        // Grace period: let in-flight probe echoes land so the loss count
        // reflects the handover gaps, not the cut-off.
        let drain = self.net.sim.now() + Duration::from_millis(500);
        self.net.sim.run_until(drain);

        let client = self.net.sim.node_ref::<ArFrontend>(self.client);
        let probe = self.net.sim.node_ref::<PingAgent>(self.probe);
        let ue = self.net.sim.node_ref::<Ue>(self.net.ues[0]);
        let gwc = self.net.sim.node_ref::<GwControl>(self.net.gwc);
        let (mut x2_forwarded, mut no_bearer) = (0, 0);
        for &enb in &self.net.enbs {
            let e = self.net.sim.node_ref::<Enb>(enb);
            x2_forwarded += e.x2_forwarded;
            no_bearer += e.no_bearer;
        }
        let report = MobilityReport {
            mode: self.cfg.mode,
            frames: client.frames.clone(),
            frames_requested: self.cfg.frame_count,
            handovers: ue.handovers,
            interruptions_ms: ue
                .interruption_log
                .iter()
                .map(|&(_, gap)| gap.secs_f64() * 1e3)
                .collect(),
            x2_forwarded,
            lost: ue.dl_stale + no_bearer,
            retransmissions: client.retransmissions,
            probes: (probe.sent(), probe.lost()),
            reanchors: (client.reanchor_requests, client.reanchor_acks),
            dedicated_reanchored: gwc.dedicated_reanchored,
            dedicated_released: gwc.dedicated_released,
            events_processed: self.net.sim.events_processed(),
        };
        (report, self.net)
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MobilityMode>();
    assert_send::<MobilityConfig>();
    assert_send::<MobilityReport>();
};
