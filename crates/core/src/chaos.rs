//! The chaos scenario: the mobility walk under control-plane fault
//! injection.
//!
//! ACACIA's mobility story (§8) leans on standard X2/S1 procedures, and
//! those procedures lean on guard timers and retransmission to survive a
//! lossy transport. This scenario replays the [`mobility`](crate::mobility)
//! walk while a deterministic [`FaultPlan`] drops, duplicates and reorders
//! control messages on every S1AP and X2 link, then audits how the
//! recovery machinery resolved each handover:
//!
//! * **completed** — the path switch went through (possibly after
//!   retransmission);
//! * **cancelled** — the target never answered the X2 Handover Request
//!   and the source kept serving the UE;
//! * **re-established** — the UE's Handover Command was lost, T304
//!   expired, and RRC re-establishment recovered the connection;
//! * **fallback** — the path switch never completed and the target
//!   released the session to the default bearer + core detour, from which
//!   the service-request path restores connectivity.
//!
//! The one invariant the sweep exists to check: **no wedged UEs** — every
//! UE ends Connected or Idle with zero handover procedures outstanding,
//! at every fault rate.
//!
//! Faults attach *after* attach/bearer bring-up and only fire from one
//! second into the session, so the sweep measures handover robustness,
//! not attach luck. Each link direction gets its own ChaCha8 stream
//! derived from `fault_seed` and the link's stable index in
//! [`LteNetwork::control_fault_points`], so results are byte-identical
//! across worker counts and repeat runs.

use crate::mobility::{MobilityConfig, MobilityMode, MobilityReport, MobilityScenario};
use acacia_lte::enb::Enb;
use acacia_lte::entities::GwControl;
use acacia_lte::ue::{Ue, UeState};
use acacia_simnet::fault::{FaultPlan, FaultRule, PacketClass};
use acacia_simnet::sim::{NodeId, PortId};
use acacia_simnet::time::Duration;

/// Chaos scenario parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The underlying walk + AR session (Reanchor mode with the core
    /// detour forced on, so fallback recovery has a path to fall back to).
    pub mobility: MobilityConfig,
    /// Seed for the fault streams (independent of the simulation seed).
    pub fault_seed: u64,
    /// Per-packet drop probability on every control-link direction.
    pub drop_rate: f64,
    /// Per-packet duplicate probability (exercises txid dedup).
    pub duplicate_rate: f64,
    /// Per-packet reorder probability (held back by `reorder_delay`).
    pub reorder_rate: f64,
    /// How far a reordered control packet is held back.
    pub reorder_delay: Duration,
}

impl ChaosConfig {
    /// Figure-scale sweep cell at `drop_rate`; duplicates and reorders
    /// ride along at half that rate each.
    pub fn figure(drop_rate: f64) -> ChaosConfig {
        let mut mobility = MobilityConfig::figure(MobilityMode::Reanchor);
        mobility.force_core_detour = true;
        ChaosConfig {
            mobility,
            fault_seed: 7,
            drop_rate,
            duplicate_rate: drop_rate / 2.0,
            reorder_rate: drop_rate / 2.0,
            reorder_delay: Duration::from_millis(3),
        }
    }

    /// Smaller/faster variant for tests.
    pub fn smoke(drop_rate: f64) -> ChaosConfig {
        let mut mobility = MobilityConfig::smoke(MobilityMode::Reanchor);
        mobility.force_core_detour = true;
        ChaosConfig {
            mobility,
            ..ChaosConfig::figure(drop_rate)
        }
    }
}

/// Results of one chaos cell: the mobility report plus the recovery
/// audit.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Drop rate this cell ran at.
    pub drop_rate: f64,
    /// The underlying session report.
    pub mobility: MobilityReport,
    /// Handovers the target eNBs completed (path switch acknowledged).
    pub completed: u64,
    /// X2 Handover Request retransmissions at source eNBs.
    pub ho_retx: u64,
    /// Handovers cancelled after the target never acked (source side).
    pub cancelled: u64,
    /// Admitted-then-cancelled handovers released at target eNBs.
    pub cancelled_in: u64,
    /// Source-side overall-guard expiries (context released locally).
    pub expired: u64,
    /// Path Switch Request retransmissions at target eNBs.
    pub ps_retx: u64,
    /// Path-switch exhaustion fallbacks (release to default bearer).
    pub fallback: u64,
    /// RRC re-establishments served by eNBs.
    pub reestablished: u64,
    /// Service-request retries the UE needed while recovering from idle.
    pub sr_retries: u64,
    /// Control packets dropped by injected faults.
    pub injected_drops: u64,
    /// Duplicate control packets delivered by injected faults.
    pub injected_duplicates: u64,
    /// Control packets reordered by injected faults.
    pub injected_reorders: u64,
    /// Control packets lost to congestion/queue overflow instead (the
    /// injected/organic attribution split on the same links).
    pub congestion_drops: u64,
    /// UEs that ended the run outside a legal RRC state (must be 0).
    pub wedged_ues: usize,
    /// Handover procedures still open at any eNB after the drain
    /// (must be 0).
    pub outstanding_procedures: usize,
    /// GW-C dedicated-bearer activation counter at the end of the run.
    pub dedicated_active: u64,
    /// Dedicated bearers actually present in the GW-C session table; must
    /// equal `dedicated_active` once the drain settles.
    pub dedicated_live: u64,
    /// Dedicated activations still mid-flight after the drain (must be 0).
    pub dedicated_pending: u64,
}

impl ChaosReport {
    /// Did every UE land in a legal state with nothing outstanding?
    pub fn clean(&self) -> bool {
        self.wedged_ues == 0 && self.outstanding_procedures == 0 && self.conserved()
    }

    /// Recovery-counter conservation: every dedicated-bearer activation
    /// the GW-C ever acknowledged is still accounted for by a bearer in
    /// its session table, with none mid-flight — chaos may delay or retry
    /// activations, but must never leak or double-count one.
    pub fn conserved(&self) -> bool {
        self.dedicated_active == self.dedicated_live && self.dedicated_pending == 0
    }
}

/// A built chaos scenario: the mobility scenario with fault plans armed
/// on every control-link direction.
pub struct ChaosScenario {
    scenario: MobilityScenario,
    cfg: ChaosConfig,
    fault_points: Vec<((NodeId, PortId), String)>,
}

impl ChaosScenario {
    /// Build the walk and attach one independently-seeded fault plan per
    /// control-link direction.
    pub fn build(cfg: ChaosConfig) -> ChaosScenario {
        let mut scenario = MobilityScenario::build(cfg.mobility.clone());
        let fault_points = scenario.net.control_fault_points();
        // Attach and initial bearer activation are done (or imminent):
        // open the fault window one second in so the sweep stresses the
        // handover machinery, not session bring-up.
        let start = scenario.net.sim.now() + Duration::from_secs(1);
        let end = start + Duration::from_secs(86_400);
        for (idx, (endpoint, _label)) in fault_points.iter().enumerate() {
            let seed = cfg
                .fault_seed
                .wrapping_add((idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut plan = FaultPlan::new(seed);
            if cfg.drop_rate > 0.0 {
                plan.add_rule(
                    FaultRule::drop(PacketClass::any(), cfg.drop_rate).in_window(start, end),
                );
            }
            if cfg.duplicate_rate > 0.0 {
                plan.add_rule(
                    FaultRule::duplicate(PacketClass::any(), cfg.duplicate_rate)
                        .in_window(start, end),
                );
            }
            if cfg.reorder_rate > 0.0 {
                plan.add_rule(
                    FaultRule::reorder(PacketClass::any(), cfg.reorder_rate, cfg.reorder_delay)
                        .in_window(start, end),
                );
            }
            if !plan.rules().is_empty() {
                scenario.net.sim.attach_fault_plan(*endpoint, plan);
            }
        }
        ChaosScenario {
            scenario,
            cfg,
            fault_points,
        }
    }

    /// Run the session and audit the recovery outcome.
    pub fn run(self) -> ChaosReport {
        let (mobility, net) = self.scenario.run_detailed();

        let mut report = ChaosReport {
            drop_rate: self.cfg.drop_rate,
            mobility,
            completed: 0,
            ho_retx: 0,
            cancelled: 0,
            cancelled_in: 0,
            expired: 0,
            ps_retx: 0,
            fallback: 0,
            reestablished: 0,
            sr_retries: 0,
            injected_drops: 0,
            injected_duplicates: 0,
            injected_reorders: 0,
            congestion_drops: 0,
            wedged_ues: 0,
            outstanding_procedures: 0,
            dedicated_active: 0,
            dedicated_live: 0,
            dedicated_pending: 0,
        };
        for &enb in &net.enbs {
            let e = net.sim.node_ref::<Enb>(enb);
            report.completed += e.ho_in_done;
            report.ho_retx += e.ho_retx;
            report.cancelled += e.ho_cancelled;
            report.cancelled_in += e.ho_in_cancelled;
            report.expired += e.ho_out_expired;
            report.ps_retx += e.ps_retx;
            report.fallback += e.ps_fallback;
            report.reestablished += e.reest_in;
            report.outstanding_procedures += e.outstanding_handovers();
        }
        for &ue in &net.ues {
            let u = net.sim.node_ref::<Ue>(ue);
            report.sr_retries += u.sr_retries;
            if !matches!(u.state, UeState::Connected | UeState::Idle) {
                report.wedged_ues += 1;
            }
        }
        let gwc = net.sim.node_ref::<GwControl>(net.gwc);
        report.dedicated_active = gwc.dedicated_active;
        report.dedicated_live = gwc.dedicated_live();
        report.dedicated_pending = gwc.dedicated_pending();
        for (endpoint, _label) in &self.fault_points {
            if let Some(stats) = net.sim.link_stats(*endpoint) {
                report.injected_drops += stats.drops_injected;
                report.injected_duplicates += stats.duplicates_injected;
                report.injected_reorders += stats.reorders_injected;
                report.congestion_drops += stats.drops_queue + stats.drops_loss;
            }
        }
        report
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ChaosConfig>();
    assert_send::<ChaosReport>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Faults at rate zero must not perturb the session at all: the
    /// chaos wrapper with an idle fault layer reproduces the plain
    /// mobility run field-for-field.
    #[test]
    fn zero_rate_chaos_matches_plain_mobility() {
        let chaos = ChaosScenario::build(ChaosConfig::smoke(0.0)).run();
        let mut plain_cfg = MobilityConfig::smoke(MobilityMode::Reanchor);
        plain_cfg.force_core_detour = true;
        let plain = MobilityScenario::build(plain_cfg).run();
        assert_eq!(format!("{:?}", chaos.mobility), format!("{plain:?}"));
        assert_eq!(chaos.injected_drops, 0);
        assert_eq!(chaos.injected_duplicates, 0);
        assert_eq!(chaos.injected_reorders, 0);
        assert!(chaos.clean());
    }

    /// The acceptance gate at smoke scale: 10% control drops, session
    /// still completes, nothing wedges.
    #[test]
    fn ten_percent_control_drops_leave_no_wedged_ues() {
        let report = ChaosScenario::build(ChaosConfig::smoke(0.10)).run();
        assert!(report.clean(), "wedged: {report:?}");
        assert!(
            report.mobility.session_complete(),
            "{}/{} frames",
            report.mobility.frames.len(),
            report.mobility.frames_requested
        );
    }

    /// Same seed, same plan ⇒ identical report, repeatably.
    #[test]
    fn chaos_runs_are_deterministic() {
        let a = ChaosScenario::build(ChaosConfig::smoke(0.15)).run();
        let b = ChaosScenario::build(ChaosConfig::smoke(0.15)).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
