//! The ACACIA device manager (paper §5.3, §6.2).
//!
//! An Android-service-like daemon on the UE with two roles:
//!
//! 1. **Discovery proxy** — CI applications register `ServiceInfo`
//!    interests; the manager installs matching filters in the LTE modem
//!    and forwards delivered discovery messages (with rxPower/SNR) back to
//!    the owning application.
//! 2. **Connectivity manager** — on the *first* interest match for an
//!    application it asks the MRS to create MEC connectivity (a dedicated
//!    bearer); when the application unregisters it asks for deletion. This
//!    is what keeps dedicated bearers **on-demand** instead of always-on
//!    (the §4 control-overhead argument).

use acacia_d2d::modem::{Modem, SubscriptionId};
use acacia_d2d::service::{DiscoveryEvent, SubscriptionFilter};

/// What a CI application registers with the manager (the paper's
/// `ServiceInfo` Parcelable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInfo {
    /// Carrier-managed service name (e.g. the retail chain).
    pub service: String,
    /// The user's selected interests within the service (e.g. "laptops"),
    /// empty = all expressions.
    pub interests: Vec<String>,
}

/// Handle of a registered CI application.
pub type AppId = usize;

/// Connectivity actions the manager wants performed (sent to the MRS by
/// the hosting node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectivityAction {
    /// Request MEC connectivity for `service`.
    Create {
        /// Service to connect.
        service: String,
    },
    /// Tear MEC connectivity down.
    Delete {
        /// Service to disconnect.
        service: String,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ConnState {
    None,
    Requested,
    Active,
}

struct AppEntry {
    info: ServiceInfo,
    subs: Vec<SubscriptionId>,
    conn: ConnState,
    /// Has this app ever asked for MEC connectivity? Cell changes only
    /// (re-)establish connectivity for apps that opted in.
    wants_conn: bool,
}

/// The device manager.
#[derive(Default)]
pub struct DeviceManager {
    apps: Vec<Option<AppEntry>>,
    /// Discovery events delivered to applications.
    pub events_delivered: u64,
}

impl DeviceManager {
    /// New manager.
    pub fn new() -> DeviceManager {
        DeviceManager::default()
    }

    /// A CI application registers its interests; matching filters go into
    /// the modem.
    pub fn register_app(&mut self, modem: &mut Modem, info: ServiceInfo) -> AppId {
        let mut subs = Vec::new();
        if info.interests.is_empty() {
            subs.push(modem.subscribe(SubscriptionFilter::service_wide(&info.service)));
        } else {
            for interest in &info.interests {
                subs.push(modem.subscribe(SubscriptionFilter::exact(&info.service, interest)));
            }
        }
        self.apps.push(Some(AppEntry {
            info,
            subs,
            conn: ConnState::None,
            wants_conn: false,
        }));
        self.apps.len() - 1
    }

    /// Unregister an application: remove its modem filters and request
    /// connectivity deletion if a bearer was active.
    pub fn unregister_app(&mut self, modem: &mut Modem, app: AppId) -> Option<ConnectivityAction> {
        let entry = self.apps.get_mut(app)?.take()?;
        for sub in entry.subs {
            modem.unsubscribe(sub);
        }
        match entry.conn {
            ConnState::Active | ConnState::Requested => Some(ConnectivityAction::Delete {
                service: entry.info.service,
            }),
            ConnState::None => None,
        }
    }

    /// Route a modem-delivered discovery event to the owning application.
    /// Returns the app it belongs to (if any) plus a connectivity action
    /// when this is the app's **first** match.
    pub fn on_discovery(
        &mut self,
        event: &DiscoveryEvent,
    ) -> (Option<AppId>, Option<ConnectivityAction>) {
        for (id, slot) in self.apps.iter_mut().enumerate() {
            let Some(entry) = slot else { continue };
            let service_match = entry.info.service == event.announcement.service;
            let interest_match = entry.info.interests.is_empty()
                || entry
                    .info
                    .interests
                    .contains(&event.announcement.expression);
            if service_match && interest_match {
                self.events_delivered += 1;
                let action = if entry.conn == ConnState::None {
                    entry.conn = ConnState::Requested;
                    entry.wants_conn = true;
                    Some(ConnectivityAction::Create {
                        service: entry.info.service.clone(),
                    })
                } else {
                    None
                };
                return (Some(id), action);
            }
        }
        (None, None)
    }

    /// Trigger connectivity *without* proximity discovery (paper §8,
    /// "ACACIA without proximity service discovery"): launching the CI
    /// application itself requests MEC connectivity.
    pub fn on_app_launch(&mut self, app: AppId) -> Option<ConnectivityAction> {
        let entry = self.apps.get_mut(app)?.as_mut()?;
        if entry.conn == ConnState::None {
            entry.conn = ConnState::Requested;
            entry.wants_conn = true;
            Some(ConnectivityAction::Create {
                service: entry.info.service.clone(),
            })
        } else {
            None
        }
    }

    /// The serving cell changed (mobility, paper §8 "users may move").
    /// For every app that wants MEC connectivity:
    ///
    /// * the new cell is MEC-equipped → re-request connectivity. The PCEF
    ///   treats this as idempotent: if the network already re-anchored the
    ///   dedicated bearer during the handover, the request just acks; if
    ///   the bearer was lost, it re-creates it on the new cell's local
    ///   gateway.
    /// * the new cell has no MEC → the network released the dedicated
    ///   bearer; drop to default connectivity so the next MEC cell
    ///   triggers a fresh create.
    pub fn on_cell_change(&mut self, cell_is_mec: bool) -> Vec<ConnectivityAction> {
        let mut actions = Vec::new();
        for entry in self.apps.iter_mut().flatten() {
            if !entry.wants_conn {
                continue;
            }
            if cell_is_mec {
                entry.conn = ConnState::Requested;
                actions.push(ConnectivityAction::Create {
                    service: entry.info.service.clone(),
                });
            } else {
                entry.conn = ConnState::None;
            }
        }
        actions
    }

    /// The serving MEC's lease lapsed (the MRS evicted it, or the client
    /// noticed a dead session leg): re-request connectivity for every app
    /// bound to `service` that wants it. The resulting `Create` is
    /// idempotent at the MRS — it re-resolves to the closest **live**
    /// instance, which is exactly the failover re-resolution step of the
    /// recovery ladder.
    pub fn on_lease_lapse(&mut self, service: &str) -> Option<ConnectivityAction> {
        for entry in self.apps.iter_mut().flatten() {
            if entry.info.service == service && entry.wants_conn {
                entry.conn = ConnState::Requested;
                return Some(ConnectivityAction::Create {
                    service: entry.info.service.clone(),
                });
            }
        }
        None
    }

    /// The MRS answered a connectivity request for `service`.
    pub fn on_mrs_ack(&mut self, service: &str, ok: bool) {
        for slot in self.apps.iter_mut().flatten() {
            if slot.info.service == service && slot.conn == ConnState::Requested {
                slot.conn = if ok {
                    ConnState::Active
                } else {
                    ConnState::None
                };
            }
        }
    }

    /// Does any application currently hold (or await) MEC connectivity?
    pub fn has_connectivity(&self, app: AppId) -> bool {
        matches!(
            self.apps.get(app).and_then(|s| s.as_ref()).map(|e| &e.conn),
            Some(ConnState::Active)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_d2d::channel::RadioReading;
    use acacia_d2d::service::Announcement;

    fn event(service: &str, expr: &str) -> DiscoveryEvent {
        DiscoveryEvent {
            announcement: Announcement::new(service, expr),
            publisher: "L1".into(),
            rx_power_dbm: -70.0,
            snr_db: 20.0,
            tick: 0,
        }
    }

    fn reading() -> RadioReading {
        RadioReading {
            rx_power_dbm: -70.0,
            snr_db: 20.0,
        }
    }

    #[test]
    fn registration_installs_modem_filters() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec!["laptops".into(), "cameras".into()],
            },
        );
        assert_eq!(modem.active_subscriptions(), 2);
        // The modem delivers only matching expressions.
        let ann_yes = Announcement::new("acme", "laptops");
        let ann_no = Announcement::new("acme", "socks");
        assert!(modem.receive(&ann_yes, "L1", reading(), 0).is_some());
        assert!(modem.receive(&ann_no, "L1", reading(), 0).is_none());
    }

    #[test]
    fn first_match_triggers_exactly_one_create() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec!["laptops".into()],
            },
        );
        let (owner, action) = dm.on_discovery(&event("acme", "laptops"));
        assert_eq!(owner, Some(app));
        assert_eq!(
            action,
            Some(ConnectivityAction::Create {
                service: "acme".into()
            })
        );
        // Second match: no new request.
        let (_, action2) = dm.on_discovery(&event("acme", "laptops"));
        assert_eq!(action2, None);
        // Ack activates.
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
    }

    #[test]
    fn failed_ack_allows_retry() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        let (_, a1) = dm.on_discovery(&event("acme", "anything"));
        assert!(a1.is_some());
        dm.on_mrs_ack("acme", false);
        assert!(!dm.has_connectivity(app));
        let (_, a2) = dm.on_discovery(&event("acme", "anything"));
        assert!(a2.is_some(), "retry after a NACK");
    }

    #[test]
    fn unregister_requests_deletion_and_clears_modem() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        dm.on_discovery(&event("acme", "x"));
        dm.on_mrs_ack("acme", true);
        let action = dm.unregister_app(&mut modem, app);
        assert_eq!(
            action,
            Some(ConnectivityAction::Delete {
                service: "acme".into()
            })
        );
        assert_eq!(modem.active_subscriptions(), 0);
        // Double unregister is harmless.
        assert_eq!(dm.unregister_app(&mut modem, app), None);
    }

    #[test]
    fn unregister_without_connectivity_requests_nothing() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        assert_eq!(dm.unregister_app(&mut modem, app), None);
    }

    #[test]
    fn app_launch_trigger_works_without_discovery() {
        // Paper §8: "launching a specific application might serve as the
        // trigger to activate ACACIA functionality".
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        let action = dm.on_app_launch(app);
        assert_eq!(
            action,
            Some(ConnectivityAction::Create {
                service: "acme".into()
            })
        );
        // Launching again (or a subsequent discovery match) doesn't ask
        // twice.
        assert_eq!(dm.on_app_launch(app), None);
        let (_, a2) = dm.on_discovery(&event("acme", "x"));
        assert_eq!(a2, None);
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
    }

    #[test]
    fn cell_changes_drive_connectivity_for_opted_in_apps_only() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        // Before any interest match: cell changes do nothing.
        assert!(dm.on_cell_change(true).is_empty());
        dm.on_discovery(&event("acme", "x"));
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
        // Walk to a non-MEC cell: connectivity drops to default.
        assert!(dm.on_cell_change(false).is_empty());
        assert!(!dm.has_connectivity(app));
        // Walk back into MEC coverage: a fresh create fires.
        let actions = dm.on_cell_change(true);
        assert_eq!(
            actions,
            vec![ConnectivityAction::Create {
                service: "acme".into()
            }]
        );
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
    }

    #[test]
    fn lease_lapse_rerequests_for_opted_in_apps_only() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        // Before opting in: a lapse is nobody's business.
        assert_eq!(dm.on_lease_lapse("acme"), None);
        dm.on_discovery(&event("acme", "x"));
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
        // Lease lapses: re-resolution fires and the app drops to
        // Requested until the (re-)ack lands.
        assert_eq!(
            dm.on_lease_lapse("acme"),
            Some(ConnectivityAction::Create {
                service: "acme".into()
            })
        );
        assert!(!dm.has_connectivity(app));
        dm.on_mrs_ack("acme", true);
        assert!(dm.has_connectivity(app));
        // Other services are untouched.
        assert_eq!(dm.on_lease_lapse("other"), None);
    }

    #[test]
    fn events_for_other_services_are_not_delivered() {
        let mut dm = DeviceManager::new();
        let mut modem = Modem::new();
        dm.register_app(
            &mut modem,
            ServiceInfo {
                service: "acme".into(),
                interests: vec![],
            },
        );
        let (owner, action) = dm.on_discovery(&event("other-store", "laptops"));
        assert_eq!(owner, None);
        assert_eq!(action, None);
        assert_eq!(dm.events_delivered, 0);
    }
}
