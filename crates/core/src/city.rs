//! City-scale sharded scenario: R independent MEC regions, each a
//! two-cell site with its own AR server and local gateway, sharing one
//! LTE core.
//!
//! This is the workload the sharded event engine exists for. Every
//! region is a copy of the scale scenario's geometry — two MEC cells
//! 40 m apart, a population of UEs walking staggered there-and-back
//! trajectories that hand each of them over twice — placed 1 km from its
//! neighbours and pinned to its own [`CellConfig::region`], so the
//! engine can run each region on its own shard. Cross-region traffic is
//! limited to the shared control plane (MME / GW-C / PCRF / MRS in the
//! core region) and the conservative-lookahead exchange keeps those
//! messages ordered identically at every shard count: a city run at
//! `--shards 8` is byte-identical to the same run at `--shards 1`.
//!
//! Each region gets its own local GW-U ([`LteConfig::local_gw_per_region`])
//! and its own MEC server, registered with the cloud MRS under a
//! per-region service name. UEs only see (and only measure) their own
//! region's two cells, so the radio planes never couple regions.
//!
//! The per-UE frame interval has a floor of
//! `ues_per_region × per_frame_budget` — the aggregate offered load at
//! each region's serial MEC server stays below its capacity, same as the
//! scale scenario but per region.

use crate::arclient::{ArFrontend, ArFrontendConfig};
use crate::arserver::{ArServer, ArServerConfig};
use crate::locmgr::{LocalizationManager, LocalizationMetadata};
use crate::mrs::{port as mrs_port, Mrs, ServerInstance};
use crate::msg::APP_PORT;
use crate::scenario::SERVICE;
use crate::search::SearchStrategy;
use acacia_geo::floor::FloorPlan;
use acacia_geo::Point;
use acacia_lte::enb::Enb;
use acacia_lte::entities::{pcrf_port, GwControl};
use acacia_lte::mobility::Waypoint;
use acacia_lte::network::{addr, CellConfig, LteConfig, LteNetwork};
use acacia_lte::timers::Timers;
use acacia_lte::ue::{AppSelector, Ue, UeState};
use acacia_lte::wire::Protocol;
use acacia_simnet::fault::{FaultPlan, FaultRule, PacketClass};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::{Duration, Instant};
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;

/// City scenario parameters.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// MEC regions (two cells each).
    pub regions: usize,
    /// UEs homed in each region.
    pub ues_per_region: usize,
    /// Master seed.
    pub seed: u64,
    /// Frames each session captures.
    pub frame_count: u64,
    /// Per-UE pacing between captures before the serial-server floor.
    pub base_frame_interval: Duration,
    /// Serial-server time budget one frame may consume; the effective
    /// interval never drops below `ues_per_region × per_frame_budget`.
    pub per_frame_budget: Duration,
    /// Walk speed, m/s.
    pub speed_mps: f64,
    /// Objects per subsection in the shared database.
    pub db_per_subsection: usize,
    /// Matching execution cap at each region's server.
    pub exec_cap: usize,
    /// Independent drop probability on every S1AP/X2 control link
    /// direction, applied once the last session's bearer is up (the soak
    /// test's fault injection; 0.0 = clean run).
    pub ctrl_drop_rate: f64,
    /// Seed for the per-link fault streams.
    pub fault_seed: u64,
    /// MEC failover wiring (server heartbeats, MRS lease monitoring,
    /// neighbor/cloud fallback registrations, the core routes a failed-
    /// over session rides). `None` = the classic city run, byte-identical
    /// to before this option existed.
    pub failover: Option<FailoverWiring>,
}

/// Failover wiring knobs for the city scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailoverWiring {
    /// Heartbeat / lease-audit / recheck intervals.
    pub timers: Timers,
}

impl CityConfig {
    /// The benchmark configuration: 8 regions × 2 cells, 2048 UEs.
    pub fn figure() -> CityConfig {
        CityConfig {
            regions: 8,
            ues_per_region: 256,
            seed: 42,
            frame_count: 2,
            base_frame_interval: Duration::from_millis(2_500),
            per_frame_budget: Duration::from_millis(300),
            speed_mps: 4.0,
            db_per_subsection: 1,
            exec_cap: 24,
            ctrl_drop_rate: 0.0,
            fault_seed: 7,
            failover: None,
        }
    }

    /// Smaller/faster variant for tests: same 16-cell/8-region shape so
    /// an 8-shard run genuinely splits, far fewer subscribers.
    pub fn smoke() -> CityConfig {
        CityConfig {
            ues_per_region: 4,
            frame_count: 3,
            speed_mps: 6.0,
            ..CityConfig::figure()
        }
    }

    /// Total subscribers.
    pub fn ue_count(&self) -> usize {
        self.regions * self.ues_per_region
    }

    /// The effective per-UE frame interval: the base interval, raised to
    /// `ues_per_region × per_frame_budget` once a region's population
    /// would oversubscribe its serial server.
    pub fn frame_interval(&self) -> Duration {
        let floor =
            Duration::from_nanos(self.per_frame_budget.nanos() * self.ues_per_region as u64);
        self.base_frame_interval.max(floor)
    }

    /// Kickoff/walk stagger between consecutive UEs of one region: one
    /// frame interval spread across the region's population, so captures
    /// arrive at each server as a uniform ring. The k-th UE of every
    /// region shares an offset — regions run in lock-step, which is what
    /// keeps every shard busy inside each exchange window.
    pub fn stagger(&self) -> Duration {
        Duration::from_nanos(self.frame_interval().nanos() / self.ues_per_region as u64)
    }
}

/// Geometry shared with the scale scenario, replicated per region.
const CELL_SPACING_M: f64 = 40.0;
const WALK_NEAR_M: f64 = 2.0;
const WALK_FAR_M: f64 = 38.0;
/// North-south distance between regions. Irrelevant to the radio plane
/// (UEs only measure their own region's cells) but keeps positions
/// honest on a city map.
const REGION_SPACING_M: f64 = 1_000.0;

/// Per-UE outcome of a city run.
#[derive(Debug, Clone)]
pub struct CityUeReport {
    /// Frames that completed end-to-end.
    pub frames_done: u64,
    /// Serving-cell switches completed.
    pub handovers: u64,
    /// Client-side retransmissions.
    pub retransmissions: u64,
}

/// Results of a city run.
#[derive(Debug, Clone)]
pub struct CityReport {
    /// Regions that ran.
    pub regions: usize,
    /// Total UEs.
    pub ue_count: usize,
    /// Frames each session was asked to complete.
    pub frames_requested: u64,
    /// Per-UE outcomes, in UE-index order (region-major).
    pub ues: Vec<CityUeReport>,
    /// X2AP messages on the wire.
    pub x2_msgs: u64,
    /// S1AP messages on the wire.
    pub s1ap_msgs: u64,
    /// GTPv2-C messages on the wire.
    pub gtpc_msgs: u64,
    /// Dedicated bearers relocated onto a new cell's local gateway.
    pub dedicated_reanchored: u64,
    /// Downlink packets forwarded over X2 during handover execution.
    pub x2_forwarded: u64,
    /// Engine events dispatched over the whole run.
    pub events_processed: u64,
    /// Events dispatched per shard (length = shard count of the run).
    pub events_by_shard: Vec<u64>,
    /// Arrival events handed across shards (sender side).
    pub cross_shard_sent: u64,
    /// Arrival events accepted from other shards (receiver side); equals
    /// `cross_shard_sent` when no exchange lost an event.
    pub cross_shard_received: u64,
    /// UEs that ended the run outside a legal end state
    /// (neither `Connected` nor `Idle`).
    pub stuck_ues: usize,
    /// Handover procedures still open at collection time.
    pub outstanding_procedures: usize,
    /// Simulated time the run covered.
    pub sim_elapsed: Duration,
}

impl CityReport {
    /// Sessions that did not complete every requested frame. The strict
    /// bar for fault-free runs; under sustained fault injection use
    /// [`CityReport::protocol_wedged`], which mirrors the chaos sweep's
    /// invariant (lost frames under a drop storm are reported honestly,
    /// an illegal end state is never tolerated).
    pub fn wedged(&self) -> usize {
        self.ues
            .iter()
            .filter(|u| u.frames_done < self.frames_requested)
            .count()
    }

    /// UEs in an illegal end state plus handover procedures left open —
    /// the invariant the recovery ladder guarantees at any drop rate.
    pub fn protocol_wedged(&self) -> usize {
        self.stuck_ues + self.outstanding_procedures
    }

    /// Total handovers across every UE.
    pub fn total_handovers(&self) -> u64 {
        self.ues.iter().map(|u| u.handovers).sum()
    }

    /// Did every cross-shard event survive the window exchange?
    pub fn cross_shard_conserved(&self) -> bool {
        self.cross_shard_sent == self.cross_shard_received
    }
}

/// Timing anchors of a scheduled city run.
#[derive(Debug, Clone, Copy)]
pub struct CityTimeline {
    /// When [`CityScenario::schedule`] was called.
    pub start: Instant,
    /// The last UE's kickoff offset.
    pub stagger_total: Duration,
    /// When the last UE finishes its walk.
    pub walk_end: Instant,
    /// Hard stop for [`CityScenario::await_sessions`].
    pub deadline: Instant,
}

/// A built city scenario.
pub struct CityScenario {
    /// The network (owns the simulator).
    pub net: LteNetwork,
    /// Client nodes, in UE-index order.
    pub clients: Vec<NodeId>,
    /// Per-region MEC server nodes.
    pub servers: Vec<NodeId>,
    /// Per-region MEC server data-plane addresses.
    pub server_addrs: Vec<std::net::Ipv4Addr>,
    /// The MRS node.
    pub mrs: NodeId,
    /// The MRS address.
    pub mrs_addr: std::net::Ipv4Addr,
    /// Cloud fallback AR server (failover wiring only).
    pub cloud: Option<NodeId>,
    /// Cloud fallback address (failover wiring only).
    pub cloud_addr: Option<std::net::Ipv4Addr>,
    cfg: CityConfig,
    /// Last observed serving cell per UE (drives the device-manager
    /// re-anchor leg after handovers).
    last_serving: Vec<usize>,
}

impl CityScenario {
    /// Build the scenario: regions provisioned, every UE attached,
    /// per-region servers registered with the MRS, clients connected.
    pub fn build(cfg: CityConfig) -> CityScenario {
        assert!(cfg.regions >= 1, "city needs at least one region");
        assert!(cfg.ues_per_region >= 1, "regions need at least one UE");

        let mut cells = Vec::with_capacity(2 * cfg.regions);
        for r in 0..cfg.regions {
            let y = r as f64 * REGION_SPACING_M;
            cells.push(CellConfig {
                pos: Point::new(0.0, y),
                mec: true,
                region: r as u32,
            });
            cells.push(CellConfig {
                pos: Point::new(CELL_SPACING_M, y),
                mec: true,
                region: r as u32,
            });
        }
        let ue_count = cfg.ue_count();
        let ue_cells: Vec<Vec<usize>> = (0..ue_count)
            .map(|i| {
                let r = i / cfg.ues_per_region;
                vec![2 * r, 2 * r + 1]
            })
            .collect();

        let mut net = LteNetwork::new(LteConfig {
            seed: cfg.seed,
            ue_count,
            cells,
            ue_cells,
            local_gw_per_region: true,
            ..LteConfig::default()
        });

        let db = ObjectDb::retail_cached(cfg.db_per_subsection, cfg.seed);
        let mut servers = Vec::with_capacity(cfg.regions);
        let mut server_addrs = Vec::with_capacity(cfg.regions);
        for r in 0..cfg.regions {
            let floor = FloorPlan::retail_store();
            let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(
                &floor,
                &acacia_d2d::technology::ProximityTech::LteDirect.pathloss(),
            ));
            let server_addr = addr::mec(r, 0);
            // With failover wiring, each MEC server beats its lease to
            // the cloud MRS (heartbeats ride the failover core path).
            let heartbeat = cfg
                .failover
                .map(|w| ((addr::CLOUD_BASE, format!("{SERVICE}-r{r}")), w));
            let (server, assigned) = net.add_mec_server_in_region(
                r as u32,
                Box::new(ArServer::new(
                    ArServerConfig {
                        device: Device::I7Octa,
                        strategy: SearchStrategy::Naive,
                        exec_cap: cfg.exec_cap,
                        heartbeat: heartbeat.as_ref().map(|(h, _)| h.clone()),
                        heartbeat_period: heartbeat
                            .map(|(_, w)| w.timers.heartbeat_period)
                            .unwrap_or(Timers::DEFAULT.heartbeat_period),
                        ..ArServerConfig::new(server_addr)
                    },
                    db.clone(),
                    floor,
                    locmgr,
                )),
            );
            assert_eq!(assigned, server_addr);
            servers.push(server);
            server_addrs.push(server_addr);
        }

        // One cloud MRS knows every region's server under a per-region
        // service name; each client asks for its own region's service.
        let mrs_addr = addr::CLOUD_BASE;
        let cloud_ar_addr = cfg
            .failover
            .map(|_| std::net::Ipv4Addr::from(u32::from(addr::CLOUD_BASE) + 1));
        let mut mrs_node = Mrs::new(mrs_addr);
        for (r, &server_addr) in server_addrs.iter().enumerate() {
            mrs_node.register_service(
                &format!("{SERVICE}-r{r}"),
                ServerInstance {
                    addr: server_addr,
                    distance: 1.0,
                },
            );
        }
        if let Some(w) = cfg.failover {
            // Lease-monitor the MEC servers, and register the failover
            // ladder behind each one: the neighbor region's MEC (one hop
            // worse) and the shared cloud AR server (last resort, not
            // monitored — the cloud has no MEC lifecycle).
            mrs_node.enable_lease_monitoring(w.timers);
            for (r, &server_addr) in server_addrs.iter().enumerate() {
                mrs_node.monitor_server(server_addr);
                if cfg.regions > 1 {
                    let neighbor = server_addrs[(r + 1) % cfg.regions];
                    mrs_node.register_service(
                        &format!("{SERVICE}-r{r}"),
                        ServerInstance {
                            addr: neighbor,
                            distance: 2.0,
                        },
                    );
                }
                mrs_node.register_service(
                    &format!("{SERVICE}-r{r}"),
                    ServerInstance {
                        addr: cloud_ar_addr.expect("failover wiring"),
                        distance: 100.0,
                    },
                );
            }
        }
        let (mrs, assigned) = net.add_cloud_server(
            Box::new(mrs_node),
            LinkConfig::delay_only(Duration::from_micros(800)),
        );
        assert_eq!(assigned, mrs_addr);
        net.sim.connect(
            (mrs, mrs_port::RX),
            (net.pcrf, pcrf_port::AF),
            LinkConfig::delay_only(Duration::from_micros(500)),
        );
        let cloud = cfg.failover.map(|_| {
            let floor = FloorPlan::retail_store();
            let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(
                &floor,
                &acacia_d2d::technology::ProximityTech::LteDirect.pathloss(),
            ));
            let (cloud, assigned) = net.add_cloud_server(
                Box::new(ArServer::new(
                    ArServerConfig {
                        device: Device::I7Octa,
                        strategy: SearchStrategy::Naive,
                        exec_cap: cfg.exec_cap,
                        ..ArServerConfig::new(cloud_ar_addr.expect("failover wiring"))
                    },
                    db.clone(),
                    floor,
                    locmgr,
                )),
                LinkConfig::delay_only(Duration::from_micros(800)),
            );
            assert_eq!(Some(assigned), cloud_ar_addr);
            cloud
        });

        let scene_ids: Vec<u64> = db.in_subsections(&[0]).iter().map(|o| o.id).collect();
        let frame_interval = cfg.frame_interval();

        let mut clients = Vec::with_capacity(ue_count);
        for i in 0..ue_count {
            let r = i / cfg.ues_per_region;
            let ue_ip = net.attach(i);
            let client_cfg = ArFrontendConfig {
                ue_ip,
                server: server_addrs[r],
                mrs: Some((mrs_addr, format!("{SERVICE}-r{r}"))),
                frame_count: cfg.frame_count,
                min_frame_interval: Some(frame_interval),
                scene_ids: scene_ids.clone(),
                lease_recheck: cfg.failover.map(|w| w.timers.lease_recheck_period),
                ..ArFrontendConfig::new(ue_ip, server_addrs[r])
            };
            let client = net.connect_ue_app(
                i,
                Box::new(ArFrontend::new(client_cfg)),
                AppSelector::port(APP_PORT),
            );
            clients.push(client);
        }

        if cfg.failover.is_some() {
            // Every UE is attached and every server placed: snapshot the
            // failover core routes (cross-region default-bearer paths +
            // the heartbeat path to the cloud MRS).
            net.enable_failover_core_path();
        }

        let last_serving = (0..ue_count).map(|i| net.serving_cell(i)).collect();
        CityScenario {
            net,
            clients,
            servers,
            server_addrs,
            mrs,
            mrs_addr,
            cloud,
            cloud_addr: cloud_ar_addr,
            cfg,
            last_serving,
        }
    }

    /// The configuration the scenario was built with.
    pub fn config(&self) -> &CityConfig {
        &self.cfg
    }

    /// Schedule every session kickoff and walk (and, when configured, the
    /// control-plane fault plans), returning the run's timing anchors.
    pub fn schedule(&mut self) -> CityTimeline {
        let start = self.net.sim.now();
        if let Some(w) = self.cfg.failover {
            // Start the lease machinery: each MEC server's heartbeat
            // chain and the MRS audit loop (both self-rescheduling).
            for &server in &self.servers {
                self.net
                    .sim
                    .schedule_timer(server, start, ArServer::HEARTBEAT);
            }
            self.net
                .sim
                .schedule_timer(self.mrs, start + w.timers.lease_check_period, Mrs::LEASE_AUDIT);
        }
        let stagger = self.cfg.stagger();
        let walk_s = 2.0 * (WALK_FAR_M - WALK_NEAR_M) / self.cfg.speed_mps;
        for (i, &client) in self.clients.iter().enumerate() {
            let r = i / self.cfg.ues_per_region;
            let k = i % self.cfg.ues_per_region;
            let offset = Duration::from_nanos(stagger.nanos() * k as u64);
            let y = r as f64 * REGION_SPACING_M;
            self.net
                .sim
                .schedule_timer(client, start + offset, ArFrontend::KICKOFF);
            self.net.start_mobility(
                i,
                vec![
                    Waypoint::dwelling(Point::new(WALK_NEAR_M, y), offset),
                    Waypoint::passing(Point::new(WALK_FAR_M, y)),
                    Waypoint::passing(Point::new(WALK_NEAR_M, y)),
                ],
                self.cfg.speed_mps,
            );
        }

        let stagger_total = Duration::from_nanos(stagger.nanos() * self.cfg.ues_per_region as u64);
        let session =
            Duration::from_nanos(self.cfg.frame_interval().nanos() * self.cfg.frame_count.max(1));
        let walk_end = start + stagger_total + Duration::from_secs_f64(walk_s);
        let deadline =
            walk_end + Duration::from_nanos(session.nanos() * 2) + Duration::from_secs(30);

        if self.cfg.ctrl_drop_rate > 0.0 {
            // Open the fault window after the last session's bearer is up
            // (kickoff + MRS handshake fit well inside one extra second),
            // so the drop storm stresses handover recovery rather than
            // bring-up, mirroring the chaos scenario.
            let fault_start = start + stagger_total + Duration::from_secs(1);
            let fault_end = fault_start + Duration::from_secs(86_400);
            for (idx, (endpoint, _label)) in self.net.control_fault_points().iter().enumerate() {
                let seed = self
                    .cfg
                    .fault_seed
                    .wrapping_add((idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let mut plan = FaultPlan::new(seed);
                plan.add_rule(
                    FaultRule::drop(PacketClass::any(), self.cfg.ctrl_drop_rate)
                        .in_window(fault_start, fault_end),
                );
                self.net.sim.attach_fault_plan(*endpoint, plan);
            }
        }

        CityTimeline {
            start,
            stagger_total,
            walk_end,
            deadline,
        }
    }

    /// Run until every session completes (or the deadline), driving the
    /// device-manager re-anchor leg: any UE whose serving cell changed
    /// since the last poll repeats its MRS connectivity handshake, which
    /// is idempotent when the network already re-anchored the bearer and
    /// re-creates it when a failed handover flushed it.
    pub fn await_sessions(&mut self, timeline: &CityTimeline) {
        while self.net.sim.now() < timeline.deadline {
            let t = self.net.sim.now() + Duration::from_millis(200);
            self.net.sim.run_until(t);
            let now = self.net.sim.now();
            let mut all_done = true;
            for (i, &client) in self.clients.iter().enumerate() {
                let serving = self.net.serving_cell(i);
                if serving != self.last_serving[i] {
                    self.last_serving[i] = serving;
                    self.net
                        .sim
                        .schedule_timer(client, now, ArFrontend::REANCHOR);
                }
                all_done &= self.net.sim.node_ref::<ArFrontend>(client).done();
            }
            if now >= timeline.walk_end && all_done {
                break;
            }
        }
        let drain = self.net.sim.now() + Duration::from_millis(500);
        self.net.sim.run_until(drain);
    }

    /// Collect the report for a run that began at `timeline.start`.
    pub fn collect(&self, timeline: &CityTimeline) -> CityReport {
        let mut ues = Vec::with_capacity(self.clients.len());
        for (i, &client) in self.clients.iter().enumerate() {
            let c = self.net.sim.node_ref::<ArFrontend>(client);
            let ue = self.net.sim.node_ref::<Ue>(self.net.ues[i]);
            ues.push(CityUeReport {
                frames_done: c.frames.len() as u64,
                handovers: ue.handovers,
                retransmissions: c.retransmissions,
            });
        }
        let mut x2_forwarded = 0;
        let mut outstanding_procedures = 0;
        for &enb in &self.net.enbs {
            let e = self.net.sim.node_ref::<Enb>(enb);
            x2_forwarded += e.x2_forwarded;
            outstanding_procedures += e.outstanding_handovers();
        }
        let stuck_ues = self
            .net
            .ues
            .iter()
            .filter(|&&ue| {
                let u = self.net.sim.node_ref::<Ue>(ue);
                !matches!(u.state, UeState::Connected | UeState::Idle)
            })
            .count();
        let gwc = self.net.sim.node_ref::<GwControl>(self.net.gwc);
        CityReport {
            regions: self.cfg.regions,
            ue_count: self.clients.len(),
            frames_requested: self.cfg.frame_count,
            ues,
            x2_msgs: self.net.log.count(Protocol::X2Sctp),
            s1ap_msgs: self.net.log.count(Protocol::S1apSctp),
            gtpc_msgs: self.net.log.count(Protocol::Gtpv2),
            dedicated_reanchored: gwc.dedicated_reanchored,
            x2_forwarded,
            events_processed: self.net.sim.events_processed(),
            events_by_shard: self.net.sim.events_by_shard(),
            cross_shard_sent: self.net.sim.cross_shard_sent(),
            cross_shard_received: self.net.sim.cross_shard_received(),
            stuck_ues,
            outstanding_procedures,
            sim_elapsed: self.net.sim.now() - timeline.start,
        }
    }

    /// Run every session to completion (or a generous deadline) and
    /// collect the report.
    pub fn run(mut self) -> CityReport {
        let timeline = self.schedule();
        self.await_sessions(&timeline);
        self.collect(&timeline)
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CityConfig>();
    assert_send::<CityReport>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CityConfig {
        CityConfig {
            regions: 2,
            ues_per_region: 2,
            frame_count: 2,
            ..CityConfig::smoke()
        }
    }

    #[test]
    fn two_regions_complete_and_hand_over() {
        let report = CityScenario::build(tiny()).run();
        assert_eq!(report.ue_count, 4);
        assert_eq!(report.wedged(), 0, "every session completes");
        assert!(
            report.ues.iter().all(|u| u.handovers >= 2),
            "each UE crosses its region's boundary twice: {:?}",
            report.ues
        );
        assert!(report.x2_msgs > 0, "handovers produce X2 signalling");
        assert!(report.cross_shard_conserved());
    }

    #[test]
    fn interval_floor_scales_with_region_population_not_city_size() {
        let figure = CityConfig::figure();
        assert_eq!(
            figure.frame_interval().nanos(),
            figure.per_frame_budget.nanos() * figure.ues_per_region as u64
        );
        let smoke = CityConfig::smoke();
        assert_eq!(smoke.frame_interval(), smoke.base_frame_interval);
    }
}
