//! Application-level messages exchanged between the CI app on the UE, the
//! MRS and the CI (AR) server — serialized into packet payloads like any
//! real application protocol.

use acacia_simnet::packet::{proto, Packet};
use acacia_simnet::time::Instant;
use acacia_vision::compress::Codec;
use acacia_vision::image::ImageSpec;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// UDP port of the AR server (frames, chunks, results, rxPower reports).
pub const AR_PORT: u16 = 9000;
/// UDP port of the MRS.
pub const MRS_PORT: u16 = 8000;
/// UDP port CI apps bind on the UE.
pub const APP_PORT: u16 = 9000;

/// Frame metadata carried on the first chunk of each frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Capture description (lets the synthetic server reconstruct the
    /// frame's features deterministically).
    pub spec: ImageSpec,
    /// Codec the frame was encoded with.
    pub codec: Codec,
    /// Seed individualizing this frame's view noise.
    pub view_seed: u64,
    /// Capture timestamp at the client (nanoseconds of sim time).
    pub captured_at_nanos: u64,
}

/// Application messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppMsg {
    /// One window chunk of an uploaded camera frame.
    FrameChunk {
        /// Frame sequence number.
        seq: u64,
        /// Chunk index within the frame.
        chunk: u32,
        /// Total chunks in this frame.
        total_chunks: u32,
        /// Frame metadata (present on chunk 0 only).
        #[serde(skip_serializing_if = "Option::is_none", default)]
        meta: Option<FrameMeta>,
    },
    /// Server acknowledgement of a chunk (clocks the upload window).
    ChunkAck {
        /// Frame sequence number.
        seq: u64,
        /// Chunk being acknowledged.
        chunk: u32,
    },
    /// AR result for a completed frame.
    FrameResult {
        /// Frame sequence number.
        seq: u64,
        /// Matched object tag, if any.
        matched: Option<String>,
        /// Server-side SURF + decode time, seconds (virtual).
        compute_s: f64,
        /// Server-side matching time, seconds (virtual).
        match_s: f64,
        /// Candidate objects examined.
        candidates: usize,
    },
    /// LTE-direct rxPower report for the localization manager.
    RxReport {
        /// Landmark name.
        landmark: String,
        /// Received power, dBm.
        rx_power_dbm: f64,
    },
    /// Device manager → MRS: request MEC connectivity for a service.
    MrsRequest {
        /// Service name discovered over LTE-direct.
        service: String,
        /// Requesting UE's IP.
        ue_addr: Ipv4Addr,
        /// Create (true) or delete (false) connectivity.
        create: bool,
    },
    /// CI server → MRS: periodic liveness beat for the lease table. A
    /// server that stops beating is evicted from service resolution
    /// after the MRS misses N of its last M lease audits.
    Heartbeat {
        /// Service the server is registered under (diagnostic; liveness
        /// is tracked per server address).
        service: String,
        /// The beating server's address.
        server: Ipv4Addr,
    },
    /// MRS → device manager: connectivity outcome.
    MrsAck {
        /// Service the answer refers to.
        service: String,
        /// Was a bearer (de)activated?
        ok: bool,
        /// Address of the selected CI server.
        server: Option<Ipv4Addr>,
    },
}

impl AppMsg {
    /// Encode into a UDP packet. `extra_len` models payload bytes that are
    /// not literally stored (e.g. compressed image data in a frame chunk).
    pub fn into_packet(
        &self,
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        extra_len: u32,
        at: Instant,
    ) -> Packet {
        let body = serde_json::to_vec(self).expect("app message serializes");
        let mut pkt = Packet::udp_with_payload(src, dst, Bytes::from(body));
        pkt.app_len = extra_len;
        pkt.created = at;
        pkt
    }

    /// Decode from a packet payload.
    pub fn from_packet(pkt: &Packet) -> Option<AppMsg> {
        if pkt.protocol != proto::UDP {
            return None;
        }
        serde_json::from_slice(&pkt.payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_vision::image::Resolution;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            AppMsg::FrameChunk {
                seq: 3,
                chunk: 0,
                total_chunks: 4,
                meta: Some(FrameMeta {
                    spec: ImageSpec::new(9, Resolution::E2E),
                    codec: Codec::Jpeg(90),
                    view_seed: 42,
                    captured_at_nanos: 1_000,
                }),
            },
            AppMsg::FrameChunk {
                seq: 3,
                chunk: 1,
                total_chunks: 4,
                meta: None,
            },
            AppMsg::ChunkAck { seq: 3, chunk: 1 },
            AppMsg::FrameResult {
                seq: 3,
                matched: Some("food#2".into()),
                compute_s: 0.05,
                match_s: 0.08,
                candidates: 20,
            },
            AppMsg::RxReport {
                landmark: "L4".into(),
                rx_power_dbm: -71.5,
            },
            AppMsg::MrsRequest {
                service: "acme".into(),
                ue_addr: ip(1),
                create: true,
            },
            AppMsg::Heartbeat {
                service: "acme".into(),
                server: ip(3),
            },
            AppMsg::MrsAck {
                service: "acme".into(),
                ok: true,
                server: Some(ip(2)),
            },
        ];
        for m in msgs {
            let pkt = m.into_packet((ip(1), APP_PORT), (ip(2), AR_PORT), 0, Instant::ZERO);
            assert_eq!(AppMsg::from_packet(&pkt), Some(m));
        }
    }

    #[test]
    fn extra_len_inflates_wire_size() {
        let m = AppMsg::FrameChunk {
            seq: 0,
            chunk: 0,
            total_chunks: 1,
            meta: Some(FrameMeta {
                spec: ImageSpec::new(1, Resolution::E2E),
                codec: Codec::Jpeg(90),
                view_seed: 0,
                captured_at_nanos: 0,
            }),
        };
        let small = m.into_packet((ip(1), 1), (ip(2), 2), 0, Instant::ZERO);
        let big = m.into_packet((ip(1), 1), (ip(2), 2), 1_300, Instant::ZERO);
        assert_eq!(big.wire_size(), small.wire_size() + 1_300);
    }
}
