//! The AR front-end node: camera capture → JPEG encode (on the phone) →
//! windowed chunk upload → result, with per-frame latency breakdown.
//!
//! Runs as an app on the UE. When configured with an MRS target it first
//! performs the ACACIA device-manager handshake (request MEC connectivity,
//! wait for the ack) before streaming — the paper's on-demand dedicated
//! bearer. It also pushes periodic LTE-direct rxPower reports to the CI
//! server for localization.

use crate::msg::{AppMsg, FrameMeta, APP_PORT, AR_PORT, MRS_PORT};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId, TimerHandle};
use acacia_simnet::time::{Duration, Instant};
use acacia_vision::compress::Codec;
use acacia_vision::compute::{Device, DeviceProfile};
use acacia_vision::image::{camera_preview_fps, ImageSpec, Resolution};
use std::net::Ipv4Addr;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ArFrontendConfig {
    /// UE IP (source of all packets).
    pub ue_ip: Ipv4Addr,
    /// CI (AR) server address.
    pub server: Ipv4Addr,
    /// MRS to perform the connectivity handshake with (None = start
    /// streaming immediately, e.g. the CLOUD baseline).
    pub mrs: Option<(Ipv4Addr, String)>,
    /// Camera resolution (§7.4 uses 720×480).
    pub resolution: Resolution,
    /// Frame codec.
    pub codec: Codec,
    /// Phone compute profile (encode cost).
    pub device: Device,
    /// Upload window in bytes (ack-clocked).
    pub window_bytes: u32,
    /// Chunk (MTU payload) size in bytes.
    pub chunk_bytes: u32,
    /// Frames to capture before stopping.
    pub frame_count: u64,
    /// Scene ids (database object ids) the user photographs, cycled.
    pub scene_ids: Vec<u64>,
    /// LTE-direct readings to report, re-sent every `report_period`.
    pub rx_reports: Vec<(String, f64)>,
    /// A *schedule* of readings for a moving user: entry `i` is sent at
    /// the `i`-th report tick (the last entry repeats). Takes precedence
    /// over `rx_reports` when non-empty.
    pub rx_report_schedule: Vec<Vec<(String, f64)>>,
    /// Report period (the LTE-direct discovery period).
    pub report_period: Duration,
    /// Minimum spacing between captures (None = camera-limited). Models a
    /// user who points at a new object every so often rather than
    /// streaming back-to-back.
    pub min_frame_interval: Option<Duration>,
    /// Device-manager lease recheck: when set, a streaming client
    /// re-validates its MEC resolution with the MRS at this period. If
    /// the MRS has evicted the serving server (lease lapsed), the answer
    /// carries a different address and the client fails the session over
    /// to it (see [`ArFrontend::failovers`]).
    pub lease_recheck: Option<Duration>,
}

impl ArFrontendConfig {
    /// Sensible defaults for the end-to-end experiment.
    pub fn new(ue_ip: Ipv4Addr, server: Ipv4Addr) -> ArFrontendConfig {
        ArFrontendConfig {
            ue_ip,
            server,
            mrs: None,
            resolution: Resolution::E2E,
            codec: Codec::Jpeg(90),
            device: Device::OnePlusOne,
            window_bytes: 16 * 1024,
            chunk_bytes: 1_400,
            frame_count: 10,
            scene_ids: vec![1],
            rx_reports: Vec::new(),
            rx_report_schedule: Vec::new(),
            report_period: Duration::from_secs(5),
            min_frame_interval: None,
            lease_recheck: None,
        }
    }
}

/// Per-frame client-side measurements.
#[derive(Debug, Clone)]
pub struct FrameStats {
    /// Frame sequence number.
    pub seq: u64,
    /// Capture instant.
    pub captured_at: Instant,
    /// Phone-side encode time, seconds (virtual).
    pub encode_s: f64,
    /// Result arrival instant.
    pub result_at: Instant,
    /// Server-reported decode + SURF time, seconds.
    pub server_compute_s: f64,
    /// Server-reported match time, seconds.
    pub server_match_s: f64,
    /// Candidates the server examined.
    pub candidates: usize,
    /// Matched tag, if any.
    pub matched: Option<String>,
}

impl FrameStats {
    /// End-to-end latency (capture → result).
    pub fn total_s(&self) -> f64 {
        (self.result_at - self.captured_at).secs_f64()
    }

    /// Compute component: client encode + server decode/SURF.
    pub fn compute_s(&self) -> f64 {
        self.encode_s + self.server_compute_s
    }

    /// Match component.
    pub fn match_s(&self) -> f64 {
        self.server_match_s
    }

    /// Network component: what's left after compute and match.
    pub fn network_s(&self) -> f64 {
        (self.total_s() - self.compute_s() - self.match_s()).max(0.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Boot,
    AwaitingMrs,
    Streaming,
    Done,
}

mod token {
    /// Start (MRS handshake or first capture).
    pub const KICKOFF: u64 = 1;
    /// Capture the next frame.
    pub const CAPTURE: u64 = 2;
    /// Encoding finished; begin upload.
    pub const ENCODED: u64 = 3;
    /// Send the periodic rxPower reports.
    pub const REPORT: u64 = 4;
    /// Loss-recovery check for the in-flight frame. Carries the arming
    /// epoch in the bits above [`BITS`]: only the most recently armed
    /// timer is live, so re-arming (e.g. a new frame upload) implicitly
    /// cancels every older pending check instead of letting them stack up
    /// and race each other's stall watermark.
    pub const RETRANSMIT: u64 = 5;
    /// Re-issue the MRS connectivity request mid-stream (after a
    /// serving-cell change); idempotent at the MRS/PCEF.
    pub const REANCHOR: u64 = 6;
    /// Periodic device-manager lease recheck (self-rescheduling while
    /// streaming; see `ArFrontendConfig::lease_recheck`).
    pub const RECHECK: u64 = 7;
    /// Low bits reserved for the token kind; high bits carry an epoch.
    pub const BITS: u32 = 8;
    /// Mask selecting the token kind.
    pub const MASK: u64 = (1 << BITS) - 1;
}

/// The AR front-end node.
pub struct ArFrontend {
    cfg: ArFrontendConfig,
    profile: DeviceProfile,
    phase: Phase,
    seq: u64,
    captured_at: Instant,
    encode_s: f64,
    /// Upload state of the in-flight frame.
    total_chunks: u32,
    next_chunk: u32,
    /// Per-chunk ack flags for the in-flight frame (selective repeat).
    acked: Vec<bool>,
    /// Chunks acked by the server for the in-flight frame.
    acked_chunks: u32,
    /// Is an upload currently in flight (between ENCODED and the result)?
    uploading: bool,
    /// Progress watermark used by the retransmission timer: (seq,
    /// acked_chunks) at the last check.
    retx_watermark: (u64, u32),
    /// Epoch of the live retransmission timer; stale timers (armed before
    /// the last `arm_retx`) are ignored when they fire.
    retx_epoch: u64,
    /// Engine handle of the live retransmission timer, so re-arming
    /// cancels the superseded one in the scheduler.
    retx_timer: Option<TimerHandle>,
    /// Consecutive stalled checks while awaiting the server's result (the
    /// server may legitimately be computing for a while).
    result_stall_checks: u32,
    /// Retransmissions performed (for diagnostics/tests).
    pub retransmissions: u64,
    /// Mid-stream MRS re-anchor requests issued (serving-cell changes).
    pub reanchor_requests: u64,
    /// MRS acks received while already streaming (re-anchor confirms).
    pub reanchor_acks: u64,
    /// The CI server the session is currently anchored to. Starts at
    /// `cfg.server` and moves when an MRS answer resolves elsewhere (the
    /// serving MEC's lease lapsed, or it was restored).
    current_server: Ipv4Addr,
    /// Session failovers performed (adoptions of a different server).
    pub failovers: u64,
    /// One entry per failover: (when, service interruption) — the gap
    /// since the last forward progress (chunk ack / result / upload
    /// start) at the moment the new server was adopted.
    pub failover_log: Vec<(Instant, Duration)>,
    /// Lease rechecks issued (periodic idempotent MRS re-requests).
    pub lease_rechecks: u64,
    /// Instant of the last forward progress on the session.
    last_progress_at: Instant,
    spec: ImageSpec,
    /// Bearer-setup handshake duration (when MRS is configured).
    pub bearer_setup: Option<Duration>,
    mrs_requested_at: Option<Instant>,
    /// Completed frame statistics.
    pub frames: Vec<FrameStats>,
    /// Report ticks emitted so far (indexes the report schedule).
    report_ticks: usize,
}

impl ArFrontend {
    /// The timer token that must be armed to start the client:
    /// `sim.schedule_timer(node, start, ArFrontend::KICKOFF)`.
    pub const KICKOFF: u64 = token::KICKOFF;

    /// Timer token asking a *streaming* client to repeat its MRS
    /// connectivity handshake (the device-manager path after a
    /// serving-cell change). The request is idempotent at the PCEF: if
    /// the dedicated bearer survived the handover it just acks; if it was
    /// torn down, it is re-created on the new cell.
    pub const REANCHOR: u64 = token::REANCHOR;

    /// The CI server the session is currently anchored to (moves on
    /// failover; starts at `cfg.server`).
    pub fn current_server(&self) -> Ipv4Addr {
        self.current_server
    }

    /// New client.
    pub fn new(cfg: ArFrontendConfig) -> ArFrontend {
        let profile = cfg.device.profile();
        let current_server = cfg.server;
        ArFrontend {
            cfg,
            profile,
            phase: Phase::Boot,
            seq: 0,
            captured_at: Instant::ZERO,
            encode_s: 0.0,
            total_chunks: 0,
            next_chunk: 0,
            acked: Vec::new(),
            acked_chunks: 0,
            uploading: false,
            retx_watermark: (u64::MAX, 0),
            retx_epoch: 0,
            retx_timer: None,
            result_stall_checks: 0,
            retransmissions: 0,
            reanchor_requests: 0,
            reanchor_acks: 0,
            current_server,
            failovers: 0,
            failover_log: Vec::new(),
            lease_rechecks: 0,
            last_progress_at: Instant::ZERO,
            spec: ImageSpec::new(0, Resolution::E2E),
            bearer_setup: None,
            mrs_requested_at: None,
            frames: Vec::new(),
            report_ticks: 0,
        }
    }

    /// Has the client finished its configured frame budget?
    pub fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn camera_interval(&self) -> Duration {
        let cam = Duration::from_secs_f64(1.0 / camera_preview_fps(self.cfg.resolution));
        match self.cfg.min_frame_interval {
            Some(min) => cam.max(min),
            None => cam,
        }
    }

    fn send_app(&self, ctx: &mut Ctx<'_>, dst: (Ipv4Addr, u16), msg: &AppMsg, extra: u32) {
        let pkt = msg.into_packet((self.cfg.ue_ip, APP_PORT), dst, extra, ctx.now());
        ctx.send(0, pkt);
    }

    fn capture(&mut self, ctx: &mut Ctx<'_>) {
        if self.seq >= self.cfg.frame_count {
            self.phase = Phase::Done;
            return;
        }
        let scene = self.cfg.scene_ids[(self.seq as usize) % self.cfg.scene_ids.len()];
        self.spec = ImageSpec::new(scene, self.cfg.resolution);
        self.captured_at = ctx.now();
        self.encode_s = self.cfg.codec.encode_time_s(self.spec, &self.profile);
        ctx.schedule_in(Duration::from_secs_f64(self.encode_s), token::ENCODED);
    }

    fn frame_bytes(&self) -> u32 {
        self.cfg.codec.bytes(self.spec) as u32
    }

    fn send_chunk(&mut self, ctx: &mut Ctx<'_>, chunk: u32) {
        let total_bytes = self.frame_bytes();
        let full = self.cfg.chunk_bytes;
        let offset = chunk * full;
        let this = full.min(total_bytes.saturating_sub(offset)).max(1);
        let meta = (chunk == 0).then(|| FrameMeta {
            spec: self.spec,
            codec: self.cfg.codec,
            view_seed: self.seq.wrapping_mul(0x9e37_79b9) ^ self.spec.scene_id,
            captured_at_nanos: self.captured_at.nanos(),
        });
        let msg = AppMsg::FrameChunk {
            seq: self.seq,
            chunk,
            total_chunks: self.total_chunks,
            meta,
        };
        self.send_app(ctx, (self.current_server, AR_PORT), &msg, this);
    }

    fn begin_upload(&mut self, ctx: &mut Ctx<'_>) {
        let total_bytes = self.frame_bytes();
        self.total_chunks = total_bytes.div_ceil(self.cfg.chunk_bytes).max(1);
        let window_chunks = (self.cfg.window_bytes / self.cfg.chunk_bytes).max(1);
        let initial = window_chunks.min(self.total_chunks);
        for c in 0..initial {
            self.send_chunk(ctx, c);
        }
        self.next_chunk = initial;
        self.acked = vec![false; self.total_chunks as usize];
        self.acked_chunks = 0;
        self.uploading = true;
        self.result_stall_checks = 0;
        self.last_progress_at = ctx.now();
        // Arm loss recovery with the watermark at the current (zero-ack)
        // state, so a first window lost outright is detected at the very
        // first timer fire.
        self.retx_watermark = (self.seq, self.acked_chunks);
        self.arm_retx(ctx);
    }

    /// Retransmission timeout: generous multiple of a worst-case RTT.
    fn retx_timeout(&self) -> Duration {
        Duration::from_millis(500)
    }

    /// (Re)arm the loss-recovery timer, cancelling any pending one in the
    /// scheduler (the epoch check remains as a second line of defence).
    fn arm_retx(&mut self, ctx: &mut Ctx<'_>) {
        self.retx_epoch += 1;
        if let Some(h) = self.retx_timer.take() {
            ctx.cancel_timer(h);
        }
        self.retx_timer = Some(ctx.schedule_in_cancellable(
            self.retx_timeout(),
            token::RETRANSMIT | (self.retx_epoch << token::BITS),
        ));
    }

    /// Restart the in-flight frame's upload from chunk 0 (lost
    /// FrameResult, or a freshly adopted server with empty state).
    fn replay_frame(&mut self, ctx: &mut Ctx<'_>) {
        self.acked.iter_mut().for_each(|a| *a = false);
        self.acked_chunks = 0;
        let window_chunks = (self.cfg.window_bytes / self.cfg.chunk_bytes).max(1);
        let resend = window_chunks.min(self.total_chunks);
        for c in 0..resend {
            self.send_chunk(ctx, c);
        }
        self.next_chunk = resend;
    }

    /// Move the session to a different CI server (the MRS resolved
    /// elsewhere). The new server has no session state, so the in-flight
    /// frame — if any — is replayed from scratch, exactly like the lost
    /// FrameResult path. The interruption recorded is the gap since the
    /// session last made forward progress.
    fn adopt_server(&mut self, ctx: &mut Ctx<'_>, server: Ipv4Addr) {
        self.failovers += 1;
        let gap = ctx.now() - self.last_progress_at;
        self.failover_log.push((ctx.now(), gap));
        self.current_server = server;
        if self.uploading {
            self.replay_frame(ctx);
            self.result_stall_checks = 0;
            self.retx_watermark = (self.seq, self.acked_chunks);
            self.arm_retx(ctx);
        }
    }

    fn check_retransmit(&mut self, ctx: &mut Ctx<'_>) {
        if self.phase != Phase::Streaming || !self.uploading {
            return;
        }
        let current = (self.seq, self.acked_chunks);
        let stalled = current == self.retx_watermark;
        let upload_complete = self.acked_chunks >= self.total_chunks;
        // While the upload itself is stalled (unacked chunks), resend
        // promptly. Once everything is acked the server may legitimately
        // be computing for a while — only resend after several quiet
        // periods (a lost FrameResult).
        let should_resend = if upload_complete {
            if stalled {
                self.result_stall_checks += 1;
            } else {
                self.result_stall_checks = 0;
            }
            self.result_stall_checks >= 4
        } else {
            stalled
        };
        if should_resend {
            self.retransmissions += 1;
            self.result_stall_checks = 0;
            if upload_complete {
                // Lost FrameResult: the server already consumed its copy
                // of the frame, so replay the upload from scratch to make
                // it reassemble and reprocess (acks re-clock the window).
                self.replay_frame(ctx);
            } else {
                // Selective repeat: resend exactly the outstanding (sent
                // but unacked) chunks — the server acks duplicates, so an
                // ack lost on the way back heals the same way.
                for c in 0..self.next_chunk {
                    if !self.acked[c as usize] {
                        self.send_chunk(ctx, c);
                    }
                }
            }
        }
        self.retx_watermark = (self.seq, self.acked_chunks);
        self.arm_retx(ctx);
    }

    fn on_result(
        &mut self,
        ctx: &mut Ctx<'_>,
        seq: u64,
        matched: Option<String>,
        compute_s: f64,
        match_s: f64,
        cands: usize,
    ) {
        if seq != self.seq || self.phase != Phase::Streaming {
            return;
        }
        self.uploading = false;
        self.last_progress_at = ctx.now();
        self.frames.push(FrameStats {
            seq,
            captured_at: self.captured_at,
            encode_s: self.encode_s,
            result_at: ctx.now(),
            server_compute_s: compute_s,
            server_match_s: match_s,
            candidates: cands,
            matched,
        });
        self.seq += 1;
        if self.seq >= self.cfg.frame_count {
            self.phase = Phase::Done;
            return;
        }
        // Closed loop, but never faster than the camera.
        let next = (self.captured_at + self.camera_interval()).max(ctx.now());
        ctx.schedule_at(next, token::CAPTURE);
    }

    fn send_reports(&mut self, ctx: &mut Ctx<'_>) {
        let readings = if self.cfg.rx_report_schedule.is_empty() {
            self.cfg.rx_reports.clone()
        } else {
            let idx = self.report_ticks.min(self.cfg.rx_report_schedule.len() - 1);
            self.cfg.rx_report_schedule[idx].clone()
        };
        self.report_ticks += 1;
        for (landmark, rx) in readings {
            let msg = AppMsg::RxReport {
                landmark,
                rx_power_dbm: rx,
            };
            self.send_app(ctx, (self.current_server, AR_PORT), &msg, 0);
        }
    }

    /// Are periodic reports configured at all?
    fn has_reports(&self) -> bool {
        !self.cfg.rx_reports.is_empty() || !self.cfg.rx_report_schedule.is_empty()
    }
}

impl Node for ArFrontend {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        match AppMsg::from_packet(&pkt) {
            Some(AppMsg::MrsAck { ok, server, .. }) if self.phase == Phase::Streaming => {
                if ok {
                    // Re-anchor confirmation after a cell change;
                    // streaming never stopped (selective repeat bridged
                    // the gap).
                    self.reanchor_acks += 1;
                }
                // The MRS resolved a *different* server: the serving
                // MEC's lease lapsed (or was restored). Fail the session
                // over regardless of `ok` — ok:false with an address
                // means no dedicated bearer could be set up, so the new
                // leg simply rides the default bearer.
                if let Some(s) = server {
                    if s != self.current_server {
                        self.adopt_server(ctx, s);
                    }
                }
            }
            Some(AppMsg::MrsAck { ok, server, .. }) if self.phase == Phase::AwaitingMrs => {
                if let Some(t0) = self.mrs_requested_at {
                    self.bearer_setup = Some(ctx.now() - t0);
                }
                if ok {
                    self.phase = Phase::Streaming;
                    // Anchor to whatever the MRS resolved (it may not be
                    // the configured default, e.g. a dead local MEC at
                    // boot time).
                    if let Some(s) = server {
                        self.current_server = s;
                    }
                    self.last_progress_at = ctx.now();
                    if let Some(period) = self.cfg.lease_recheck {
                        ctx.schedule_in(period, token::RECHECK);
                    }
                    if self.has_reports() {
                        self.send_reports(ctx);
                        ctx.schedule_in(self.cfg.report_period, token::REPORT);
                    }
                    self.capture(ctx);
                } else {
                    self.phase = Phase::Done;
                }
            }
            Some(AppMsg::ChunkAck { seq, chunk })
                if seq == self.seq && self.phase == Phase::Streaming =>
            {
                // First ack for a chunk clocks the window forward;
                // duplicate acks (from retransmitted chunks) are ignored.
                if let Some(slot) = self.acked.get_mut(chunk as usize) {
                    if !*slot {
                        *slot = true;
                        self.acked_chunks += 1;
                        self.last_progress_at = ctx.now();
                        if self.next_chunk < self.total_chunks {
                            let c = self.next_chunk;
                            self.next_chunk += 1;
                            self.send_chunk(ctx, c);
                        }
                    }
                }
            }
            Some(AppMsg::FrameResult {
                seq,
                matched,
                compute_s,
                match_s,
                candidates,
            }) => self.on_result(ctx, seq, matched, compute_s, match_s, candidates),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tok: u64) {
        if tok & token::MASK == token::RETRANSMIT {
            // Only the most recently armed check is live; a stale timer
            // (superseded by a later arm_retx) dies here without firing
            // or rescheduling.
            if tok >> token::BITS != self.retx_epoch {
                return;
            }
            self.retx_timer = None; // this fire consumed the live timer
            if self.phase == Phase::AwaitingMrs {
                // MRS request or ack lost: ask again (the MRS side is
                // idempotent per service).
                if let Some((mrs_addr, service)) = self.cfg.mrs.clone() {
                    self.retransmissions += 1;
                    let msg = AppMsg::MrsRequest {
                        service,
                        ue_addr: self.cfg.ue_ip,
                        create: true,
                    };
                    self.send_app(ctx, (mrs_addr, MRS_PORT), &msg, 0);
                    self.arm_retx(ctx);
                }
            } else {
                self.check_retransmit(ctx);
            }
            return;
        }
        match tok {
            token::KICKOFF => match &self.cfg.mrs {
                Some((mrs_addr, service)) => {
                    self.phase = Phase::AwaitingMrs;
                    self.mrs_requested_at = Some(ctx.now());
                    let msg = AppMsg::MrsRequest {
                        service: service.clone(),
                        ue_addr: self.cfg.ue_ip,
                        create: true,
                    };
                    let dst = (*mrs_addr, MRS_PORT);
                    self.send_app(ctx, dst, &msg, 0);
                    self.arm_retx(ctx);
                }
                None => {
                    self.phase = Phase::Streaming;
                    if self.has_reports() {
                        self.send_reports(ctx);
                        ctx.schedule_in(self.cfg.report_period, token::REPORT);
                    }
                    self.capture(ctx);
                }
            },
            token::CAPTURE if self.phase == Phase::Streaming => {
                self.capture(ctx);
            }
            token::ENCODED if self.phase == Phase::Streaming => {
                self.begin_upload(ctx);
            }
            token::REPORT if self.phase == Phase::Streaming => {
                self.send_reports(ctx);
                ctx.schedule_in(self.cfg.report_period, token::REPORT);
            }
            token::REANCHOR if self.phase == Phase::Streaming => {
                if let Some((mrs_addr, service)) = self.cfg.mrs.clone() {
                    self.reanchor_requests += 1;
                    let msg = AppMsg::MrsRequest {
                        service,
                        ue_addr: self.cfg.ue_ip,
                        create: true,
                    };
                    self.send_app(ctx, (mrs_addr, MRS_PORT), &msg, 0);
                }
            }
            token::RECHECK if self.phase == Phase::Streaming => {
                // Periodic lease recheck: idempotent re-request. If the
                // serving MEC is still live the MRS answers with the same
                // address (no-op); if its lease lapsed, the answer names
                // the failover target and `adopt_server` runs.
                if let Some((mrs_addr, service)) = self.cfg.mrs.clone() {
                    self.lease_rechecks += 1;
                    let msg = AppMsg::MrsRequest {
                        service,
                        ue_addr: self.cfg.ue_ip,
                        create: true,
                    };
                    self.send_app(ctx, (mrs_addr, MRS_PORT), &msg, 0);
                }
                if let Some(period) = self.cfg.lease_recheck {
                    ctx.schedule_in(period, token::RECHECK);
                }
            }
            _ => {}
        }
    }
}
