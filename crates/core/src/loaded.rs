//! Congested multi-UE handover scenario: the scale-out walk under
//! background load swept through and above the shared core's capacity.
//!
//! The paper's Fig. 3(g) shows what congestion does to a *cloud* path:
//! once offered load crosses the core link's capacity, the bottleneck
//! queue fills and every flow through it sees seconds of queueing delay
//! and mounting loss. ACACIA's answer is architectural: dedicated-bearer
//! AR traffic terminates at the eNB-local MEC gateway and never crosses
//! the congested core, and what little of it must share a link rides a
//! higher DSCP class than the best-effort background (see
//! `acacia_simnet::link`'s strict-priority scheduler).
//!
//! This scenario stresses exactly that claim at scale: N UEs walk the
//! two-cell course (two handovers each) while a constant-bit-rate
//! background flood crosses the SGW-U → PGW-U core leg, and each UE
//! additionally pings a cloud reflector through that same leg. Above
//! capacity the cloud probes inflate toward `queue_bytes / rate`
//! (~1 s at the defaults — the paper's 1.008 s) and start dropping,
//! while the MEC sessions keep completing and per-handover interruption
//! stays bounded: congestion collapse on the shared path, business as
//! usual on the context-aware one.
//!
//! Sequencing matters: the background window opens only after the last
//! UE's stagger has elapsed, i.e. after every MRS handshake has placed
//! its dedicated bearer. Bearer *setup* crosses the core (the MRS lives
//! in the cloud), so flooding during setup would starve sessions before
//! they reach the protected path — a provisioning-under-congestion
//! story, not the steady-state handover story this experiment measures.

use crate::scale::{ScaleConfig, ScaleScenario};
use acacia_lte::network::addr;
use acacia_lte::ue::{AppSelector, Ue};
use acacia_simnet::link::{ClassStats, LinkConfig};
use acacia_simnet::packet::proto;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;
use acacia_simnet::transport::PingAgent;

/// Loaded-scenario parameters.
#[derive(Debug, Clone)]
pub struct LoadedConfig {
    /// The underlying scale-out scenario (UE count, pacing, walks), with
    /// its core narrowed to [`LoadedConfig::CORE_RATE_BPS`].
    pub scale: ScaleConfig,
    /// Background constant-bit-rate load through the core, bits/s.
    /// Zero disables the flood (the unloaded baseline).
    pub bg_rate_bps: u64,
    /// Per-UE cloud-probe spacing.
    pub probe_interval: Duration,
    /// Cloud probes each UE sends.
    pub probe_count: u64,
}

impl LoadedConfig {
    /// Narrowed shared-core rate: 100 Mbit/s, the regime of Fig. 3(g).
    pub const CORE_RATE_BPS: u64 = 100_000_000;
    /// Core queue bound. 12 MiB at 100 Mbit/s drains in ~1.0 s — the
    /// saturated RTT plateau of Fig. 3(g).
    pub const CORE_QUEUE_BYTES: u64 = 12 * 1024 * 1024;

    /// The benchmark configuration: `ue_count` sessions against a
    /// `bg_mbps` Mbit/s flood.
    pub fn figure(ue_count: usize, bg_mbps: u64) -> LoadedConfig {
        let mut scale = ScaleConfig::figure(ue_count);
        scale.core_rate_bps = Self::CORE_RATE_BPS;
        scale.core_queue_bytes = Self::CORE_QUEUE_BYTES;
        LoadedConfig {
            scale,
            bg_rate_bps: bg_mbps * 1_000_000,
            probe_interval: Duration::from_millis(200),
            probe_count: 50,
        }
    }

    /// Smaller/faster variant for tests.
    pub fn smoke(ue_count: usize, bg_mbps: u64) -> LoadedConfig {
        let mut cfg = LoadedConfig::figure(ue_count, bg_mbps);
        cfg.scale = ScaleConfig {
            core_rate_bps: cfg.scale.core_rate_bps,
            core_queue_bytes: cfg.scale.core_queue_bytes,
            ..ScaleConfig::smoke(ue_count)
        };
        cfg.probe_count = 25;
        cfg
    }
}

/// Per-UE outcome of a loaded run.
#[derive(Debug, Clone)]
pub struct LoadedUeReport {
    /// Frames that completed end-to-end (MEC path).
    pub frames_done: u64,
    /// Serving-cell switches completed.
    pub handovers: u64,
    /// Client-side retransmissions.
    pub retransmissions: u64,
    /// Per-handover downlink interruption, milliseconds. Resolved by the
    /// 25 ms MEC liveness probe, as in the mobility scenario.
    pub interruptions_ms: Vec<f64>,
    /// Cloud-probe round trips, milliseconds (congested path).
    pub probe_rtts_ms: Vec<f64>,
    /// Cloud probes sent.
    pub probes_sent: u64,
    /// Cloud probes never answered.
    pub probes_lost: u64,
    /// MEC liveness-probe round trips, milliseconds (dedicated bearer).
    pub mec_rtts_ms: Vec<f64>,
    /// MEC probes sent.
    pub mec_probes_sent: u64,
    /// MEC probes never answered (lost in handover gaps).
    pub mec_probes_lost: u64,
}

/// Results of a loaded run.
#[derive(Debug, Clone)]
pub struct LoadedReport {
    /// UEs that ran.
    pub ue_count: usize,
    /// Background load offered through the core, bits/s.
    pub bg_rate_bps: u64,
    /// The core leg's capacity, bits/s.
    pub core_rate_bps: u64,
    /// Frames each session was asked to complete.
    pub frames_requested: u64,
    /// Per-UE outcomes, in UE-index order.
    pub ues: Vec<LoadedUeReport>,
    /// Per-DSCP-class queue counters on the SGW-U → PGW-U leg, in
    /// ascending class order.
    pub core_classes: Vec<(u8, ClassStats)>,
    /// Total queue-bound drops on that leg (all classes).
    pub core_drops_queue: u64,
    /// X2AP messages on the wire (handover signalling).
    pub x2_msgs: u64,
    /// Engine events dispatched over the whole run.
    pub events_processed: u64,
    /// Simulated time the run covered.
    pub sim_elapsed: Duration,
}

impl LoadedReport {
    /// Sessions that did not complete every requested frame.
    pub fn wedged(&self) -> usize {
        self.ues
            .iter()
            .filter(|u| u.frames_done < self.frames_requested)
            .count()
    }

    /// Total handovers across every UE.
    pub fn total_handovers(&self) -> u64 {
        self.ues.iter().map(|u| u.handovers).sum()
    }

    /// Total client-side retransmissions across every UE.
    pub fn total_retransmissions(&self) -> u64 {
        self.ues.iter().map(|u| u.retransmissions).sum()
    }

    /// Every per-handover interruption across every UE, milliseconds.
    pub fn interruptions_ms(&self) -> Vec<f64> {
        self.ues
            .iter()
            .flat_map(|u| u.interruptions_ms.iter().copied())
            .collect()
    }

    /// Worst single-handover interruption, milliseconds (0 if none).
    pub fn interrupt_max_ms(&self) -> f64 {
        self.interruptions_ms().into_iter().fold(0.0, f64::max)
    }

    /// Every cloud-probe RTT across every UE, milliseconds.
    pub fn probe_rtts_ms(&self) -> Vec<f64> {
        self.ues
            .iter()
            .flat_map(|u| u.probe_rtts_ms.iter().copied())
            .collect()
    }

    /// Cloud probes sent across every UE.
    pub fn probes_sent(&self) -> u64 {
        self.ues.iter().map(|u| u.probes_sent).sum()
    }

    /// Cloud probes lost across every UE.
    pub fn probes_lost(&self) -> u64 {
        self.ues.iter().map(|u| u.probes_lost).sum()
    }

    /// Every MEC liveness-probe RTT across every UE, milliseconds.
    pub fn mec_rtts_ms(&self) -> Vec<f64> {
        self.ues
            .iter()
            .flat_map(|u| u.mec_rtts_ms.iter().copied())
            .collect()
    }

    /// MEC probes sent across every UE.
    pub fn mec_probes_sent(&self) -> u64 {
        self.ues.iter().map(|u| u.mec_probes_sent).sum()
    }

    /// MEC probes lost across every UE.
    pub fn mec_probes_lost(&self) -> u64 {
        self.ues.iter().map(|u| u.mec_probes_lost).sum()
    }
}

/// A built loaded scenario.
pub struct LoadedScenario {
    scale: ScaleScenario,
    probes: Vec<NodeId>,
    mec_probes: Vec<NodeId>,
    cfg: LoadedConfig,
}

impl LoadedScenario {
    /// MEC liveness-probe spacing: resolves handover interruption to
    /// ±25 ms, matching the mobility scenario's instrument.
    const MEC_PROBE_INTERVAL: Duration = Duration::from_millis(25);

    /// Build the scenario: the scale-out topology plus a cloud reflector,
    /// a cloud-probe agent and a MEC liveness-probe agent per UE.
    pub fn build(cfg: LoadedConfig) -> LoadedScenario {
        let mut scale = ScaleScenario::build(cfg.scale.clone());
        // The congestion witness: a reflector on the far side of the
        // core, 2 ms beyond the internet — the Fig. 3(g) cloud server.
        let (_, cloud_addr) = scale.net.add_cloud_server(
            Box::new(Reflector::new()),
            LinkConfig::delay_only(Duration::from_millis(2)),
        );
        // MEC probes run from each UE's kickoff to past the end of the
        // last walk (same course geometry as the scale scenario).
        let walk = Duration::from_secs_f64(2.0 * crate::scale::WALK_SPAN_M / cfg.scale.speed_mps);
        let stagger_total =
            Duration::from_nanos(cfg.scale.stagger.nanos() * cfg.scale.ue_count as u64);
        let mec_count = (stagger_total + walk + Duration::from_secs(2)).millis()
            / Self::MEC_PROBE_INTERVAL.millis();
        let mut probes = Vec::with_capacity(cfg.scale.ue_count);
        let mut mec_probes = Vec::with_capacity(cfg.scale.ue_count);
        for i in 0..cfg.scale.ue_count {
            let ue_ip = scale
                .net
                .sim
                .node_ref::<Ue>(scale.net.ues[i])
                .ip
                .expect("scale build attaches every UE");
            let agent = PingAgent::new(ue_ip, cloud_addr, cfg.probe_interval, cfg.probe_count);
            let probe =
                scale
                    .net
                    .connect_ue_app(i, Box::new(agent), AppSelector::protocol(proto::ICMP));
            probes.push(probe);
            // The dedicated-bearer instrument: answered by the AR server,
            // riding whatever bearer the TFT puts AR-server traffic on.
            let mec_agent =
                PingAgent::new(ue_ip, addr::MEC_BASE, Self::MEC_PROBE_INTERVAL, mec_count);
            let mec_probe = scale.net.connect_ue_app(
                i,
                Box::new(mec_agent),
                AppSelector::protocol(proto::ICMP),
            );
            mec_probes.push(mec_probe);
        }
        LoadedScenario {
            scale,
            probes,
            mec_probes,
            cfg,
        }
    }

    /// Run every session to completion under load and collect the report.
    pub fn run(mut self) -> LoadedReport {
        let timeline = self.scale.schedule();
        // Open the flood only after the last stagger: every dedicated
        // bearer is in place, so congestion hits steady-state sessions
        // and their handovers, not the (core-crossing) MRS handshakes.
        let bg_start = timeline.start + timeline.stagger_total + Duration::from_secs(1);
        if self.cfg.bg_rate_bps > 0 {
            self.scale.net.start_background_traffic(
                self.cfg.bg_rate_bps,
                bg_start,
                timeline.deadline,
            );
        }
        // Cloud probes start once the bottleneck queue has begun to fill;
        // MEC liveness probes run from the start so every handover in
        // every walk is resolved.
        let probe_start = bg_start + Duration::from_secs(2);
        for &p in &self.probes {
            self.scale
                .net
                .sim
                .schedule_timer(p, probe_start, PingAgent::KICKOFF);
        }
        for &p in &self.mec_probes {
            self.scale
                .net
                .sim
                .schedule_timer(p, timeline.start, PingAgent::KICKOFF);
        }
        self.scale.await_sessions(&timeline);
        let base = self.scale.collect(&timeline);

        let net = &self.scale.net;
        let mut ues = Vec::with_capacity(base.ues.len());
        for (i, s) in base.ues.iter().enumerate() {
            let ue = net.sim.node_ref::<Ue>(net.ues[i]);
            let probe = net.sim.node_ref::<PingAgent>(self.probes[i]);
            let mec = net.sim.node_ref::<PingAgent>(self.mec_probes[i]);
            ues.push(LoadedUeReport {
                frames_done: s.frames_done,
                handovers: s.handovers,
                retransmissions: s.retransmissions,
                interruptions_ms: ue
                    .interruption_log
                    .iter()
                    .map(|&(_, d)| d.secs_f64() * 1e3)
                    .collect(),
                probe_rtts_ms: probe.rtts().iter().map(|d| d.secs_f64() * 1e3).collect(),
                probes_sent: probe.sent(),
                probes_lost: probe.lost(),
                mec_rtts_ms: mec.rtts().iter().map(|d| d.secs_f64() * 1e3).collect(),
                mec_probes_sent: mec.sent(),
                mec_probes_lost: mec.lost(),
            });
        }
        let core = net
            .sim
            .link_stats(net.core_uplink())
            .expect("the SGW-U → PGW-U leg always exists");
        LoadedReport {
            ue_count: base.ue_count,
            bg_rate_bps: self.cfg.bg_rate_bps,
            core_rate_bps: self.cfg.scale.core_rate_bps,
            frames_requested: base.frames_requested,
            ues,
            core_classes: core.classes.iter().map(|(&c, &s)| (c, s)).collect(),
            core_drops_queue: core.drops_queue,
            x2_msgs: base.x2_msgs,
            events_processed: base.events_processed,
            sim_elapsed: base.sim_elapsed,
        }
    }
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<LoadedConfig>();
    assert_send::<LoadedReport>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut v: Vec<f64>) -> f64 {
        assert!(!v.is_empty());
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn congestion_inflates_cloud_path_but_sessions_and_handovers_survive() {
        let unloaded = LoadedScenario::build(LoadedConfig::smoke(2, 0)).run();
        let loaded = LoadedScenario::build(LoadedConfig::smoke(2, 110)).run();

        // Every MEC session completes in both regimes.
        assert_eq!(unloaded.wedged(), 0, "unloaded baseline must not wedge");
        assert_eq!(loaded.wedged(), 0, "congestion must not wedge MEC sessions");
        assert!(unloaded.total_handovers() >= 4);
        assert!(loaded.total_handovers() >= 4);

        // The cloud path collapses above capacity…
        let base_ms = median(unloaded.probe_rtts_ms());
        let cong_ms = median(loaded.probe_rtts_ms());
        assert!(base_ms < 60.0, "unloaded cloud RTT sane: {base_ms:.1} ms");
        assert!(
            cong_ms > 5.0 * base_ms,
            "110% load must inflate the cloud RTT: {base_ms:.1} → {cong_ms:.1} ms"
        );

        // …while handover interruption stays bounded in both regimes.
        assert!(
            unloaded.interrupt_max_ms() <= 60.0,
            "unloaded interruption: {:.1} ms",
            unloaded.interrupt_max_ms()
        );
        assert!(
            loaded.interrupt_max_ms() <= 60.0,
            "congested interruption: {:.1} ms",
            loaded.interrupt_max_ms()
        );
    }

    #[test]
    fn per_class_counters_surface_on_the_core_leg() {
        let loaded = LoadedScenario::build(LoadedConfig::smoke(1, 110)).run();
        assert!(
            !loaded.core_classes.is_empty(),
            "the loaded core leg must report per-class stats"
        );
        // Background + default-bearer traffic is stamped DSCP 1 (ToS 4).
        let best_effort = loaded
            .core_classes
            .iter()
            .find(|&&(c, _)| c == 1)
            .map(|&(_, s)| s)
            .expect("best-effort class present on the core leg");
        assert!(best_effort.enqueued > 0);
        assert!(
            best_effort.drops_queue > 0,
            "110% load must overflow the best-effort queue"
        );
        assert_eq!(
            loaded.core_drops_queue,
            loaded
                .core_classes
                .iter()
                .map(|&(_, s)| s.drops_queue)
                .sum::<u64>(),
            "link-level drops are the sum of per-class drops"
        );
    }
}
