//! The MEC Registration Server (paper §5.3): the core-network Application
//! Function that CI device managers talk to.
//!
//! The MRS keeps a registry of CI services and the MEC servers hosting
//! them, picks the **closest** CI server for a requesting UE, and signals
//! the PCRF over Rx to create/delete the dedicated-bearer connectivity.

use crate::msg::{AppMsg, MRS_PORT};
use acacia_lte::qci::Qci;
use acacia_lte::wire::{ControlMsg, PolicyRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A CI server instance registered for a service.
#[derive(Debug, Clone)]
pub struct ServerInstance {
    /// Server address.
    pub addr: Ipv4Addr,
    /// Network distance score (e.g. hops or measured delay, lower =
    /// closer to the requesting UE's eNB).
    pub distance: f64,
}

/// MRS port map.
pub mod port {
    use super::PortId;
    /// Data-network side (UE requests over the default bearer).
    pub const DATA: PortId = 0;
    /// Rx toward the PCRF.
    pub const RX: PortId = 1;
}

struct Pending {
    service: String,
    reply_to: (Ipv4Addr, u16),
    server: Ipv4Addr,
}

/// The MRS node.
pub struct Mrs {
    /// Own address.
    pub addr: Ipv4Addr,
    /// Dedicated-bearer QCI handed to the PCRF.
    pub qci: Qci,
    registry: HashMap<String, Vec<ServerInstance>>,
    pending: HashMap<u32, Pending>,
    /// Stable (service, UE) → service-id binding: a re-request (e.g. the
    /// device manager re-confirming connectivity after a handover) must
    /// carry the *same* id so the PCEF can recognise it as idempotent
    /// instead of stacking a second bearer.
    allocated: HashMap<(String, Ipv4Addr), u32>,
    next_service_id: u32,
    /// Requests served (create + delete).
    pub requests: u64,
    /// Requests rejected (unknown service).
    pub rejected: u64,
}

impl Mrs {
    /// New MRS.
    pub fn new(addr: Ipv4Addr) -> Mrs {
        Mrs {
            addr,
            qci: Qci(7),
            registry: HashMap::new(),
            pending: HashMap::new(),
            allocated: HashMap::new(),
            next_service_id: 1,
            requests: 0,
            rejected: 0,
        }
    }

    /// Register a CI server for `service`.
    pub fn register_service(&mut self, service: &str, server: ServerInstance) {
        self.registry
            .entry(service.to_string())
            .or_default()
            .push(server);
    }

    /// The closest registered server for a service.
    pub fn closest(&self, service: &str) -> Option<&ServerInstance> {
        self.registry.get(service)?.iter().min_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("distance is finite")
        })
    }

    fn answer(
        &mut self,
        ctx: &mut Ctx<'_>,
        reply_to: (Ipv4Addr, u16),
        service: &str,
        ok: bool,
        server: Option<Ipv4Addr>,
    ) {
        let msg = AppMsg::MrsAck {
            service: service.to_string(),
            ok,
            server,
        };
        let pkt = msg.into_packet((self.addr, MRS_PORT), reply_to, 0, ctx.now());
        ctx.send(port::DATA, pkt);
    }
}

impl Node for Mrs {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        match in_port {
            port::DATA => {
                let Some(AppMsg::MrsRequest {
                    service,
                    ue_addr,
                    create,
                }) = AppMsg::from_packet(&pkt)
                else {
                    return;
                };
                self.requests += 1;
                let reply_to = (pkt.src, pkt.src_port);
                let Some(server) = self.closest(&service).map(|s| s.addr) else {
                    self.rejected += 1;
                    self.answer(ctx, reply_to, &service, false, None);
                    return;
                };
                let key = (service.clone(), ue_addr);
                let service_id = match self.allocated.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = self.next_service_id;
                        self.next_service_id += 1;
                        self.allocated.insert(key, id);
                        id
                    }
                };
                self.pending.insert(
                    service_id,
                    Pending {
                        service: service.clone(),
                        reply_to,
                        server,
                    },
                );
                let rule = PolicyRule {
                    service_id,
                    ue_addr,
                    server_addr: server,
                    server_port: 0,
                    qci: self.qci,
                    install: create,
                };
                let msg = ControlMsg::RxAuthRequest { rule };
                ctx.send(port::RX, msg.into_packet(self.addr, Ipv4Addr::UNSPECIFIED));
            }
            port::RX => {
                let Some(ControlMsg::RxAuthAnswer { service_id, ok }) =
                    ControlMsg::from_packet(&pkt)
                else {
                    return;
                };
                let Some(p) = self.pending.remove(&service_id) else {
                    return;
                };
                let service = p.service.clone();
                let server = Some(p.server);
                self.answer(ctx, p.reply_to, &service, ok, server);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 4, 0, a)
    }

    #[test]
    fn closest_server_selection() {
        let mut mrs = Mrs::new(ip(100));
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(1),
                distance: 5.0,
            },
        );
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(2),
                distance: 1.0,
            },
        );
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(3),
                distance: 9.0,
            },
        );
        assert_eq!(mrs.closest("acme").unwrap().addr, ip(2));
        assert!(mrs.closest("unknown").is_none());
    }

    #[test]
    fn unknown_service_is_rejected_via_data_port() {
        use acacia_simnet::link::LinkConfig;
        use acacia_simnet::sim::Simulator;
        use acacia_simnet::time::{Duration, Instant};
        use acacia_simnet::traffic::Sink;

        let mut sim = Simulator::new(1);
        let mrs = sim.add_node(Box::new(Mrs::new(ip(100))));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (mrs, port::DATA),
            (sink, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        let req = AppMsg::MrsRequest {
            service: "nope".into(),
            ue_addr: ip(9),
            create: true,
        }
        .into_packet((ip(9), 9000), (ip(100), MRS_PORT), 0, Instant::ZERO);
        sim.inject_packet(mrs, port::DATA, Instant::ZERO, req);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 1, "a NACK went out");
        let m = sim.node_ref::<Mrs>(mrs);
        assert_eq!(m.requests, 1);
        assert_eq!(m.rejected, 1);
    }
}
