//! The MEC Registration Server (paper §5.3): the core-network Application
//! Function that CI device managers talk to.
//!
//! The MRS keeps a registry of CI services and the MEC servers hosting
//! them, picks the **closest** CI server for a requesting UE, and signals
//! the PCRF over Rx to create/delete the dedicated-bearer connectivity.
//!
//! # Lease monitoring
//!
//! With [`Mrs::enable_lease_monitoring`], registered servers are expected
//! to send periodic [`AppMsg::Heartbeat`]s. A lease audit runs every
//! [`Timers::lease_check_period`]; a server whose beats are missing in at
//! least `lease_miss_n` of its last `lease_window_m` audits is **evicted**
//! — it stops being eligible for resolution, so the next device-manager
//! re-resolution fails over to the next-closest instance (a neighbor
//! region's MEC, or the cloud). A dead server that beats again (e.g.
//! after a crash-restart) is restored at the next audit. Liveness is per
//! *server address*: one eviction removes the server from every service
//! it backs.

use crate::msg::{AppMsg, MRS_PORT};
use acacia_lte::qci::Qci;
use acacia_lte::timers::Timers;
use acacia_lte::wire::{ControlMsg, PolicyRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// A CI server instance registered for a service.
#[derive(Debug, Clone)]
pub struct ServerInstance {
    /// Server address.
    pub addr: Ipv4Addr,
    /// Network distance score (e.g. hops or measured delay, lower =
    /// closer to the requesting UE's eNB).
    pub distance: f64,
}

/// MRS port map.
pub mod port {
    use super::PortId;
    /// Data-network side (UE requests over the default bearer).
    pub const DATA: PortId = 0;
    /// Rx toward the PCRF.
    pub const RX: PortId = 1;
}

struct Pending {
    service: String,
    reply_to: (Ipv4Addr, u16),
    server: Ipv4Addr,
}

/// Lease health of one monitored server.
#[derive(Debug, Clone)]
pub struct ServerHealth {
    /// Beats received since the last lease audit.
    beats_since_audit: u32,
    /// Miss history of the last `lease_window_m` audits (`true` = miss).
    window: VecDeque<bool>,
    /// Is the server currently eligible for resolution?
    pub live: bool,
    /// Total beats received.
    pub beats: u64,
    /// Total audits that saw no beat.
    pub misses: u64,
    /// Times this server was evicted.
    pub evictions: u64,
    /// Times this server was restored after an eviction.
    pub restores: u64,
}

impl ServerHealth {
    fn new() -> ServerHealth {
        ServerHealth {
            beats_since_audit: 0,
            window: VecDeque::new(),
            live: true,
            beats: 0,
            misses: 0,
            evictions: 0,
            restores: 0,
        }
    }
}

/// Aggregated lease health of one service (all instances).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Registered instances.
    pub instances: usize,
    /// Instances currently eligible for resolution.
    pub live: usize,
    /// Total beats across instances.
    pub beats: u64,
    /// Total missed audits across instances.
    pub misses: u64,
    /// Total evictions across instances.
    pub evictions: u64,
    /// Total post-eviction restores across instances.
    pub restores: u64,
}

/// The MRS node.
pub struct Mrs {
    /// Own address.
    pub addr: Ipv4Addr,
    /// Dedicated-bearer QCI handed to the PCRF.
    pub qci: Qci,
    registry: BTreeMap<String, Vec<ServerInstance>>,
    pending: BTreeMap<u32, Pending>,
    /// Stable (service, UE) → service-id binding: a re-request (e.g. the
    /// device manager re-confirming connectivity after a handover) must
    /// carry the *same* id so the PCEF can recognise it as idempotent
    /// instead of stacking a second bearer.
    allocated: BTreeMap<(String, Ipv4Addr), u32>,
    next_service_id: u32,
    /// Lease timers; `None` until lease monitoring is enabled.
    monitoring: Option<Timers>,
    /// Per-server lease health, keyed by server address. Only servers
    /// explicitly enrolled with [`Mrs::monitor_server`] are audited;
    /// un-enrolled servers (e.g. the cloud fallback) are always live.
    health: BTreeMap<Ipv4Addr, ServerHealth>,
    /// Requests served (create + delete).
    pub requests: u64,
    /// Requests rejected (unknown service or no live instance).
    pub rejected: u64,
    /// Heartbeats ingested.
    pub heartbeats_seen: u64,
    /// Lease audits run.
    pub audits: u64,
    /// Servers evicted (total events, not currently-dead count).
    pub evictions: u64,
    /// Servers restored after an eviction.
    pub restores: u64,
}

impl Mrs {
    /// Timer token that runs one lease audit and re-arms the next:
    /// `sim.schedule_timer(mrs, start, Mrs::LEASE_AUDIT)`.
    pub const LEASE_AUDIT: u64 = 1;

    /// New MRS.
    pub fn new(addr: Ipv4Addr) -> Mrs {
        Mrs {
            addr,
            qci: Qci(7),
            registry: BTreeMap::new(),
            pending: BTreeMap::new(),
            allocated: BTreeMap::new(),
            next_service_id: 1,
            monitoring: None,
            health: BTreeMap::new(),
            requests: 0,
            rejected: 0,
            heartbeats_seen: 0,
            audits: 0,
            evictions: 0,
            restores: 0,
        }
    }

    /// Register a CI server for `service`.
    pub fn register_service(&mut self, service: &str, server: ServerInstance) {
        self.registry
            .entry(service.to_string())
            .or_default()
            .push(server);
    }

    /// Turn on heartbeat/lease auditing with the given intervals. The
    /// audit itself runs off the [`Mrs::LEASE_AUDIT`] timer, which the
    /// harness must arm once.
    pub fn enable_lease_monitoring(&mut self, timers: Timers) {
        assert!(
            timers.lease_miss_n <= timers.lease_window_m,
            "miss-N-of-M needs N <= M"
        );
        self.monitoring = Some(timers);
    }

    /// Enroll a server address in lease auditing. Un-enrolled servers
    /// never expire (use for the cloud fallback, which has no MEC
    /// lifecycle).
    pub fn monitor_server(&mut self, server: Ipv4Addr) {
        self.health.entry(server).or_insert_with(ServerHealth::new);
    }

    /// Is `server` currently eligible for resolution?
    fn is_live(&self, server: Ipv4Addr) -> bool {
        self.health.get(&server).is_none_or(|h| h.live)
    }

    /// The closest registered **live** server for a service.
    pub fn closest(&self, service: &str) -> Option<&ServerInstance> {
        self.registry
            .get(service)?
            .iter()
            .filter(|s| self.is_live(s.addr))
            .min_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("distance is finite")
            })
    }

    /// Lease health of one monitored server.
    pub fn server_health(&self, server: Ipv4Addr) -> Option<&ServerHealth> {
        self.health.get(&server)
    }

    /// Aggregated lease health of every instance backing `service`.
    pub fn service_health(&self, service: &str) -> ServiceHealth {
        let mut out = ServiceHealth::default();
        let Some(instances) = self.registry.get(service) else {
            return out;
        };
        out.instances = instances.len();
        for inst in instances {
            match self.health.get(&inst.addr) {
                Some(h) => {
                    out.live += h.live as usize;
                    out.beats += h.beats;
                    out.misses += h.misses;
                    out.evictions += h.evictions;
                    out.restores += h.restores;
                }
                None => out.live += 1, // un-enrolled ⇒ always live
            }
        }
        out
    }

    /// One lease audit pass: score each enrolled server's beat window,
    /// evict the dead, restore the recovered.
    fn audit(&mut self) {
        let Some(t) = self.monitoring else { return };
        self.audits += 1;
        let mut evictions = 0u64;
        let mut restores = 0u64;
        for h in self.health.values_mut() {
            let beat = h.beats_since_audit > 0;
            h.beats_since_audit = 0;
            if !beat {
                h.misses += 1;
            }
            h.window.push_back(!beat);
            while h.window.len() > t.lease_window_m as usize {
                h.window.pop_front();
            }
            let missed = h.window.iter().filter(|&&m| m).count() as u32;
            if h.live && missed >= t.lease_miss_n {
                h.live = false;
                h.evictions += 1;
                evictions += 1;
            } else if !h.live && beat {
                // A dead server that beats again is back: clear the miss
                // history so one stale window can't re-evict it.
                h.live = true;
                h.restores += 1;
                h.window.clear();
                restores += 1;
            }
        }
        self.evictions += evictions;
        self.restores += restores;
    }

    fn answer(
        &mut self,
        ctx: &mut Ctx<'_>,
        reply_to: (Ipv4Addr, u16),
        service: &str,
        ok: bool,
        server: Option<Ipv4Addr>,
    ) {
        let msg = AppMsg::MrsAck {
            service: service.to_string(),
            ok,
            server,
        };
        let pkt = msg.into_packet((self.addr, MRS_PORT), reply_to, 0, ctx.now());
        ctx.send(port::DATA, pkt);
    }
}

impl Node for Mrs {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, pkt: Packet) {
        match in_port {
            port::DATA => match AppMsg::from_packet(&pkt) {
                Some(AppMsg::Heartbeat { server, .. }) => {
                    self.heartbeats_seen += 1;
                    if let Some(h) = self.health.get_mut(&server) {
                        h.beats_since_audit += 1;
                        h.beats += 1;
                    }
                }
                Some(AppMsg::MrsRequest {
                    service,
                    ue_addr,
                    create,
                }) => {
                    self.requests += 1;
                    let reply_to = (pkt.src, pkt.src_port);
                    let Some(server) = self.closest(&service).map(|s| s.addr) else {
                        self.rejected += 1;
                        self.answer(ctx, reply_to, &service, false, None);
                        return;
                    };
                    let key = (service.clone(), ue_addr);
                    let service_id = match self.allocated.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = self.next_service_id;
                            self.next_service_id += 1;
                            self.allocated.insert(key, id);
                            id
                        }
                    };
                    self.pending.insert(
                        service_id,
                        Pending {
                            service: service.clone(),
                            reply_to,
                            server,
                        },
                    );
                    let rule = PolicyRule {
                        service_id,
                        ue_addr,
                        server_addr: server,
                        server_port: 0,
                        qci: self.qci,
                        install: create,
                    };
                    let msg = ControlMsg::RxAuthRequest { rule };
                    ctx.send(port::RX, msg.into_packet(self.addr, Ipv4Addr::UNSPECIFIED));
                }
                _ => {}
            },
            port::RX => {
                let Some(ControlMsg::RxAuthAnswer { service_id, ok }) =
                    ControlMsg::from_packet(&pkt)
                else {
                    return;
                };
                let Some(p) = self.pending.remove(&service_id) else {
                    return;
                };
                let service = p.service.clone();
                let server = Some(p.server);
                self.answer(ctx, p.reply_to, &service, ok, server);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == Self::LEASE_AUDIT {
            if let Some(t) = self.monitoring {
                self.audit();
                ctx.schedule_in(t.lease_check_period, Self::LEASE_AUDIT);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 4, 0, a)
    }

    #[test]
    fn closest_server_selection() {
        let mut mrs = Mrs::new(ip(100));
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(1),
                distance: 5.0,
            },
        );
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(2),
                distance: 1.0,
            },
        );
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(3),
                distance: 9.0,
            },
        );
        assert_eq!(mrs.closest("acme").unwrap().addr, ip(2));
        assert!(mrs.closest("unknown").is_none());
    }

    #[test]
    fn unknown_service_is_rejected_via_data_port() {
        use acacia_simnet::link::LinkConfig;
        use acacia_simnet::sim::Simulator;
        use acacia_simnet::time::{Duration, Instant};
        use acacia_simnet::traffic::Sink;

        let mut sim = Simulator::new(1);
        let mrs = sim.add_node(Box::new(Mrs::new(ip(100))));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (mrs, port::DATA),
            (sink, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        let req = AppMsg::MrsRequest {
            service: "nope".into(),
            ue_addr: ip(9),
            create: true,
        }
        .into_packet((ip(9), 9000), (ip(100), MRS_PORT), 0, Instant::ZERO);
        sim.inject_packet(mrs, port::DATA, Instant::ZERO, req);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 1, "a NACK went out");
        let m = sim.node_ref::<Mrs>(mrs);
        assert_eq!(m.requests, 1);
        assert_eq!(m.rejected, 1);
    }

    fn beat_from(server: Ipv4Addr) -> Packet {
        AppMsg::Heartbeat {
            service: "acme".into(),
            server,
        }
        .into_packet(
            (server, 9000),
            (ip(100), MRS_PORT),
            0,
            acacia_simnet::time::Instant::ZERO,
        )
    }

    /// Drive the audit directly (unit-level; the failover scenario covers
    /// the timer-driven path end to end).
    #[test]
    fn miss_n_of_m_evicts_and_resolution_falls_over() {
        let timers = Timers::default();
        let mut mrs = Mrs::new(ip(100));
        mrs.enable_lease_monitoring(timers);
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(1),
                distance: 1.0,
            },
        );
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(2),
                distance: 2.0,
            },
        );
        mrs.monitor_server(ip(1));
        // ip(2) is the (un-enrolled) fallback: always live.
        for _ in 0..timers.lease_miss_n {
            assert_eq!(mrs.closest("acme").unwrap().addr, ip(1));
            mrs.audit();
        }
        assert_eq!(mrs.evictions, 1, "N consecutive misses evict");
        assert_eq!(mrs.closest("acme").unwrap().addr, ip(2), "failover");
        let h = mrs.server_health(ip(1)).unwrap();
        assert!(!h.live);
        assert_eq!(h.misses, timers.lease_miss_n as u64);
        let sh = mrs.service_health("acme");
        assert_eq!((sh.instances, sh.live, sh.evictions), (2, 1, 1));
    }

    #[test]
    fn a_beat_restores_an_evicted_server() {
        let timers = Timers::default();
        let mut mrs = Mrs::new(ip(100));
        mrs.enable_lease_monitoring(timers);
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(1),
                distance: 1.0,
            },
        );
        mrs.monitor_server(ip(1));
        for _ in 0..timers.lease_miss_n {
            mrs.audit();
        }
        assert!(mrs.closest("acme").is_none(), "sole instance evicted");
        // The restarted server beats again.
        let mut sim_pkt = beat_from(ip(1));
        sim_pkt.dst_port = MRS_PORT;
        // Feed the beat through the health table directly (packet path is
        // covered by the scenario tests).
        mrs.heartbeats_seen += 1;
        let h = mrs.health.get_mut(&ip(1)).unwrap();
        h.beats_since_audit += 1;
        h.beats += 1;
        mrs.audit();
        assert_eq!(mrs.restores, 1);
        assert_eq!(mrs.closest("acme").unwrap().addr, ip(1), "restored");
        let _ = sim_pkt;
    }

    #[test]
    fn isolated_misses_inside_the_window_do_not_evict() {
        let timers = Timers::default();
        let mut mrs = Mrs::new(ip(100));
        mrs.enable_lease_monitoring(timers);
        mrs.register_service(
            "acme",
            ServerInstance {
                addr: ip(1),
                distance: 1.0,
            },
        );
        mrs.monitor_server(ip(1));
        // One silent audit in every three: at most 2 misses land in any
        // 5-audit window, below the default 3-of-5 threshold.
        for _ in 0..8 {
            for _ in 0..2 {
                let h = mrs.health.get_mut(&ip(1)).unwrap();
                h.beats_since_audit += 1;
                h.beats += 1;
                mrs.audit();
            }
            mrs.audit(); // one silent audit
        }
        assert_eq!(mrs.evictions, 0, "lone misses tolerated");
        assert!(mrs.server_health(ip(1)).unwrap().live);
    }
}
