//! The AR back-end (CI server) node: reassembles uploaded frames, runs the
//! decode → SURF → pruned-match pipeline, and returns annotations.
//!
//! Matching executes for real against the geo-tagged object database (so
//! accuracy and pruning behaviour are genuine); *time* is virtual — metered
//! operations × the configured device profile — and the server is a serial
//! processor, so concurrent clients queue (the paper's Fig. 12 contention
//! behaviour).

use crate::locmgr::LocalizationManager;
use crate::msg::{AppMsg, FrameMeta, AR_PORT, MRS_PORT};
use crate::search::{candidates, SearchContext, SearchStrategy};
use acacia_geo::floor::FloorPlan;
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::{Ctx, Node, PortId};
use acacia_simnet::time::{Duration, Instant};
use acacia_vision::compute::{Device, DeviceProfile};
use acacia_vision::db::ObjectDb;
use acacia_vision::feature::{object_features, render_view, FeatureSet, Similarity, ViewParams};
use acacia_vision::matcher::MatcherConfig;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide memo for rendered views, keyed by
/// `(scene_id, feature_count, view_seed)`.
///
/// `object_features` and `render_view` are pure functions of these three
/// values (they draw from private, key-seeded RNGs), so the cache is
/// invisible to simulation results — it only changes wall-clock time.
/// Sharing it across server instances matters because sweep experiments
/// replay the same scenario under many configurations: every cell after
/// the first reuses the renders instead of re-deriving them.
type FeatureCache<K> = OnceLock<Mutex<HashMap<K, Arc<FeatureSet>>>>;
static VIEW_CACHE: FeatureCache<(u64, usize, u64)> = OnceLock::new();
static BASE_CACHE: FeatureCache<(u64, usize)> = OnceLock::new();

fn cached_view(scene_id: u64, feature_count: usize, view_seed: u64) -> Arc<FeatureSet> {
    let views = VIEW_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = views
        .lock()
        .unwrap()
        .get(&(scene_id, feature_count, view_seed))
    {
        return v.clone();
    }
    let base = {
        let bases = BASE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let hit = bases
            .lock()
            .unwrap()
            .get(&(scene_id, feature_count))
            .cloned();
        match hit {
            Some(b) => b,
            None => {
                // Compute outside the lock; a racing thread may duplicate
                // the work but both arrive at the same pure value.
                let b = Arc::new(object_features(scene_id, feature_count));
                bases
                    .lock()
                    .unwrap()
                    .entry((scene_id, feature_count))
                    .or_insert(b)
                    .clone()
            }
        }
    };
    let v = Arc::new(render_view(
        &base,
        Similarity::from_seed(view_seed),
        ViewParams::default(),
        view_seed,
    ));
    views
        .lock()
        .unwrap()
        .entry((scene_id, feature_count, view_seed))
        .or_insert(v)
        .clone()
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ArServerConfig {
    /// Server address.
    pub addr: Ipv4Addr,
    /// Compute device the server runs on.
    pub device: Device,
    /// Search-space strategy.
    pub strategy: SearchStrategy,
    /// Descriptors actually executed per side during matching (op
    /// accounting stays full-scale). Smaller = faster simulation.
    pub exec_cap: usize,
    /// MRS lease target: `(mrs_addr, service)` this server beats for.
    /// `None` disables heartbeats (the default; lease monitoring is a
    /// failover-scenario feature).
    pub heartbeat: Option<(Ipv4Addr, String)>,
    /// Liveness beat period when `heartbeat` is configured.
    pub heartbeat_period: Duration,
}

impl ArServerConfig {
    /// An 8-core i7 server with ACACIA pruning.
    pub fn new(addr: Ipv4Addr) -> ArServerConfig {
        ArServerConfig {
            addr,
            device: Device::I7Octa,
            strategy: SearchStrategy::ACACIA_DEFAULT,
            exec_cap: 48,
            heartbeat: None,
            heartbeat_period: acacia_lte::Timers::DEFAULT.heartbeat_period,
        }
    }
}

/// One processed frame, for post-run analysis.
#[derive(Debug, Clone)]
pub struct FrameRecord {
    /// Client that sent it.
    pub client: Ipv4Addr,
    /// Frame sequence number.
    pub seq: u64,
    /// Candidate objects examined after pruning.
    pub candidates: usize,
    /// Virtual decode + SURF time, seconds.
    pub compute_s: f64,
    /// Virtual matching time, seconds.
    pub match_s: f64,
    /// Matched object tag (None = no-match).
    pub matched: Option<String>,
    /// Ground-truth object (the scene id photographed).
    pub truth: u64,
}

struct Assembly {
    received: HashSet<u32>,
    total: u32,
    meta: Option<FrameMeta>,
    reply_to: (Ipv4Addr, u16),
}

const TOKEN_RESULT: u64 = 1;
const TOKEN_HEARTBEAT: u64 = 2;

/// The AR server node. Port 0 is its network interface.
pub struct ArServer {
    cfg: ArServerConfig,
    profile: DeviceProfile,
    db: ObjectDb,
    floor: FloorPlan,
    /// The localization manager co-located with the server (paper Fig. 7).
    pub locmgr: LocalizationManager,
    assembling: HashMap<(Ipv4Addr, u64), Assembly>,
    busy_until: Instant,
    outbox: VecDeque<Packet>,
    /// Per-frame processing records.
    pub records: Vec<FrameRecord>,
    /// rxPower reports ingested.
    pub reports_seen: u64,
    /// Is the periodic heartbeat chain armed? A crash-restart erases the
    /// pending timer along with the rest of the node's state, so the
    /// first packet to reach the restarted server re-arms the chain —
    /// recovery rides on traffic, not on conveniently surviving timers.
    hb_live: bool,
    /// Liveness beats sent to the MRS.
    pub heartbeats_sent: u64,
    /// Crash-restarts this server came back from.
    pub restarts: u64,
}

impl ArServer {
    /// New server over a database and floor plan.
    pub fn new(
        cfg: ArServerConfig,
        db: ObjectDb,
        floor: FloorPlan,
        locmgr: LocalizationManager,
    ) -> ArServer {
        let profile = cfg.device.profile();
        ArServer {
            cfg,
            profile,
            db,
            floor,
            locmgr,
            assembling: HashMap::new(),
            busy_until: Instant::ZERO,
            outbox: VecDeque::new(),
            records: Vec::new(),
            reports_seen: 0,
            hb_live: false,
            heartbeats_sent: 0,
            restarts: 0,
        }
    }

    /// Timer token that starts the periodic MRS heartbeat:
    /// `sim.schedule_timer(server, start, ArServer::HEARTBEAT)`.
    pub const HEARTBEAT: u64 = TOKEN_HEARTBEAT;

    /// Send one liveness beat and schedule the next.
    fn beat(&mut self, ctx: &mut Ctx<'_>) {
        let Some((mrs, service)) = self.cfg.heartbeat.clone() else {
            return;
        };
        self.hb_live = true;
        self.heartbeats_sent += 1;
        let msg = AppMsg::Heartbeat {
            service,
            server: self.cfg.addr,
        };
        let pkt = msg.into_packet((self.cfg.addr, AR_PORT), (mrs, MRS_PORT), 0, ctx.now());
        ctx.send(0, pkt);
        ctx.schedule_in(self.cfg.heartbeat_period, TOKEN_HEARTBEAT);
    }

    /// Fraction of processed frames whose match equals the ground truth.
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let correct = self
            .records
            .iter()
            .filter(|r| r.matched.as_deref() == self.db.get(r.truth).map(|o| o.tag.as_str()))
            .count();
        correct as f64 / self.records.len() as f64
    }

    fn process_frame(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: (Ipv4Addr, u16),
        seq: u64,
        meta: FrameMeta,
    ) {
        // Reconstruct the uploaded frame's features: the client photographed
        // object `scene_id` with a hand-held pose derived from the seed.
        // Both steps are pure functions of `(scene_id, feature_count,
        // view_seed)`, so results come from the process-wide memo.
        let view = cached_view(
            meta.spec.scene_id,
            meta.spec.feature_count(),
            meta.view_seed,
        );

        let search_ctx = SearchContext {
            rx_readings: self.locmgr.rx_view(),
            location: self.locmgr.estimate(),
        };
        let cands = candidates(self.cfg.strategy, &self.db, &self.floor, &search_ctx);
        let n_cands = cands.len();
        let matcher = MatcherConfig {
            exec_cap: self.cfg.exec_cap,
            seed: meta.view_seed,
            ..MatcherConfig::default()
        };
        let outcome = self.db.match_against(&view, cands, &matcher);

        let compute_s = self.profile.decode_time_s(meta.spec.resolution.pixels())
            + self.profile.detect_time_s(meta.spec);
        let match_s = self.profile.match_time_s(&outcome.ops);
        let matched = outcome
            .best
            .as_ref()
            .and_then(|(id, _)| self.db.get(*id))
            .map(|o| o.tag.clone());

        self.records.push(FrameRecord {
            client: client.0,
            seq,
            candidates: n_cands,
            compute_s,
            match_s,
            matched: matched.clone(),
            truth: meta.spec.scene_id,
        });

        // Serial service: the result leaves once the CPU has finished this
        // frame (and everything queued before it).
        let service = Duration::from_secs_f64(compute_s + match_s);
        let start = self.busy_until.max(ctx.now());
        let done = start + service;
        self.busy_until = done;

        let result = AppMsg::FrameResult {
            seq,
            matched,
            compute_s,
            match_s,
            candidates: n_cands,
        }
        .into_packet((self.cfg.addr, AR_PORT), client, 200, ctx.now());
        self.outbox.push_back(result);
        ctx.schedule_at(done, TOKEN_RESULT);
    }

    fn on_chunk(
        &mut self,
        ctx: &mut Ctx<'_>,
        pkt: &Packet,
        seq: u64,
        chunk: u32,
        total: u32,
        meta: Option<FrameMeta>,
    ) {
        let reply_to = (pkt.src, pkt.src_port);
        // Ack immediately — acks clock the client's upload window.
        let ack = AppMsg::ChunkAck { seq, chunk }.into_packet(
            (self.cfg.addr, AR_PORT),
            reply_to,
            0,
            ctx.now(),
        );
        ctx.send(0, ack);

        let entry = self
            .assembling
            .entry((pkt.src, seq))
            .or_insert_with(|| Assembly {
                received: HashSet::new(),
                total,
                meta: None,
                reply_to,
            });
        entry.received.insert(chunk);
        if meta.is_some() {
            entry.meta = meta;
        }
        if entry.received.len() as u32 == entry.total {
            if let Some(done) = self.assembling.remove(&(pkt.src, seq)) {
                if let Some(meta) = done.meta {
                    self.process_frame(ctx, done.reply_to, seq, meta);
                }
            }
        }
    }
}

impl Node for ArServer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        if self.cfg.heartbeat.is_some() && !self.hb_live {
            // First contact after a crash-restart (the pending beat timer
            // died with the crash): resume beating so the MRS restores
            // this instance's lease.
            self.beat(ctx);
        }
        if pkt.protocol == acacia_simnet::packet::proto::ICMP {
            // Liveness probes (the mobility experiment's interruption
            // meter) are echoed on the same path the AR traffic takes.
            let mut back = pkt;
            std::mem::swap(&mut back.src, &mut back.dst);
            std::mem::swap(&mut back.src_port, &mut back.dst_port);
            ctx.send(0, back);
            return;
        }
        match AppMsg::from_packet(&pkt) {
            Some(AppMsg::FrameChunk {
                seq,
                chunk,
                total_chunks,
                meta,
            }) => self.on_chunk(ctx, &pkt, seq, chunk, total_chunks, meta),
            Some(AppMsg::RxReport {
                landmark,
                rx_power_dbm,
            }) => {
                self.reports_seen += 1;
                self.locmgr.report(&landmark, rx_power_dbm);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_RESULT {
            if let Some(pkt) = self.outbox.pop_front() {
                ctx.send(0, pkt);
            }
        } else if token == TOKEN_HEARTBEAT {
            self.beat(ctx);
        }
    }

    fn on_restart(&mut self) {
        // Crash-restart: every in-flight assembly, queued result and the
        // serial-CPU backlog died with the process. `records` stays — it
        // is the experiment's measurement ledger, not protocol state —
        // and clients recover their in-flight frames through the
        // application protocol (replay), not through server memory.
        self.assembling.clear();
        self.outbox.clear();
        self.busy_until = Instant::ZERO;
        self.hb_live = false;
        self.restarts += 1;
    }
}
