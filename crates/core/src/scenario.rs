//! End-to-end scenarios: the paper's CLOUD / MEC / ACACIA deployments
//! (§7.4) assembled from all the substrates.
//!
//! * **CLOUD** — conventional EPC; the AR server lives in a distant cloud
//!   region; full-database (Naive) matching.
//! * **MEC** — ACACIA's network path (MRS handshake, dedicated bearer to a
//!   local gateway, server at the edge) but *no* search-space
//!   optimization.
//! * **ACACIA** — MEC plus LTE-direct localization-driven database
//!   pruning.
//!
//! A scenario builds the whole stack — LTE/EPC network, MRS, AR server,
//! AR front-end on the UE, proximity world — runs a user session at a
//! checkpoint of the retail floor, and reports the per-frame latency
//! breakdown (network / compute / match / total) the paper's Fig. 13
//! plots.

use crate::arclient::{ArFrontend, ArFrontendConfig, FrameStats};
use crate::arserver::{ArServer, ArServerConfig};
use crate::device_manager::{ConnectivityAction, DeviceManager, ServiceInfo};
use crate::locmgr::{LocalizationManager, LocalizationMetadata};
use crate::mrs::{port as mrs_port, Mrs, ServerInstance};
use crate::msg::APP_PORT;
use crate::search::SearchStrategy;
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_geo::floor::FloorPlan;
use acacia_lte::entities::pcrf_port;
use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::ue::AppSelector;
use acacia_simnet::cloud::Ec2Region;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::{Duration, Instant};
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;
use acacia_vision::image::Resolution;
use std::net::Ipv4Addr;

/// The service name used by the retail scenario.
pub const SERVICE: &str = "acme-retail";

/// Which of the paper's three deployments to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Conventional EPC + distant cloud server + Naive matching.
    Cloud,
    /// Edge server over a dedicated bearer, Naive matching.
    Mec,
    /// Edge server + localization-pruned matching.
    Acacia,
}

impl Deployment {
    /// All three, in the paper's presentation order.
    pub const ALL: [Deployment; 3] = [Deployment::Acacia, Deployment::Mec, Deployment::Cloud];

    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            Deployment::Cloud => "CLOUD",
            Deployment::Mec => "MEC",
            Deployment::Acacia => "ACACIA",
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Deployment under test.
    pub deployment: Deployment,
    /// Master seed.
    pub seed: u64,
    /// Index of the floor checkpoint the user stands at.
    pub checkpoint: usize,
    /// Frames to capture.
    pub frame_count: u64,
    /// Camera resolution.
    pub resolution: Resolution,
    /// Objects per subsection in the database (5 ⇒ the paper's 105).
    pub db_per_subsection: usize,
    /// Server compute device.
    pub server_device: Device,
    /// Matching execution cap (see `ArServerConfig::exec_cap`).
    pub exec_cap: usize,
    /// Background traffic through the core, bits/s (0 = none).
    pub background_bps: u64,
    /// Cloud region for the CLOUD deployment.
    pub region: Ec2Region,
    /// Residual radio loss injected on the data path after attach
    /// (fraction; 0 = clean air).
    pub radio_loss: f64,
    /// Proximity-discovery technology (paper §8: iBeacon and Wi-Fi Aware
    /// drive the same pipeline).
    pub tech: acacia_d2d::technology::ProximityTech,
}

impl ScenarioConfig {
    /// The §7.4 end-to-end configuration for a deployment.
    pub fn e2e(deployment: Deployment) -> ScenarioConfig {
        ScenarioConfig {
            deployment,
            seed: 42,
            checkpoint: 10,
            frame_count: 10,
            resolution: Resolution::E2E,
            db_per_subsection: 5,
            server_device: Device::I7Octa,
            exec_cap: 48,
            background_bps: 0,
            region: Ec2Region::California,
            radio_loss: 0.0,
            tech: acacia_d2d::technology::ProximityTech::LteDirect,
        }
    }

    /// Smaller/faster variant for tests.
    pub fn smoke(deployment: Deployment) -> ScenarioConfig {
        ScenarioConfig {
            frame_count: 3,
            db_per_subsection: 1,
            exec_cap: 24,
            ..ScenarioConfig::e2e(deployment)
        }
    }
}

/// A built scenario, ready to run.
pub struct Scenario {
    /// The network (owns the simulator).
    pub net: LteNetwork,
    /// The retail floor.
    pub floor: FloorPlan,
    /// Client node.
    pub client: NodeId,
    /// Server node.
    pub server: NodeId,
    /// MRS node (MEC/ACACIA only).
    pub mrs: Option<NodeId>,
    cfg: ScenarioConfig,
}

/// Results of a session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Deployment that produced it.
    pub deployment: Deployment,
    /// Per-frame stats.
    pub frames: Vec<FrameStats>,
    /// Time from MRS request to ack (MEC/ACACIA).
    pub bearer_setup: Option<Duration>,
    /// Fraction of frames matched to the correct object.
    pub accuracy: f64,
    /// Engine events dispatched over the whole run (throughput metering;
    /// deterministic for a fixed config and seed).
    pub events_processed: u64,
}

impl SessionReport {
    fn mean(&self, f: impl Fn(&FrameStats) -> f64) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(f).sum::<f64>() / self.frames.len() as f64
    }

    /// Mean end-to-end latency, seconds.
    pub fn mean_total_s(&self) -> f64 {
        self.mean(FrameStats::total_s)
    }

    /// Mean network component, seconds.
    pub fn mean_network_s(&self) -> f64 {
        self.mean(FrameStats::network_s)
    }

    /// Mean compute component, seconds.
    pub fn mean_compute_s(&self) -> f64 {
        self.mean(FrameStats::compute_s)
    }

    /// Mean match component, seconds.
    pub fn mean_match_s(&self) -> f64 {
        self.mean(FrameStats::match_s)
    }
}

impl Scenario {
    /// Build the scenario.
    pub fn build(cfg: ScenarioConfig) -> Scenario {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::retail_cached(cfg.db_per_subsection, cfg.seed);
        // The discovery technology fixes both the radio model (which the
        // localization regression must be calibrated against) and the
        // discovery cadence.
        let model = cfg.tech.pathloss();
        let channel = RadioChannel::new(model, cfg.seed);
        let mut world = ProximityWorld::from_floor(&floor, SERVICE, channel);
        world.period_s = cfg.tech.period_s();
        let world = world;
        let user_pos = floor.checkpoints[cfg.checkpoint % floor.checkpoints.len()].pos;

        // --- Out-of-band LTE-direct discovery (device manager + modem). ---
        let mut modem = Modem::new();
        let mut dm = DeviceManager::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: SERVICE.to_string(),
                interests: vec![], // interested in the whole store
            },
        );
        // BTreeMap, not HashMap: the report order reaches the server's
        // localization manager and must not vary run to run.
        let mut rx_readings: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        let mut wants_connectivity = false;
        for tick in 0..4 {
            for ev in world.scan(&mut modem, user_pos, tick) {
                let (_, action) = dm.on_discovery(&ev);
                if matches!(action, Some(ConnectivityAction::Create { .. })) {
                    wants_connectivity = true;
                }
                rx_readings
                    .entry(ev.publisher.clone())
                    .or_default()
                    .push(ev.rx_power_dbm);
            }
        }
        let _ = app;
        let rx_reports: Vec<(String, f64)> = rx_readings
            .into_iter()
            .map(|(k, v)| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                (k, mean)
            })
            .collect();

        // --- The network. ---
        let mut net = LteNetwork::new(LteConfig {
            seed: cfg.seed,
            ..LteConfig::default()
        });

        // --- Server and (for MEC/ACACIA) the MRS. ---
        let strategy = match cfg.deployment {
            Deployment::Acacia => SearchStrategy::ACACIA_DEFAULT,
            _ => SearchStrategy::Naive,
        };
        let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
        let make_server = |addr: Ipv4Addr| {
            ArServer::new(
                ArServerConfig {
                    device: cfg.server_device,
                    strategy,
                    exec_cap: cfg.exec_cap,
                    ..ArServerConfig::new(addr)
                },
                db.clone(),
                floor.clone(),
                locmgr.clone(),
            )
        };

        let (server, server_addr, mrs) = match cfg.deployment {
            Deployment::Cloud => {
                let addr = acacia_lte::network::addr::CLOUD_BASE;
                let (server, assigned) =
                    net.add_cloud_server(Box::new(make_server(addr)), cfg.region.link_config());
                assert_eq!(assigned, addr);
                (server, addr, None)
            }
            Deployment::Mec | Deployment::Acacia => {
                let addr = acacia_lte::network::addr::MEC_BASE;
                let (server, assigned) = net.add_mec_server(Box::new(make_server(addr)));
                assert_eq!(assigned, addr);
                // The MRS lives in the core network, reachable over the
                // default bearer.
                let mrs_addr = acacia_lte::network::addr::CLOUD_BASE;
                let mut mrs_node = Mrs::new(mrs_addr);
                mrs_node.register_service(
                    SERVICE,
                    ServerInstance {
                        addr,
                        distance: 1.0,
                    },
                );
                let (mrs, assigned) = net.add_cloud_server(
                    Box::new(mrs_node),
                    LinkConfig::delay_only(Duration::from_micros(800)),
                );
                assert_eq!(assigned, mrs_addr);
                // Rx interface to the PCRF.
                net.sim.connect(
                    (mrs, mrs_port::RX),
                    (net.pcrf, pcrf_port::AF),
                    LinkConfig::delay_only(Duration::from_micros(500)),
                );
                (server, addr, Some(mrs))
            }
        };

        // --- Attach and the client. ---
        let ue_ip = net.attach(0);
        if cfg.radio_loss > 0.0 {
            net.set_radio_loss(cfg.radio_loss);
        }
        if cfg.background_bps > 0 {
            let t0 = net.sim.now();
            net.start_background_traffic(cfg.background_bps, t0, Instant::MAX);
        }

        // The user photographs objects from their current subsection.
        let subsection = floor.subsection_at(user_pos).expect("user is on the floor");
        let scene_ids: Vec<u64> = db
            .in_subsections(&[subsection])
            .iter()
            .map(|o| o.id)
            .collect();

        let client_cfg = ArFrontendConfig {
            ue_ip,
            server: server_addr,
            mrs: match cfg.deployment {
                Deployment::Cloud => None,
                _ => Some((acacia_lte::network::addr::CLOUD_BASE, SERVICE.to_string())),
            },
            resolution: cfg.resolution,
            frame_count: cfg.frame_count,
            scene_ids,
            rx_reports: if cfg.deployment == Deployment::Acacia {
                rx_reports
            } else {
                Vec::new()
            },
            ..ArFrontendConfig::new(ue_ip, server_addr)
        };
        let client = net.connect_ue_app(
            0,
            Box::new(ArFrontend::new(client_cfg)),
            AppSelector::port(APP_PORT),
        );

        // The device manager normally decides connectivity is wanted on
        // the first discovery match; even on a quiet radio the client's
        // in-sim MRS handshake (MEC/ACACIA) still carries the request —
        // the paper's "app launch as trigger" fallback (§8).
        let _ = wants_connectivity;

        Scenario {
            net,
            floor,
            client,
            server,
            mrs,
            cfg,
        }
    }

    /// Run the session to completion (or a generous timeout) and report.
    pub fn run(mut self) -> SessionReport {
        let start = self.net.sim.now();
        self.net
            .sim
            .schedule_timer(self.client, start, ArFrontend::KICKOFF);
        let deadline = start + Duration::from_secs(10 + 5 * self.cfg.frame_count);
        while self.net.sim.now() < deadline {
            let t = self.net.sim.now() + Duration::from_millis(100);
            self.net.sim.run_until(t);
            if self.net.sim.node_ref::<ArFrontend>(self.client).done() {
                break;
            }
        }
        let client = self.net.sim.node_ref::<ArFrontend>(self.client);
        let server = self.net.sim.node_ref::<ArServer>(self.server);
        SessionReport {
            deployment: self.cfg.deployment,
            frames: client.frames.clone(),
            bearer_setup: client.bearer_setup,
            accuracy: server.accuracy(),
            events_processed: self.net.sim.events_processed(),
        }
    }
}

// The parallel experiment runner (acacia-bench) builds one `Scenario`
// per worker thread from a config passed across the thread boundary.
// Only the *config* and *report* must be `Send` — a `Scenario` itself
// holds the (deliberately single-threaded) simulation and never leaves
// the thread that built it. These assertions keep that contract from
// regressing silently.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Deployment>();
    assert_send::<ScenarioConfig>();
    assert_send::<SessionReport>();
};
