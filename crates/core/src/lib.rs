//! # acacia — context-aware edge computing for continuous interactive apps
//!
//! A full reproduction of **ACACIA** (CoNEXT 2016): a service abstraction
//! framework enabling continuous interactive (CI) applications on mobile
//! edge clouds in LTE networks. The three pillars, and where they live:
//!
//! 1. **User context discovery** — LTE-direct publish/subscribe with
//!    in-modem interest matching ([`device_manager`], `acacia-d2d`).
//! 2. **Context-aware traffic redirection** — the [`mrs`] signals the PCRF
//!    to create on-demand dedicated bearers terminating on *local* MEC
//!    gateways; the UE's modem TFT steers only CI traffic there
//!    (`acacia-lte`).
//! 3. **Context-aware application optimization** — the [`locmgr`]
//!    tri-laterates LTE-direct rxPower into coarse indoor locations that
//!    prune the AR object database ([`search`], [`arserver`]).
//!
//! [`scenario`] ties everything into the paper's CLOUD / MEC / ACACIA
//! end-to-end comparisons:
//!
//! ```no_run
//! use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
//!
//! let report = Scenario::build(ScenarioConfig::e2e(Deployment::Acacia)).run();
//! println!("mean end-to-end: {:.0} ms", report.mean_total_s() * 1e3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arclient;
pub mod arserver;
pub mod chaos;
pub mod city;
pub mod device_manager;
pub mod failover;
pub mod loaded;
pub mod locmgr;
pub mod mobility;
pub mod mrs;
pub mod msg;
pub mod retail;
pub mod scale;
pub mod scenario;
pub mod search;

pub use arclient::{ArFrontend, ArFrontendConfig, FrameStats};
pub use arserver::{ArServer, ArServerConfig, FrameRecord};
pub use chaos::{ChaosConfig, ChaosReport, ChaosScenario};
pub use device_manager::{AppId, ConnectivityAction, DeviceManager, ServiceInfo};
pub use loaded::{LoadedConfig, LoadedReport, LoadedScenario, LoadedUeReport};
pub use locmgr::{LocalizationManager, LocalizationMetadata};
pub use mobility::{MobilityConfig, MobilityMode, MobilityReport, MobilityScenario};
pub use mrs::{Mrs, ServerInstance};
pub use msg::{AppMsg, FrameMeta};
pub use retail::{CustomerApp, ShopperNotification, StoreApp};
pub use scale::{ScaleConfig, ScaleReport, ScaleScenario, ScaleUeReport};
pub use scenario::{Deployment, Scenario, ScenarioConfig, SessionReport};
pub use search::{candidates, SearchContext, SearchStrategy};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::arclient::{ArFrontend, ArFrontendConfig, FrameStats};
    pub use crate::arserver::{ArServer, ArServerConfig};
    pub use crate::chaos::{ChaosConfig, ChaosReport, ChaosScenario};
    pub use crate::device_manager::{DeviceManager, ServiceInfo};
    pub use crate::loaded::{LoadedConfig, LoadedReport, LoadedScenario};
    pub use crate::locmgr::{LocalizationManager, LocalizationMetadata};
    pub use crate::mobility::{MobilityConfig, MobilityMode, MobilityReport, MobilityScenario};
    pub use crate::mrs::{Mrs, ServerInstance};
    pub use crate::msg::AppMsg;
    pub use crate::scenario::{Deployment, Scenario, ScenarioConfig, SessionReport};
    pub use crate::search::{candidates, SearchContext, SearchStrategy};
}
