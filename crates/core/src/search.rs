//! Search-space strategies for the AR back-end (paper §7.3):
//!
//! * **Naive** — match against every object on the floor.
//! * **RxPower** — restrict to the sections owning the two
//!   strongest-rxPower landmarks.
//! * **Acacia** — tri-laterated location prunes to the subsections within
//!   the localization uncertainty radius (2–6 of 21 in the paper).

use acacia_geo::floor::FloorPlan;
use acacia_geo::point::Point;
use acacia_vision::db::{DbObject, ObjectDb};
use serde::{Deserialize, Serialize};

/// Which pruning scheme the server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Entire database.
    Naive,
    /// Sections of the two strongest landmarks.
    RxPower,
    /// Subsections near the tri-laterated location.
    Acacia {
        /// Pruning radius in metres (the expected localization error;
        /// paper: ~3 m).
        radius_m_x10: u32,
    },
}

impl SearchStrategy {
    /// The paper's ACACIA configuration (2.5 m radius, roughly the mean
    /// localization error).
    pub const ACACIA_DEFAULT: SearchStrategy = SearchStrategy::Acacia { radius_m_x10: 25 };

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Naive => "Naive",
            SearchStrategy::RxPower => "rxPower",
            SearchStrategy::Acacia { .. } => "ACACIA",
        }
    }

    /// Pruning radius for the Acacia variant.
    pub fn radius_m(&self) -> f64 {
        match self {
            SearchStrategy::Acacia { radius_m_x10 } => *radius_m_x10 as f64 / 10.0,
            _ => 0.0,
        }
    }
}

/// The context a strategy needs to select candidates.
#[derive(Debug, Clone, Default)]
pub struct SearchContext {
    /// Latest per-landmark rxPower readings (name, dBm).
    pub rx_readings: Vec<(String, f64)>,
    /// Latest tri-laterated location, if available.
    pub location: Option<Point>,
}

/// Select candidate objects for a query under `strategy`.
///
/// Falls back to the full database when the required context is missing
/// (no readings / no location yet) — a cold-start client must still get
/// answers.
pub fn candidates<'a>(
    strategy: SearchStrategy,
    db: &'a ObjectDb,
    floor: &FloorPlan,
    ctx: &SearchContext,
) -> Vec<&'a DbObject> {
    match strategy {
        SearchStrategy::Naive => db.objects().iter().collect(),
        SearchStrategy::RxPower => {
            let mut readings = ctx.rx_readings.clone();
            if readings.is_empty() {
                return db.objects().iter().collect();
            }
            readings.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rxPower is finite"));
            let sections: Vec<usize> = readings
                .iter()
                .take(2)
                .filter_map(|(name, _)| {
                    let lm = floor.landmark(name)?;
                    floor.section_at(lm.pos)
                })
                .collect();
            if sections.is_empty() {
                return db.objects().iter().collect();
            }
            db.in_sections(&sections)
        }
        SearchStrategy::Acacia { .. } => {
            let Some(loc) = ctx.location else {
                return db.objects().iter().collect();
            };
            let subsections = floor.subsections_near(loc, strategy.radius_m());
            if subsections.is_empty() {
                return db.objects().iter().collect();
            }
            db.in_subsections(&subsections)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FloorPlan, ObjectDb) {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 5, 1);
        (floor, db)
    }

    #[test]
    fn naive_returns_everything() {
        let (floor, db) = setup();
        let ctx = SearchContext::default();
        assert_eq!(
            candidates(SearchStrategy::Naive, &db, &floor, &ctx).len(),
            105
        );
    }

    #[test]
    fn rxpower_prunes_to_two_sections() {
        let (floor, db) = setup();
        let ctx = SearchContext {
            // L4 at (14, 2.5) is in section "electronics"; L3 at (10, 7.5)
            // also electronics — then sections dedupe naturally via
            // in_sections.
            rx_readings: vec![
                ("L4".into(), -60.0),
                ("L3".into(), -65.0),
                ("L1".into(), -90.0),
            ],
            location: None,
        };
        let picked = candidates(SearchStrategy::RxPower, &db, &floor, &ctx);
        assert!(picked.len() < 105);
        assert!(!picked.is_empty());
        // All candidates come from the sections of L4/L3.
        let s4 = floor.section_at(floor.landmark("L4").unwrap().pos).unwrap();
        let s3 = floor.section_at(floor.landmark("L3").unwrap().pos).unwrap();
        for o in &picked {
            assert!(o.section == s4 || o.section == s3);
        }
    }

    #[test]
    fn acacia_prunes_to_neighbourhood_subsections() {
        let (floor, db) = setup();
        let ctx = SearchContext {
            rx_readings: vec![],
            location: Some(Point::new(14.0, 7.5)),
        };
        let picked = candidates(SearchStrategy::ACACIA_DEFAULT, &db, &floor, &ctx);
        // Paper: 2-6 subsections of 21 → 10-30 objects of 105.
        assert!(
            (10..=30).contains(&picked.len()),
            "picked {} objects",
            picked.len()
        );
    }

    #[test]
    fn acacia_is_strictly_smaller_than_rxpower_than_naive() {
        let (floor, db) = setup();
        let ctx = SearchContext {
            rx_readings: vec![("L3".into(), -60.0), ("L5".into(), -68.0)],
            location: Some(Point::new(12.0, 7.0)),
        };
        let naive = candidates(SearchStrategy::Naive, &db, &floor, &ctx).len();
        let rx = candidates(SearchStrategy::RxPower, &db, &floor, &ctx).len();
        let acacia = candidates(SearchStrategy::ACACIA_DEFAULT, &db, &floor, &ctx).len();
        assert!(acacia < rx, "acacia {acacia} vs rx {rx}");
        assert!(rx < naive, "rx {rx} vs naive {naive}");
        // Paper speed-up ratios: ~5x naive/acacia, ~1.9x rx/acacia.
        let ratio = naive as f64 / acacia as f64;
        assert!(ratio > 3.0, "naive/acacia = {ratio}");
    }

    #[test]
    fn missing_context_falls_back_to_full_db() {
        let (floor, db) = setup();
        let ctx = SearchContext::default();
        assert_eq!(
            candidates(SearchStrategy::RxPower, &db, &floor, &ctx).len(),
            105
        );
        assert_eq!(
            candidates(SearchStrategy::ACACIA_DEFAULT, &db, &floor, &ctx).len(),
            105
        );
    }

    #[test]
    fn unknown_landmark_names_are_ignored() {
        let (floor, db) = setup();
        let ctx = SearchContext {
            rx_readings: vec![("bogus".into(), -50.0), ("L1".into(), -60.0)],
            location: None,
        };
        let picked = candidates(SearchStrategy::RxPower, &db, &floor, &ctx);
        let s1 = floor.section_at(floor.landmark("L1").unwrap().pos).unwrap();
        assert!(picked.iter().all(|o| o.section == s1));
    }
}
