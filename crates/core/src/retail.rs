//! The engaged-retail service layer (paper §5.1, §6.3(i)).
//!
//! The mobile carrier provides the infrastructure (LTE network, MEC, the
//! LTE-direct library and the device manager); the *retail store* builds a
//! **pair of applications** on top:
//!
//! * the **store app** — sales people pick their section/products from a
//!   UI; their phones then publish that choice over LTE-direct, and
//! * the **customer app** — shoppers pick interests from the same UI;
//!   their phones subscribe, and a match (an alarm/vibration) launches the
//!   AR experience.
//!
//! This module is that application pair, built purely on public APIs of
//! the other crates — no special hooks.

use crate::device_manager::{AppId, ConnectivityAction, DeviceManager, ServiceInfo};
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::{Announcement, DiscoveryEvent};
use acacia_geo::floor::FloorPlan;
use acacia_geo::point::Point;

/// The retail store's side: staff phones publishing their sections.
#[derive(Debug)]
pub struct StoreApp {
    /// Carrier-assigned LTE-direct service name for this store.
    pub service: String,
    staff: Vec<(String, String, Point)>, // (employee, section/product, position)
}

impl StoreApp {
    /// A store with a carrier-assigned service name.
    pub fn new(service: &str) -> StoreApp {
        StoreApp {
            service: service.to_string(),
            staff: Vec::new(),
        }
    }

    /// A sales person opens the app at `pos` and selects what they cover.
    /// Their phone becomes an LTE-direct publisher.
    pub fn staff_selects(&mut self, employee: &str, covers: &str, pos: Point) {
        self.staff
            .push((employee.to_string(), covers.to_string(), pos));
    }

    /// Number of active publishers.
    pub fn publishers(&self) -> usize {
        self.staff.len()
    }

    /// Install every staff phone as a publisher into a proximity world.
    pub fn deploy(&self, world: &mut ProximityWorld) {
        for (employee, covers, pos) in &self.staff {
            world.add_publisher(employee, *pos, Announcement::new(&self.service, covers));
        }
    }

    /// Convenience: one staff phone per floor landmark, each covering the
    /// landmark's name (the evaluation setup).
    pub fn staff_at_landmarks(service: &str, floor: &FloorPlan) -> StoreApp {
        let mut store = StoreApp::new(service);
        for lm in &floor.landmarks {
            store.staff_selects(&format!("staff-{}", lm.name), &lm.name, lm.pos);
        }
        store
    }
}

/// What the customer app surfaces when a subscribed service is nearby.
#[derive(Debug, Clone, PartialEq)]
pub struct ShopperNotification {
    /// The matched product/section.
    pub about: String,
    /// Who published it (the nearby staff phone).
    pub from: String,
    /// Signal strength (also feeds localization).
    pub rx_power_dbm: f64,
    /// Should the AR session start (first match for this interest)?
    pub start_ar: bool,
}

/// The customer's side: interest selection, notifications, and the
/// device-manager handshake that brings up MEC connectivity.
pub struct CustomerApp {
    /// The store's service name.
    pub service: String,
    modem: Modem,
    dm: DeviceManager,
    app: AppId,
    /// Notifications surfaced to the shopper so far.
    pub notifications: Vec<ShopperNotification>,
    /// Pending connectivity requests to forward to the MRS.
    pub pending_actions: Vec<ConnectivityAction>,
}

impl CustomerApp {
    /// The shopper opens the app and ticks her interests (e.g. "laptops").
    /// An empty list means "everything in this store".
    pub fn open(service: &str, interests: Vec<String>) -> CustomerApp {
        let mut modem = Modem::new();
        let mut dm = DeviceManager::new();
        let app = dm.register_app(
            &mut modem,
            ServiceInfo {
                service: service.to_string(),
                interests,
            },
        );
        CustomerApp {
            service: service.to_string(),
            modem,
            dm,
            app,
            notifications: Vec::new(),
            pending_actions: Vec::new(),
        }
    }

    /// One discovery occasion at the shopper's position: the modem filters,
    /// the device manager routes, the app notifies.
    pub fn discovery_tick(&mut self, world: &ProximityWorld, pos: Point, tick: u64) {
        let events: Vec<DiscoveryEvent> = world.scan(&mut self.modem, pos, tick);
        for ev in events {
            let (owner, action) = self.dm.on_discovery(&ev);
            if owner != Some(self.app) {
                continue;
            }
            let start_ar = action.is_some();
            if let Some(a) = action {
                self.pending_actions.push(a);
            }
            self.notifications.push(ShopperNotification {
                about: ev.announcement.expression.clone(),
                from: ev.publisher.clone(),
                rx_power_dbm: ev.rx_power_dbm,
                start_ar,
            });
        }
    }

    /// The MRS answered the connectivity request.
    pub fn on_mrs_ack(&mut self, ok: bool) {
        let service = self.service.clone();
        self.dm.on_mrs_ack(&service, ok);
    }

    /// Does the app currently hold MEC connectivity?
    pub fn connected(&self) -> bool {
        self.dm.has_connectivity(self.app)
    }

    /// The shopper leaves: unsubscribe and (if connected) tear down.
    pub fn close(&mut self) -> Option<ConnectivityAction> {
        self.dm.unregister_app(&mut self.modem, self.app)
    }

    /// Modem-side statistics (broadcasts seen / filtered).
    pub fn modem_stats(&self) -> (u64, u64) {
        (self.modem.messages_seen, self.modem.messages_filtered)
    }

    /// Latest per-publisher rxPower readings — what the app forwards to
    /// the CI server's localization manager.
    pub fn rx_readings(&self) -> Vec<(String, f64)> {
        // BTreeMap: readings feed trilateration, whose least-squares
        // accumulation is order-sensitive — iteration order must be
        // deterministic for same-seed runs to be byte-identical.
        let mut latest: std::collections::BTreeMap<String, f64> = Default::default();
        for n in &self.notifications {
            latest.insert(n.from.clone(), n.rx_power_dbm);
        }
        latest.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_d2d::channel::RadioChannel;
    use acacia_geo::pathloss::PathLossModel;

    fn setup() -> (FloorPlan, ProximityWorld) {
        let floor = FloorPlan::retail_store();
        let mut world = ProximityWorld::new(RadioChannel::new(PathLossModel::indoor_default(), 8));
        let store = StoreApp::staff_at_landmarks("acme", &floor);
        assert_eq!(store.publishers(), 7);
        store.deploy(&mut world);
        (floor, world)
    }

    #[test]
    fn interested_shopper_gets_notified_and_ar_starts_once() {
        let (floor, world) = setup();
        // Interested in the section L4 covers; standing right next to it.
        let mut app = CustomerApp::open("acme", vec!["L4".into()]);
        let pos = floor.landmark("L4").unwrap().pos.offset(0.5, 0.5);
        app.discovery_tick(&world, pos, 0);
        assert!(!app.notifications.is_empty());
        assert!(app.notifications[0].start_ar, "first match launches AR");
        assert_eq!(app.pending_actions.len(), 1);
        // Later ticks notify but don't re-request connectivity.
        app.discovery_tick(&world, pos, 1);
        assert_eq!(app.pending_actions.len(), 1);
        assert!(app.notifications.len() >= 2);
        // MRS ack completes the handshake.
        assert!(!app.connected());
        app.on_mrs_ack(true);
        assert!(app.connected());
    }

    #[test]
    fn uninterested_shopper_is_never_woken() {
        let (floor, world) = setup();
        let mut app = CustomerApp::open("acme", vec!["no-such-section".into()]);
        app.discovery_tick(&world, floor.landmark("L4").unwrap().pos, 0);
        assert!(app.notifications.is_empty());
        let (seen, filtered) = app.modem_stats();
        assert!(seen > 0, "broadcasts reached the modem");
        assert_eq!(seen, filtered, "but all were filtered in the modem");
    }

    #[test]
    fn different_store_does_not_match() {
        let (floor, mut world) = setup();
        let rival = StoreApp::staff_at_landmarks("rival-mart", &floor);
        rival.deploy(&mut world);
        let mut app = CustomerApp::open("rival-mart", vec![]);
        app.discovery_tick(&world, floor.landmark("L1").unwrap().pos, 0);
        assert!(app
            .notifications
            .iter()
            .all(|n| n.from.starts_with("staff-")),);
        // Every notification came from the rival's staff (same names with
        // our convention) — check via the service routing instead: close
        // and ensure acme interests were never triggered.
        let mut acme = CustomerApp::open("acme", vec![]);
        acme.discovery_tick(&world, floor.landmark("L1").unwrap().pos, 0);
        assert!(acme.notifications.iter().all(|n| {
            // acme app only sees acme announcements (expressions are
            // landmark names for both stores, so check counts instead).
            !n.about.is_empty()
        }));
    }

    #[test]
    fn closing_the_app_tears_connectivity_down() {
        let (floor, world) = setup();
        let mut app = CustomerApp::open("acme", vec![]);
        app.discovery_tick(&world, floor.landmark("L2").unwrap().pos, 0);
        app.on_mrs_ack(true);
        assert!(app.connected());
        let action = app.close();
        assert_eq!(
            action,
            Some(ConnectivityAction::Delete {
                service: "acme".into()
            })
        );
    }

    #[test]
    fn rx_readings_feed_localization() {
        let (floor, world) = setup();
        let mut app = CustomerApp::open("acme", vec![]);
        let pos = Point::new(14.0, 7.5);
        for t in 0..4 {
            app.discovery_tick(&world, pos, t);
        }
        let readings = app.rx_readings();
        assert!(readings.len() >= 3, "enough landmarks for tri-lateration");
        let _ = floor;
    }
}
