//! Node-lifecycle chaos over the city scenario: MEC/GW crash-restart
//! injection and the end-to-end session failover ladder.
//!
//! The [`crate::city`] scenario (with [`FailoverWiring`]
//! enabled) already carries the full detection-and-recovery machinery:
//! MEC servers heartbeat the cloud MRS, the MRS runs miss-N-of-M lease
//! audits, streaming clients periodically re-validate their resolution,
//! and the GW-C guards against anchoring dedicated bearers on gateways
//! with no path to the UE. This module adds the *faults*: a seeded
//! [`NodeFaultPlan`] crashing a region's MEC server (and, for correlated
//! region outages, its local GW-U), the O&M failure indication that
//! flushes the dead gateway's bearers, and the post-outage pokes that
//! revive a restarted node's heartbeat chain. It then audits the outcome
//! of **every** session:
//!
//! * **stayed** — the serving MEC never lapsed (unaffected regions);
//! * **neighbor-MEC** — the session re-anchored on the next-closest
//!   region's server over the default bearer;
//! * **cloud-fallback** — the session degraded to the cloud path;
//! * **restart-rebind** — the session left and came back after the
//!   crashed server restarted and its lease was restored.
//!
//! Every session must land in exactly one bucket and complete its frame
//! budget — `wedged == 0` at every shard count is the experiment's
//! headline invariant.

use crate::arclient::ArFrontend;
use crate::city::{CityConfig, CityReport, CityScenario, CityTimeline, FailoverWiring};
use crate::mrs::Mrs;
use acacia_lte::entities::{gwc_port, GwControl};
use acacia_lte::wire::ControlMsg;
use acacia_simnet::fault::{NodeFaultPlan, NodeFaultRule};
use acacia_simnet::packet::Packet;
use acacia_simnet::time::Duration;
use std::net::Ipv4Addr;

/// What dies, and whether it comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverMode {
    /// The victim region's MEC server crash-stops and never returns.
    CrashStop,
    /// The MEC server crash-restarts after the configured outage.
    CrashRestart,
    /// Correlated region outage: the MEC server *and* the region's local
    /// GW-U crash-restart together, and the O&M plane tells the GW-C to
    /// flush every bearer anchored on the dead gateway.
    RegionOutage,
}

impl FailoverMode {
    /// Stable label for tables and sweep output.
    pub fn label(&self) -> &'static str {
        match self {
            FailoverMode::CrashStop => "crash-stop",
            FailoverMode::CrashRestart => "crash-restart",
            FailoverMode::RegionOutage => "region-outage",
        }
    }
}

/// Failover experiment parameters.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// The city underneath (its `failover` wiring is force-enabled by
    /// [`FailoverScenario::run`]).
    pub city: CityConfig,
    /// Crash shape.
    pub mode: FailoverMode,
    /// Region whose MEC (and GW-U, for [`FailoverMode::RegionOutage`])
    /// dies.
    pub crash_region: usize,
    /// Crash instant, as an offset from schedule time — pick it inside
    /// the streaming phase.
    pub crash_after: Duration,
    /// Outage length for the restarting modes (ignored by
    /// [`FailoverMode::CrashStop`]).
    pub outage: Duration,
    /// Seed of the node-fault plan (probability draws; the schedule
    /// itself is deterministic).
    pub fault_seed: u64,
}

impl FailoverConfig {
    /// The smoke-sized failover city: 8 regions × 4 UEs, 3 frames, crash
    /// 2 s into the run.
    pub fn smoke(mode: FailoverMode, outage: Duration) -> FailoverConfig {
        FailoverConfig {
            city: CityConfig {
                failover: Some(FailoverWiring::default()),
                ..CityConfig::smoke()
            },
            mode,
            crash_region: 0,
            crash_after: Duration::from_secs(2),
            outage,
            fault_seed: 11,
        }
    }
}

/// Which bucket each session landed in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverOutcomes {
    /// Sessions that never failed over.
    pub stayed: usize,
    /// Sessions anchored on a neighbor region's MEC at the end.
    pub neighbor_mec: usize,
    /// Sessions that ended on the cloud fallback.
    pub cloud_fallback: usize,
    /// Sessions that left and re-bound to the restarted original server.
    pub restart_rebind: usize,
}

impl FailoverOutcomes {
    /// Sessions accounted for across all buckets.
    pub fn total(&self) -> usize {
        self.stayed + self.neighbor_mec + self.cloud_fallback + self.restart_rebind
    }
}

/// Results of one failover run.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The underlying city report (frames, handovers, wedged, parity).
    pub city: CityReport,
    /// Outcome audit over every session.
    pub outcomes: FailoverOutcomes,
    /// Service interruptions recorded at each failover (seconds, sorted
    /// ascending): the gap between the session's last forward progress
    /// and the adoption of the new server.
    pub interruptions_s: Vec<f64>,
    /// Total failovers across all sessions.
    pub failovers: u64,
    /// Lease rechecks issued by clients.
    pub lease_rechecks: u64,
    /// Engine: node restarts executed.
    pub node_restarts: u64,
    /// Engine: arrivals rejected at crashed nodes.
    pub node_arrivals_rejected: u64,
    /// Engine: stale-epoch timers dropped.
    pub node_timers_dropped: u64,
    /// MRS: heartbeats ingested.
    pub mrs_heartbeats: u64,
    /// MRS: lease evictions.
    pub mrs_evictions: u64,
    /// MRS: post-eviction restores.
    pub mrs_restores: u64,
    /// GW-C: GW-U failure notices processed.
    pub gwu_failure_notices: u64,
    /// GW-C: dedicated bearers flushed by failure notices.
    pub gwu_flush_released: u64,
    /// GW-C: dedicated installs NACKed for lack of a local path.
    pub dedicated_rejected_no_path: u64,
    /// GW-C: dedicated-bearer activation counter.
    pub dedicated_active: u64,
    /// GW-C: dedicated bearers actually in the session table.
    pub dedicated_live: u64,
    /// GW-C: dedicated activations still mid-flight at collection.
    pub dedicated_pending: u64,
}

impl FailoverReport {
    /// Interruption percentile (`p` in [0, 100]) over all recorded
    /// failovers; 0.0 when none happened.
    pub fn interruption_percentile(&self, p: f64) -> f64 {
        if self.interruptions_s.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (self.interruptions_s.len() - 1) as f64).round() as usize;
        self.interruptions_s[idx.min(self.interruptions_s.len() - 1)]
    }

    /// The recovery-counter conservation identity the soaks assert: the
    /// GW-C's activation counter must equal the bearers actually present
    /// (plus none mid-flight), and every session must be in exactly one
    /// outcome bucket.
    pub fn conserved(&self) -> bool {
        self.dedicated_active == self.dedicated_live
            && self.dedicated_pending == 0
            && self.outcomes.total() == self.city.ue_count
            && self.city.cross_shard_conserved()
    }
}

/// A built failover run (city scenario + fault plan).
pub struct FailoverScenario;

impl FailoverScenario {
    /// Build the city, inject the crash schedule, run every session to
    /// completion, and audit the outcomes.
    pub fn run(cfg: FailoverConfig) -> FailoverReport {
        let mut city_cfg = cfg.city.clone();
        if city_cfg.failover.is_none() {
            city_cfg.failover = Some(FailoverWiring::default());
        }
        assert!(
            cfg.crash_region < city_cfg.regions,
            "crash region out of range"
        );
        let mut scenario = CityScenario::build(city_cfg);
        let mut timeline = scenario.schedule();
        // Crashed sessions ride out the outage plus the detection and
        // re-resolution ladder before finishing their frames.
        timeline.deadline = timeline.deadline + cfg.outage + Duration::from_secs(10);

        Self::inject(&mut scenario, &cfg, &timeline);
        scenario.await_sessions(&timeline);
        Self::collect(&scenario, &cfg, &timeline)
    }

    /// Attach the node-fault plan and schedule the O&M side effects.
    fn inject(scenario: &mut CityScenario, cfg: &FailoverConfig, timeline: &CityTimeline) {
        let crash_at = timeline.start + cfg.crash_after;
        let victim = scenario.servers[cfg.crash_region];
        let mut plan = NodeFaultPlan::new(cfg.fault_seed);
        match cfg.mode {
            FailoverMode::CrashStop => {
                plan.add_rule(NodeFaultRule::crash_stop(victim, crash_at));
            }
            FailoverMode::CrashRestart => {
                plan.add_rule(NodeFaultRule::crash_restart(victim, crash_at, cfg.outage));
            }
            FailoverMode::RegionOutage => {
                plan.add_rule(NodeFaultRule::crash_restart(victim, crash_at, cfg.outage));
                let (gwu, gwu_addr) = scenario
                    .net
                    .local_gwu_in_region(cfg.crash_region as u32);
                plan.add_rule(NodeFaultRule::crash_restart(gwu, crash_at, cfg.outage));
                // O&M failure detection: tell the GW-C to flush every
                // dedicated bearer anchored on the dead gateway. The
                // detection delay models the monitoring plane's lag.
                let detect_at = crash_at + Duration::from_millis(200);
                let msg = ControlMsg::GwuFailureIndication { gwu_addr };
                let gwc_addr = scenario.net.sim.node_ref::<GwControl>(scenario.net.gwc).addr;
                let pkt = msg.into_packet(gwu_addr, gwc_addr);
                scenario
                    .net
                    .sim
                    .inject_packet(scenario.net.gwc, gwc_port::SGW_U, detect_at, pkt);
            }
        }
        scenario.net.sim.attach_node_fault_plan(&plan);

        if cfg.mode != FailoverMode::CrashStop {
            // Timers armed before the crash die with the old lifecycle
            // epoch, so a restarted node needs a *packet* to wake up: an
            // ICMP poke sourced at the MRS (whose echo reply it silently
            // ignores) lands just after the outage window closes,
            // triggers the lazy restart, and — because `hb_live` is
            // false after `on_restart` — re-arms the heartbeat chain.
            let poke_at = crash_at + cfg.outage + Duration::from_millis(1);
            let server_addr = scenario.server_addrs[cfg.crash_region];
            let poke = Packet::icmp(scenario.mrs_addr, server_addr, 0).with_created(poke_at);
            scenario.net.sim.inject_packet(victim, 0, poke_at, poke);
            if cfg.mode == FailoverMode::RegionOutage {
                let (gwu, gwu_addr) = scenario
                    .net
                    .local_gwu_in_region(cfg.crash_region as u32);
                let poke = Packet::icmp(scenario.mrs_addr, gwu_addr, 0).with_created(poke_at);
                // Port 1 is a data port: the switch has no rule for the
                // poke and drops it, but arriving at all is what drives
                // the lazy crash-window exit (and the restart counter).
                scenario.net.sim.inject_packet(gwu, 1, poke_at, poke);
            }
        }
    }

    /// Classify every session and gather the recovery counters.
    fn collect(
        scenario: &CityScenario,
        cfg: &FailoverConfig,
        timeline: &CityTimeline,
    ) -> FailoverReport {
        let city = scenario.collect(timeline);
        let original: Vec<Ipv4Addr> = (0..city.ue_count)
            .map(|i| scenario.server_addrs[i / (city.ue_count / city.regions)])
            .collect();
        let mut outcomes = FailoverOutcomes::default();
        let mut interruptions = Vec::new();
        let mut failovers = 0u64;
        let mut lease_rechecks = 0u64;
        for (i, &client) in scenario.clients.iter().enumerate() {
            let c = scenario.net.sim.node_ref::<ArFrontend>(client);
            failovers += c.failovers;
            lease_rechecks += c.lease_rechecks;
            for &(_, gap) in &c.failover_log {
                interruptions.push(gap.secs_f64());
            }
            let fin = c.current_server();
            if c.failovers == 0 {
                outcomes.stayed += 1;
            } else if Some(fin) == scenario.cloud_addr {
                outcomes.cloud_fallback += 1;
            } else if fin == original[i] {
                outcomes.restart_rebind += 1;
            } else {
                outcomes.neighbor_mec += 1;
            }
        }
        interruptions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mrs = scenario.net.sim.node_ref::<Mrs>(scenario.mrs);
        let gwc = scenario.net.sim.node_ref::<GwControl>(scenario.net.gwc);
        let _ = cfg;
        FailoverReport {
            outcomes,
            interruptions_s: interruptions,
            failovers,
            lease_rechecks,
            node_restarts: scenario.net.sim.node_restarts(),
            node_arrivals_rejected: scenario.net.sim.node_arrivals_rejected(),
            node_timers_dropped: scenario.net.sim.node_timers_dropped(),
            mrs_heartbeats: mrs.heartbeats_seen,
            mrs_evictions: mrs.evictions,
            mrs_restores: mrs.restores,
            gwu_failure_notices: gwc.gwu_failure_notices,
            gwu_flush_released: gwc.gwu_flush_released,
            dedicated_rejected_no_path: gwc.dedicated_rejected_no_path,
            dedicated_active: gwc.dedicated_active,
            dedicated_live: gwc.dedicated_live(),
            dedicated_pending: gwc.dedicated_pending(),
            city,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: FailoverMode, outage: Duration) -> FailoverConfig {
        let mut cfg = FailoverConfig::smoke(mode, outage);
        cfg.city.regions = 2;
        cfg.city.ues_per_region = 2;
        cfg.city.frame_count = 2;
        cfg
    }

    #[test]
    fn crash_stop_fails_sessions_over_and_nobody_wedges() {
        let r = FailoverScenario::run(tiny(FailoverMode::CrashStop, Duration::ZERO));
        assert_eq!(r.city.wedged(), 0, "every session completes: {:?}", r.outcomes);
        assert_eq!(r.city.protocol_wedged(), 0);
        assert!(r.conserved(), "conservation: {r:?}");
        assert!(r.failovers > 0, "the crashed region's sessions moved");
        assert_eq!(r.mrs_evictions, 1, "one server evicted");
        assert_eq!(r.mrs_restores, 0, "crash-stop never comes back");
        assert_eq!(r.node_restarts, 0);
        assert!(
            r.node_arrivals_rejected + r.node_timers_dropped > 0,
            "the dead node shed work: {r:?}"
        );
        assert_eq!(
            r.outcomes.neighbor_mec + r.outcomes.cloud_fallback,
            r.city.ue_count / 2,
            "the crashed region's sessions all left: {:?}",
            r.outcomes
        );
    }

    #[test]
    fn lone_region_crash_stop_degrades_to_cloud() {
        // With a single region there is no neighbor MEC to fall over to:
        // the only live resolution after the crash is the cloud
        // fallback, and every crashed session must take it.
        let mut cfg = tiny(FailoverMode::CrashStop, Duration::ZERO);
        cfg.city.regions = 1;
        let r = FailoverScenario::run(cfg);
        assert_eq!(r.city.wedged(), 0, "outcomes: {:?}", r.outcomes);
        assert!(r.conserved(), "conservation: {r:?}");
        assert_eq!(r.outcomes.neighbor_mec, 0, "no neighbor exists");
        assert!(
            r.outcomes.cloud_fallback > 0,
            "crashed sessions degrade to the cloud: {:?}",
            r.outcomes
        );
    }

    #[test]
    fn crash_restart_recovers_and_counts_the_restart() {
        let r = FailoverScenario::run(tiny(FailoverMode::CrashRestart, Duration::from_secs(1)));
        assert_eq!(r.city.wedged(), 0, "outcomes: {:?}", r.outcomes);
        assert_eq!(r.city.protocol_wedged(), 0);
        assert!(r.conserved(), "conservation: {r:?}");
        assert_eq!(r.node_restarts, 1, "the MEC server restarted");
        assert_eq!(r.mrs_evictions, 1);
        assert_eq!(r.mrs_restores, 1, "the restarted lease was restored");
    }

    #[test]
    fn region_outage_flushes_the_dead_gateway() {
        let r = FailoverScenario::run(tiny(FailoverMode::RegionOutage, Duration::from_secs(1)));
        assert_eq!(r.city.wedged(), 0, "outcomes: {:?}", r.outcomes);
        assert_eq!(r.city.protocol_wedged(), 0);
        assert!(r.conserved(), "conservation: {r:?}");
        assert_eq!(r.node_restarts, 2, "MEC server + local GW-U restarted");
        assert_eq!(r.gwu_failure_notices, 1);
        assert!(
            r.gwu_flush_released > 0,
            "the dead gateway's bearers were flushed: {r:?}"
        );
    }
}
