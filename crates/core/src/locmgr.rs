//! The LTE-direct localization manager (paper §5.5, §6.3(iii)).
//!
//! Runs at the CI server: loads per-environment metadata (landmark
//! positions and the one-time path-loss regression), aggregates rxPower
//! reports arriving from the client, and tri-laterates the client's
//! current location to feed the AR back-end's search-space pruning.

use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::{FittedPathLoss, PathLossModel};
use acacia_geo::point::Point;
use acacia_geo::trilateration::{trilaterate, RangeMeasurement};
use std::collections::BTreeMap;

/// Environment metadata the manager "reads from a file" at startup
/// (paper: landmark count/locations/names plus the regression parameters
/// (α, β)).
#[derive(Debug, Clone)]
pub struct LocalizationMetadata {
    /// Landmark name → position.
    pub landmarks: BTreeMap<String, Point>,
    /// rxPower → distance regression.
    pub pathloss: FittedPathLoss,
}

impl LocalizationMetadata {
    /// Build metadata for a floor: landmark positions from the plan, and
    /// the regression fitted against calibration samples of `model` over
    /// 1–40 m (the paper's one-time calibration walk).
    pub fn for_floor(floor: &FloorPlan, model: &PathLossModel) -> LocalizationMetadata {
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 6.0, 9.0, 13.0, 18.0, 25.0, 40.0]
            .iter()
            .map(|&d| (d, model.rx_power_dbm(d)))
            .collect();
        LocalizationMetadata {
            landmarks: floor
                .landmarks
                .iter()
                .map(|l| (l.name.clone(), l.pos))
                .collect(),
            pathloss: FittedPathLoss::fit(&samples).expect("calibration fit"),
        }
    }
}

/// The localization manager: latest reading per landmark → location.
#[derive(Debug, Clone)]
pub struct LocalizationManager {
    meta: LocalizationMetadata,
    /// Smoothed rxPower per landmark (EWMA over reports).
    readings: BTreeMap<String, f64>,
    /// EWMA factor for successive readings of the same landmark.
    alpha: f64,
    /// Estimates produced so far.
    pub estimates: u64,
}

impl LocalizationManager {
    /// New manager over the environment metadata.
    pub fn new(meta: LocalizationMetadata) -> LocalizationManager {
        LocalizationManager {
            meta,
            readings: BTreeMap::new(),
            alpha: 0.5,
            estimates: 0,
        }
    }

    /// Ingest one rxPower report. Unknown landmarks are ignored.
    pub fn report(&mut self, landmark: &str, rx_power_dbm: f64) {
        if !self.meta.landmarks.contains_key(landmark) {
            return;
        }
        let entry = self
            .readings
            .entry(landmark.to_string())
            .or_insert(rx_power_dbm);
        *entry = self.alpha * rx_power_dbm + (1.0 - self.alpha) * *entry;
    }

    /// Number of landmarks currently heard.
    pub fn landmarks_heard(&self) -> usize {
        self.readings.len()
    }

    /// Latest (landmark, rxPower) view — the input for the `rxPower`
    /// baseline strategy.
    pub fn rx_view(&self) -> Vec<(String, f64)> {
        self.readings.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// Tri-laterate from the current readings. Needs ≥3 landmarks.
    pub fn estimate(&mut self) -> Option<Point> {
        if self.readings.len() < 3 {
            return None;
        }
        let measurements: Vec<RangeMeasurement> = self
            .readings
            .iter()
            .filter_map(|(name, &rx)| {
                let pos = *self.meta.landmarks.get(name)?;
                Some(RangeMeasurement::new(
                    pos,
                    self.meta.pathloss.predict_distance(rx),
                ))
            })
            .collect();
        let sol = trilaterate(&measurements).ok()?;
        self.estimates += 1;
        Some(sol.position)
    }

    /// Drop all readings (e.g. the user left the store).
    pub fn reset(&mut self) {
        self.readings.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_d2d::channel::RadioChannel;
    use acacia_d2d::discovery::ProximityWorld;
    use acacia_d2d::modem::Modem;
    use acacia_d2d::service::SubscriptionFilter;

    fn manager(floor: &FloorPlan) -> LocalizationManager {
        let model = PathLossModel::indoor_default();
        LocalizationManager::new(LocalizationMetadata::for_floor(floor, &model))
    }

    #[test]
    fn ideal_channel_localizes_precisely() {
        let floor = FloorPlan::retail_store();
        let model = PathLossModel::indoor_default();
        let mut mgr = manager(&floor);
        let truth = Point::new(13.0, 8.0);
        for lm in &floor.landmarks {
            mgr.report(&lm.name, model.rx_power_dbm(truth.distance(lm.pos)));
        }
        let est = mgr.estimate().expect("estimate");
        assert!(
            est.distance(truth) < 0.5,
            "error {} m at {est:?}",
            est.distance(truth)
        );
    }

    #[test]
    fn needs_three_landmarks() {
        let floor = FloorPlan::retail_store();
        let mut mgr = manager(&floor);
        mgr.report("L1", -70.0);
        mgr.report("L2", -75.0);
        assert!(mgr.estimate().is_none());
        mgr.report("L3", -80.0);
        assert!(mgr.estimate().is_some());
    }

    #[test]
    fn realistic_channel_error_is_metres_not_tens() {
        // The paper's headline localization accuracy: ~3 m mean error with
        // all seven landmarks (Fig. 9(b)).
        let floor = FloorPlan::retail_store();
        let model = PathLossModel::indoor_default();
        let channel = RadioChannel::new(model, 77);
        let world = ProximityWorld::from_floor(&floor, "acme", channel);

        let mut total = 0.0;
        let mut n = 0;
        for cp in &floor.checkpoints {
            let mut mgr = manager(&floor);
            let mut modem = Modem::new();
            modem.subscribe(SubscriptionFilter::service_wide("acme"));
            for ev in world.scan_dwell(&mut modem, cp.pos, 0, 4) {
                mgr.report(&ev.publisher, ev.rx_power_dbm);
            }
            if let Some(est) = mgr.estimate() {
                total += est.distance(cp.pos);
                n += 1;
            }
        }
        assert!(n >= 20, "only {n} checkpoints localized");
        let mean = total / n as f64;
        assert!(
            (1.0..6.0).contains(&mean),
            "mean localization error {mean:.2} m"
        );
    }

    #[test]
    fn unknown_landmarks_ignored() {
        let floor = FloorPlan::retail_store();
        let mut mgr = manager(&floor);
        mgr.report("nonsense", -50.0);
        assert_eq!(mgr.landmarks_heard(), 0);
    }

    #[test]
    fn ewma_smooths_oscillating_readings() {
        let floor = FloorPlan::retail_store();
        let mut mgr = manager(&floor);
        mgr.report("L1", -70.0);
        mgr.report("L1", -80.0);
        let v = mgr.rx_view();
        assert_eq!(v.len(), 1);
        assert!((v[0].1 - (-75.0)).abs() < 1e-9, "smoothed {}", v[0].1);
    }

    #[test]
    fn reset_clears_state() {
        let floor = FloorPlan::retail_store();
        let mut mgr = manager(&floor);
        for lm in &floor.landmarks {
            mgr.report(&lm.name, -70.0);
        }
        assert!(mgr.landmarks_heard() > 0);
        mgr.reset();
        assert_eq!(mgr.landmarks_heard(), 0);
        assert!(mgr.estimate().is_none());
    }
}
