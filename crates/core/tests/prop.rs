//! Property-based tests for the ACACIA application layer.

use acacia::msg::{AppMsg, FrameMeta};
use acacia::search::{candidates, SearchContext, SearchStrategy};
use acacia_geo::floor::FloorPlan;
use acacia_geo::point::Point;
use acacia_simnet::time::Instant;
use acacia_vision::compress::Codec;
use acacia_vision::db::ObjectDb;
use acacia_vision::image::{ImageSpec, Resolution};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn arb_msg() -> impl Strategy<Value = AppMsg> {
    let meta = (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(scene, seed, t)| FrameMeta {
        spec: ImageSpec::new(scene, Resolution::E2E),
        codec: Codec::Jpeg(90),
        view_seed: seed,
        captured_at_nanos: t,
    });
    prop_oneof![
        (any::<u64>(), 0u32..100, 1u32..100, prop::option::of(meta)).prop_map(
            |(seq, chunk, total, meta)| AppMsg::FrameChunk {
                seq,
                chunk,
                total_chunks: total.max(chunk + 1),
                meta,
            }
        ),
        (any::<u64>(), any::<u32>()).prop_map(|(seq, chunk)| AppMsg::ChunkAck { seq, chunk }),
        (
            any::<u64>(),
            prop::option::of("[a-z#0-9-]{1,24}"),
            0.0f64..10.0,
            0.0f64..10.0,
            0usize..200
        )
            .prop_map(|(seq, matched, c, m, n)| AppMsg::FrameResult {
                seq,
                matched,
                compute_s: c,
                match_s: m,
                candidates: n,
            }),
        ("[A-Z][0-9]{1,2}", -120.0f64..-30.0).prop_map(|(landmark, rx)| AppMsg::RxReport {
            landmark,
            rx_power_dbm: rx,
        }),
        ("[a-z-]{1,16}", any::<u32>(), any::<bool>()).prop_map(|(service, ip, create)| {
            AppMsg::MrsRequest {
                service,
                ue_addr: Ipv4Addr::from(ip),
                create,
            }
        }),
    ]
}

/// Shared fixtures (DB generation is expensive; build once).
fn fixtures() -> &'static (FloorPlan, ObjectDb) {
    static FIX: OnceLock<(FloorPlan, ObjectDb)> = OnceLock::new();
    FIX.get_or_init(|| {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 2, 77);
        (floor, db)
    })
}

proptest! {
    /// App messages survive the packet round-trip.
    #[test]
    fn app_msg_roundtrip(msg in arb_msg(), extra in 0u32..5_000) {
        let pkt = msg.into_packet(
            (Ipv4Addr::new(10, 10, 0, 1), 9000),
            (Ipv4Addr::new(10, 4, 0, 1), 9000),
            extra,
            Instant::from_millis(5),
        );
        prop_assert_eq!(AppMsg::from_packet(&pkt), Some(msg));
    }

    /// Search strategies: ACACIA candidates are always a subset of the DB
    /// grouped by the subsections near the location, and never empty when
    /// a location is known.
    #[test]
    fn acacia_candidates_subset(x in 0.2f64..27.8, y in 0.2f64..14.8, radius_x10 in 5u32..80) {
        let (floor, db) = fixtures();
        let strategy = SearchStrategy::Acacia { radius_m_x10: radius_x10 };
        let ctx = SearchContext {
            rx_readings: vec![],
            location: Some(Point::new(x, y)),
        };
        let picked = candidates(strategy, db, floor, &ctx);
        prop_assert!(!picked.is_empty());
        prop_assert!(picked.len() <= db.len());
        let allowed = floor.subsections_near(Point::new(x, y), strategy.radius_m());
        for o in &picked {
            prop_assert!(allowed.contains(&o.subsection));
        }
        // Monotone in the radius.
        let bigger = candidates(
            SearchStrategy::Acacia { radius_m_x10: radius_x10 + 20 },
            db, floor, &ctx,
        );
        prop_assert!(bigger.len() >= picked.len());
    }

    /// rxPower strategy picks only objects from the strongest landmarks'
    /// sections, regardless of reading order.
    #[test]
    fn rxpower_candidates_order_independent(perm in prop::sample::subsequence(vec![0usize,1,2,3,4,5,6], 2..=7)) {
        let (floor, db) = fixtures();
        let readings: Vec<(String, f64)> = perm
            .iter()
            .map(|&i| (format!("L{}", i + 1), -60.0 - i as f64 * 5.0))
            .collect();
        let mut reversed = readings.clone();
        reversed.reverse();
        let a = candidates(SearchStrategy::RxPower, db, floor, &SearchContext {
            rx_readings: readings,
            location: None,
        });
        let b = candidates(SearchStrategy::RxPower, db, floor, &SearchContext {
            rx_readings: reversed,
            location: None,
        });
        let ids =
            |v: &Vec<&acacia_vision::db::DbObject>| v.iter().map(|o| o.id).collect::<Vec<_>>();
        prop_assert_eq!(ids(&a), ids(&b));
    }
}
