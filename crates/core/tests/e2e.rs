//! End-to-end scenario tests: the paper's §7.4 headline comparison at
//! smoke-test scale (small database, few frames) so they run quickly in
//! debug builds. The full-scale numbers are produced by the
//! `acacia-bench` figures harness.

use acacia::scenario::{Deployment, Scenario, ScenarioConfig};

fn run(deployment: Deployment) -> acacia::scenario::SessionReport {
    Scenario::build(ScenarioConfig::smoke(deployment)).run()
}

#[test]
fn acacia_session_completes_with_correct_matches() {
    let report = run(Deployment::Acacia);
    assert_eq!(report.frames.len(), 3, "all frames answered");
    assert!(report.accuracy > 0.65, "accuracy {}", report.accuracy);
    assert!(report.bearer_setup.is_some(), "MRS handshake happened");
    let setup = report.bearer_setup.unwrap();
    assert!(
        setup.millis() < 500,
        "bearer setup took {setup} (expected well under a second)"
    );
    // Every component is positive and they add up.
    for f in &report.frames {
        assert!(f.total_s() > 0.0);
        assert!(f.network_s() > 0.0);
        assert!(f.compute_s() > 0.0);
        assert!(f.match_s() > 0.0);
        let sum = f.network_s() + f.compute_s() + f.match_s();
        assert!((sum - f.total_s()).abs() < 1e-6);
    }
}

#[test]
fn cloud_session_runs_without_mrs() {
    let report = run(Deployment::Cloud);
    assert_eq!(report.frames.len(), 3);
    assert!(report.bearer_setup.is_none());
    assert!(report.accuracy > 0.65, "accuracy {}", report.accuracy);
}

#[test]
fn headline_ordering_acacia_beats_mec_beats_cloud() {
    let acacia = run(Deployment::Acacia);
    let mec = run(Deployment::Mec);
    let cloud = run(Deployment::Cloud);

    let (ta, tm, tc) = (
        acacia.mean_total_s(),
        mec.mean_total_s(),
        cloud.mean_total_s(),
    );
    assert!(
        ta < tm && tm < tc,
        "totals: acacia {ta:.3}s mec {tm:.3}s cloud {tc:.3}s"
    );

    // Network: ACACIA/MEC share the edge path; CLOUD is much slower.
    let na = acacia.mean_network_s();
    let nc = cloud.mean_network_s();
    assert!(nc / na > 2.0, "network cloud {nc:.3}s vs acacia {na:.3}s");

    // Match: ACACIA prunes, MEC/CLOUD do not (at smoke scale the DB has 21
    // objects; pruning still cuts it several-fold).
    let ma = acacia.mean_match_s();
    let mm = mec.mean_match_s();
    assert!(mm / ma > 2.0, "match mec {mm:.3}s vs acacia {ma:.3}s");

    // Compute is roughly equal across deployments ("no significant
    // difference between the different approaches").
    let ca = acacia.mean_compute_s();
    let cc = cloud.mean_compute_s();
    assert!(
        (ca / cc - 1.0).abs() < 0.2,
        "compute acacia {ca:.3}s vs cloud {cc:.3}s"
    );
}

#[test]
fn lossy_radio_still_completes_session() {
    // 3% residual frame loss on the air interface: the client's
    // retransmission logic must push every frame through (each ~50-chunk
    // upload loses a chunk or two with near-certainty).
    let report = Scenario::build(ScenarioConfig {
        radio_loss: 0.03,
        ..ScenarioConfig::smoke(Deployment::Acacia)
    })
    .run();
    assert_eq!(
        report.frames.len(),
        3,
        "all frames must complete despite loss"
    );
    assert!(report.accuracy > 0.65, "accuracy {}", report.accuracy);
    // Latency may be worse than the clean run, but must stay bounded (the
    // retransmission timeout is 500 ms).
    for f in &report.frames {
        assert!(
            f.total_s() < 5.0,
            "frame {} took {:.2}s",
            f.seq,
            f.total_s()
        );
    }
}

#[test]
fn alternative_proximity_technologies_complete_sessions() {
    // Paper §8: iBeacon / Wi-Fi Aware slot in for LTE-direct.
    for tech in [
        acacia_d2d::technology::ProximityTech::IBeacon,
        acacia_d2d::technology::ProximityTech::WifiAware,
    ] {
        let report = Scenario::build(ScenarioConfig {
            tech,
            ..ScenarioConfig::smoke(Deployment::Acacia)
        })
        .run();
        assert_eq!(report.frames.len(), 3, "{}", tech.name());
        assert!(
            report.bearer_setup.is_some(),
            "{}: discovery must still trigger the bearer",
            tech.name()
        );
        assert!(
            report.accuracy > 0.65,
            "{} accuracy {}",
            tech.name(),
            report.accuracy
        );
    }
}

#[test]
fn acacia_examines_fewer_candidates() {
    let acacia = run(Deployment::Acacia);
    let mec = run(Deployment::Mec);
    let mean_cands = |r: &acacia::scenario::SessionReport| {
        r.frames.iter().map(|f| f.candidates).sum::<usize>() as f64 / r.frames.len() as f64
    };
    let a = mean_cands(&acacia);
    let m = mean_cands(&mec);
    assert!(a < m / 2.0, "candidates acacia {a} vs mec {m}");
}
