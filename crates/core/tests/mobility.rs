//! Mobility e2e tests: an AR session that spans X2 handovers. The UE
//! walks from the MEC-equipped small cell to the far cell and back while
//! frames stream; the session must complete with zero application-level
//! failures in every variant.

use acacia::mobility::{MobilityConfig, MobilityMode, MobilityScenario};

fn run(mode: MobilityMode) -> acacia::mobility::MobilityReport {
    MobilityScenario::build(MobilityConfig::smoke(mode)).run()
}

#[test]
fn reanchor_session_survives_both_handovers() {
    let report = run(MobilityMode::Reanchor);
    assert!(
        report.session_complete(),
        "{} of {} frames completed",
        report.frames.len(),
        report.frames_requested
    );
    // Out to the far cell and back: two handovers, each with a bounded
    // service interruption.
    assert_eq!(report.handovers, 2, "walk crosses the A3 boundary twice");
    assert_eq!(report.interruptions_ms.len(), 2);
    for &gap in &report.interruptions_ms {
        assert!(gap < 500.0, "service interruption {gap} ms");
    }
    // The dedicated bearer followed the UE both times; nothing released.
    assert_eq!(report.dedicated_reanchored, 2);
    assert_eq!(report.dedicated_released, 0);
    // The device manager re-requested connectivity at each MEC cell and
    // the (idempotent) MRS handshake acked.
    assert_eq!(report.reanchors.0, 2, "one re-anchor request per handover");
    assert_eq!(report.reanchors.1, 2, "both acked");
}

#[test]
fn fallback_session_survives_on_the_default_bearer() {
    let report = run(MobilityMode::Fallback);
    assert!(
        report.session_complete(),
        "{} of {} frames completed",
        report.frames.len(),
        report.frames_requested
    );
    assert_eq!(report.handovers, 2);
    // Out: the far cell has no MEC, so the bearer is released and traffic
    // falls back to the default path. Back: the device manager re-creates
    // it on the home cell.
    assert_eq!(report.dedicated_released, 1);
    // The return-leg bearer is freshly *created* after the handover (the
    // device manager's re-request), not relocated during it.
    assert_eq!(report.dedicated_reanchored, 0);
    assert_eq!(report.reanchors, (1, 1), "re-create on returning to MEC");
}

#[test]
fn cloud_session_is_unaffected_by_bearer_machinery() {
    let report = run(MobilityMode::Cloud);
    assert!(
        report.session_complete(),
        "{} of {} frames completed",
        report.frames.len(),
        report.frames_requested
    );
    assert_eq!(report.handovers, 2);
    assert_eq!(report.dedicated_reanchored, 0);
    assert_eq!(report.dedicated_released, 0);
    assert_eq!(report.reanchors, (0, 0), "no MRS in the cloud baseline");
}
