//! Focused tests of the AR server node: chunk reassembly, ack clocking,
//! localization ingestion and serial service.

use acacia::arserver::{ArServer, ArServerConfig};
use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::msg::{AppMsg, FrameMeta, APP_PORT, AR_PORT};
use acacia::search::SearchStrategy;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::sim::{NodeId, Simulator};
use acacia_simnet::time::{Duration, Instant};
use acacia_simnet::traffic::Sink;
use acacia_vision::compress::Codec;
use acacia_vision::db::ObjectDb;
use acacia_vision::image::{ImageSpec, Resolution};
use std::net::Ipv4Addr;

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 4, 0, 1);
const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 1);

fn setup(strategy: SearchStrategy) -> (Simulator, NodeId, NodeId, ObjectDb, FloorPlan) {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 1, 33);
    let model = PathLossModel::indoor_default();
    let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
    let server = ArServer::new(
        ArServerConfig {
            device: acacia_vision::compute::Device::I7Octa,
            strategy,
            exec_cap: 16,
            ..ArServerConfig::new(SERVER)
        },
        db.clone(),
        floor.clone(),
        locmgr,
    );
    let mut sim = Simulator::new(1);
    let srv = sim.add_node(Box::new(server));
    let sink = sim.add_node(Box::new(Sink::new()));
    sim.connect(
        (srv, 0),
        (sink, 0),
        LinkConfig::delay_only(Duration::from_micros(100)),
    );
    (sim, srv, sink, db, floor)
}

fn frame_chunks(db: &ObjectDb, seq: u64, shuffle: bool) -> Vec<acacia_simnet::packet::Packet> {
    let target = &db.objects()[4];
    let spec = ImageSpec::new(target.id, Resolution::E2E);
    let meta = FrameMeta {
        spec,
        codec: Codec::Jpeg(90),
        view_seed: 9,
        captured_at_nanos: 0,
    };
    let total = 4u32;
    let mut chunks: Vec<_> = (0..total)
        .map(|chunk| {
            AppMsg::FrameChunk {
                seq,
                chunk,
                total_chunks: total,
                meta: (chunk == 0).then_some(meta),
            }
            .into_packet((CLIENT, APP_PORT), (SERVER, AR_PORT), 1_000, Instant::ZERO)
        })
        .collect();
    if shuffle {
        chunks.reverse();
    }
    chunks
}

#[test]
fn in_order_chunks_produce_acks_and_a_result() {
    let (mut sim, srv, sink, db, _) = setup(SearchStrategy::Naive);
    for (i, pkt) in frame_chunks(&db, 0, false).into_iter().enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(i as u64 * 100), pkt);
    }
    sim.run_until_idle();
    // 4 acks + 1 result.
    assert_eq!(sim.node_ref::<Sink>(sink).packets(), 5);
    let server = sim.node_ref::<ArServer>(srv);
    assert_eq!(server.records.len(), 1);
    let rec = &server.records[0];
    assert_eq!(rec.candidates, db.len());
    assert!(rec.matched.is_some(), "the photographed object must match");
    assert!(server.accuracy() > 0.99);
}

#[test]
fn out_of_order_chunks_still_reassemble() {
    let (mut sim, srv, _, db, _) = setup(SearchStrategy::Naive);
    for (i, pkt) in frame_chunks(&db, 0, true).into_iter().enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(i as u64 * 100), pkt);
    }
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<ArServer>(srv).records.len(), 1);
}

#[test]
fn duplicate_chunks_process_once() {
    let (mut sim, srv, _, db, _) = setup(SearchStrategy::Naive);
    let chunks = frame_chunks(&db, 0, false);
    for (i, pkt) in chunks.iter().enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(i as u64 * 100), pkt.clone());
    }
    // Re-inject the middle chunk twice more (retransmissions).
    sim.inject_packet(srv, 0, Instant::from_micros(900), chunks[1].clone());
    sim.inject_packet(srv, 0, Instant::from_micros(950), chunks[2].clone());
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<ArServer>(srv).records.len(), 1);
}

#[test]
fn incomplete_frame_never_processes() {
    let (mut sim, srv, sink, db, _) = setup(SearchStrategy::Naive);
    let chunks = frame_chunks(&db, 0, false);
    // Withhold the last chunk.
    for (i, pkt) in chunks.into_iter().take(3).enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(i as u64 * 100), pkt);
    }
    sim.run_until_idle();
    assert_eq!(sim.node_ref::<ArServer>(srv).records.len(), 0);
    // Acks still flowed (they clock the client's window).
    assert_eq!(sim.node_ref::<Sink>(sink).packets(), 3);
}

#[test]
fn rx_reports_feed_pruning() {
    let (mut sim, srv, _, db, floor) = setup(SearchStrategy::ACACIA_DEFAULT);
    // Reports consistent with standing at checkpoint C11 (14±, 7.5).
    let model = PathLossModel::indoor_default();
    let pos = floor.checkpoints[10].pos;
    let mut t = 0u64;
    for lm in &floor.landmarks {
        let rx = model.rx_power_dbm(pos.distance(lm.pos));
        let pkt = AppMsg::RxReport {
            landmark: lm.name.clone(),
            rx_power_dbm: rx,
        }
        .into_packet((CLIENT, APP_PORT), (SERVER, AR_PORT), 0, Instant::ZERO);
        sim.inject_packet(srv, 0, Instant::from_micros(t), pkt);
        t += 50;
    }
    for pkt in frame_chunks(&db, 0, false) {
        sim.inject_packet(srv, 0, Instant::from_micros(t), pkt);
        t += 100;
    }
    sim.run_until_idle();
    let server = sim.node_ref::<ArServer>(srv);
    assert_eq!(server.reports_seen, 7);
    assert_eq!(server.records.len(), 1);
    assert!(
        server.records[0].candidates < db.len(),
        "localized server must prune ({} of {})",
        server.records[0].candidates,
        db.len()
    );
}

#[test]
fn two_frames_are_served_serially() {
    let (mut sim, srv, sink, db, _) = setup(SearchStrategy::Naive);
    for (i, pkt) in frame_chunks(&db, 0, false).into_iter().enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(i as u64 * 10), pkt);
    }
    for (i, pkt) in frame_chunks(&db, 1, false).into_iter().enumerate() {
        sim.inject_packet(srv, 0, Instant::from_micros(1_000 + i as u64 * 10), pkt);
    }
    sim.run_until_idle();
    let server = sim.node_ref::<ArServer>(srv);
    assert_eq!(server.records.len(), 2);
    // The serial processor spaces results by at least the second frame's
    // service time: both frames arrived within ~1 ms, but the two results
    // must be separated by roughly one full (compute + match) interval.
    let s = sim.node_ref::<Sink>(sink);
    // Last two arrivals are the results (acks precede them).
    let results: Vec<Instant> = {
        let mut v = Vec::new();
        let d = s.delays().len();
        let _ = d;
        v.push(s.last_arrival().unwrap());
        v
    };
    let service = server.records[1].compute_s + server.records[1].match_s;
    let first_possible = Duration::from_secs_f64(service * 2.0); // two serial services
    assert!(
        results[0] >= Instant::ZERO + first_possible,
        "second result at {} should wait for two service times ({service}s each)",
        results[0]
    );
}
