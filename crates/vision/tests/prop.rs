//! Property-based tests for the vision substrate.

use acacia_vision::compress::Codec;
use acacia_vision::compute::Device;
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{camera_preview_fps, expected_features, ImageSpec, Resolution};
use acacia_vision::matcher::{match_pair, MatchOps, MatcherConfig};
use proptest::prelude::*;

proptest! {
    /// Feature generation is prefix-stable: the first n features of a
    /// larger set equal the smaller set (the property pruned matching
    /// relies on).
    #[test]
    fn object_features_prefix_stable(id in any::<u64>(), n1 in 2usize..80, extra in 1usize..80) {
        let small = object_features(id, n1);
        let large = object_features(id, n1 + extra);
        prop_assert_eq!(&small.features[..], &large.features[..n1]);
    }

    /// Descriptors are unit-norm.
    #[test]
    fn descriptors_unit_norm(id in any::<u64>(), n in 1usize..50) {
        for f in &object_features(id, n).features {
            prop_assert!((f.descriptor.norm() - 1.0).abs() < 1e-4);
        }
    }

    /// Similarity transforms compose sensibly: applying then measuring
    /// distances scales them by the scale factor.
    #[test]
    fn similarity_scales_distances(seed in any::<u64>(), x1 in -100f32..100.0, y1 in -100f32..100.0, x2 in -100f32..100.0, y2 in -100f32..100.0) {
        let t = Similarity::from_seed(seed);
        let (ax, ay) = t.apply(x1, y1);
        let (bx, by) = t.apply(x2, y2);
        let before = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt();
        let after = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        prop_assert!((after - t.scale * before).abs() < 1e-2 * before.max(1.0));
    }

    /// Subsampling takes a prefix of at most k features.
    #[test]
    fn subsample_is_prefix(id in any::<u64>(), n in 1usize..100, k in 0usize..120) {
        let set = object_features(id, n);
        let sub = set.subsample(k);
        if k == 0 || n <= k {
            prop_assert_eq!(sub.len(), n);
        } else {
            prop_assert_eq!(sub.len(), k);
            prop_assert_eq!(&sub.features[..], &set.features[..k]);
        }
    }

    /// The matcher never reports more inliers than tentative matches, and
    /// op accounting always reflects full set sizes.
    #[test]
    fn matcher_invariants(id in any::<u64>(), n in 10usize..120, seed in any::<u64>()) {
        let base = object_features(id, n);
        let view = render_view(&base, Similarity::from_seed(seed), ViewParams::default(), seed);
        let cfg = MatcherConfig { exec_cap: 24, ..MatcherConfig::default() };
        let out = match_pair(&view, &base, &cfg);
        prop_assert!(out.inliers <= out.tentative.max(out.inliers));
        let nq = view.len() as u64;
        let nt = base.len() as u64;
        prop_assert!(out.ops.distance_computations == nq * nt
            || out.ops.distance_computations == 2 * nq * nt);
        if out.passed {
            prop_assert!(out.transform.is_some());
        } else {
            prop_assert!(out.transform.is_none());
        }
    }

    /// Feature-count model: monotone in pixel count, and the content
    /// factor stays within ±10%.
    #[test]
    fn feature_model_bounds(scene in any::<u64>(), w in 160u32..2000, h in 120u32..1200) {
        let res = Resolution::new(w, h);
        let spec = ImageSpec::new(scene, res);
        let expected = expected_features(res);
        let got = spec.feature_count() as f64;
        prop_assert!(got >= expected * 0.88 && got <= expected * 1.12);
    }

    /// Camera FPS is within (0, 30] and non-increasing in resolution.
    #[test]
    fn camera_fps_bounds(w in 160u32..4000, h in 120u32..2200) {
        let fps = camera_preview_fps(Resolution::new(w, h));
        prop_assert!(fps > 0.0 && fps <= 30.0);
        let bigger = camera_preview_fps(Resolution::new(w + 200, h + 200));
        prop_assert!(bigger <= fps + 1e-9);
    }

    /// Compression: compressed size never exceeds raw grayscale; upload
    /// FPS scales linearly with capacity.
    #[test]
    fn compression_bounds(scene in any::<u64>(), q in 1u8..=100, cap in 1_000_000u64..100_000_000) {
        let spec = ImageSpec::new(scene, Resolution::new(1280, 720));
        let bytes = Codec::Jpeg(q).bytes(spec);
        prop_assert!(bytes <= spec.raw_gray_bytes());
        prop_assert!(bytes > 0);
        let f1 = Codec::Jpeg(q).upload_fps(spec, cap);
        let f2 = Codec::Jpeg(q).upload_fps(spec, cap * 2);
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    /// Virtual time is linear in operation counts for every device.
    #[test]
    fn match_time_linear(d in 0u64..1_000_000_000, r in 0u64..10_000) {
        for dev in [Device::OnePlusOne, Device::I7Octa, Device::Xeon32] {
            let p = dev.profile();
            let one = p.match_time_s(&MatchOps { distance_computations: d, ransac_iterations: r, ..Default::default() });
            let two = p.match_time_s(&MatchOps { distance_computations: 2 * d, ransac_iterations: 2 * r, ..Default::default() });
            prop_assert!((two - 2.0 * one).abs() < 1e-9 * two.max(1.0));
        }
    }
}
