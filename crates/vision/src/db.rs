//! The geo-tagged AR object database (paper §5.5, §6.3).
//!
//! "Our database is populated with 105 objects emulating a retail store and
//! is partitioned based on sections like food, toys and so on. Each object
//! is stored in the database as a set of: object name, an annotated tag,
//! SURF keypoints and descriptors from the image of object." The store
//! floor is "geographically partitioned into different areas/segments" and
//! images are tagged by subsection; localization prunes the search space to
//! the subsections near the user.

use crate::feature::{object_features, FeatureSet};
use crate::image::{ImageSpec, Resolution};
use crate::matcher::{match_pair, MatchOps, MatcherConfig, PairOutcome};
use acacia_geo::floor::FloorPlan;
use acacia_geo::point::Point;
use serde::{Deserialize, Serialize};

/// The resolution objects are photographed at for the database.
pub const CAPTURE_RESOLUTION: Resolution = Resolution::new(480, 360);

/// One catalogued object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbObject {
    /// Stable object identity (drives synthetic feature generation).
    pub id: u64,
    /// Human-readable name ("object-42").
    pub name: String,
    /// Annotated tag returned to the AR client on a match.
    pub tag: String,
    /// Geo-tag: subsection index in the floor plan.
    pub subsection: usize,
    /// Section index in the floor plan.
    pub section: usize,
    /// Physical position of the object on the floor.
    pub pos: Point,
    /// Stored SURF keypoints + descriptors.
    pub features: FeatureSet,
}

/// The object database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectDb {
    objects: Vec<DbObject>,
}

/// Result of matching a frame against a set of candidate objects.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Best-matching object id and its pair outcome, if any object passed
    /// the cascade.
    pub best: Option<(u64, PairOutcome)>,
    /// Total metered operations across all candidates.
    pub ops: MatchOps,
    /// Number of candidate objects examined.
    pub candidates_examined: usize,
}

impl ObjectDb {
    /// An empty database.
    pub fn new() -> ObjectDb {
        ObjectDb {
            objects: Vec::new(),
        }
    }

    /// Generate the paper's retail database: `per_subsection` objects in
    /// each floor-plan subsection (5 × 21 = 105 by default). Objects placed
    /// in subsections containing checkpoints sit *at* the checkpoint so the
    /// evaluation can photograph them there.
    pub fn generate_retail(floor: &FloorPlan, per_subsection: usize, seed: u64) -> ObjectDb {
        let mut objects = Vec::new();
        for (ssi, ss) in floor.subsections.iter().enumerate() {
            // Checkpoints inside this subsection anchor the first objects.
            let anchors: Vec<Point> = floor
                .checkpoints
                .iter()
                .filter(|c| ss.rect.contains(c.pos))
                .map(|c| c.pos)
                .collect();
            for k in 0..per_subsection {
                let id = seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((ssi * per_subsection + k) as u64 + 1);
                let pos = if k < anchors.len() {
                    anchors[k]
                } else {
                    // Deterministic grid placement inside the subsection.
                    let fx = (k + 1) as f64 / (per_subsection + 1) as f64;
                    let fy =
                        ((k * 7 + 3) % per_subsection + 1) as f64 / (per_subsection + 1) as f64;
                    Point::new(
                        ss.rect.min.x + fx * ss.rect.width(),
                        ss.rect.min.y + fy * ss.rect.height(),
                    )
                };
                let spec = ImageSpec::new(id, CAPTURE_RESOLUTION);
                objects.push(DbObject {
                    id,
                    name: format!("object-{}", objects.len()),
                    tag: format!("{}#{}", ss.name, k),
                    subsection: ssi,
                    section: ss.section,
                    pos,
                    features: object_features(id, spec.feature_count()),
                });
            }
        }
        ObjectDb { objects }
    }

    /// Memoized [`ObjectDb::generate_retail`] over the standard
    /// [`FloorPlan::retail_store`] layout.
    ///
    /// Database generation is a pure function of `(per_subsection, seed)`
    /// for a fixed floor, and experiment sweeps rebuild the identical
    /// database for every grid cell; this caches the generated database
    /// process-wide and hands out clones, which is a plain memcpy instead
    /// of thousands of seeded RNG draws and normalizations per object.
    pub fn retail_cached(per_subsection: usize, seed: u64) -> ObjectDb {
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex, OnceLock};
        type DbCache = Mutex<HashMap<(usize, u64), Arc<ObjectDb>>>;
        static CACHE: OnceLock<DbCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let hit = cache
            .lock()
            .expect("retail db cache poisoned")
            .get(&(per_subsection, seed))
            .cloned();
        let db = match hit {
            Some(db) => db,
            None => {
                // Generate outside the lock; a racing duplicate insert is
                // harmless (both values are identical).
                let db = Arc::new(ObjectDb::generate_retail(
                    &FloorPlan::retail_store(),
                    per_subsection,
                    seed,
                ));
                cache
                    .lock()
                    .expect("retail db cache poisoned")
                    .insert((per_subsection, seed), db.clone());
                db
            }
        };
        (*db).clone()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// All objects.
    pub fn objects(&self) -> &[DbObject] {
        &self.objects
    }

    /// Look up by id.
    pub fn get(&self, id: u64) -> Option<&DbObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// Objects whose geo-tag is one of `subsections`.
    pub fn in_subsections(&self, subsections: &[usize]) -> Vec<&DbObject> {
        self.objects
            .iter()
            .filter(|o| subsections.contains(&o.subsection))
            .collect()
    }

    /// Objects in any of `sections`.
    pub fn in_sections(&self, sections: &[usize]) -> Vec<&DbObject> {
        self.objects
            .iter()
            .filter(|o| sections.contains(&o.section))
            .collect()
    }

    /// Match a query frame against an explicit candidate list, merging
    /// operation counts. All candidates are examined (the paper's matcher
    /// scans the pruned database; match time is linear in candidate count —
    /// Fig. 3(h)) and the candidate with the most RANSAC inliers wins.
    pub fn match_against<'a>(
        &self,
        frame: &FeatureSet,
        candidates: impl IntoIterator<Item = &'a DbObject>,
        cfg: &MatcherConfig,
    ) -> QueryOutcome {
        let mut ops = MatchOps::default();
        let mut best: Option<(u64, PairOutcome)> = None;
        let mut examined = 0;
        for obj in candidates {
            examined += 1;
            let outcome = match_pair(frame, &obj.features, cfg);
            ops.merge(outcome.ops);
            if outcome.passed {
                let better = match &best {
                    None => true,
                    Some((_, b)) => outcome.inliers > b.inliers,
                };
                if better {
                    best = Some((obj.id, outcome));
                }
            }
        }
        QueryOutcome {
            best,
            ops,
            candidates_examined: examined,
        }
    }

    /// Match against the whole database (the paper's "Naive" scheme).
    pub fn match_all(&self, frame: &FeatureSet, cfg: &MatcherConfig) -> QueryOutcome {
        self.match_against(frame, self.objects.iter(), cfg)
    }

    /// Serialize to JSON (stands in for the paper's YAML persistence).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<ObjectDb> {
        serde_json::from_str(s)
    }

    /// Persist to a file (the AR back-end "reads the current database
    /// stored in YAML format" at startup, §6.3 — ours is JSON).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load from a file written by [`ObjectDb::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<ObjectDb> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Default for ObjectDb {
    fn default() -> Self {
        ObjectDb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{render_view, Similarity, ViewParams};

    fn small_db() -> (FloorPlan, ObjectDb) {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 1, 42); // 21 objects
        (floor, db)
    }

    #[test]
    fn retail_db_has_paper_shape() {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 5, 42);
        assert_eq!(db.len(), 105);
        // Every subsection holds exactly 5 objects.
        for ssi in 0..21 {
            assert_eq!(db.in_subsections(&[ssi]).len(), 5);
        }
        // Object positions lie within their subsection rects.
        for o in db.objects() {
            assert!(floor.subsections[o.subsection].rect.contains(o.pos));
            assert_eq!(floor.subsections[o.subsection].section, o.section);
        }
    }

    #[test]
    fn retail_cached_matches_direct_generation() {
        let direct = ObjectDb::generate_retail(&FloorPlan::retail_store(), 2, 31);
        let cached = ObjectDb::retail_cached(2, 31);
        let again = ObjectDb::retail_cached(2, 31);
        assert_eq!(cached.len(), direct.len());
        for ((a, b), c) in cached
            .objects()
            .iter()
            .zip(direct.objects())
            .zip(again.objects())
        {
            assert_eq!(a.id, b.id);
            assert_eq!(a.features, b.features);
            assert_eq!(a.features, c.features);
            assert_eq!(a.tag, b.tag);
        }
    }

    #[test]
    fn db_generation_is_deterministic() {
        let floor = FloorPlan::retail_store();
        let a = ObjectDb::generate_retail(&floor, 2, 7);
        let b = ObjectDb::generate_retail(&floor, 2, 7);
        assert_eq!(a.objects().len(), b.objects().len());
        for (x, y) in a.objects().iter().zip(b.objects()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.features, y.features);
        }
    }

    #[test]
    fn query_of_known_object_finds_it() {
        let (_, db) = small_db();
        let target = &db.objects()[8];
        let frame = render_view(
            &target.features,
            Similarity::identity(),
            ViewParams::default(),
            3,
        );
        let cfg = MatcherConfig::default();
        let out = db.match_all(&frame, &cfg);
        let (id, _) = out.best.expect("object should match");
        assert_eq!(id, target.id);
        assert_eq!(out.candidates_examined, 21);
    }

    #[test]
    fn pruned_query_touches_fewer_candidates_with_fewer_ops() {
        let (_, db) = small_db();
        let target = &db.objects()[0];
        let frame = render_view(
            &target.features,
            Similarity::identity(),
            ViewParams::default(),
            4,
        );
        let cfg = MatcherConfig::default();
        let full = db.match_all(&frame, &cfg);
        let pruned = db.match_against(&frame, db.in_subsections(&[target.subsection]), &cfg);
        assert_eq!(pruned.candidates_examined, 1);
        assert!(pruned.ops.distance_computations < full.ops.distance_computations / 10);
        assert_eq!(pruned.best.as_ref().unwrap().0, target.id);
    }

    #[test]
    fn frame_of_absent_object_returns_no_match() {
        let (_, db) = small_db();
        let foreign = object_features(999_999, 300);
        let frame = render_view(&foreign, Similarity::identity(), ViewParams::default(), 5);
        let cfg = MatcherConfig::default();
        let out = db.match_all(&frame, &cfg);
        assert!(out.best.is_none(), "matched {:?}", out.best);
    }

    #[test]
    fn section_filter_selects_supersets_of_subsection_filter() {
        let (floor, db) = small_db();
        let ss = 0;
        let section = floor.subsections[ss].section;
        let by_ss = db.in_subsections(&[ss]).len();
        let by_sec = db.in_sections(&[section]).len();
        assert!(by_sec >= by_ss);
    }

    #[test]
    fn file_persistence_roundtrips() {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 1, 4);
        let path = std::env::temp_dir().join(format!("acacia-db-{}.json", std::process::id()));
        db.save(&path).unwrap();
        let back = ObjectDb::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.objects()[7].features, db.objects()[7].features);
        // A missing file reports an error rather than panicking.
        assert!(ObjectDb::load(std::path::Path::new("/nonexistent/x.json")).is_err());
    }

    #[test]
    fn json_roundtrip_preserves_db() {
        let floor = FloorPlan::retail_store();
        let db = ObjectDb::generate_retail(&floor, 1, 9);
        let json = db.to_json().unwrap();
        let back = ObjectDb::from_json(&json).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.objects()[3].features, db.objects()[3].features);
        assert_eq!(back.objects()[3].tag, db.objects()[3].tag);
    }
}
