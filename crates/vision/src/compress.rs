//! Frame compression models (paper §4 Fig. 3(f), §7.3).
//!
//! The AR front-end grayscales frames and JPEG-compresses them before
//! upload. Compression ratios are relative to the raw grayscale frame
//! (1 byte/pixel) with a deterministic per-scene content factor, matching
//! the spread the paper reports (§7.3 measures 5×, 5.8× and 4.7× for
//! JPEG 90 at three resolutions — same codec, different content).

use crate::compute::DeviceProfile;
use crate::image::ImageSpec;
use serde::{Deserialize, Serialize};

/// A frame codec choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// JPEG at the given quality (higher = less compression).
    Jpeg(u8),
    /// Lossless PNG.
    Png,
    /// Uncompressed grayscale.
    RawGray,
}

impl Codec {
    /// The codec sweep of Fig. 3(f).
    pub const FIG3F: [Codec; 6] = [
        Codec::Jpeg(50),
        Codec::Jpeg(80),
        Codec::Jpeg(90),
        Codec::Jpeg(100),
        Codec::Png,
        Codec::RawGray,
    ];

    /// Display label matching the paper's legend.
    pub fn label(&self) -> String {
        match self {
            Codec::Jpeg(q) => format!("JPEG {q}"),
            Codec::Png => "PNG".to_string(),
            Codec::RawGray => "Raw (Gray)".to_string(),
        }
    }

    /// Mean compression ratio vs raw grayscale for this codec (content
    /// factor not applied).
    pub fn base_ratio(&self) -> f64 {
        match self {
            // Piecewise-linear in quality between measured anchors.
            Codec::Jpeg(q) => {
                let q = (*q).clamp(1, 100) as f64;
                let anchors = [
                    (1.0, 40.0),
                    (50.0, 13.0),
                    (80.0, 8.0),
                    (90.0, 5.5),
                    (100.0, 2.3),
                ];
                interpolate(&anchors, q)
            }
            Codec::Png => 1.6,
            Codec::RawGray => 1.0,
        }
    }

    /// Compressed size of `spec` in bytes, including the per-scene content
    /// factor (±15% around the codec's base ratio).
    pub fn bytes(&self, spec: ImageSpec) -> u64 {
        let ratio = match self {
            Codec::RawGray => 1.0,
            _ => self.base_ratio() * (2.0 - spec.content_factor().clamp(0.85, 1.15)),
        };
        (spec.raw_gray_bytes() as f64 / ratio).round().max(1.0) as u64
    }

    /// Encode-time on `profile` in seconds (PNG costs ~2.5× JPEG; raw is
    /// free).
    pub fn encode_time_s(&self, spec: ImageSpec, profile: &DeviceProfile) -> f64 {
        match self {
            Codec::RawGray => 0.0,
            Codec::Jpeg(_) => profile.encode_time_s(spec.resolution.pixels()),
            Codec::Png => 2.5 * profile.encode_time_s(spec.resolution.pixels()),
        }
    }

    /// Decode-time on `profile` in seconds.
    pub fn decode_time_s(&self, spec: ImageSpec, profile: &DeviceProfile) -> f64 {
        match self {
            Codec::RawGray => 0.0,
            Codec::Jpeg(_) => profile.decode_time_s(spec.resolution.pixels()),
            Codec::Png => 2.0 * profile.decode_time_s(spec.resolution.pixels()),
        }
    }

    /// Sustainable upload frame rate over a link of `uplink_bps`, capped by
    /// nothing but the network (Fig. 3(f)).
    pub fn upload_fps(&self, spec: ImageSpec, uplink_bps: u64) -> f64 {
        let bits_per_frame = self.bytes(spec) as f64 * 8.0;
        uplink_bps as f64 / bits_per_frame
    }
}

fn interpolate(anchors: &[(f64, f64)], x: f64) -> f64 {
    if x <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    anchors.last().expect("nonempty anchors").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Device;
    use crate::image::Resolution;

    #[test]
    fn ratio_ordering_matches_codecs() {
        // More aggressive JPEG compresses harder; raw not at all.
        assert!(Codec::Jpeg(50).base_ratio() > Codec::Jpeg(80).base_ratio());
        assert!(Codec::Jpeg(80).base_ratio() > Codec::Jpeg(90).base_ratio());
        assert!(Codec::Jpeg(90).base_ratio() > Codec::Jpeg(100).base_ratio());
        assert!(Codec::Jpeg(100).base_ratio() > Codec::Png.base_ratio());
        assert_eq!(Codec::RawGray.base_ratio(), 1.0);
    }

    #[test]
    fn jpeg90_ratio_spread_covers_paper_measurements() {
        // §7.3 reports 5×, 5.8× and 4.7× at JPEG 90 on three contents: the
        // content-factor spread must cover roughly 4.7..6.3.
        let mut ratios = Vec::new();
        for scene in 0..200 {
            for res in [
                Resolution::new(1280, 720),
                Resolution::new(960, 720),
                Resolution::new(720, 480),
            ] {
                let spec = ImageSpec::new(scene, res);
                let ratio = spec.raw_gray_bytes() as f64 / Codec::Jpeg(90).bytes(spec) as f64;
                ratios.push(ratio);
            }
        }
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 5.0, "min ratio {min}");
        assert!(max > 5.8, "max ratio {max}");
        assert!(min > 4.0 && max < 7.0, "range [{min}, {max}] too wide");
    }

    #[test]
    fn raw_gray_hd_cannot_sustain_one_fps_at_12mbps() {
        // The paper's headline: "In uncompressed mode (Grayscale image) the
        // smartphone cannot even send one frame per second".
        let spec = ImageSpec::new(1, Resolution::new(1920, 1080));
        assert!(Codec::RawGray.upload_fps(spec, 12_000_000) < 1.0);
    }

    #[test]
    fn jpeg90_gets_near_camera_fps_at_12mbps() {
        // "With JPEG 90 the device can send 8 frames per second" for an HD
        // scene (1280×720 upload resolution).
        let spec = ImageSpec::new(1, Resolution::new(1280, 720));
        let fps = Codec::Jpeg(90).upload_fps(spec, 12_000_000);
        assert!((6.0..11.0).contains(&fps), "fps {fps}");
    }

    #[test]
    fn encode_times_scale_with_pixels_and_codec() {
        let p = Device::OnePlusOne.profile();
        let small = ImageSpec::new(1, Resolution::new(720, 480));
        let large = ImageSpec::new(1, Resolution::new(1280, 720));
        assert!(
            Codec::Jpeg(90).encode_time_s(large, &p) > Codec::Jpeg(90).encode_time_s(small, &p)
        );
        assert!(Codec::Png.encode_time_s(small, &p) > Codec::Jpeg(90).encode_time_s(small, &p));
        assert_eq!(Codec::RawGray.encode_time_s(large, &p), 0.0);
    }

    #[test]
    fn interpolation_hits_anchors_and_clamps() {
        assert_eq!(Codec::Jpeg(50).base_ratio(), 13.0);
        assert_eq!(Codec::Jpeg(80).base_ratio(), 8.0);
        assert_eq!(Codec::Jpeg(90).base_ratio(), 5.5);
        assert_eq!(Codec::Jpeg(100).base_ratio(), 2.3);
        assert_eq!(Codec::Jpeg(0).base_ratio(), 40.0);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Codec::Jpeg(90).label(), "JPEG 90");
        assert_eq!(Codec::Png.label(), "PNG");
        assert_eq!(Codec::RawGray.label(), "Raw (Gray)");
    }
}
