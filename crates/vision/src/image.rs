//! Synthetic images: resolutions, expected feature counts and the camera
//! model.
//!
//! The paper's Fig. 3(a) annotates each resolution with the *average number
//! of SURF features* OpenCV finds in their retail scenes:
//!
//! | resolution | avg features |
//! |-----------|--------------|
//! | 320×240   | 392.5        |
//! | 480×360   | 703.9        |
//! | 720×540   | 1224.5       |
//! | 960×720   | 1704.9       |
//! | 1440×1080 | 2641.2       |
//!
//! Feature counts at arbitrary resolutions come from log-log interpolation
//! through these five anchor points (power-law extrapolation outside), plus
//! a deterministic per-scene ±10% content factor.

use serde::{Deserialize, Serialize};

/// An image resolution in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Width, pixels.
    pub w: u32,
    /// Height, pixels.
    pub h: u32,
}

impl Resolution {
    /// Construct a resolution.
    pub const fn new(w: u32, h: u32) -> Resolution {
        Resolution { w, h }
    }

    /// Total pixel count.
    pub const fn pixels(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// The five resolutions of the paper's Fig. 3(a,b,h) sweeps.
    pub const SWEEP: [Resolution; 5] = [
        Resolution::new(320, 240),
        Resolution::new(480, 360),
        Resolution::new(720, 540),
        Resolution::new(960, 720),
        Resolution::new(1440, 1080),
    ];

    /// The camera-preview resolutions of Fig. 3(e).
    pub const CAMERA: [Resolution; 7] = [
        Resolution::new(320, 240),
        Resolution::new(640, 480),
        Resolution::new(720, 480),
        Resolution::new(1280, 720),
        Resolution::new(1280, 960),
        Resolution::new(1440, 1080),
        Resolution::new(1920, 1080),
    ];

    /// The resolution the end-to-end evaluation uses (§7.4).
    pub const E2E: Resolution = Resolution::new(720, 480);
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

/// The paper's (pixel count, average feature count) anchors, ascending.
const FEAT_ANCHORS: [(f64, f64); 5] = [
    (76_800.0, 392.5),
    (172_800.0, 703.9),
    (388_800.0, 1_224.5),
    (691_200.0, 1_704.9),
    (1_555_200.0, 2_641.2),
];

/// Expected SURF feature count for a resolution (scene-average): log-log
/// interpolation through the paper's anchors, extrapolated with the
/// boundary segments' power-law slopes.
pub fn expected_features(res: Resolution) -> f64 {
    let lx = (res.pixels() as f64).max(1.0).ln();
    let seg = |i: usize, j: usize| -> f64 {
        let (x0, y0) = FEAT_ANCHORS[i];
        let (x1, y1) = FEAT_ANCHORS[j];
        let slope = (y1.ln() - y0.ln()) / (x1.ln() - x0.ln());
        (y0.ln() + slope * (lx - x0.ln())).exp()
    };
    if lx <= FEAT_ANCHORS[0].0.ln() {
        return seg(0, 1);
    }
    for i in 0..FEAT_ANCHORS.len() - 1 {
        if lx <= FEAT_ANCHORS[i + 1].0.ln() {
            return seg(i, i + 1);
        }
    }
    seg(FEAT_ANCHORS.len() - 2, FEAT_ANCHORS.len() - 1)
}

/// A synthetic scene: a scene identity plus the resolution it is captured
/// at. Identical `scene_id`s depict the same physical object/scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageSpec {
    /// Scene/object identity.
    pub scene_id: u64,
    /// Capture resolution.
    pub resolution: Resolution,
}

impl ImageSpec {
    /// Construct an image spec.
    pub fn new(scene_id: u64, resolution: Resolution) -> ImageSpec {
        ImageSpec {
            scene_id,
            resolution,
        }
    }

    /// Deterministic content factor in `[0.9, 1.1]`: some scenes are more
    /// textured than others.
    pub fn content_factor(&self) -> f64 {
        let h = splitmix(self.scene_id ^ 0xa5a5_5a5a);
        0.9 + 0.2 * (h as f64 / u64::MAX as f64)
    }

    /// Number of features this particular scene yields at this resolution.
    pub fn feature_count(&self) -> usize {
        (expected_features(self.resolution) * self.content_factor()).round() as usize
    }

    /// Raw grayscale size in bytes (1 byte per pixel).
    pub fn raw_gray_bytes(&self) -> u64 {
        self.resolution.pixels()
    }
}

/// The One+ One camera preview model of Fig. 3(e): maximum frames per
/// second the camera delivers at each preview resolution.
pub fn camera_preview_fps(res: Resolution) -> f64 {
    // Measured staircase from the paper's bar chart: full 30 fps up to
    // 720x480, then ISP-throughput limited.
    let megapixels = res.pixels() as f64 / 1e6;
    if megapixels <= 0.35 {
        30.0
    } else {
        // ~10 fps at 2.07 MP (1920x1080), ~15 at 0.92 MP (1280x720).
        (30.0 / (megapixels / 0.35).powf(0.62)).min(30.0)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature counts quoted under the paper's Fig. 3(a) x-axis.
    const PAPER_FEATURES: [(Resolution, f64); 5] = [
        (Resolution::new(320, 240), 392.5),
        (Resolution::new(480, 360), 703.9),
        (Resolution::new(720, 540), 1224.5),
        (Resolution::new(960, 720), 1704.9),
        (Resolution::new(1440, 1080), 2641.2),
    ];

    #[test]
    fn anchors_reproduce_paper_feature_counts_exactly() {
        for (res, expected) in PAPER_FEATURES {
            let got = expected_features(res);
            let err = (got - expected).abs() / expected;
            assert!(err < 1e-9, "{res}: expected {expected}, got {got:.1}");
        }
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        let mut last = 0.0;
        for px in (50_000..2_000_000).step_by(25_000) {
            // Fabricate a resolution with the given pixel count.
            let res = Resolution::new(px, 1);
            let f = expected_features(res);
            assert!(f > last, "at {px}px: {f} <= {last}");
            last = f;
        }
    }

    #[test]
    fn feature_count_scales_with_resolution() {
        let low = ImageSpec::new(1, Resolution::new(320, 240)).feature_count();
        let high = ImageSpec::new(1, Resolution::new(1440, 1080)).feature_count();
        assert!(high > 5 * low);
    }

    #[test]
    fn content_factor_is_bounded_and_deterministic() {
        for id in 0..100 {
            let s = ImageSpec::new(id, Resolution::new(320, 240));
            let f = s.content_factor();
            assert!((0.9..=1.1).contains(&f));
            assert_eq!(f, s.content_factor());
        }
        // Different scenes differ.
        let a = ImageSpec::new(1, Resolution::new(320, 240)).content_factor();
        let b = ImageSpec::new(2, Resolution::new(320, 240)).content_factor();
        assert_ne!(a, b);
    }

    #[test]
    fn camera_fps_matches_fig3e_envelope() {
        // 30 fps at low resolutions...
        assert_eq!(camera_preview_fps(Resolution::new(320, 240)), 30.0);
        assert_eq!(camera_preview_fps(Resolution::new(640, 480)), 30.0);
        // ...and ~10 fps at full HD (paper: "At HD resolution (1920*1080),
        // the device generates 10 FPS").
        let hd = camera_preview_fps(Resolution::new(1920, 1080));
        assert!((9.0..=11.0).contains(&hd), "HD fps {hd}");
        // Monotone non-increasing across the camera sweep.
        let mut last = f64::INFINITY;
        for res in Resolution::CAMERA {
            let fps = camera_preview_fps(res);
            assert!(fps <= last + 1e-9, "{res} fps {fps} > previous {last}");
            last = fps;
        }
    }

    #[test]
    fn raw_gray_bytes_is_one_per_pixel() {
        let s = ImageSpec::new(0, Resolution::new(1920, 1080));
        assert_eq!(s.raw_gray_bytes(), 2_073_600);
    }
}
