//! # acacia-vision — AR computer-vision substrate
//!
//! A synthetic-but-real reproduction of the paper's OpenCV pipeline:
//!
//! * [`image`] — resolutions, the paper's feature-count power law, the
//!   One+ One camera model (Fig. 3(e)).
//! * [`feature`] — SURF-like keypoints and 64-d descriptors; objects are
//!   deterministic descriptor sets, camera frames are noisy transformed
//!   views of them.
//! * [`matcher`] — the four-stage cascade (brute-force 2-NN + ratio test,
//!   symmetry test, RANSAC, inlier threshold) with operation metering.
//! * [`db`] — the 105-object geo-tagged retail database (§6.3) with
//!   subsection/section pruning and JSON persistence.
//! * [`compute`] — device profiles turning metered operations into virtual
//!   time, calibrated to Fig. 3(a,b,h) and §7.3.
//! * [`compress`] — JPEG/PNG/raw codecs (Fig. 3(f), §7.3).
//!
//! The split between *real execution* (matching runs on actual descriptors,
//! so accuracy is genuine) and *virtual timing* (operation counts × a
//! calibrated per-device cost) is the key substitution that lets a
//! CPU-bound laptop reproduce measurements taken on a GPU server — see
//! `DESIGN.md` for the ledger.
//!
//! ```
//! use acacia_vision::prelude::*;
//! use acacia_geo::prelude::*;
//!
//! let floor = FloorPlan::retail_store();
//! let db = ObjectDb::generate_retail(&floor, 1, 42);
//! let target = &db.objects()[5];
//! let frame = render_view(&target.features, Similarity::identity(),
//!                         ViewParams::default(), 1);
//! let out = db.match_all(&frame, &MatcherConfig::default());
//! assert_eq!(out.best.unwrap().0, target.id);
//! // Virtual time of that query on the paper's 8-core i7:
//! let secs = Device::I7Octa.profile().match_time_s(&out.ops);
//! assert!(secs > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod compute;
pub mod db;
pub mod feature;
pub mod image;
pub mod matcher;

pub use compress::Codec;
pub use compute::{contended_time_s, Device, DeviceProfile};
pub use db::{DbObject, ObjectDb, QueryOutcome, CAPTURE_RESOLUTION};
pub use feature::{
    object_features, render_view, Descriptor, Feature, FeatureSet, Keypoint, Similarity,
    ViewParams, DESC_DIM,
};
pub use image::{camera_preview_fps, expected_features, ImageSpec, Resolution};
pub use matcher::{match_pair, CascadeStage, MatchOps, MatcherConfig, PairOutcome};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::compress::Codec;
    pub use crate::compute::{contended_time_s, Device, DeviceProfile};
    pub use crate::db::{DbObject, ObjectDb, QueryOutcome};
    pub use crate::feature::{object_features, render_view, FeatureSet, Similarity, ViewParams};
    pub use crate::image::{camera_preview_fps, expected_features, ImageSpec, Resolution};
    pub use crate::matcher::{match_pair, CascadeStage, MatchOps, MatcherConfig, PairOutcome};
}
