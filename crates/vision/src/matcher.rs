//! The four-stage matching cascade of the paper's AR back-end (§6.3):
//!
//! 1. brute-force k-nearest (k=2) matching and **ratio test**,
//! 2. **symmetry test** (best match must agree in both directions),
//! 3. **RANSAC** geometric verification returning inliers,
//! 4. inlier-count acceptance threshold.
//!
//! Matching executes on (optionally subsampled) real descriptors so the
//! accuracy behaviour is genuine; operation counts are metered at the full
//! feature-set sizes so device-time models stay faithful to the paper's
//! workloads (see `DESIGN.md`, substitution ledger).

use crate::feature::{FeatureSet, Similarity};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Operation counters for one or more matching operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchOps {
    /// Descriptor distance computations (64-d L2), both directions.
    pub distance_computations: u64,
    /// Ratio tests performed.
    pub ratio_tests: u64,
    /// Symmetry checks performed.
    pub symmetry_checks: u64,
    /// RANSAC iterations executed.
    pub ransac_iterations: u64,
}

impl MatchOps {
    /// Accumulate another counter set.
    pub fn merge(&mut self, other: MatchOps) {
        self.distance_computations += other.distance_computations;
        self.ratio_tests += other.ratio_tests;
        self.symmetry_checks += other.symmetry_checks;
        self.ransac_iterations += other.ransac_iterations;
    }
}

/// Cascade configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Lowe ratio threshold (applied to *squared* distances as `ratio²`).
    pub ratio: f32,
    /// RANSAC iterations.
    pub ransac_iters: u32,
    /// RANSAC inlier reprojection threshold, pixels.
    pub inlier_px: f32,
    /// Minimum RANSAC inliers to declare a match.
    pub min_inliers: usize,
    /// Cap on descriptors *executed* per side (0 = unlimited). Subsampling
    /// keeps debug-mode runs fast; op accounting always uses full counts.
    pub exec_cap: usize,
    /// Seed for RANSAC sampling.
    pub seed: u64,
}

impl Default for MatcherConfig {
    fn default() -> MatcherConfig {
        MatcherConfig {
            ratio: 0.75,
            ransac_iters: 100,
            inlier_px: 6.0,
            min_inliers: 8,
            exec_cap: 96,
            seed: 0x51_7e,
        }
    }
}

/// Which cascade stage decided the outcome (paper §6.3: "In each step, it
/// compares the output with the threshold and then decides whether to
/// proceed to the next step or return a 'no-match' response").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeStage {
    /// Passed all four stages.
    Accepted,
    /// Rejected before matching: too few features on one side.
    TooFewFeatures,
    /// No correspondence survived the Lowe ratio test.
    RatioTest,
    /// Fewer than two correspondences survived the symmetry test.
    SymmetryTest,
    /// RANSAC found too few geometric inliers.
    Ransac,
}

/// Outcome of matching a query image against one candidate object.
#[derive(Debug, Clone, PartialEq)]
pub struct PairOutcome {
    /// Did the cascade declare a match?
    pub passed: bool,
    /// The stage that decided it.
    pub stage: CascadeStage,
    /// RANSAC inlier count (0 if rejected earlier).
    pub inliers: usize,
    /// Correspondences surviving ratio + symmetry.
    pub tentative: usize,
    /// Estimated object-to-frame transform, when matched.
    pub transform: Option<Similarity>,
    /// Metered operations (at full feature-set scale).
    pub ops: MatchOps,
}

impl PairOutcome {
    fn rejected(stage: CascadeStage, ops: MatchOps) -> PairOutcome {
        PairOutcome {
            passed: false,
            stage,
            inliers: 0,
            tentative: 0,
            transform: None,
            ops,
        }
    }
}

/// Run the full cascade for `query` against `train`.
pub fn match_pair(query: &FeatureSet, train: &FeatureSet, cfg: &MatcherConfig) -> PairOutcome {
    let full_q = query.len() as u64;
    let full_t = train.len() as u64;
    let mut ops = MatchOps {
        // Forward brute-force 2-NN touches every (q, t) pair once.
        distance_computations: full_q * full_t,
        ratio_tests: full_q,
        ..MatchOps::default()
    };

    if query.len() < 2 || train.len() < 2 {
        return PairOutcome::rejected(CascadeStage::TooFewFeatures, ops);
    }

    let (q, t) = if cfg.exec_cap > 0 {
        (query.subsample(cfg.exec_cap), train.subsample(cfg.exec_cap))
    } else {
        (query.clone(), train.clone())
    };

    // Stage 1: forward 2-NN + ratio test.
    let mut forward: Vec<(usize, usize)> = Vec::new(); // (q_idx, t_idx)
    for (qi, qf) in q.features.iter().enumerate() {
        let (mut best, mut best_i, mut second) = (f32::INFINITY, usize::MAX, f32::INFINITY);
        for (ti, tf) in t.features.iter().enumerate() {
            let d = qf.descriptor.dist2(&tf.descriptor);
            if d < best {
                second = best;
                best = d;
                best_i = ti;
            } else if d < second {
                second = d;
            }
        }
        if best < cfg.ratio * cfg.ratio * second {
            forward.push((qi, best_i));
        }
    }
    if forward.is_empty() {
        return PairOutcome::rejected(CascadeStage::RatioTest, ops);
    }

    // Stage 2: symmetry test — reverse 1-NN must agree.
    ops.distance_computations += full_t * full_q;
    ops.symmetry_checks += forward.len() as u64;
    let mut tentative: Vec<(usize, usize)> = Vec::new();
    for &(qi, ti) in &forward {
        let tf = &t.features[ti];
        let (mut best, mut best_q) = (f32::INFINITY, usize::MAX);
        for (qj, qf) in q.features.iter().enumerate() {
            let d = tf.descriptor.dist2(&qf.descriptor);
            if d < best {
                best = d;
                best_q = qj;
            }
        }
        if best_q == qi {
            tentative.push((qi, ti));
        }
    }
    if tentative.len() < 2 {
        return PairOutcome {
            tentative: tentative.len(),
            ..PairOutcome::rejected(CascadeStage::SymmetryTest, ops)
        };
    }

    // Stage 3: RANSAC over a similarity model (2-point minimal sample).
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut best_inliers: Vec<usize> = Vec::new();
    let mut best_model = None;
    for _ in 0..cfg.ransac_iters {
        ops.ransac_iterations += 1;
        let i = rng.gen_range(0..tentative.len());
        let mut j = rng.gen_range(0..tentative.len());
        if i == j {
            j = (j + 1) % tentative.len();
        }
        let model = match similarity_from_pairs(
            point_of(&t, tentative[i].1),
            point_of(&q, tentative[i].0),
            point_of(&t, tentative[j].1),
            point_of(&q, tentative[j].0),
        ) {
            Some(m) => m,
            None => continue,
        };
        let inliers: Vec<usize> = tentative
            .iter()
            .enumerate()
            .filter(|(_, &(qi, ti))| {
                let (px, py) = point_of(&t, ti);
                let (mx, my) = model.apply(px, py);
                let (qx, qy) = point_of(&q, qi);
                let dx = mx - qx;
                let dy = my - qy;
                (dx * dx + dy * dy).sqrt() <= cfg.inlier_px
            })
            .map(|(k, _)| k)
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            best_model = Some(model);
        }
    }

    // Stage 4: acceptance. The executed-side inlier requirement scales with
    // the subsampling cap so that accuracy thresholds stay comparable.
    let min_inliers = effective_min_inliers(cfg, query.len());
    let passed = best_inliers.len() >= min_inliers;
    PairOutcome {
        passed,
        stage: if passed {
            CascadeStage::Accepted
        } else {
            CascadeStage::Ransac
        },
        inliers: best_inliers.len(),
        tentative: tentative.len(),
        transform: if passed { best_model } else { None },
        ops,
    }
}

/// Minimum inliers, shrunk proportionally when execution is subsampled.
fn effective_min_inliers(cfg: &MatcherConfig, full_query: usize) -> usize {
    if cfg.exec_cap == 0 || full_query <= cfg.exec_cap {
        return cfg.min_inliers;
    }
    let frac = cfg.exec_cap as f64 / full_query as f64;
    ((cfg.min_inliers as f64 * frac).ceil() as usize).max(4)
}

fn point_of(set: &FeatureSet, idx: usize) -> (f32, f32) {
    let k = &set.features[idx].keypoint;
    (k.x, k.y)
}

/// Similarity transform mapping `p1→q1`, `p2→q2` (complex-number form).
/// Returns `None` for degenerate (coincident) source points.
fn similarity_from_pairs(
    p1: (f32, f32),
    q1: (f32, f32),
    p2: (f32, f32),
    q2: (f32, f32),
) -> Option<Similarity> {
    let dpx = p2.0 - p1.0;
    let dpy = p2.1 - p1.1;
    let denom = dpx * dpx + dpy * dpy;
    if denom < 1e-9 {
        return None;
    }
    let dqx = q2.0 - q1.0;
    let dqy = q2.1 - q1.1;
    // a = dq / dp in complex arithmetic.
    let ar = (dqx * dpx + dqy * dpy) / denom;
    let ai = (dqy * dpx - dqx * dpy) / denom;
    let scale = (ar * ar + ai * ai).sqrt();
    if scale < 1e-6 {
        return None;
    }
    let angle = ai.atan2(ar);
    // b = q1 - a * p1.
    let tx = q1.0 - (ar * p1.0 - ai * p1.1);
    let ty = q1.1 - (ai * p1.0 + ar * p1.1);
    Some(Similarity {
        angle,
        scale,
        tx,
        ty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{object_features, render_view, ViewParams};

    fn cfg() -> MatcherConfig {
        MatcherConfig::default()
    }

    #[test]
    fn same_object_view_matches() {
        let base = object_features(10, 120);
        let t = Similarity {
            angle: 0.3,
            scale: 1.2,
            tx: 40.0,
            ty: -12.0,
        };
        let view = render_view(&base, t, ViewParams::default(), 77);
        let out = match_pair(&view, &base, &cfg());
        assert!(out.passed, "outcome {out:?}");
        assert!(out.inliers >= 8);
        let m = out.transform.unwrap();
        assert!((m.scale - 1.2).abs() < 0.1, "scale {}", m.scale);
        assert!((m.angle - 0.3).abs() < 0.1, "angle {}", m.angle);
    }

    #[test]
    fn different_objects_do_not_match() {
        let a = object_features(11, 120);
        let b = object_features(12, 120);
        let view = render_view(&a, Similarity::identity(), ViewParams::default(), 5);
        let out = match_pair(&view, &b, &cfg());
        assert!(!out.passed, "false positive: {out:?}");
        // Unrelated descriptors die in the early (cheap) stages.
        assert!(
            matches!(
                out.stage,
                CascadeStage::RatioTest | CascadeStage::SymmetryTest
            ),
            "rejected at {:?}",
            out.stage
        );
    }

    #[test]
    fn cascade_stage_is_reported() {
        // Accepted path.
        let base = object_features(30, 120);
        let view = render_view(&base, Similarity::identity(), ViewParams::default(), 1);
        let out = match_pair(&view, &base, &cfg());
        assert_eq!(out.stage, CascadeStage::Accepted);
        // Too-few-features path.
        let tiny = object_features(31, 1);
        assert_eq!(
            match_pair(&tiny, &base, &cfg()).stage,
            CascadeStage::TooFewFeatures
        );
        // RANSAC path: correspondences exist in descriptor space but the
        // geometry is scrambled — build a view whose keypoints are shuffled
        // against a high inlier requirement.
        let mut scrambled = render_view(&base, Similarity::identity(), ViewParams::default(), 2);
        let n = scrambled.features.len();
        for i in 0..n {
            let j = (i * 37 + 11) % n;
            let tmp = scrambled.features[i].keypoint;
            scrambled.features[i].keypoint = scrambled.features[j].keypoint;
            scrambled.features[j].keypoint = tmp;
        }
        let strict = MatcherConfig {
            min_inliers: 30,
            inlier_px: 1.0,
            ..cfg()
        };
        let out = match_pair(&scrambled, &base, &strict);
        assert!(!out.passed);
        assert_eq!(out.stage, CascadeStage::Ransac, "{out:?}");
    }

    #[test]
    fn cluttered_view_still_matches_true_object() {
        let base = object_features(13, 120);
        let p = ViewParams {
            clutter: 60,
            ..ViewParams::default()
        };
        let view = render_view(&base, Similarity::identity(), p, 9);
        let out = match_pair(&view, &base, &cfg());
        assert!(out.passed, "outcome {out:?}");
    }

    #[test]
    fn op_accounting_uses_full_sizes() {
        let base = object_features(14, 500);
        let view = render_view(&base, Similarity::identity(), ViewParams::default(), 1);
        let nq = view.len() as u64;
        let nt = base.len() as u64;
        let out = match_pair(&view, &base, &cfg());
        // Forward + reverse brute force at full scale.
        assert_eq!(out.ops.distance_computations, 2 * nq * nt);
        assert_eq!(out.ops.ratio_tests, nq);
        assert!(out.ops.ransac_iterations > 0);
    }

    #[test]
    fn tiny_sets_are_rejected_cheaply() {
        let a = object_features(15, 1);
        let b = object_features(16, 300);
        let out = match_pair(&a, &b, &cfg());
        assert!(!out.passed);
        assert_eq!(out.ops.distance_computations, 300);
        assert_eq!(out.ops.ransac_iterations, 0);
    }

    #[test]
    fn similarity_from_pairs_recovers_known_transform() {
        let t = Similarity {
            angle: 0.5,
            scale: 2.0,
            tx: 5.0,
            ty: 7.0,
        };
        let p1 = (10.0, 20.0);
        let p2 = (100.0, 50.0);
        let q1 = t.apply(p1.0, p1.1);
        let q2 = t.apply(p2.0, p2.1);
        let m = similarity_from_pairs(p1, q1, p2, q2).unwrap();
        assert!((m.angle - 0.5).abs() < 1e-4);
        assert!((m.scale - 2.0).abs() < 1e-4);
        assert!((m.tx - 5.0).abs() < 1e-2);
        assert!((m.ty - 7.0).abs() < 1e-2);
    }

    #[test]
    fn similarity_from_degenerate_pairs_is_none() {
        assert!(similarity_from_pairs((1.0, 1.0), (2.0, 2.0), (1.0, 1.0), (3.0, 3.0)).is_none());
    }

    #[test]
    fn exec_cap_bounds_work_but_not_ops() {
        let base = object_features(17, 400);
        let view = render_view(&base, Similarity::identity(), ViewParams::default(), 2);
        let capped = MatcherConfig {
            exec_cap: 32,
            ..cfg()
        };
        let out = match_pair(&view, &base, &capped);
        assert!(out.passed, "outcome {out:?}");
        assert_eq!(
            out.ops.distance_computations,
            2 * view.len() as u64 * base.len() as u64
        );
        // Tentative correspondences can't exceed the executed cap.
        assert!(out.tentative <= 32);
    }

    #[test]
    fn matcher_is_deterministic() {
        let base = object_features(18, 150);
        let view = render_view(&base, Similarity::identity(), ViewParams::default(), 3);
        let a = match_pair(&view, &base, &cfg());
        let b = match_pair(&view, &base, &cfg());
        assert_eq!(a, b);
    }
}
