//! Device compute profiles: virtual execution time from metered operation
//! counts.
//!
//! The paper measures its AR pipeline on four devices (Fig. 3(a,b)) and two
//! servers (Fig. 11, i7 8-core and 32-core Xeon). We have none of that
//! hardware, so *virtual time* is computed as `operations × per-operation
//! cost`, with per-operation costs calibrated so the paper's reported
//! numbers fall out:
//!
//! * One+ One runs SURF on 320×240 in ~2 s (§4) ⇒ 26 µs/pixel.
//! * Server speedups vs the phone — detection 36× (1 core), 182× (8 cores),
//!   1087× (GPU); matching 223×, 852×, 3284× (§4).
//! * Fig. 3(h): 8-core i7 matches a 960×720 frame against 50 objects in
//!   ~1.2 s ⇒ 10 ns per 64-d descriptor distance on the i7-8.
//! * §7.3: JPEG-90 encoding on the One+ takes 53/38/23 ms at
//!   1280×720 / 960×720 / 720×480 ⇒ ~57.5 ns/pixel.
//!
//! Every figure harness states which profile it used; `EXPERIMENTS.md`
//! records paper-vs-measured values.

use crate::image::ImageSpec;
use crate::matcher::MatchOps;
use serde::{Deserialize, Serialize};

/// The compute devices appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// One+ One smartphone (the UE).
    OnePlusOne,
    /// Single i7 core server.
    I7Single,
    /// Eight-core i7 server.
    I7Octa,
    /// GeForce GTX TITAN GPU server.
    GpuTitan,
    /// 32-core Xeon server (§7.3).
    Xeon32,
}

impl Device {
    /// All devices of the Fig. 3(a,b) sweep, in presentation order.
    pub const FIG3: [Device; 4] = [
        Device::OnePlusOne,
        Device::I7Single,
        Device::I7Octa,
        Device::GpuTitan,
    ];

    /// Human-readable name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Device::OnePlusOne => "One+",
            Device::I7Single => "i7 (1)",
            Device::I7Octa => "i7 (8)",
            Device::GpuTitan => "GPU",
            Device::Xeon32 => "Xeon (32)",
        }
    }

    /// The cost profile for this device.
    pub fn profile(&self) -> DeviceProfile {
        // Phone baselines (see module docs).
        const PHONE_DETECT_S_PER_PX: f64 = 26.04e-6;
        const PHONE_DIST_S: f64 = 8.52e-6;
        const PHONE_ENCODE_S_PER_PX: f64 = 57.5e-9;
        match self {
            Device::OnePlusOne => DeviceProfile {
                device: *self,
                detect_s_per_pixel: PHONE_DETECT_S_PER_PX,
                dist_s: PHONE_DIST_S,
                ransac_iter_s: 40e-6,
                encode_s_per_pixel: PHONE_ENCODE_S_PER_PX,
                fixed_overhead_s: 5e-3,
            },
            Device::I7Single => DeviceProfile {
                device: *self,
                detect_s_per_pixel: PHONE_DETECT_S_PER_PX / 36.0,
                dist_s: PHONE_DIST_S / 223.0,
                ransac_iter_s: 2e-6,
                encode_s_per_pixel: PHONE_ENCODE_S_PER_PX / 8.0,
                fixed_overhead_s: 1e-3,
            },
            Device::I7Octa => DeviceProfile {
                device: *self,
                detect_s_per_pixel: PHONE_DETECT_S_PER_PX / 182.0,
                dist_s: PHONE_DIST_S / 852.0,
                ransac_iter_s: 1e-6,
                encode_s_per_pixel: PHONE_ENCODE_S_PER_PX / 20.0,
                fixed_overhead_s: 1e-3,
            },
            Device::GpuTitan => DeviceProfile {
                device: *self,
                detect_s_per_pixel: PHONE_DETECT_S_PER_PX / 1087.0,
                dist_s: PHONE_DIST_S / 3284.0,
                ransac_iter_s: 0.5e-6,
                encode_s_per_pixel: PHONE_ENCODE_S_PER_PX / 20.0,
                fixed_overhead_s: 2e-3,
            },
            Device::Xeon32 => DeviceProfile {
                device: *self,
                // OpenCV's parallel matcher scales well to the wider Xeon
                // (paper: "The Xeon processor, with a larger number of
                // cores ... shows a much better performance").
                detect_s_per_pixel: PHONE_DETECT_S_PER_PX / 400.0,
                dist_s: PHONE_DIST_S / 2130.0,
                ransac_iter_s: 0.8e-6,
                encode_s_per_pixel: PHONE_ENCODE_S_PER_PX / 30.0,
                fixed_overhead_s: 1e-3,
            },
        }
    }
}

/// Per-operation virtual-time costs for one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Which device this is.
    pub device: Device,
    /// SURF detection + description cost per input pixel, seconds.
    pub detect_s_per_pixel: f64,
    /// One 64-d descriptor distance computation, seconds.
    pub dist_s: f64,
    /// One RANSAC iteration, seconds.
    pub ransac_iter_s: f64,
    /// Image encode (JPEG) cost per pixel, seconds.
    pub encode_s_per_pixel: f64,
    /// Fixed per-image overhead (decode, memory traffic), seconds.
    pub fixed_overhead_s: f64,
}

impl DeviceProfile {
    /// Virtual time for SURF detection + description of `spec`.
    pub fn detect_time_s(&self, spec: ImageSpec) -> f64 {
        self.fixed_overhead_s + spec.resolution.pixels() as f64 * self.detect_s_per_pixel
    }

    /// Virtual time for the metered matching operations.
    pub fn match_time_s(&self, ops: &MatchOps) -> f64 {
        ops.distance_computations as f64 * self.dist_s
            + ops.ransac_iterations as f64 * self.ransac_iter_s
    }

    /// Virtual time for JPEG-encoding an image of `pixels` pixels.
    pub fn encode_time_s(&self, pixels: u64) -> f64 {
        pixels as f64 * self.encode_s_per_pixel
    }

    /// Virtual time for decoding an encoded frame (~¼ of encode cost).
    pub fn decode_time_s(&self, pixels: u64) -> f64 {
        self.encode_time_s(pixels) / 4.0
    }
}

/// Server contention model for Figs. 12(a,b): the paper observes that
/// doubling the number of concurrent AR clients roughly doubles per-request
/// matching time, because OpenCV's data-parallel matcher already saturates
/// all cores for a single request. Concurrent requests therefore time-share
/// the machine.
pub fn contended_time_s(base_s: f64, clients: usize) -> f64 {
    base_s * clients.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Resolution;

    #[test]
    fn phone_surf_at_qvga_is_about_two_seconds() {
        let t = Device::OnePlusOne
            .profile()
            .detect_time_s(ImageSpec::new(0, Resolution::new(320, 240)));
        assert!((1.8..2.2).contains(&t), "got {t}");
    }

    #[test]
    fn server_speedups_match_paper_ratios() {
        let spec = ImageSpec::new(0, Resolution::new(960, 720));
        let phone = Device::OnePlusOne.profile().detect_time_s(spec);
        for (dev, expect) in [
            (Device::I7Single, 36.0),
            (Device::I7Octa, 182.0),
            (Device::GpuTitan, 1087.0),
        ] {
            let t = dev.profile().detect_time_s(spec);
            let speedup = phone / t;
            // Fixed overheads blur the exact ratio a little.
            assert!(
                (speedup / expect - 1.0).abs() < 0.25,
                "{}: speedup {speedup:.0} vs paper {expect}",
                dev.name()
            );
        }
    }

    #[test]
    fn match_speedups_match_paper_ratios() {
        let ops = MatchOps {
            distance_computations: 100_000_000,
            ..MatchOps::default()
        };
        let phone = Device::OnePlusOne.profile().match_time_s(&ops);
        for (dev, expect) in [
            (Device::I7Single, 223.0),
            (Device::I7Octa, 852.0),
            (Device::GpuTitan, 3284.0),
        ] {
            let speedup = phone / dev.profile().match_time_s(&ops);
            assert!(
                (speedup / expect - 1.0).abs() < 0.05,
                "{}: {speedup:.0} vs {expect}",
                dev.name()
            );
        }
    }

    #[test]
    fn fig3h_anchor_50_objects_on_i7_octa() {
        // 960×720 query (~1705 feats) against 50 objects of ~700 feats:
        // the paper reads ~1.2 s.
        let nq = 1705u64;
        let nt = 700u64;
        let ops = MatchOps {
            distance_computations: 2 * nq * nt * 50,
            ransac_iterations: 100 * 50,
            ..MatchOps::default()
        };
        let t = Device::I7Octa.profile().match_time_s(&ops);
        assert!((1.0..1.5).contains(&t), "got {t}");
    }

    #[test]
    fn jpeg_encode_times_match_section_7_3() {
        let p = Device::OnePlusOne.profile();
        let cases = [
            (Resolution::new(1280, 720), 0.053),
            (Resolution::new(960, 720), 0.038),
            (Resolution::new(720, 480), 0.023),
        ];
        for (res, paper_s) in cases {
            let t = p.encode_time_s(res.pixels());
            assert!(
                (t / paper_s - 1.0).abs() < 0.2,
                "{res}: {t:.4} vs paper {paper_s}"
            );
        }
    }

    #[test]
    fn xeon_outruns_i7_octa() {
        let ops = MatchOps {
            distance_computations: 1_000_000,
            ..MatchOps::default()
        };
        assert!(
            Device::Xeon32.profile().match_time_s(&ops)
                < Device::I7Octa.profile().match_time_s(&ops) / 2.0
        );
    }

    #[test]
    fn contention_is_linear_in_clients() {
        assert_eq!(contended_time_s(0.5, 1), 0.5);
        assert_eq!(contended_time_s(0.5, 2), 1.0);
        assert_eq!(contended_time_s(0.5, 8), 4.0);
        assert_eq!(contended_time_s(0.5, 0), 0.5, "zero clients clamps to one");
    }
}
