//! SURF-like keypoints and descriptors, generated synthetically but matched
//! for real.
//!
//! A physical object is a set of *base features*: keypoint positions on the
//! object plane plus 64-dimensional unit descriptors, both derived
//! deterministically from `(object_id, feature_index)`. A *view* (camera
//! frame) of the object applies a similarity transform to the keypoints and
//! perturbs the descriptors with view noise — so the downstream matcher
//! (ratio test, symmetry test, RANSAC) runs on data with the same geometry
//! the real pipeline sees.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Descriptor dimensionality (SURF-64).
pub const DESC_DIM: usize = 64;

/// An interest-point location in image coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// X, pixels.
    pub x: f32,
    /// Y, pixels.
    pub y: f32,
    /// Detected scale.
    pub scale: f32,
}

/// A 64-dimensional unit-norm descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Descriptor(pub Vec<f32>);

impl Descriptor {
    /// Squared L2 distance to another descriptor.
    pub fn dist2(&self, other: &Descriptor) -> f32 {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for v in &mut self.0 {
                *v /= n;
            }
        }
    }
}

/// A keypoint + descriptor pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Where it is.
    pub keypoint: Keypoint,
    /// What it looks like.
    pub descriptor: Descriptor,
}

/// A set of features extracted from one image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureSet {
    /// The features.
    pub features: Vec<Feature>,
}

impl FeatureSet {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Deterministically subsample to at most `k` features by taking the
    /// prefix. Used to bound real matching work while op accounting uses
    /// the full counts.
    ///
    /// Prefix (rather than strided) selection matters: synthetic feature
    /// sets of the same object at different resolutions share a common
    /// *prefix* of base features, so prefix subsets of the query and the
    /// stored object still overlap and true matches survive subsampling.
    pub fn subsample(&self, k: usize) -> FeatureSet {
        if self.features.len() <= k || k == 0 {
            return self.clone();
        }
        FeatureSet {
            features: self.features[..k].to_vec(),
        }
    }
}

/// A similarity transform (rotation, uniform scale, translation) applied to
/// keypoints when an object is viewed by a camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Similarity {
    /// Rotation, radians.
    pub angle: f32,
    /// Uniform scale factor.
    pub scale: f32,
    /// Translation x, pixels.
    pub tx: f32,
    /// Translation y, pixels.
    pub ty: f32,
}

impl Similarity {
    /// The identity transform.
    pub fn identity() -> Similarity {
        Similarity {
            angle: 0.0,
            scale: 1.0,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// A plausible hand-held camera pose derived from a seed: small
    /// rotation (±0.3 rad), mild zoom (0.8–1.25×), modest translation.
    pub fn from_seed(seed: u64) -> Similarity {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc2b2_ae3d);
        Similarity {
            angle: rng.gen_range(-0.3..0.3),
            scale: rng.gen_range(0.8..1.25),
            tx: rng.gen_range(-40.0..40.0),
            ty: rng.gen_range(-40.0..40.0),
        }
    }

    /// Apply to a point.
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        let (s, c) = self.angle.sin_cos();
        (
            self.scale * (c * x - s * y) + self.tx,
            self.scale * (s * x + c * y) + self.ty,
        )
    }
}

/// Generate the canonical base features of object `object_id`.
///
/// Positions are spread over a 512×512 object plane; descriptors are random
/// unit vectors — distinct objects are far apart in descriptor space with
/// overwhelming probability, matching the behaviour of real SURF on
/// distinct textured objects.
pub fn object_features(object_id: u64, n: usize) -> FeatureSet {
    let mut rng = ChaCha8Rng::seed_from_u64(object_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let features = (0..n)
        .map(|_| {
            let keypoint = Keypoint {
                x: rng.gen_range(0.0..512.0),
                y: rng.gen_range(0.0..512.0),
                scale: rng.gen_range(1.0..8.0),
            };
            let mut d = Descriptor((0..DESC_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect());
            d.normalize();
            Feature {
                keypoint,
                descriptor: d,
            }
        })
        .collect();
    FeatureSet { features }
}

/// Parameters of a synthetic camera view of an object.
#[derive(Debug, Clone, Copy)]
pub struct ViewParams {
    /// Per-component Gaussian descriptor noise (σ). Real SURF descriptors
    /// of the same point across views differ by a few percent; 0.05 keeps
    /// ratio-test separability similar to practice.
    pub descriptor_noise: f32,
    /// Keypoint position jitter σ, pixels.
    pub position_noise: f32,
    /// Fraction of base features that are *not* re-detected in this view.
    pub dropout: f32,
    /// Number of spurious background features added (clutter).
    pub clutter: usize,
}

impl Default for ViewParams {
    fn default() -> ViewParams {
        ViewParams {
            descriptor_noise: 0.05,
            position_noise: 1.5,
            dropout: 0.2,
            clutter: 0,
        }
    }
}

/// Render a view of `base` under `transform` with the given noise model.
/// `view_seed` individualizes frames.
pub fn render_view(
    base: &FeatureSet,
    transform: Similarity,
    params: ViewParams,
    view_seed: u64,
) -> FeatureSet {
    let mut rng = ChaCha8Rng::seed_from_u64(view_seed ^ 0x5bd1_e995);
    let mut features = Vec::with_capacity(base.len());
    for f in &base.features {
        if rng.gen::<f32>() < params.dropout {
            continue;
        }
        let (x, y) = transform.apply(f.keypoint.x, f.keypoint.y);
        let keypoint = Keypoint {
            x: x + gauss(&mut rng) * params.position_noise,
            y: y + gauss(&mut rng) * params.position_noise,
            scale: f.keypoint.scale * transform.scale,
        };
        let mut d = Descriptor(
            f.descriptor
                .0
                .iter()
                .map(|&v| v + gauss(&mut rng) * params.descriptor_noise)
                .collect(),
        );
        d.normalize();
        features.push(Feature {
            keypoint,
            descriptor: d,
        });
    }
    for _ in 0..params.clutter {
        let mut d = Descriptor((0..DESC_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect());
        d.normalize();
        features.push(Feature {
            keypoint: Keypoint {
                x: rng.gen_range(0.0..512.0),
                y: rng.gen_range(0.0..512.0),
                scale: rng.gen_range(1.0..8.0),
            },
            descriptor: d,
        });
    }
    FeatureSet { features }
}

/// Box-Muller standard normal.
fn gauss(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_features_are_deterministic_and_unit_norm() {
        let a = object_features(7, 50);
        let b = object_features(7, 50);
        assert_eq!(a, b);
        for f in &a.features {
            assert!((f.descriptor.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn different_objects_have_distant_descriptors() {
        let a = object_features(1, 30);
        let b = object_features(2, 30);
        // Random unit vectors in 64-d: expected squared distance = 2.
        let mut min = f32::INFINITY;
        for fa in &a.features {
            for fb in &b.features {
                min = min.min(fa.descriptor.dist2(&fb.descriptor));
            }
        }
        assert!(min > 0.5, "closest cross-object distance² {min}");
    }

    #[test]
    fn same_object_views_have_close_descriptors() {
        let base = object_features(3, 40);
        let view = render_view(&base, Similarity::identity(), ViewParams::default(), 99);
        // Every surviving view feature must have a very close base feature.
        for vf in &view.features {
            let best = base
                .features
                .iter()
                .map(|bf| bf.descriptor.dist2(&vf.descriptor))
                .fold(f32::INFINITY, f32::min);
            // σ=0.05 per component over 64 dims gives E[dist²] ≈ 0.16 before
            // renormalization; 0.4 bounds the tail while staying far below
            // the ~2.0 expected between unrelated descriptors.
            assert!(best < 0.4, "best distance² {best}");
        }
    }

    #[test]
    fn dropout_reduces_feature_count() {
        let base = object_features(3, 200);
        let p = ViewParams {
            dropout: 0.5,
            ..ViewParams::default()
        };
        let view = render_view(&base, Similarity::identity(), p, 1);
        assert!(view.len() < 150 && view.len() > 50, "len {}", view.len());
    }

    #[test]
    fn clutter_adds_features() {
        let base = object_features(3, 50);
        let p = ViewParams {
            dropout: 0.0,
            clutter: 25,
            ..ViewParams::default()
        };
        let view = render_view(&base, Similarity::identity(), p, 1);
        assert_eq!(view.len(), 75);
    }

    #[test]
    fn similarity_transform_applies_geometry() {
        let t = Similarity {
            angle: std::f32::consts::FRAC_PI_2,
            scale: 2.0,
            tx: 10.0,
            ty: -5.0,
        };
        let (x, y) = t.apply(1.0, 0.0);
        assert!((x - 10.0).abs() < 1e-5, "x {x}");
        assert!((y - (-3.0)).abs() < 1e-5, "y {y}");
    }

    #[test]
    fn subsample_preserves_at_most_k() {
        let base = object_features(9, 100);
        let s = base.subsample(10);
        assert_eq!(s.len(), 10);
        let all = base.subsample(200);
        assert_eq!(all.len(), 100);
        // Subsampled features come from the original set.
        for f in &s.features {
            assert!(base.features.contains(f));
        }
    }
}
