//! Property-based tests for LTE-direct discovery.

use acacia_d2d::channel::{RadioChannel, SNR_SPAN_DB};
use acacia_d2d::modem::Modem;
use acacia_d2d::service::{Announcement, ServiceCode, SubscriptionFilter};
use acacia_d2d::technology::ProximityTech;
use acacia_geo::pathloss::PathLossModel;
use acacia_geo::point::Point;
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,18}"
}

proptest! {
    /// Exact filters match exactly their own (service, expression).
    #[test]
    fn exact_filter_iff_same_pair(
        s1 in arb_name(), e1 in arb_name(),
        s2 in arb_name(), e2 in arb_name(),
    ) {
        let f = SubscriptionFilter::exact(&s1, &e1);
        let code = ServiceCode::derive(&s2, &e2);
        let same = s1 == s2 && e1 == e2;
        // FNV collisions across short names are astronomically unlikely;
        // treat a match as equivalent to equality.
        prop_assert_eq!(f.matches(code), same);
    }

    /// Service-wide filters are insensitive to the expression.
    #[test]
    fn service_wide_ignores_expression(s in arb_name(), e1 in arb_name(), e2 in arb_name()) {
        let f = SubscriptionFilter::service_wide(&s);
        prop_assert!(f.matches(ServiceCode::derive(&s, &e1)));
        prop_assert!(f.matches(ServiceCode::derive(&s, &e2)));
    }

    /// A modem with an exact subscription delivers exactly the messages a
    /// service-wide one would deliver, filtered by expression.
    #[test]
    fn modem_delivery_consistency(s in arb_name(), interest in arb_name(), expr in arb_name()) {
        let reading = acacia_d2d::channel::RadioReading { rx_power_dbm: -70.0, snr_db: 20.0 };
        let ann = Announcement::new(&s, &expr);
        let mut exact = Modem::new();
        exact.subscribe(SubscriptionFilter::exact(&s, &interest));
        let mut wide = Modem::new();
        wide.subscribe(SubscriptionFilter::service_wide(&s));
        let exact_got = exact.receive(&ann, "L", reading, 0).is_some();
        let wide_got = wide.receive(&ann, "L", reading, 0).is_some();
        prop_assert!(wide_got, "service-wide must hear its own service");
        prop_assert_eq!(exact_got, interest == expr);
    }

    /// Channel readings: SNR is always within its dynamic range and
    /// consistent with rxPower; readings are deterministic per inputs.
    #[test]
    fn channel_reading_invariants(
        seed in any::<u64>(),
        pid in 1u64..100,
        x in 0.5f64..40.0,
        y in 0.5f64..15.0,
        tick in 0u64..50,
    ) {
        let ch = RadioChannel::new(PathLossModel::indoor_default(), seed);
        let tx = Point::new(0.0, 0.0);
        let rx_pos = Point::new(x, y);
        let a = ch.sample(pid, tx, rx_pos, tick);
        let b = ch.sample(pid, tx, rx_pos, tick);
        prop_assert_eq!(a, b);
        if let Some(r) = a {
            prop_assert!(r.snr_db >= 0.0 && r.snr_db <= SNR_SPAN_DB);
            prop_assert!(r.rx_power_dbm >= acacia_d2d::channel::SENSITIVITY_DBM);
        }
    }

    /// Mean rxPower decreases with distance for every technology.
    #[test]
    fn rx_power_decreasing_all_techs(d1 in 1.0f64..20.0, gap in 5.0f64..60.0) {
        for tech in ProximityTech::ALL {
            let pl = tech.pathloss();
            prop_assert!(pl.rx_power_dbm(d1) > pl.rx_power_dbm(d1 + gap));
        }
    }
}
