//! The D2D radio channel: log-distance path loss, deterministic shadowing
//! and the rxPower / SNR side information LTE-direct reports with each
//! received service discovery message.
//!
//! The paper's Fig. 6 shows why this matters: **rxPower** spans ~50 dB and
//! correlates strongly with distance, while **SNR** is clipped to the ~25 dB
//! dynamic range usable for decoding and therefore saturates near landmarks.
//! ACACIA consequently localizes on rxPower. The channel model reproduces
//! both behaviours.

use acacia_geo::pathloss::PathLossModel;
use acacia_geo::point::Point;

/// Receiver sensitivity: messages below this power are not decoded.
pub const SENSITIVITY_DBM: f64 = -112.0;

/// Thermal-plus-interference noise floor at the receiver.
pub const NOISE_FLOOR_DBM: f64 = -100.0;

/// Usable SNR dynamic range for decoding, dB (paper: "25 dB span compared
/// to 50 dB span in rxPower").
pub const SNR_SPAN_DB: f64 = 25.0;

/// One received service-discovery transmission's radio measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioReading {
    /// Received power, dBm.
    pub rx_power_dbm: f64,
    /// Signal-to-noise ratio clipped to the decoder's dynamic range, dB.
    pub snr_db: f64,
}

/// Deterministic radio channel between fixed publishers and a moving
/// subscriber.
#[derive(Debug, Clone)]
pub struct RadioChannel {
    /// Large-scale path loss.
    pub pathloss: PathLossModel,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Per-reading fast-fading standard deviation, dB.
    pub fading_sigma_db: f64,
    seed: u64,
}

impl RadioChannel {
    /// Channel with the given seed; same seed ⇒ identical readings.
    pub fn new(pathloss: PathLossModel, seed: u64) -> RadioChannel {
        RadioChannel {
            pathloss,
            // Indoor log-normal shadowing; 4.5 dB reproduces the paper's
            // ~3 m mean localization error with all seven landmarks.
            shadowing_sigma_db: 4.5,
            fading_sigma_db: 1.5,
            seed,
        }
    }

    /// Builder-style: set shadowing sigma.
    pub fn with_shadowing(mut self, sigma_db: f64) -> RadioChannel {
        self.shadowing_sigma_db = sigma_db;
        self
    }

    /// Builder-style: set fast-fading sigma.
    pub fn with_fading(mut self, sigma_db: f64) -> RadioChannel {
        self.fading_sigma_db = sigma_db;
        self
    }

    /// An ideal channel: no shadowing, no fading (useful in tests).
    pub fn ideal(pathloss: PathLossModel) -> RadioChannel {
        RadioChannel::new(pathloss, 0)
            .with_shadowing(0.0)
            .with_fading(0.0)
    }

    /// Sample the channel from a publisher at `tx_pos` (identified by
    /// `publisher_id`) to a subscriber at `rx_pos` at time-step `tick`.
    ///
    /// Returns `None` when the message lands below receiver sensitivity.
    ///
    /// Shadowing is a deterministic function of the publisher and the
    /// subscriber's 1 m grid cell (spatially consistent: standing still
    /// yields the same shadowing), while fading varies per `tick`.
    pub fn sample(
        &self,
        publisher_id: u64,
        tx_pos: Point,
        rx_pos: Point,
        tick: u64,
    ) -> Option<RadioReading> {
        let d = tx_pos.distance(rx_pos);
        let mean = self.pathloss.rx_power_dbm(d);
        let cell = (quantize(rx_pos.x), quantize(rx_pos.y));
        let shadow = self.shadowing_sigma_db
            * gaussian(hash4(self.seed, publisher_id, cell.0 as u64, cell.1 as u64));
        let fade =
            self.fading_sigma_db * gaussian(hash4(self.seed ^ 0x9e37_79b9, publisher_id, tick, 0));
        let rx = mean + shadow + fade;
        if rx < SENSITIVITY_DBM {
            return None;
        }
        let snr = (rx - NOISE_FLOOR_DBM).clamp(0.0, SNR_SPAN_DB);
        Some(RadioReading {
            rx_power_dbm: rx,
            snr_db: snr,
        })
    }
}

/// Quantize a coordinate to a 1 m shadowing grid (offset so negatives work).
fn quantize(v: f64) -> i64 {
    (v.floor() as i64) + 1_000_000
}

/// SplitMix64-style avalanche hash of four words.
fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(d.wrapping_mul(0x2545_f491_4f6c_dd1d));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Map a hash to a standard-normal sample via Box-Muller on two halves.
fn gaussian(h: u64) -> f64 {
    let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
    let u2 = ((h & 0xffff_ffff) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acacia_geo::pathloss::PathLossModel;

    fn channel() -> RadioChannel {
        RadioChannel::new(PathLossModel::indoor_default(), 42)
    }

    #[test]
    fn readings_are_deterministic() {
        let ch = channel();
        let a = ch.sample(1, Point::new(0.0, 0.0), Point::new(5.0, 5.0), 3);
        let b = ch.sample(1, Point::new(0.0, 0.0), Point::new(5.0, 5.0), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = channel().sample(1, Point::new(0.0, 0.0), Point::new(5.0, 5.0), 3);
        let b = RadioChannel::new(PathLossModel::indoor_default(), 43).sample(
            1,
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            3,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn ideal_channel_matches_pathloss_exactly() {
        let pl = PathLossModel::indoor_default();
        let ch = RadioChannel::ideal(pl);
        let r = ch
            .sample(7, Point::new(0.0, 0.0), Point::new(3.0, 4.0), 0)
            .unwrap();
        assert!((r.rx_power_dbm - pl.rx_power_dbm(5.0)).abs() < 1e-12);
    }

    #[test]
    fn rx_power_decreases_with_distance_on_average() {
        let ch = channel();
        let near: f64 = (0..50)
            .filter_map(|t| ch.sample(1, Point::new(0.0, 0.0), Point::new(2.0, 0.0), t))
            .map(|r| r.rx_power_dbm)
            .sum::<f64>()
            / 50.0;
        let far: f64 = (0..50)
            .filter_map(|t| ch.sample(1, Point::new(0.0, 0.0), Point::new(30.0, 0.0), t))
            .map(|r| r.rx_power_dbm)
            .sum::<f64>()
            / 50.0;
        assert!(near > far + 20.0, "near {near} far {far}");
    }

    #[test]
    fn snr_saturates_near_landmark_rx_power_does_not() {
        // The paper's core argument for using rxPower over SNR: close to a
        // publisher, SNR pins at its dynamic-range ceiling while rxPower
        // keeps discriminating.
        let ch = RadioChannel::ideal(PathLossModel::indoor_default());
        let at = |d: f64| {
            ch.sample(1, Point::new(0.0, 0.0), Point::new(d, 0.0), 0)
                .unwrap()
        };
        let r1 = at(0.5);
        let r2 = at(1.5);
        assert_eq!(r1.snr_db, SNR_SPAN_DB);
        assert_eq!(
            r2.snr_db, SNR_SPAN_DB,
            "SNR indistinguishable near the landmark"
        );
        assert!(
            r1.rx_power_dbm > r2.rx_power_dbm + 5.0,
            "rxPower still discriminates"
        );
    }

    #[test]
    fn below_sensitivity_is_not_received() {
        let ch = RadioChannel::ideal(PathLossModel::indoor_default());
        // indoor_default gives ~-40 dBm at 1 m and loses 38 dB per decade:
        // at 1 km the signal is ~-154 dBm, far below sensitivity.
        assert!(ch
            .sample(1, Point::new(0.0, 0.0), Point::new(1000.0, 0.0), 0)
            .is_none());
    }

    #[test]
    fn shadowing_is_spatially_consistent() {
        let ch = channel().with_fading(0.0);
        // Same grid cell => identical reading regardless of tick.
        let a = ch.sample(1, Point::new(0.0, 0.0), Point::new(5.2, 5.7), 1);
        let b = ch.sample(1, Point::new(0.0, 0.0), Point::new(5.2, 5.7), 99);
        assert_eq!(a, b);
    }
}
