//! LTE-direct service expressions: codes, masks and announcements.
//!
//! LTE-direct publishes small *service discovery messages* on uplink
//! resource blocks. Subscribers store **binary codes and masks expressing
//! the user's interest** in the modem; matching happens entirely in the
//! modem and only matching messages are delivered to applications (paper
//! §3, "LTE-direct"). Carriers manage the service-name namespace so
//! different publishers (e.g. different retail stores) are distinguishable.

use serde::{Deserialize, Serialize};

/// A 128-bit LTE-direct *ProSe*-style expression code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceCode(pub u128);

impl ServiceCode {
    /// Derive the code for `(service, expression)`.
    ///
    /// Layout: the upper 64 bits identify the **service** (carrier-assigned,
    /// e.g. a retail chain); the lower 64 bits identify the **expression**
    /// within the service (e.g. the "laptops" section).
    pub fn derive(service: &str, expression: &str) -> ServiceCode {
        let hi = fnv1a(service.as_bytes());
        let lo = fnv1a(expression.as_bytes());
        ServiceCode(((hi as u128) << 64) | lo as u128)
    }

    /// The service (upper) half of the code.
    pub fn service_bits(&self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The expression (lower) half of the code.
    pub fn expression_bits(&self) -> u64 {
        self.0 as u64
    }
}

/// 64-bit FNV-1a — stable across platforms and runs.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A subscription filter stored in the modem: `code` with a `mask` of
/// significant bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubscriptionFilter {
    /// Code bits to match.
    pub code: ServiceCode,
    /// Significant-bit mask: a set bit must match.
    pub mask: u128,
}

impl SubscriptionFilter {
    /// Match exactly one `(service, expression)` pair.
    pub fn exact(service: &str, expression: &str) -> SubscriptionFilter {
        SubscriptionFilter {
            code: ServiceCode::derive(service, expression),
            mask: u128::MAX,
        }
    }

    /// Match *any* expression within a service (mask covers only the
    /// service half).
    pub fn service_wide(service: &str) -> SubscriptionFilter {
        SubscriptionFilter {
            code: ServiceCode::derive(service, ""),
            mask: (u64::MAX as u128) << 64,
        }
    }

    /// Does `code` pass this filter?
    pub fn matches(&self, code: ServiceCode) -> bool {
        (code.0 & self.mask) == (self.code.0 & self.mask)
    }
}

/// A periodic service announcement broadcast by a publisher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// Carrier-managed service name (e.g. the retail chain).
    pub service: String,
    /// Application expression (e.g. section or product: "laptops").
    pub expression: String,
    /// Derived over-the-air code.
    pub code: ServiceCode,
}

impl Announcement {
    /// Build an announcement, deriving its over-the-air code.
    pub fn new(service: &str, expression: &str) -> Announcement {
        Announcement {
            service: service.to_string(),
            expression: expression.to_string(),
            code: ServiceCode::derive(service, expression),
        }
    }

    /// Over-the-air size of the discovery message in bytes. LTE-direct
    /// expressions are 128-bit codes plus a small metadata header.
    pub fn wire_size(&self) -> u32 {
        16 + 8
    }
}

/// A discovery message as delivered *by the modem* to the application after
/// an interest match, together with its radio measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryEvent {
    /// The matched announcement.
    pub announcement: Announcement,
    /// Name of the landmark/publisher that sent it.
    pub publisher: String,
    /// Received power, dBm.
    pub rx_power_dbm: f64,
    /// Clipped SNR, dB.
    pub snr_db: f64,
    /// Discovery period tick at which it was received.
    pub tick: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_stable_and_distinct() {
        let a = ServiceCode::derive("acme-retail", "laptops");
        let b = ServiceCode::derive("acme-retail", "laptops");
        let c = ServiceCode::derive("acme-retail", "cameras");
        let d = ServiceCode::derive("mega-mart", "laptops");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.service_bits(), c.service_bits());
        assert_ne!(a.service_bits(), d.service_bits());
        assert_eq!(a.expression_bits(), d.expression_bits());
    }

    #[test]
    fn exact_filter_matches_only_its_pair() {
        let f = SubscriptionFilter::exact("acme-retail", "laptops");
        assert!(f.matches(ServiceCode::derive("acme-retail", "laptops")));
        assert!(!f.matches(ServiceCode::derive("acme-retail", "cameras")));
        assert!(!f.matches(ServiceCode::derive("mega-mart", "laptops")));
    }

    #[test]
    fn service_wide_filter_matches_all_expressions() {
        let f = SubscriptionFilter::service_wide("acme-retail");
        assert!(f.matches(ServiceCode::derive("acme-retail", "laptops")));
        assert!(f.matches(ServiceCode::derive("acme-retail", "cameras")));
        assert!(!f.matches(ServiceCode::derive("mega-mart", "laptops")));
    }

    #[test]
    fn announcement_derives_consistent_code() {
        let a = Announcement::new("acme-retail", "laptops");
        assert_eq!(a.code, ServiceCode::derive("acme-retail", "laptops"));
        assert!(a.wire_size() >= 16);
    }
}
