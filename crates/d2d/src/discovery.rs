//! The proximity world: fixed publishers broadcasting periodically over the
//! radio channel, and a scan operation that pushes what a subscriber's
//! modem would decode at a given position and discovery tick.

use crate::channel::RadioChannel;
use crate::modem::Modem;
use crate::service::{Announcement, DiscoveryEvent};
use acacia_geo::floor::FloorPlan;
use acacia_geo::point::Point;

/// Default LTE-direct discovery period in seconds (the eNB allocates
/// discovery resource blocks "at periodic intervals (e.g., 5 or 10 sec)").
pub const DEFAULT_PERIOD_S: f64 = 5.0;

/// A fixed LTE-direct publisher (e.g. a sales person's phone taped to a
/// shelf).
#[derive(Debug, Clone)]
pub struct Publisher {
    /// Landmark/publisher name (matches the floor-plan landmark).
    pub name: String,
    /// Position on the floor.
    pub pos: Point,
    /// What it announces.
    pub announcement: Announcement,
}

/// All publishers in an environment plus the radio channel between them and
/// any subscriber.
#[derive(Debug, Clone)]
pub struct ProximityWorld {
    channel: RadioChannel,
    publishers: Vec<Publisher>,
    /// Discovery period in seconds.
    pub period_s: f64,
    /// Publishers that fit into one discovery occasion's resource-block
    /// allocation (None = unbounded). When exceeded, publishers broadcast
    /// round-robin across occasions.
    pub capacity_per_occasion: Option<usize>,
}

impl ProximityWorld {
    /// Empty world over `channel`.
    pub fn new(channel: RadioChannel) -> ProximityWorld {
        ProximityWorld {
            channel,
            publishers: Vec::new(),
            period_s: DEFAULT_PERIOD_S,
            capacity_per_occasion: None,
        }
    }

    /// Place every landmark of `floor` as a publisher of
    /// `(service, landmark-name)`.
    pub fn from_floor(floor: &FloorPlan, service: &str, channel: RadioChannel) -> ProximityWorld {
        let mut world = ProximityWorld::new(channel);
        for lm in &floor.landmarks {
            world.add_publisher(&lm.name, lm.pos, Announcement::new(service, &lm.name));
        }
        world
    }

    /// Add a publisher.
    pub fn add_publisher(&mut self, name: &str, pos: Point, announcement: Announcement) {
        self.publishers.push(Publisher {
            name: name.to_string(),
            pos,
            announcement,
        });
    }

    /// Publishers currently in the world.
    pub fn publishers(&self) -> &[Publisher] {
        &self.publishers
    }

    /// The discovery tick in effect at wall time `t_s` seconds.
    pub fn tick_at(&self, t_s: f64) -> u64 {
        (t_s / self.period_s).floor().max(0.0) as u64
    }

    /// One discovery occasion: every publisher that got a resource-block
    /// grant this occasion broadcasts once; `modem` filters; returns
    /// delivered events (with rxPower/SNR side info).
    pub fn scan(&self, modem: &mut Modem, rx_pos: Point, tick: u64) -> Vec<DiscoveryEvent> {
        let mut events = Vec::new();
        for (i, p) in self.publishers.iter().enumerate() {
            if !self.scheduled(i, tick) {
                continue; // no grant this occasion
            }
            let Some(reading) = self.channel.sample(i as u64 + 1, p.pos, rx_pos, tick) else {
                continue; // below sensitivity: not decoded at all
            };
            if let Some(ev) = modem.receive(&p.announcement, &p.name, reading, tick) {
                events.push(ev);
            }
        }
        events
    }

    /// Does publisher `i` hold a grant at `tick`? With bounded capacity the
    /// eNB round-robins grants across occasions.
    fn scheduled(&self, i: usize, tick: u64) -> bool {
        match self.capacity_per_occasion {
            None => true,
            Some(0) => false,
            Some(cap) => {
                let n = self.publishers.len();
                if n <= cap {
                    return true;
                }
                let start = (tick as usize * cap) % n;
                let offset = (i + n - start) % n;
                offset < cap
            }
        }
    }

    /// Scan repeatedly while standing at `rx_pos` for `n_ticks` discovery
    /// periods, collecting all delivered events.
    pub fn scan_dwell(
        &self,
        modem: &mut Modem,
        rx_pos: Point,
        start_tick: u64,
        n_ticks: u64,
    ) -> Vec<DiscoveryEvent> {
        (start_tick..start_tick + n_ticks)
            .flat_map(|t| self.scan(modem, rx_pos, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RadioChannel;
    use crate::service::SubscriptionFilter;
    use acacia_geo::pathloss::PathLossModel;

    fn world() -> ProximityWorld {
        let floor = FloorPlan::retail_store();
        let channel = RadioChannel::new(PathLossModel::indoor_default(), 7);
        ProximityWorld::from_floor(&floor, "acme", channel)
    }

    #[test]
    fn floor_landmarks_become_publishers() {
        let w = world();
        assert_eq!(w.publishers().len(), 7);
        assert_eq!(w.publishers()[0].name, "L1");
        assert_eq!(w.publishers()[0].announcement.expression, "L1");
    }

    #[test]
    fn subscriber_hears_nearby_landmarks() {
        let w = world();
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        // Standing in the middle of a 28x15 m store every landmark should be
        // in radio range (max distance < 30 m).
        let events = w.scan(&mut modem, Point::new(14.0, 7.5), 0);
        assert!(events.len() >= 3, "heard only {} landmarks", events.len());
        // Closest landmark must have the strongest rxPower on average over
        // several ticks.
        let mut by_pub: std::collections::HashMap<String, Vec<f64>> = Default::default();
        for t in 0..20 {
            for ev in w.scan(&mut modem, Point::new(14.0, 2.5), t) {
                by_pub
                    .entry(ev.publisher)
                    .or_default()
                    .push(ev.rx_power_dbm);
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        // L4 sits at (14, 2.5) — exactly the scan position.
        let l4 = mean(&by_pub["L4"]);
        for (name, vals) in &by_pub {
            if name != "L4" {
                assert!(
                    l4 > mean(vals),
                    "L4 ({l4:.1} dBm) vs {name} ({:.1})",
                    mean(vals)
                );
            }
        }
    }

    #[test]
    fn unsubscribed_modem_receives_nothing() {
        let w = world();
        let mut modem = Modem::new();
        let events = w.scan(&mut modem, Point::new(14.0, 7.5), 0);
        assert!(events.is_empty());
        assert!(modem.messages_filtered > 0, "messages must reach the modem");
    }

    #[test]
    fn tick_at_respects_period() {
        let w = world();
        assert_eq!(w.tick_at(0.0), 0);
        assert_eq!(w.tick_at(4.9), 0);
        assert_eq!(w.tick_at(5.1), 1);
        assert_eq!(w.tick_at(27.0), 5);
    }

    #[test]
    fn bounded_capacity_round_robins_grants() {
        let mut w = world();
        w.capacity_per_occasion = Some(3);
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        // Per occasion at most 3 of the 7 publishers broadcast...
        for tick in 0..7 {
            let n = w.scan(&mut modem, Point::new(14.0, 7.5), tick).len();
            assert!(n <= 3, "tick {tick}: {n} broadcasts");
        }
        // ...but across a few occasions every publisher is heard.
        let mut heard: std::collections::HashSet<String> = Default::default();
        for tick in 0..7 {
            for ev in w.scan(&mut modem, Point::new(14.0, 7.5), tick) {
                heard.insert(ev.publisher);
            }
        }
        assert_eq!(heard.len(), 7, "round-robin must cover all publishers");
        // Zero capacity silences discovery entirely.
        w.capacity_per_occasion = Some(0);
        assert!(w.scan(&mut modem, Point::new(14.0, 7.5), 0).is_empty());
    }

    #[test]
    fn dwell_accumulates_multiple_ticks() {
        let w = world();
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let one = w.scan(&mut modem, Point::new(14.0, 7.5), 0).len();
        let mut modem2 = Modem::new();
        modem2.subscribe(SubscriptionFilter::service_wide("acme"));
        let many = w.scan_dwell(&mut modem2, Point::new(14.0, 7.5), 0, 5).len();
        assert!(many >= 4 * one, "dwell {many} vs single {one}");
    }
}
