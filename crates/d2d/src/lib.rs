//! # acacia-d2d — LTE-direct proximity service discovery
//!
//! A deterministic model of LTE-direct (3GPP Release 12 D2D): periodic
//! publish/subscribe service discovery with in-modem code/mask filtering,
//! over a log-distance radio channel that reports per-message rxPower and
//! (dynamic-range-clipped) SNR — exactly the side information ACACIA's
//! localization consumes (paper §3, §5.5).
//!
//! * [`channel`] — path loss + shadowing + fading; rxPower/SNR readings.
//! * [`service`] — 128-bit expression codes, masks, announcements.
//! * [`modem`] — modem-resident subscription filtering.
//! * [`discovery`] — publishers on a floor plan; scan/dwell operations.
//! * [`resource`] — uplink resource-block accounting (<1% utilization).
//!
//! ```
//! use acacia_d2d::prelude::*;
//! use acacia_geo::prelude::*;
//!
//! let floor = FloorPlan::retail_store();
//! let channel = RadioChannel::new(PathLossModel::indoor_default(), 42);
//! let world = ProximityWorld::from_floor(&floor, "acme", channel);
//!
//! let mut modem = Modem::new();
//! modem.subscribe(SubscriptionFilter::exact("acme", "L4"));
//! // Standing next to landmark L4 we hear its broadcasts (and its alone).
//! let events = world.scan(&mut modem, Point::new(14.0, 2.5), 0);
//! assert!(events.iter().all(|e| e.publisher == "L4"));
//! assert!(!events.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod discovery;
pub mod modem;
pub mod resource;
pub mod service;
pub mod technology;

pub use channel::{RadioChannel, RadioReading};
pub use discovery::{ProximityWorld, Publisher};
pub use modem::{Modem, SubscriptionId};
pub use service::{Announcement, DiscoveryEvent, ServiceCode, SubscriptionFilter};
pub use technology::ProximityTech;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::channel::{RadioChannel, RadioReading};
    pub use crate::discovery::{ProximityWorld, Publisher};
    pub use crate::modem::Modem;
    pub use crate::resource::{DiscoveryAllocation, UplinkConfig};
    pub use crate::service::{Announcement, DiscoveryEvent, ServiceCode, SubscriptionFilter};
    pub use crate::technology::ProximityTech;
}
