//! The LTE modem's discovery filter: subscriptions live *in the modem* and
//! non-matching messages never reach the application processor (paper §3:
//! "Handling service discovery entirely in the modem allows for scalability
//! (hundreds of devices), security and fast discovery").

use crate::channel::RadioReading;
use crate::service::{Announcement, DiscoveryEvent, SubscriptionFilter};

/// Identifier an application receives when registering a subscription.
pub type SubscriptionId = usize;

/// Modem-resident discovery state for one UE.
#[derive(Debug, Default)]
pub struct Modem {
    subscriptions: Vec<Option<SubscriptionFilter>>,
    /// Discovery messages decoded by the radio.
    pub messages_seen: u64,
    /// Messages filtered out in the modem (no matching subscription).
    pub messages_filtered: u64,
    /// Messages delivered to applications.
    pub messages_delivered: u64,
}

impl Modem {
    /// A modem with no subscriptions.
    pub fn new() -> Modem {
        Modem::default()
    }

    /// Install a subscription filter; returns its handle.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        self.subscriptions.push(Some(filter));
        self.subscriptions.len() - 1
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, id: SubscriptionId) {
        if let Some(slot) = self.subscriptions.get_mut(id) {
            *slot = None;
        }
    }

    /// Number of active subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.subscriptions.iter().flatten().count()
    }

    /// Present a decoded over-the-air announcement to the modem. Returns the
    /// event delivered to the application layer if any subscription matches.
    pub fn receive(
        &mut self,
        announcement: &Announcement,
        publisher: &str,
        reading: RadioReading,
        tick: u64,
    ) -> Option<DiscoveryEvent> {
        self.messages_seen += 1;
        let matched = self
            .subscriptions
            .iter()
            .flatten()
            .any(|f| f.matches(announcement.code));
        if !matched {
            self.messages_filtered += 1;
            return None;
        }
        self.messages_delivered += 1;
        Some(DiscoveryEvent {
            announcement: announcement.clone(),
            publisher: publisher.to_string(),
            rx_power_dbm: reading.rx_power_dbm,
            snr_db: reading.snr_db,
            tick,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RadioReading;
    use crate::service::Announcement;

    fn reading() -> RadioReading {
        RadioReading {
            rx_power_dbm: -70.0,
            snr_db: 20.0,
        }
    }

    #[test]
    fn matching_message_is_delivered_with_radio_info() {
        let mut m = Modem::new();
        m.subscribe(SubscriptionFilter::exact("store", "laptops"));
        let a = Announcement::new("store", "laptops");
        let ev = m.receive(&a, "L1", reading(), 5).unwrap();
        assert_eq!(ev.publisher, "L1");
        assert_eq!(ev.rx_power_dbm, -70.0);
        assert_eq!(ev.tick, 5);
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.messages_filtered, 0);
    }

    #[test]
    fn non_matching_message_is_filtered_in_modem() {
        let mut m = Modem::new();
        m.subscribe(SubscriptionFilter::exact("store", "laptops"));
        let a = Announcement::new("store", "cameras");
        assert!(m.receive(&a, "L2", reading(), 0).is_none());
        assert_eq!(m.messages_filtered, 1);
        assert_eq!(m.messages_delivered, 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut m = Modem::new();
        let id = m.subscribe(SubscriptionFilter::service_wide("store"));
        assert_eq!(m.active_subscriptions(), 1);
        m.unsubscribe(id);
        assert_eq!(m.active_subscriptions(), 0);
        let a = Announcement::new("store", "laptops");
        assert!(m.receive(&a, "L1", reading(), 0).is_none());
    }

    #[test]
    fn unsubscribe_of_unknown_id_is_harmless() {
        let mut m = Modem::new();
        m.unsubscribe(17);
        assert_eq!(m.active_subscriptions(), 0);
    }

    #[test]
    fn multiple_subscriptions_any_match_delivers_once() {
        let mut m = Modem::new();
        m.subscribe(SubscriptionFilter::service_wide("store"));
        m.subscribe(SubscriptionFilter::exact("store", "laptops"));
        let a = Announcement::new("store", "laptops");
        assert!(m.receive(&a, "L1", reading(), 0).is_some());
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.messages_seen, 1);
    }
}
