//! Uplink resource accounting for LTE-direct discovery.
//!
//! Discovery resources are allocated "in the uplink part of the LTE
//! spectrum, which is lightly loaded compared to the downlink … this has a
//! negligible impact on the uplink capacity (utilizes < 1% of uplink
//! resources)" (paper §3). This module quantifies that claim for arbitrary
//! carrier configurations and bounds how many publishers fit per discovery
//! period ("hundreds of devices").

/// Uplink physical-layer configuration of an eNodeB.
#[derive(Debug, Clone, Copy)]
pub struct UplinkConfig {
    /// Resource blocks per 1 ms subframe (50 for a 10 MHz carrier, 100 for
    /// 20 MHz).
    pub rbs_per_subframe: u32,
    /// Subframes per second (always 1000 in LTE).
    pub subframes_per_sec: u32,
}

impl UplinkConfig {
    /// A 10 MHz LTE carrier.
    pub fn mhz10() -> UplinkConfig {
        UplinkConfig {
            rbs_per_subframe: 50,
            subframes_per_sec: 1000,
        }
    }

    /// A 20 MHz LTE carrier.
    pub fn mhz20() -> UplinkConfig {
        UplinkConfig {
            rbs_per_subframe: 100,
            subframes_per_sec: 1000,
        }
    }

    /// Total resource blocks per second.
    pub fn rbs_per_sec(&self) -> u64 {
        self.rbs_per_subframe as u64 * self.subframes_per_sec as u64
    }
}

/// A periodic discovery-resource allocation made by the eNodeB.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryAllocation {
    /// Period between discovery occasions, seconds (paper: 5 or 10 s).
    pub period_s: f64,
    /// Uplink subframes reserved per occasion.
    pub subframes_per_occasion: u32,
    /// Resource-block pairs a single discovery message occupies (LTE-direct
    /// expressions fit in 2 RBs).
    pub rbs_per_message: u32,
}

impl DiscoveryAllocation {
    /// The default used throughout the reproduction: 40 subframes every 5 s.
    pub fn default_5s() -> DiscoveryAllocation {
        DiscoveryAllocation {
            period_s: 5.0,
            subframes_per_occasion: 40,
            rbs_per_message: 2,
        }
    }

    /// Fraction of total uplink resources consumed by discovery.
    pub fn utilization(&self, cfg: UplinkConfig) -> f64 {
        let rbs_per_occasion = self.subframes_per_occasion as f64 * cfg.rbs_per_subframe as f64;
        let total_rbs_per_period = cfg.rbs_per_sec() as f64 * self.period_s;
        rbs_per_occasion / total_rbs_per_period
    }

    /// How many distinct publishers can broadcast per discovery occasion.
    pub fn capacity_per_occasion(&self, cfg: UplinkConfig) -> u32 {
        self.subframes_per_occasion * cfg.rbs_per_subframe / self.rbs_per_message
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allocation_is_under_one_percent() {
        let alloc = DiscoveryAllocation::default_5s();
        for cfg in [UplinkConfig::mhz10(), UplinkConfig::mhz20()] {
            let u = alloc.utilization(cfg);
            assert!(u < 0.01, "utilization {u} must stay below 1%");
            assert!(u > 0.0);
        }
    }

    #[test]
    fn capacity_supports_hundreds_of_devices() {
        let alloc = DiscoveryAllocation::default_5s();
        let cap = alloc.capacity_per_occasion(UplinkConfig::mhz10());
        assert!(cap >= 200, "capacity {cap} should be hundreds of devices");
    }

    #[test]
    fn longer_period_lowers_utilization() {
        let five = DiscoveryAllocation::default_5s();
        let ten = DiscoveryAllocation {
            period_s: 10.0,
            ..five
        };
        let cfg = UplinkConfig::mhz10();
        assert!(ten.utilization(cfg) < five.utilization(cfg));
    }

    #[test]
    fn wider_carrier_lowers_relative_utilization_not_capacity() {
        let alloc = DiscoveryAllocation::default_5s();
        assert_eq!(
            alloc.utilization(UplinkConfig::mhz10()),
            alloc.utilization(UplinkConfig::mhz20()),
        );
        assert!(
            alloc.capacity_per_occasion(UplinkConfig::mhz20())
                > alloc.capacity_per_occasion(UplinkConfig::mhz10())
        );
    }
}
