//! Alternative proximity-discovery technologies (paper §8, "Other
//! proximity discovery techniques with ACACIA").
//!
//! ACACIA's device manager is technology-agnostic: anything with a
//! pub/sub discovery message and a received-power reading can drive it.
//! Besides LTE-direct the paper names **iBeacon** (Bluetooth LE) and
//! **Wi-Fi Aware**; this module captures their radio and timing
//! characteristics so the rest of the stack runs unchanged on any of them.

use crate::channel::RadioChannel;
use acacia_geo::pathloss::PathLossModel;
use serde::{Deserialize, Serialize};

/// A proximity service discovery technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProximityTech {
    /// 3GPP Release-12 device-to-device discovery (the paper's choice).
    LteDirect,
    /// Apple iBeacon over Bluetooth Low Energy advertisements.
    IBeacon,
    /// Wi-Fi Aware (Neighbor Awareness Networking).
    WifiAware,
}

impl ProximityTech {
    /// All supported technologies.
    pub const ALL: [ProximityTech; 3] = [
        ProximityTech::LteDirect,
        ProximityTech::IBeacon,
        ProximityTech::WifiAware,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProximityTech::LteDirect => "LTE-direct",
            ProximityTech::IBeacon => "iBeacon",
            ProximityTech::WifiAware => "Wi-Fi Aware",
        }
    }

    /// Discovery/advertisement period, seconds. LTE-direct occasions are
    /// eNB-scheduled every 5–10 s; BLE beacons advertise several times a
    /// second; NAN discovery windows recur every ~0.5 s.
    pub fn period_s(&self) -> f64 {
        match self {
            ProximityTech::LteDirect => 5.0,
            ProximityTech::IBeacon => 0.3,
            ProximityTech::WifiAware => 0.5,
        }
    }

    /// Transmit power, dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        match self {
            ProximityTech::LteDirect => 23.0,
            ProximityTech::IBeacon => 0.0,
            ProximityTech::WifiAware => 15.0,
        }
    }

    /// Indoor path-loss model at this technology's carrier frequency
    /// (2.4/5 GHz lose more at the reference metre than 700 MHz–2 GHz
    /// LTE bands; exponents are comparable indoors).
    pub fn pathloss(&self) -> PathLossModel {
        match self {
            ProximityTech::LteDirect => PathLossModel::indoor_default(),
            ProximityTech::IBeacon => PathLossModel {
                tx_power_dbm: self.tx_power_dbm(),
                pl0_db: 65.0,
                exponent: 3.4,
            },
            ProximityTech::WifiAware => PathLossModel {
                tx_power_dbm: self.tx_power_dbm(),
                pl0_db: 70.0,
                exponent: 3.6,
            },
        }
    }

    /// Does discovery require deployed infrastructure? (The paper's pitch
    /// for LTE-direct: the eNB only *schedules*; landmarks are ordinary
    /// phones. iBeacon requires battery beacons on shelves; Wi-Fi Aware
    /// needs nothing either but burns handset power.)
    pub fn needs_infrastructure(&self) -> bool {
        matches!(self, ProximityTech::IBeacon)
    }

    /// Practical indoor discovery range in metres: the distance at which
    /// the mean received power crosses the receiver sensitivity.
    pub fn nominal_range_m(&self) -> f64 {
        let pl = self.pathloss();
        pl.distance_for(crate::channel::SENSITIVITY_DBM + 6.0)
    }

    /// A radio channel with this technology's characteristics.
    pub fn channel(&self, seed: u64) -> RadioChannel {
        RadioChannel::new(self.pathloss(), seed ^ (*self as u64) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::ProximityWorld;
    use crate::modem::Modem;
    use crate::service::SubscriptionFilter;
    use acacia_geo::floor::FloorPlan;
    use acacia_geo::point::Point;

    #[test]
    fn lte_direct_has_longest_range() {
        let lte = ProximityTech::LteDirect.nominal_range_m();
        let ble = ProximityTech::IBeacon.nominal_range_m();
        let wifi = ProximityTech::WifiAware.nominal_range_m();
        assert!(lte > wifi, "lte {lte:.0} m vs wifi {wifi:.0} m");
        assert!(wifi > ble, "wifi {wifi:.0} m vs ble {ble:.0} m");
        // The paper cites LTE-direct's "superior range": hundreds of
        // metres outdoors; our indoor model should still exceed 50 m.
        assert!(lte > 50.0, "lte range {lte:.0} m");
        assert!(ble > 10.0 && ble < 80.0, "ble range {ble:.0} m");
    }

    #[test]
    fn faster_advertisement_means_faster_discovery() {
        assert!(ProximityTech::IBeacon.period_s() < ProximityTech::LteDirect.period_s());
        assert!(ProximityTech::WifiAware.period_s() < ProximityTech::LteDirect.period_s());
    }

    #[test]
    fn only_ibeacon_needs_infrastructure() {
        assert!(ProximityTech::IBeacon.needs_infrastructure());
        assert!(!ProximityTech::LteDirect.needs_infrastructure());
        assert!(!ProximityTech::WifiAware.needs_infrastructure());
    }

    #[test]
    fn every_technology_drives_the_same_discovery_pipeline() {
        let floor = FloorPlan::retail_store();
        for tech in ProximityTech::ALL {
            let mut world = ProximityWorld::from_floor(&floor, "acme", tech.channel(9));
            world.period_s = tech.period_s();
            let mut modem = Modem::new();
            modem.subscribe(SubscriptionFilter::service_wide("acme"));
            // Standing next to L4, every technology hears it.
            let events = world.scan(&mut modem, Point::new(14.0, 2.6), 0);
            assert!(
                events.iter().any(|e| e.publisher == "L4"),
                "{} heard nothing from the adjacent landmark",
                tech.name()
            );
        }
    }

    #[test]
    fn ble_hears_fewer_landmarks_than_lte_direct() {
        let floor = FloorPlan::retail_store();
        let hear_count = |tech: ProximityTech| {
            let world = ProximityWorld::from_floor(&floor, "acme", tech.channel(4));
            let mut modem = Modem::new();
            modem.subscribe(SubscriptionFilter::service_wide("acme"));
            // Count over several occasions from a far corner of the store
            // (most landmarks sit 15-28 m away).
            (0..6)
                .map(|t| world.scan(&mut modem, Point::new(27.5, 14.5), t).len())
                .sum::<usize>()
        };
        let lte = hear_count(ProximityTech::LteDirect);
        let ble = hear_count(ProximityTech::IBeacon);
        assert!(lte > ble, "lte heard {lte}, ble heard {ble}");
    }
}
