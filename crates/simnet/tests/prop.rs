//! Property-based tests for the simulator substrate.

use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::{l4_header_len, Packet};
use acacia_simnet::prelude::*;
use acacia_simnet::stats::Series;
use acacia_simnet::time::serialization_time;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Instant/Duration arithmetic round-trips.
    #[test]
    fn time_roundtrip(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = Instant::from_nanos(base);
        let d = Duration::from_nanos(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Serialization time is monotone in size and antitone in rate.
    #[test]
    fn serialization_monotone(bytes in 1u64..10_000_000, rate in 1_000u64..10_000_000_000) {
        let t = serialization_time(bytes, rate);
        prop_assert!(serialization_time(bytes + 1, rate) >= t);
        prop_assert!(serialization_time(bytes, rate * 2) <= t);
        // Exact formula within a nanosecond of rounding.
        let expect = bytes as f64 * 8.0 / rate as f64;
        prop_assert!((t.secs_f64() - expect).abs() < 1e-6 + expect * 1e-9);
    }

    /// Wire size always covers headers + both payload kinds.
    #[test]
    fn wire_size_composition(app_len in 0u32..100_000, proto_byte in 0u8..255, payload_len in 0usize..512) {
        let mut p = Packet::udp((Ipv4Addr::UNSPECIFIED, 0), (Ipv4Addr::UNSPECIFIED, 0), app_len);
        p.protocol = proto_byte;
        p.payload = bytes::Bytes::from(vec![0u8; payload_len]);
        prop_assert_eq!(
            p.wire_size(),
            20 + l4_header_len(proto_byte) + payload_len as u32 + app_len
        );
    }

    /// FiveTuple reversal is an involution.
    #[test]
    fn five_tuple_involution(a in any::<u32>(), b in any::<u32>(), pa in any::<u16>(), pb in any::<u16>()) {
        let p = Packet::udp((Ipv4Addr::from(a), pa), (Ipv4Addr::from(b), pb), 1);
        let ft = p.five_tuple();
        prop_assert_eq!(ft.reversed().reversed(), ft);
    }

    /// Longest-prefix match: a /32 host route always beats anything else.
    #[test]
    fn lpm_host_route_wins(addr in any::<u32>(), plen in 0u8..=24) {
        let ip = Ipv4Addr::from(addr);
        let mut t = RouteTable::new();
        t.add(Ipv4Net::new(ip, plen), 1);
        t.add(Ipv4Net::host(ip), 2);
        prop_assert_eq!(t.lookup(ip), Some(2));
    }

    /// Series percentiles are monotone and bounded by min/max.
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Series::from_iter(values.clone());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= last);
            prop_assert!(v >= s.min() && v <= s.max());
            last = v;
        }
        let cdf = s.cdf();
        prop_assert_eq!(cdf.len(), values.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// Links conserve packets: delivered + dropped = offered, and
    /// deliveries never beat propagation delay.
    #[test]
    fn link_conservation(
        n in 1usize..60,
        rate in 100_000u64..100_000_000,
        delay_us in 0u64..50_000,
        loss in 0.0f64..0.3,
        queue in 2_000u64..2_000_000,
    ) {
        let mut sim = Simulator::new(7);
        let src = sim.add_node(Box::new(
            UdpSource::cbr(
                (Ipv4Addr::new(10, 0, 0, 1), 1),
                (Ipv4Addr::new(10, 0, 0, 2), 2),
                10_000_000,
                1_000,
            )
            .window(Instant::ZERO, Instant::from_millis(n as u64)),
        ));
        let sink = sim.add_node(Box::new(Sink::new()));
        let cfg = LinkConfig::rate_limited(rate, Duration::from_micros(delay_us))
            .with_loss(loss)
            .with_queue(queue);
        sim.connect_simplex((src, 0), (sink, 0), cfg);
        sim.schedule_timer(src, Instant::ZERO, UdpSource::KICKOFF);
        sim.run_until_idle();

        let stats = sim.link_stats((src, 0)).unwrap().clone();
        let sent = sim.node_ref::<acacia_simnet::traffic::UdpSource>(src).sent;
        let delivered = sim.node_ref::<Sink>(sink).packets();
        prop_assert_eq!(stats.tx_packets, delivered);
        prop_assert_eq!(delivered + stats.drops(), sent);
        for d in sim.node_ref::<Sink>(sink).delays() {
            prop_assert!(*d >= Duration::from_micros(delay_us));
        }
    }

    /// The timing wheel pops in exactly the ascending `(at, seq)` order a
    /// binary-heap reference model produces, for any interleaving of
    /// schedules and pops — near-cursor ties, in-ring events, and
    /// beyond-horizon overflow alike. This is the equivalence that let the
    /// engine swap its `BinaryHeap` event queue for the wheel without
    /// changing a byte of experiment output.
    #[test]
    fn wheel_matches_heap_reference(
        // (selector, raw): selector % 5 < 3 schedules (selector % 3 picks
        // the delta regime), otherwise pops.
        ops in prop::collection::vec((any::<u8>(), any::<u32>()), 1..400)
    ) {
        use acacia_simnet::wheel::TimerWheel;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64; // advances to each popped deadline, like the engine clock
        for (selector, raw) in ops {
            if selector % 5 < 3 {
                // Three delta regimes: same-slot ties, in-ring, and far
                // enough to land in (and migrate out of) overflow.
                let delta = match selector % 3 {
                    0 => u64::from(raw) & 0xFFFF,
                    1 => u64::from(raw) << 4,
                    _ => u64::from(raw) << 16,
                };
                let at = Instant::from_nanos(now + delta);
                wheel.schedule(at, seq, seq);
                heap.push(Reverse((at, seq)));
                seq += 1;
            } else {
                prop_assert_eq!(
                    wheel.peek_key(),
                    heap.peek().map(|&Reverse((at, s))| (at, s))
                );
                match (heap.pop(), wheel.pop()) {
                    (None, None) => {}
                    (Some(Reverse((at, s))), got) => {
                        prop_assert_eq!(got, Some((at, s, s)));
                        now = at.nanos();
                    }
                    (None, got) => prop_assert_eq!(got, None),
                }
            }
        }
        // Drain: the full backlog comes out in reference order.
        while let Some(Reverse((at, s))) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some((at, s, s)));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }

    /// The sharded engine's conservative-lookahead exchange preserves the
    /// merged-wheel total order: an arbitrary multi-region topology —
    /// cross-shard links with arbitrary positive delays (short enough to
    /// stay in-ring, long enough to land in the wheel's overflow slots
    /// and migrate out mid-rotation), zero-delay same-region chains, and
    /// every kickoff scheduled at the same instant so `(at, key)` ties
    /// cross shard boundaries — produces byte-identical observables at
    /// every shard count, and the exchange conserves every event it
    /// carries.
    #[test]
    fn sharded_exchange_matches_merged_wheel(
        seed in any::<u64>(),
        regions in 2usize..=4,
        cross_delays_us in prop::collection::vec(1u64..100_000, 4),
        counts in prop::collection::vec(1u32..12, 8),
        intervals_us in prop::collection::vec(1u64..100_000, 8),
    ) {
        let run = |shards: usize| {
            let mut sim = Simulator::with_shards(seed, shards);
            let mut pings = Vec::new();
            for r in 0..regions {
                // Cross-shard pair: ping in region r, reflector in the
                // next region, positive link delay (the lookahead source).
                let ping = sim.add_node_in_region(
                    Box::new(PingAgent::new(
                        Ipv4Addr::new(10, 0, r as u8, 1),
                        Ipv4Addr::new(10, 0, ((r + 1) % regions) as u8, 2),
                        Duration::from_micros(intervals_us[2 * r % intervals_us.len()]),
                        counts[2 * r % counts.len()] as u64,
                    )),
                    r as u32,
                );
                let refl = sim.add_node_in_region(
                    Box::new(Reflector::new()),
                    ((r + 1) % regions) as u32,
                );
                sim.connect(
                    (ping, 0),
                    (refl, 0),
                    LinkConfig::delay_only(Duration::from_micros(
                        cross_delays_us[r % cross_delays_us.len()],
                    ))
                    .with_jitter(Duration::from_micros(500))
                    .with_loss(0.05),
                );
                pings.push(ping);

                // Same-region pair on a zero-delay link: same-instant
                // chains whose ties must resolve identically everywhere.
                let local = sim.add_node_in_region(
                    Box::new(PingAgent::new(
                        Ipv4Addr::new(10, 1, r as u8, 1),
                        Ipv4Addr::new(10, 1, r as u8, 2),
                        Duration::from_micros(intervals_us[(2 * r + 1) % intervals_us.len()]),
                        counts[(2 * r + 1) % counts.len()] as u64,
                    )),
                    r as u32,
                );
                let lrefl = sim.add_node_in_region(Box::new(Reflector::new()), r as u32);
                sim.connect((local, 0), (lrefl, 0), LinkConfig::delay_only(Duration::ZERO));
                pings.push(local);
            }
            for &p in &pings {
                sim.schedule_timer(p, Instant::ZERO, PingAgent::KICKOFF);
            }
            sim.run_until_idle();
            let rtts: Vec<Vec<Duration>> = pings
                .iter()
                .map(|&p| sim.node_ref::<PingAgent>(p).rtts().to_vec())
                .collect();
            (rtts, sim.events_processed(), sim.cross_shard_sent(), sim.cross_shard_received())
        };

        let (rtts1, events1, xs1, xr1) = run(1);
        prop_assert_eq!(xs1, 0);
        prop_assert_eq!(xr1, 0);
        for shards in [2, regions, 8] {
            let (rtts, events, xsent, xrecv) = run(shards);
            prop_assert_eq!(&rtts, &rtts1, "shards={} diverged", shards);
            prop_assert_eq!(events, events1, "shards={} event count drifted", shards);
            prop_assert_eq!(xsent, xrecv, "shards={} exchange lost events", shards);
        }
    }

    /// Simulation runs are deterministic functions of the seed.
    #[test]
    fn determinism(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let ping = sim.add_node(Box::new(PingAgent::new(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                Duration::from_millis(7),
                20,
            )));
            let refl = sim.add_node(Box::new(Reflector::new()));
            sim.connect(
                (ping, 0),
                (refl, 0),
                LinkConfig::delay_only(Duration::from_millis(1))
                    .with_jitter(Duration::from_millis(2))
                    .with_loss(0.1),
            );
            sim.schedule_timer(ping, Instant::ZERO, PingAgent::KICKOFF);
            sim.run_until_idle();
            sim.node_ref::<PingAgent>(ping).rtts().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

use acacia_simnet::fault::{FaultPlan, FaultRule, NodeFaultPlan, NodeFaultRule, PacketClass};

proptest! {
    /// `with_src_port` narrows a class to the packet's source port, and
    /// composes conjunctively with the other dimensions.
    #[test]
    fn packet_class_src_port_filters(
        sp in any::<u16>(),
        dp in any::<u16>(),
        want in any::<u16>(),
    ) {
        let p = Packet::udp((Ipv4Addr::new(1, 1, 1, 1), sp), (Ipv4Addr::new(2, 2, 2, 2), dp), 10);
        prop_assert_eq!(PacketClass::src_port(want).matches(&p), sp == want);
        prop_assert_eq!(PacketClass::any().with_src_port(want).matches(&p), sp == want);
        // Both dimensions matching ⇒ the conjunction matches.
        prop_assert!(PacketClass::any().with_src_port(sp).with_dst_port(dp).matches(&p));
        // Breaking either dimension kills the match.
        prop_assert!(!PacketClass::src_port(sp).with_dst_port(dp.wrapping_add(1)).matches(&p));
        prop_assert!(!PacketClass::src_port(sp.wrapping_add(1)).with_dst_port(dp).matches(&p));
    }
}

/// A ping/reflector mesh with a node-fault plan: the full observable
/// trace of the run.
fn faulted_trace(
    sim_seed: u64,
    plan: Option<&NodeFaultPlan>,
    packet_faults: Option<FaultPlan>,
) -> (Vec<Vec<Duration>>, u64, u64, u64, u64, u64) {
    let mut sim = Simulator::new(sim_seed);
    let mut pings = Vec::new();
    let mut refls = Vec::new();
    for i in 0..3u8 {
        let ping = sim.add_node(Box::new(PingAgent::new(
            Ipv4Addr::new(10, 0, i, 1),
            Ipv4Addr::new(10, 0, i, 2),
            Duration::from_millis(3),
            12,
        )));
        let refl = sim.add_node(Box::new(Reflector::new()));
        sim.connect(
            (ping, 0),
            (refl, 0),
            LinkConfig::delay_only(Duration::from_millis(1)).with_jitter(Duration::from_micros(200)),
        );
        pings.push(ping);
        refls.push(refl);
    }
    if let Some(fp) = packet_faults {
        sim.attach_fault_plan((pings[0], 0), fp);
    }
    if let Some(p) = plan {
        sim.attach_node_fault_plan(p);
    }
    for &p in &pings {
        sim.schedule_timer(p, Instant::ZERO, PingAgent::KICKOFF);
    }
    sim.run_until_idle();
    (
        pings
            .iter()
            .map(|&p| sim.node_ref::<PingAgent>(p).rtts().to_vec())
            .collect(),
        sim.events_processed(),
        sim.node_restarts(),
        sim.node_arrivals_rejected(),
        sim.node_sends_dropped(),
        sim.node_timers_dropped(),
    )
}

/// The three rules every plan permutation below is built from: one
/// probabilistic crash-restart per reflector plus a partition on a ping.
fn fault_rules(ats_us: &[u64; 3], outage_us: u64, p: f64) -> Vec<NodeFaultRule> {
    // Node ids follow `faulted_trace`'s creation order: ping i = 2i,
    // reflector i = 2i + 1.
    vec![
        NodeFaultRule::crash_restart(
            1,
            Instant::from_micros(ats_us[0]),
            Duration::from_micros(outage_us),
        )
        .with_probability(p),
        NodeFaultRule::crash_restart(
            3,
            Instant::from_micros(ats_us[1]),
            Duration::from_micros(outage_us),
        )
        .with_probability(p),
        NodeFaultRule::partition(
            4,
            Instant::from_micros(ats_us[2]),
            Duration::from_micros(outage_us),
        )
        .with_probability(p),
    ]
}

proptest! {
    /// A [`NodeFaultPlan`]'s outcome is a function of `(seed, rule set)`
    /// only: inserting the same rules in any order — including
    /// probabilistic rules, whose draws are keyed by rule content — gives
    /// a byte-identical run.
    #[test]
    fn node_fault_plan_is_insertion_order_invariant(
        sim_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        at0_us in 1_000u64..30_000,
        at1_us in 1_000u64..30_000,
        at2_us in 1_000u64..30_000,
        outage_us in 500u64..20_000,
        p in 0.0f64..=1.0,
        rot in 0usize..3,
        rev in any::<bool>(),
    ) {
        let rules = fault_rules(&[at0_us, at1_us, at2_us], outage_us, p);
        let forward = {
            let mut plan = NodeFaultPlan::new(plan_seed);
            for r in &rules {
                plan.add_rule(r.clone());
            }
            faulted_trace(sim_seed, Some(&plan), None)
        };
        let permuted = {
            let mut reordered = rules.clone();
            reordered.rotate_left(rot);
            if rev {
                reordered.reverse();
            }
            let mut plan = NodeFaultPlan::new(plan_seed);
            for r in reordered {
                plan.add_rule(r);
            }
            faulted_trace(sim_seed, Some(&plan), None)
        };
        prop_assert_eq!(forward, permuted);
    }

    /// Faults off ⇒ byte-identical to no plan at all: an empty node-fault
    /// plan, a node-fault plan whose rules all have probability zero, and
    /// a packet fault plan whose only rule never fires must all leave the
    /// run untouched.
    #[test]
    fn faults_off_is_byte_identical_to_no_plan(
        sim_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        at0_us in 1_000u64..30_000,
        at1_us in 1_000u64..30_000,
        at2_us in 1_000u64..30_000,
        outage_us in 500u64..20_000,
    ) {
        let baseline = faulted_trace(sim_seed, None, None);

        let empty = NodeFaultPlan::new(plan_seed);
        prop_assert_eq!(&faulted_trace(sim_seed, Some(&empty), None), &baseline);

        let mut dormant = NodeFaultPlan::new(plan_seed);
        for r in fault_rules(&[at0_us, at1_us, at2_us], outage_us, 0.0) {
            dormant.add_rule(r);
        }
        prop_assert_eq!(&faulted_trace(sim_seed, Some(&dormant), None), &baseline);

        let no_drops = FaultPlan::new(plan_seed)
            .with_rule(FaultRule::drop(PacketClass::any(), 0.0));
        prop_assert_eq!(&faulted_trace(sim_seed, None, Some(no_drops)), &baseline);

        // And the engine's fault counters all stayed zero.
        let (_, _, restarts, rejected, sends, timers) = baseline;
        prop_assert_eq!((restarts, rejected, sends, timers), (0, 0, 0, 0));
    }
}
