//! Property-based tests for the strict-priority multi-queue link
//! scheduler (`link.rs`): packet conservation across per-class counters,
//! work conservation against a FIFO reference, and exact FIFO-equivalence
//! when every packet shares one class.

use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::Packet;
use acacia_simnet::prelude::*;
use acacia_simnet::sim::{Ctx, Node};
use acacia_simnet::time::serialization_time;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// One scripted transmission: (gap since the previous send, ToS byte,
/// application payload length).
type Step = (u64, u8, u32);

/// Emits a scripted mixed-class packet schedule out port 0.
struct MixSource {
    schedule: Vec<Step>,
    next: usize,
}

impl MixSource {
    fn new(schedule: Vec<Step>) -> MixSource {
        MixSource { schedule, next: 0 }
    }

    fn packet(step: &Step, now: Instant) -> Packet {
        let mut p = Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), 1),
            (Ipv4Addr::new(10, 0, 0, 2), 2),
            step.2,
        );
        p.tos = step.1;
        p.created = now;
        p
    }
}

impl Node for MixSource {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(step) = self.schedule.get(self.next).copied() else {
            return;
        };
        self.next += 1;
        ctx.send(0, MixSource::packet(&step, ctx.now()));
        if let Some(next) = self.schedule.get(self.next) {
            ctx.schedule_in(Duration::from_nanos(next.0), 0);
        }
    }
}

/// Records every arrival: (ToS, arrival instant).
#[derive(Default)]
struct ClassSink {
    seen: Vec<(u8, Instant)>,
    bytes: u64,
}

impl Node for ClassSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        self.bytes += pkt.wire_size() as u64;
        self.seen.push((pkt.tos, ctx.now()));
    }
}

/// Run a schedule over one link; returns (link stats, arrivals, bytes).
fn run_mix(
    schedule: &[Step],
    cfg: LinkConfig,
) -> (acacia_simnet::link::LinkStats, Vec<(u8, Instant)>, u64) {
    let mut sim = Simulator::new(1);
    let src = sim.add_node(Box::new(MixSource::new(schedule.to_vec())));
    let sink = sim.add_node(Box::new(ClassSink::default()));
    sim.connect_simplex((src, 0), (sink, 0), cfg);
    // First send happens after the first step's gap, like all the others.
    let first = Duration::from_nanos(schedule.first().map_or(0, |s| s.0));
    sim.schedule_timer(src, Instant::ZERO + first, 0);
    sim.run_until_idle();
    let stats = sim.link_stats((src, 0)).unwrap().clone();
    let s = sim.node_ref::<ClassSink>(sink);
    (stats, s.seen.clone(), s.bytes)
}

/// An arbitrary mixed-class schedule: gaps up to 2 ms, any ToS byte,
/// payloads 100–2000 bytes.
fn schedules() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0u64..2_000_000, any::<u8>(), 100u32..2_000), 1..80)
}

proptest! {
    /// Conservation: every offered packet is either delivered or counted
    /// in exactly one drop counter, and the per-class enqueue counters
    /// partition the transmitted packets.
    #[test]
    fn every_packet_delivered_or_counted_in_one_drop_counter(
        schedule in schedules(),
        rate in 1_000_000u64..50_000_000,
        loss in 0.0f64..0.3,
        queue in 4_000u64..60_000,
    ) {
        let cfg = LinkConfig::rate_limited(rate, Duration::from_millis(1))
            .with_loss(loss)
            .with_queue(queue);
        let (stats, seen, _) = run_mix(&schedule, cfg);
        let sent = schedule.len() as u64;
        prop_assert_eq!(stats.tx_packets, seen.len() as u64);
        prop_assert_eq!(seen.len() as u64 + stats.drops(), sent);
        // Per-class enqueues partition the committed packets…
        let class_enqueued: u64 = stats.classes.values().map(|c| c.enqueued).sum();
        prop_assert_eq!(class_enqueued, stats.tx_packets);
        // …and per-class queue drops partition the link's queue drops.
        let class_drops: u64 = stats.classes.values().map(|c| c.drops_queue).sum();
        prop_assert_eq!(class_drops, stats.drops_queue);
        // Every arrival's class was accounted on the stats side.
        for &(tos, _) in &seen {
            let c = stats.class(tos >> 2).expect("delivered class has stats");
            prop_assert!(c.enqueued > 0);
        }
    }

    /// Work conservation: with nothing dropped, the scheduler transmits
    /// exactly as many bytes for exactly as long as a single-class FIFO
    /// serving the same schedule — priority changes *who* waits, never
    /// how much work the link does.
    #[test]
    fn busy_time_matches_fifo_reference(
        schedule in schedules(),
        rate in 1_000_000u64..50_000_000,
    ) {
        let cfg = LinkConfig::rate_limited(rate, Duration::from_micros(500))
            .with_queue(u64::MAX);
        let fifo_schedule: Vec<Step> =
            schedule.iter().map(|&(gap, _, len)| (gap, 0, len)).collect();
        let (prio, prio_seen, prio_bytes) = run_mix(&schedule, cfg.clone());
        let (fifo, fifo_seen, fifo_bytes) = run_mix(&fifo_schedule, cfg);
        prop_assert_eq!(prio.busy, fifo.busy);
        prop_assert_eq!(prio.tx_packets, fifo.tx_packets);
        prop_assert_eq!(prio.tx_bytes, fifo.tx_bytes);
        prop_assert_eq!(prio_seen.len(), fifo_seen.len());
        prop_assert_eq!(prio_bytes, fifo_bytes);
        prop_assert_eq!(prio.drops(), 0);
    }

    /// Single-class degeneration: when every packet shares one class the
    /// scheduler IS the old FIFO — each arrival lands exactly where the
    /// analytic `start = max(send, prev_done)` recurrence puts it.
    #[test]
    fn single_class_is_byte_identical_to_fifo(
        schedule in prop::collection::vec((0u64..2_000_000, 100u32..2_000), 1..80),
        tos in any::<u8>(),
        rate in 1_000_000u64..50_000_000,
        delay_us in 0u64..20_000,
    ) {
        let delay = Duration::from_micros(delay_us);
        let cfg = LinkConfig::rate_limited(rate, delay).with_queue(u64::MAX);
        let steps: Vec<Step> =
            schedule.iter().map(|&(gap, len)| (gap, tos, len)).collect();
        let (stats, seen, _) = run_mix(&steps, cfg);
        prop_assert_eq!(seen.len(), steps.len());
        prop_assert_eq!(stats.drops(), 0);

        // The FIFO reference model, computed exactly.
        let mut t = Instant::ZERO;
        let mut done = Instant::ZERO;
        for (i, step) in steps.iter().enumerate() {
            t += Duration::from_nanos(step.0);
            let wire = MixSource::packet(step, t).wire_size() as u64;
            let start = t.max(done);
            done = start + serialization_time(wire, rate);
            prop_assert_eq!(
                seen[i].1,
                done + delay,
                "packet {} must arrive exactly when the FIFO model says",
                i
            );
        }
    }
}
