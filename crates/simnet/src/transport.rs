//! Minimal transport agents: an ICMP ping prober and a greedy window-based
//! ("iperf TCP"-like) flow with AIMD congestion control.
//!
//! These are deliberately simple — enough to reproduce the latency CDFs
//! (paper Figs. 3(c), 10(a)) and saturating-throughput curves (Figs. 3(d),
//! 8) without a full TCP implementation.

use crate::packet::{proto, Packet};
use crate::sim::{Ctx, Node, PortId};
use crate::time::{Duration, Instant};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Sends ICMP echo requests at a fixed interval and records RTTs of the
/// replies (a [`Reflector`](crate::traffic::Reflector) or similar must sit
/// at the far end).
pub struct PingAgent {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    interval: Duration,
    count: u64,
    payload: u32,
    tos: u8,
    sent: u64,
    inflight: BTreeMap<u64, Instant>,
    rtts: Vec<Duration>,
}

const TOKEN_PING: u64 = 1;

impl PingAgent {
    /// `count` echo requests of `payload` bytes, one every `interval`.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, interval: Duration, count: u64) -> PingAgent {
        PingAgent {
            src,
            dst,
            interval,
            count,
            payload: 56,
            tos: 0,
            sent: 0,
            inflight: BTreeMap::new(),
            rtts: Vec::new(),
        }
    }

    /// Builder-style: mark probes with a TOS byte (used for QCI mapping).
    pub fn with_tos(mut self, tos: u8) -> PingAgent {
        self.tos = tos;
        self
    }

    /// Timer token to arm via `sim.schedule_timer(node, start, PingAgent::KICKOFF)`.
    pub const KICKOFF: u64 = TOKEN_PING;

    /// Round-trip times observed so far.
    pub fn rtts(&self) -> &[Duration] {
        &self.rtts
    }

    /// Echo requests sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Requests with no reply (so far).
    pub fn lost(&self) -> u64 {
        self.inflight.len() as u64
    }
}

impl Node for PingAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        if pkt.protocol != proto::ICMP || pkt.dst != self.src {
            return;
        }
        if let Some(sent_at) = self.inflight.remove(&pkt.id) {
            self.rtts.push(ctx.now() - sent_at);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_PING || self.sent >= self.count {
            return;
        }
        let id = ctx.fresh_packet_id();
        let pkt = Packet::icmp(self.src, self.dst, self.payload)
            .with_tos(self.tos)
            .with_id(id)
            .with_created(ctx.now());
        self.inflight.insert(id, ctx.now());
        self.sent += 1;
        ctx.send(0, pkt);
        if self.sent < self.count {
            ctx.schedule_in(self.interval, TOKEN_PING);
        }
    }
}

/// Greedy AIMD flow sender: keeps a congestion window of MSS-sized segments
/// outstanding toward a [`GreedyReceiver`], halving on timeout-detected loss
/// and growing additively otherwise. Approximates long-lived TCP throughput.
pub struct GreedyFlow {
    src: (Ipv4Addr, u16),
    dst: (Ipv4Addr, u16),
    mss: u32,
    cwnd: f64,
    ssthresh: f64,
    rto: Duration,
    start: Instant,
    stop: Instant,
    /// seq -> send time of outstanding segments.
    outstanding: BTreeMap<u64, Instant>,
    next_seq: u64,
    /// Time of the last multiplicative decrease (one cut per RTT-ish).
    last_cut: Instant,
    /// Smoothed RTT estimate.
    srtt: Option<Duration>,
    /// Total segments sent (including retransmit-equivalents).
    pub segments_sent: u64,
    /// Loss events detected.
    pub loss_events: u64,
}

const TOKEN_TICK: u64 = 2;

impl GreedyFlow {
    /// New flow with a 1448-byte MSS, 2-segment initial window.
    pub fn new(
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        start: Instant,
        stop: Instant,
    ) -> GreedyFlow {
        GreedyFlow {
            src,
            dst,
            mss: 1448,
            cwnd: 2.0,
            ssthresh: 64.0,
            rto: Duration::from_millis(200),
            start,
            stop,
            outstanding: BTreeMap::new(),
            next_seq: 0,
            last_cut: Instant::ZERO,
            srtt: None,
            segments_sent: 0,
            loss_events: 0,
        }
    }

    /// Timer token to arm via `sim.schedule_timer(node, start, GreedyFlow::KICKOFF)`.
    pub const KICKOFF: u64 = TOKEN_TICK;

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn fill_window(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now < self.start || now >= self.stop {
            return;
        }
        while (self.outstanding.len() as f64) < self.cwnd {
            let seq = self.next_seq;
            self.next_seq += 1;
            let pkt = Packet::tcp(self.src, self.dst, self.mss)
                .with_id(seq)
                .with_created(now);
            self.outstanding.insert(seq, now);
            self.segments_sent += 1;
            ctx.send(0, pkt);
        }
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let Some(sent_at) = self.outstanding.remove(&seq) else {
            return;
        };
        let rtt = ctx.now() - sent_at;
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(s) => Duration::from_nanos((s.nanos() * 7 + rtt.nanos()) / 8),
        });
        // RFC-ish: RTO = srtt * 2 clamped to a sane floor.
        if let Some(s) = self.srtt {
            self.rto = Duration::from_nanos((s.nanos() * 2).max(Duration::from_millis(20).nanos()));
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0; // slow start
        } else {
            self.cwnd += 1.0 / self.cwnd; // congestion avoidance
        }
        self.fill_window(ctx);
    }

    fn check_losses(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let lost: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, &sent)| now.saturating_since(sent) > self.rto)
            .map(|(&seq, _)| seq)
            .collect();
        if !lost.is_empty() {
            // At most one multiplicative decrease per RTO interval.
            if now.saturating_since(self.last_cut) > self.rto {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.last_cut = now;
                self.loss_events += 1;
            }
            for seq in lost {
                self.outstanding.remove(&seq);
            }
        }
        self.fill_window(ctx);
    }
}

impl Node for GreedyFlow {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        if pkt.protocol == proto::TCP && pkt.dst == self.src.0 {
            self.on_ack(ctx, pkt.id);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        let now = ctx.now();
        if now >= self.stop {
            return;
        }
        if now < self.start {
            ctx.schedule_at(self.start, TOKEN_TICK);
            return;
        }
        self.check_losses(ctx);
        ctx.schedule_in(Duration::from_millis(10), TOKEN_TICK);
    }
}

/// Receiver side of [`GreedyFlow`]: acks each segment and accumulates a
/// per-second goodput series.
pub struct GreedyReceiver {
    addr: Ipv4Addr,
    /// Application bytes received, bucketed per second of arrival.
    buckets: Vec<u64>,
    /// Total application bytes received.
    pub bytes: u64,
}

impl GreedyReceiver {
    /// Receiver listening on `addr`.
    pub fn new(addr: Ipv4Addr) -> GreedyReceiver {
        GreedyReceiver {
            addr,
            buckets: Vec::new(),
            bytes: 0,
        }
    }

    /// Goodput per one-second bucket, in bits per second.
    pub fn throughput_series_bps(&self) -> Vec<f64> {
        self.buckets.iter().map(|&b| b as f64 * 8.0).collect()
    }

    /// Mean goodput over the first `secs` seconds.
    pub fn mean_bps(&self, secs: usize) -> f64 {
        if secs == 0 {
            return 0.0;
        }
        let total: u64 = self.buckets.iter().take(secs).sum();
        total as f64 * 8.0 / secs as f64
    }
}

impl Node for GreedyReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        if pkt.protocol != proto::TCP || pkt.dst != self.addr {
            return;
        }
        let sec = (ctx.now().nanos() / 1_000_000_000) as usize;
        if self.buckets.len() <= sec {
            self.buckets.resize(sec + 1, 0);
        }
        self.buckets[sec] += pkt.app_len as u64;
        self.bytes += pkt.app_len as u64;
        // Pure ack: 0 app bytes, reversed endpoints, echoes the seq in `id`.
        let ack = Packet::tcp((pkt.dst, pkt.dst_port), (pkt.src, pkt.src_port), 0)
            .with_id(pkt.id)
            .with_created(ctx.now());
        ctx.send(port, ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;
    use crate::traffic::Reflector;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn ping_measures_round_trip() {
        let mut sim = Simulator::new(1);
        let agent = sim.add_node(Box::new(PingAgent::new(
            ip(1),
            ip(2),
            Duration::from_millis(100),
            10,
        )));
        let refl = sim.add_node(Box::new(Reflector::new()));
        sim.connect(
            (agent, 0),
            (refl, 0),
            LinkConfig::delay_only(Duration::from_millis(4)),
        );
        sim.schedule_timer(agent, Instant::ZERO, PingAgent::KICKOFF);
        sim.run_until_idle();
        let a = sim.node_ref::<PingAgent>(agent);
        assert_eq!(a.sent(), 10);
        assert_eq!(a.rtts().len(), 10);
        assert_eq!(a.lost(), 0);
        for rtt in a.rtts() {
            assert_eq!(*rtt, Duration::from_millis(8));
        }
    }

    #[test]
    fn ping_counts_losses() {
        let mut sim = Simulator::new(1);
        let agent = sim.add_node(Box::new(PingAgent::new(
            ip(1),
            ip(2),
            Duration::from_millis(10),
            50,
        )));
        let refl = sim.add_node(Box::new(Reflector::new()));
        sim.connect(
            (agent, 0),
            (refl, 0),
            LinkConfig::delay_only(Duration::from_millis(1)).with_loss(0.5),
        );
        sim.schedule_timer(agent, Instant::ZERO, PingAgent::KICKOFF);
        sim.run_until_idle();
        let a = sim.node_ref::<PingAgent>(agent);
        assert_eq!(a.sent(), 50);
        assert!(a.lost() > 5, "expected substantial loss, got {}", a.lost());
        assert_eq!(a.rtts().len() as u64 + a.lost(), 50);
    }

    /// Build a sender -> bottleneck-link -> receiver flow and run it.
    fn run_flow(rate_bps: u64, secs: u64) -> f64 {
        let mut sim = Simulator::new(2);
        let tx = sim.add_node(Box::new(GreedyFlow::new(
            (ip(1), 5001),
            (ip(2), 5001),
            Instant::ZERO,
            Instant::from_secs(secs),
        )));
        let rx = sim.add_node(Box::new(GreedyReceiver::new(ip(2))));
        let fwd =
            LinkConfig::rate_limited(rate_bps, Duration::from_millis(5)).with_queue(64 * 1024);
        let back = LinkConfig::delay_only(Duration::from_millis(5));
        sim.connect_asymmetric((tx, 0), (rx, 0), fwd, back);
        sim.schedule_timer(tx, Instant::ZERO, GreedyFlow::KICKOFF);
        sim.run_until(Instant::from_secs(secs + 1));
        sim.node_ref::<GreedyReceiver>(rx).mean_bps(secs as usize)
    }

    #[test]
    fn greedy_flow_saturates_bottleneck() {
        let goodput = run_flow(50_000_000, 10);
        // Goodput should reach >70% of the 50 Mbps bottleneck (headers and
        // AIMD sawtooth eat some).
        assert!(
            goodput > 35_000_000.0 && goodput < 50_000_000.0,
            "goodput was {goodput}"
        );
    }

    #[test]
    fn greedy_flow_scales_with_bottleneck() {
        let slow = run_flow(10_000_000, 10);
        let fast = run_flow(100_000_000, 10);
        assert!(
            fast > 3.0 * slow,
            "fast {fast} should be much more than slow {slow}"
        );
    }
}
