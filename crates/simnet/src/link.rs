//! Links: serialization, propagation, queueing and fault injection.
//!
//! A [`Link`] is a unidirectional channel with
//!
//! * a transmission **rate** (bits/s; `0` means infinitely fast),
//! * a **propagation delay**,
//! * per-class drop-tail **queues** bounded in bytes (`None` = unbounded),
//! * optional uniform **jitter** added to each delivery, and
//! * an optional i.i.d. **loss** probability.
//!
//! # Strict-priority scheduling
//!
//! Packets are classified by DSCP — the top six bits of the IP ToS byte
//! (`tos >> 2`), which is what [`Qci::tos`] in the LTE layer produces.
//! Higher DSCP is strictly higher priority. Each class owns its own
//! byte-bounded drop-tail queue; within a class service is FIFO.
//!
//! Serialization is modelled analytically with per-class committed
//! intervals: a packet of class `c` handed to the link at time `t` begins
//! transmitting at
//!
//! ```text
//! start = max(t, reserved(c), active())
//! ```
//!
//! where `reserved(c)` is the latest committed completion over all classes
//! with priority **≥ c** (a new packet can never overtake equal- or
//! higher-priority traffic), and `active()` is the completion time of
//! whichever packet is on the wire at `t` (a transmission in progress is
//! never preempted — preemption happens at dequeue time only). Queued
//! lower-priority packets that have *not* yet reached the wire are
//! overtaken. The bytes standing between `t` and the class's committed
//! horizon are the backlog used by that class's drop-tail check; with all
//! traffic in a single class this degenerates exactly to the old
//! single-FIFO `busy_until` watermark, reproducing the bufferbloat latency
//! curves of the paper's Fig. 3(g)/10(b) byte-for-byte.
//!
//! One approximation keeps the model enqueue-time-analytic (and therefore
//! deterministic and allocation-light): completion times already promised
//! to lower-priority packets are never revised when higher-priority
//! traffic arrives later, so under sustained cross-class load committed
//! intervals may overlap and low-priority delay is *understated* relative
//! to a cycle-accurate scheduler. See DESIGN.md for the ledger entry.
//!
//! [`Qci::tos`]: ../../acacia_lte/qci/struct.Qci.html

use crate::fault::{FaultPlan, FaultVerdict};
use crate::packet::Packet;
use crate::sim::{NodeId, PortId};
use crate::time::{serialization_time, Duration, Instant};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};

/// Static configuration of a link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Transmission rate in bits per second; `0` disables serialization
    /// delay entirely (an "infinitely fast" link).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Drop-tail queue bound in bytes, applied to each priority class's
    /// queue independently (`None` = unbounded).
    pub queue_bytes: Option<u64>,
    /// Uniform random extra delay in `[0, jitter)` applied per packet.
    pub jitter: Duration,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkConfig {
    /// A link with only a fixed propagation delay (no rate limit, no loss).
    pub fn delay_only(delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps: 0,
            delay,
            queue_bytes: None,
            jitter: Duration::ZERO,
            loss: 0.0,
        }
    }

    /// A rate-limited link with a delay and a default 256 KiB queue.
    pub fn rate_limited(rate_bps: u64, delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps,
            delay,
            queue_bytes: Some(256 * 1024),
            jitter: Duration::ZERO,
            loss: 0.0,
        }
    }

    /// Builder-style: set the queue bound.
    pub fn with_queue(mut self, bytes: u64) -> LinkConfig {
        self.queue_bytes = Some(bytes);
        self
    }

    /// Builder-style: set jitter.
    pub fn with_jitter(mut self, jitter: Duration) -> LinkConfig {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkConfig {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }
}

/// Per-priority-class counters exported per link.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Packets accepted into this class's queue.
    pub enqueued: u64,
    /// Wire bytes accepted into this class's queue.
    pub enqueued_bytes: u64,
    /// Packets dropped because this class's queue bound was exceeded.
    pub drops_queue: u64,
    /// Bytes committed but not yet drained, as of the last offer to the
    /// link (backlogs are settled lazily, like the queues themselves).
    pub backlog_bytes: u64,
}

/// Counters exported per link.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets accepted and (eventually) delivered.
    pub tx_packets: u64,
    /// Wire bytes accepted.
    pub tx_bytes: u64,
    /// Packets dropped because the queue bound was exceeded.
    pub drops_queue: u64,
    /// Packets dropped by random loss.
    pub drops_loss: u64,
    /// Packets dropped by an injected fault rule.
    pub drops_injected: u64,
    /// Extra copies delivered by an injected duplicate fault.
    pub duplicates_injected: u64,
    /// Packets held back by an injected reorder fault.
    pub reorders_injected: u64,
    /// Packets delayed by an injected delay fault.
    pub delays_injected: u64,
    /// Total transmitter busy time committed (sum of serialization times
    /// of accepted packets). A scheduler may reorder service but never
    /// invents or destroys work, so this is scheduler-invariant.
    pub busy: Duration,
    /// Per-DSCP-class counters, keyed by `tos >> 2`.
    pub classes: BTreeMap<u8, ClassStats>,
}

impl LinkStats {
    /// All drops combined (congestion + random loss + injected).
    pub fn drops(&self) -> u64 {
        self.drops_queue + self.drops_loss + self.drops_injected
    }

    /// All injected-fault firings combined.
    pub fn faults_injected(&self) -> u64 {
        self.drops_injected
            + self.duplicates_injected
            + self.reorders_injected
            + self.delays_injected
    }

    /// Counters for one DSCP class (`None` if the class was never offered
    /// a packet).
    pub fn class(&self, dscp: u8) -> Option<&ClassStats> {
        self.classes.get(&dscp)
    }
}

/// Delivery instants produced by one [`Link::transmit`] call.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Deliveries {
    /// When the (possibly fault-delayed) packet arrives, if not dropped.
    pub primary: Option<Instant>,
    /// When an injected duplicate copy arrives, if any.
    pub duplicate: Option<Instant>,
}

/// One priority class's committed transmissions: `(start, done, wire
/// bytes)`, FIFO within the class, purged lazily once serialization
/// completes. `backlog` is the byte sum of the queue, maintained
/// incrementally so the drop-tail check is O(1).
#[derive(Debug, Default)]
struct ClassQueue {
    q: VecDeque<(Instant, Instant, u64)>,
    backlog: u64,
}

/// A unidirectional link between two node ports.
pub struct Link {
    cfg: LinkConfig,
    to: (NodeId, PortId),
    /// Committed transmissions per DSCP class, keyed by `tos >> 2`.
    queues: BTreeMap<u8, ClassQueue>,
    stats: LinkStats,
    /// Private RNG stream for loss and jitter draws, seeded from the
    /// master seed and the link's source endpoint. Draw order therefore
    /// depends only on the offered-packet sequence, never on how other
    /// links or shards interleave.
    rng: ChaCha8Rng,
    /// Optional injected-fault schedule with its own RNG stream.
    fault: Option<FaultPlan>,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, to: (NodeId, PortId), rng_seed: u64) -> Link {
        Link {
            cfg,
            to,
            queues: BTreeMap::new(),
            stats: LinkStats::default(),
            rng: ChaCha8Rng::seed_from_u64(rng_seed),
            fault: None,
        }
    }

    /// Destination `(node, port)` of this link.
    pub(crate) fn to(&self) -> (NodeId, PortId) {
        self.to
    }

    /// Configured propagation delay — the floor on every delivery this
    /// link can produce (serialization, jitter and injected-fault extras
    /// only add to it), which is what conservative lookahead relies on.
    pub(crate) fn delay(&self) -> Duration {
        self.cfg.delay
    }

    /// Attach (or replace) the fault plan.
    pub(crate) fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Offer `pkt` to the link at time `now`.
    ///
    /// Returns the delivery instant(s): `primary` is `None` when the packet
    /// was dropped (queue overflow, random loss, or an injected drop);
    /// `duplicate` is `Some` when an injected fault delivers a second copy.
    pub(crate) fn transmit(&mut self, now: Instant, pkt: &Packet) -> Deliveries {
        let wire_bytes = pkt.wire_size();
        let class = pkt.tos >> 2;
        // Purge packets whose serialization completed.
        for (dscp, cq) in self.queues.iter_mut() {
            while let Some(&(_, done, bytes)) = cq.q.front() {
                if done <= now {
                    cq.q.pop_front();
                    cq.backlog -= bytes;
                } else {
                    break;
                }
            }
            if let Some(cs) = self.stats.classes.get_mut(dscp) {
                cs.backlog_bytes = cq.backlog;
            }
        }

        // Injected faults act at the link entrance, before the channel's
        // own loss/queue model, and draw from the plan's private RNG so the
        // global stream is untouched when no plan is attached.
        let verdict = match &mut self.fault {
            Some(plan) => plan.apply(now, pkt),
            None => FaultVerdict::Pass,
        };
        let mut extra = Duration::ZERO;
        let mut dup_extra = None;
        match verdict {
            FaultVerdict::Pass => {}
            FaultVerdict::Drop => {
                self.stats.drops_injected += 1;
                return Deliveries::default();
            }
            FaultVerdict::Duplicate { extra: d } => {
                self.stats.duplicates_injected += 1;
                dup_extra = Some(d);
            }
            FaultVerdict::Reorder { extra: e } => {
                self.stats.reorders_injected += 1;
                extra = e;
            }
            FaultVerdict::Delay { extra: e } => {
                self.stats.delays_injected += 1;
                extra = e;
            }
        }

        if self.cfg.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.loss {
            self.stats.drops_loss += 1;
            return Deliveries::default();
        }

        if let Some(limit) = self.cfg.queue_bytes {
            let backlog = self.queues.get(&class).map_or(0, |cq| cq.backlog);
            if backlog + wire_bytes as u64 > limit {
                self.stats.drops_queue += 1;
                let cs = self.stats.classes.entry(class).or_default();
                cs.drops_queue += 1;
                return Deliveries::default();
            }
        }

        // Strict priority: wait for everything already committed at equal
        // or higher priority, and for the transmission (of any class)
        // occupying the wire right now — but overtake queued lower-class
        // packets that have not started.
        let reserved = self
            .queues
            .range(class..)
            .filter_map(|(_, cq)| cq.q.back().map(|&(_, done, _)| done))
            .max()
            .unwrap_or(Instant::ZERO);
        let active = self
            .queues
            .values()
            .filter_map(|cq| cq.q.front())
            .filter(|&&(start, _, _)| start <= now)
            .map(|&(_, done, _)| done)
            .max()
            .unwrap_or(Instant::ZERO);
        let start = now.max(reserved).max(active);
        let tx = serialization_time(wire_bytes as u64, self.cfg.rate_bps);
        let done = start + tx;
        let cq = self.queues.entry(class).or_default();
        cq.q.push_back((start, done, wire_bytes as u64));
        cq.backlog += wire_bytes as u64;

        let jitter = if self.cfg.jitter > Duration::ZERO {
            Duration::from_nanos(self.rng.gen_range(0..self.cfg.jitter.nanos().max(1)))
        } else {
            Duration::ZERO
        };

        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire_bytes as u64;
        self.stats.busy += tx;
        let cs = self.stats.classes.entry(class).or_default();
        cs.enqueued += 1;
        cs.enqueued_bytes += wire_bytes as u64;
        cs.backlog_bytes = cq.backlog;
        let arrival = done + self.cfg.delay + jitter + extra;
        Deliveries {
            primary: Some(arrival),
            duplicate: dup_extra.map(|d| arrival + d),
        }
    }

    /// Link statistics so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Mutate the configuration in place (takes effect for future packets).
    pub fn reconfigure(&mut self, f: impl FnOnce(&mut LinkConfig)) {
        f(&mut self.cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultRule, PacketClass};
    use std::net::Ipv4Addr;

    /// A packet whose wire size is exactly `wire_bytes` (UDP: 28 B of
    /// headers + virtual payload).
    fn pkt(wire_bytes: u32) -> Packet {
        Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), 1),
            (Ipv4Addr::new(10, 0, 0, 2), 2),
            wire_bytes - 28,
        )
    }

    /// Same, with an explicit ToS byte (class = tos >> 2).
    fn pkt_tos(wire_bytes: u32, tos: u8) -> Packet {
        pkt(wire_bytes).with_tos(tos)
    }

    #[test]
    fn infinite_rate_is_pure_delay() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(7)), (1, 0), 99);
        let at = link
            .transmit(Instant::from_millis(1), &pkt(1500))
            .primary
            .unwrap();
        assert_eq!(at, Instant::from_millis(8));
        assert_eq!(link.to(), (1, 0));
    }

    #[test]
    fn serialization_accumulates() {
        // 1 Mbps, 1250-byte packets => 10 ms each.
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        let a1 = link.transmit(Instant::ZERO, &pkt(1250)).primary;
        let a2 = link.transmit(Instant::ZERO, &pkt(1250)).primary;
        assert_eq!(a1, Some(Instant::from_millis(10)));
        assert_eq!(a2, Some(Instant::from_millis(20)));
        assert_eq!(link.stats().busy, Duration::from_millis(20));
    }

    #[test]
    fn drop_tail_queue_bounds_backlog() {
        // Queue bound fits exactly two 1000-byte packets beyond nothing:
        // third concurrent offer must drop.
        let cfg = LinkConfig::rate_limited(8_000, Duration::ZERO).with_queue(2_000);
        let mut link = Link::new(cfg, (0, 0), 99);
        assert!(link.transmit(Instant::ZERO, &pkt(1000)).primary.is_some());
        assert!(link.transmit(Instant::ZERO, &pkt(1000)).primary.is_some());
        assert!(link.transmit(Instant::ZERO, &pkt(1000)).primary.is_none());
        assert_eq!(link.stats().drops_queue, 1);
        // After the first packet drains (1 s at 8 kbps), space frees up.
        assert!(link
            .transmit(Instant::from_secs(1), &pkt(1000))
            .primary
            .is_some());
    }

    #[test]
    fn loss_probability_one_drops_everything() {
        let cfg = LinkConfig::delay_only(Duration::ZERO).with_loss(1.0);
        let mut link = Link::new(cfg, (0, 0), 99);
        for _ in 0..10 {
            assert!(link.transmit(Instant::ZERO, &pkt(100)).primary.is_none());
        }
        assert_eq!(link.stats().drops_loss, 10);
        assert_eq!(link.stats().tx_packets, 0);
    }

    #[test]
    fn jitter_stays_in_range() {
        let cfg =
            LinkConfig::delay_only(Duration::from_millis(5)).with_jitter(Duration::from_millis(2));
        let mut link = Link::new(cfg, (0, 0), 99);
        for _ in 0..100 {
            let at = link.transmit(Instant::ZERO, &pkt(100)).primary.unwrap();
            assert!(at >= Instant::from_millis(5));
            assert!(at < Instant::from_millis(7));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_outside_unit_interval_panics() {
        let _ = LinkConfig::delay_only(Duration::ZERO).with_loss(1.5);
    }

    #[test]
    fn injected_drop_is_counted_separately_from_loss() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::ZERO), (0, 0), 99);
        link.set_fault_plan(Some(
            FaultPlan::new(5).with_rule(FaultRule::drop(PacketClass::any(), 1.0).on_nth(2)),
        ));
        assert!(link.transmit(Instant::ZERO, &pkt(100)).primary.is_some());
        assert!(link.transmit(Instant::ZERO, &pkt(100)).primary.is_none());
        assert!(link.transmit(Instant::ZERO, &pkt(100)).primary.is_some());
        assert_eq!(link.stats().drops_injected, 1);
        assert_eq!(link.stats().drops_loss, 0);
        assert_eq!(link.stats().drops(), 1);
        assert_eq!(link.stats().tx_packets, 2);
    }

    #[test]
    fn injected_duplicate_delivers_second_copy_later() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(3)), (0, 0), 99);
        link.set_fault_plan(Some(
            FaultPlan::new(5).with_rule(
                FaultRule::duplicate(PacketClass::any(), 1.0)
                    .with_extra_delay(Duration::from_millis(4)),
            ),
        ));
        let d = link.transmit(Instant::ZERO, &pkt(100));
        assert_eq!(d.primary, Some(Instant::from_millis(3)));
        assert_eq!(d.duplicate, Some(Instant::from_millis(7)));
        assert_eq!(link.stats().duplicates_injected, 1);
        // The primary copy is the only one counted as a normal tx.
        assert_eq!(link.stats().tx_packets, 1);
    }

    #[test]
    fn injected_reorder_holds_the_packet_back() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(1)), (0, 0), 99);
        link.set_fault_plan(Some(FaultPlan::new(5).with_rule(
            FaultRule::reorder(PacketClass::any(), 1.0, Duration::from_millis(10)).on_nth(1),
        )));
        let first = link.transmit(Instant::ZERO, &pkt(100)).primary.unwrap();
        let second = link.transmit(Instant::ZERO, &pkt(100)).primary.unwrap();
        assert_eq!(first, Instant::from_millis(11));
        assert_eq!(second, Instant::from_millis(1));
        assert!(second < first, "later offer must overtake the held packet");
        assert_eq!(link.stats().reorders_injected, 1);
    }

    #[test]
    fn faults_disabled_leave_the_global_rng_stream_untouched() {
        // Same channel randomness (jitter) with and without an (empty)
        // fault plan attached: the arrival times must be identical because
        // the plan draws from its own stream.
        let cfg =
            LinkConfig::delay_only(Duration::from_millis(5)).with_jitter(Duration::from_millis(2));
        let run = |plan: Option<FaultPlan>| {
            let mut link = Link::new(cfg.clone(), (0, 0), 99);
            link.set_fault_plan(plan);
            (0..32)
                .map(|_| link.transmit(Instant::ZERO, &pkt(100)).primary)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(FaultPlan::new(123))));
    }

    #[test]
    fn high_class_overtakes_queued_low_class() {
        // 1 Mbps, 1250-byte packets => 10 ms each. Three best-effort
        // packets committed at t=0 occupy [0,10], [10,20], [20,30]. A
        // high-priority packet offered at t=5 must wait only for the
        // transmission in progress ([0,10]) and go next.
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        for _ in 0..3 {
            link.transmit(Instant::ZERO, &pkt_tos(1250, 4));
        }
        let hi = link
            .transmit(Instant::from_millis(5), &pkt_tos(1250, 28))
            .primary
            .unwrap();
        assert_eq!(hi, Instant::from_millis(20));
    }

    #[test]
    fn equal_class_never_overtakes() {
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        for _ in 0..3 {
            link.transmit(Instant::ZERO, &pkt_tos(1250, 28));
        }
        let same = link
            .transmit(Instant::from_millis(5), &pkt_tos(1250, 28))
            .primary
            .unwrap();
        assert_eq!(same, Instant::from_millis(40));
    }

    #[test]
    fn low_class_waits_for_all_higher_commitments() {
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        // High-priority committed [0,10], [10,20].
        link.transmit(Instant::ZERO, &pkt_tos(1250, 28));
        link.transmit(Instant::ZERO, &pkt_tos(1250, 28));
        // Best effort offered at t=5 starts only at 20.
        let lo = link
            .transmit(Instant::from_millis(5), &pkt_tos(1250, 4))
            .primary
            .unwrap();
        assert_eq!(lo, Instant::from_millis(30));
    }

    #[test]
    fn active_transmission_is_never_preempted() {
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        // Best-effort transmission in progress over [0,10].
        link.transmit(Instant::ZERO, &pkt_tos(1250, 4));
        // Highest priority offered mid-serialization waits for the wire.
        let hi = link
            .transmit(Instant::from_millis(3), &pkt_tos(1250, 252))
            .primary
            .unwrap();
        assert_eq!(hi, Instant::from_millis(20));
    }

    #[test]
    fn queue_bounds_apply_per_class() {
        // Bound fits one 1000-byte packet per class: a second best-effort
        // offer drops, but a high-priority offer still gets in.
        let cfg = LinkConfig::rate_limited(8_000, Duration::ZERO).with_queue(1_000);
        let mut link = Link::new(cfg, (0, 0), 99);
        assert!(link
            .transmit(Instant::ZERO, &pkt_tos(1000, 4))
            .primary
            .is_some());
        assert!(link
            .transmit(Instant::ZERO, &pkt_tos(1000, 4))
            .primary
            .is_none());
        assert!(link
            .transmit(Instant::ZERO, &pkt_tos(1000, 28))
            .primary
            .is_some());
        let stats = link.stats();
        assert_eq!(stats.drops_queue, 1);
        assert_eq!(stats.class(1).unwrap().drops_queue, 1);
        assert_eq!(stats.class(1).unwrap().enqueued, 1);
        assert_eq!(stats.class(7).unwrap().enqueued, 1);
        assert_eq!(stats.class(7).unwrap().drops_queue, 0);
    }

    #[test]
    fn per_class_counters_track_bytes_and_backlog() {
        let mut link = Link::new(
            LinkConfig::rate_limited(1_000_000, Duration::ZERO),
            (0, 0),
            99,
        );
        link.transmit(Instant::ZERO, &pkt_tos(1250, 4));
        link.transmit(Instant::ZERO, &pkt_tos(1250, 4));
        let cs = *link.stats().class(1).unwrap();
        assert_eq!(cs.enqueued, 2);
        assert_eq!(cs.enqueued_bytes, 2_500);
        assert_eq!(cs.backlog_bytes, 2_500);
        // Both drain by t=20ms; the next offer settles the backlog.
        link.transmit(Instant::from_millis(20), &pkt_tos(1250, 4));
        assert_eq!(link.stats().class(1).unwrap().backlog_bytes, 1_250);
    }
}
