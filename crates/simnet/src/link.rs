//! Links: serialization, propagation, queueing and fault injection.
//!
//! A [`Link`] is a unidirectional channel with
//!
//! * a transmission **rate** (bits/s; `0` means infinitely fast),
//! * a **propagation delay**,
//! * a drop-tail **queue** bounded in bytes (`None` = unbounded),
//! * optional uniform **jitter** added to each delivery, and
//! * an optional i.i.d. **loss** probability.
//!
//! Serialization is modelled analytically with a `busy_until` watermark: a
//! packet handed to the link at time `t` begins transmitting at
//! `max(t, busy_until)` and occupies the transmitter for its serialization
//! time. The bytes standing between `t` and `busy_until` are the queue
//! backlog used by the drop-tail check — this reproduces the bufferbloat
//! latency curves of the paper's Fig. 3(g)/10(b) exactly.

use crate::fault::{FaultPlan, FaultVerdict};
use crate::packet::Packet;
use crate::sim::{NodeId, PortId};
use crate::time::{serialization_time, Duration, Instant};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Static configuration of a link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Transmission rate in bits per second; `0` disables serialization
    /// delay entirely (an "infinitely fast" link).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Drop-tail queue bound in bytes (`None` = unbounded).
    pub queue_bytes: Option<u64>,
    /// Uniform random extra delay in `[0, jitter)` applied per packet.
    pub jitter: Duration,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkConfig {
    /// A link with only a fixed propagation delay (no rate limit, no loss).
    pub fn delay_only(delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps: 0,
            delay,
            queue_bytes: None,
            jitter: Duration::ZERO,
            loss: 0.0,
        }
    }

    /// A rate-limited link with a delay and a default 256 KiB queue.
    pub fn rate_limited(rate_bps: u64, delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps,
            delay,
            queue_bytes: Some(256 * 1024),
            jitter: Duration::ZERO,
            loss: 0.0,
        }
    }

    /// Builder-style: set the queue bound.
    pub fn with_queue(mut self, bytes: u64) -> LinkConfig {
        self.queue_bytes = Some(bytes);
        self
    }

    /// Builder-style: set jitter.
    pub fn with_jitter(mut self, jitter: Duration) -> LinkConfig {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkConfig {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }
}

/// Counters exported per link.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets accepted and (eventually) delivered.
    pub tx_packets: u64,
    /// Wire bytes accepted.
    pub tx_bytes: u64,
    /// Packets dropped because the queue bound was exceeded.
    pub drops_queue: u64,
    /// Packets dropped by random loss.
    pub drops_loss: u64,
    /// Packets dropped by an injected fault rule.
    pub drops_injected: u64,
    /// Extra copies delivered by an injected duplicate fault.
    pub duplicates_injected: u64,
    /// Packets held back by an injected reorder fault.
    pub reorders_injected: u64,
    /// Packets delayed by an injected delay fault.
    pub delays_injected: u64,
}

impl LinkStats {
    /// All drops combined (congestion + random loss + injected).
    pub fn drops(&self) -> u64 {
        self.drops_queue + self.drops_loss + self.drops_injected
    }

    /// All injected-fault firings combined.
    pub fn faults_injected(&self) -> u64 {
        self.drops_injected
            + self.duplicates_injected
            + self.reorders_injected
            + self.delays_injected
    }
}

/// Delivery instants produced by one [`Link::transmit`] call.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Deliveries {
    /// When the (possibly fault-delayed) packet arrives, if not dropped.
    pub primary: Option<Instant>,
    /// When an injected duplicate copy arrives, if any.
    pub duplicate: Option<Instant>,
}

/// A unidirectional link between two node ports.
pub struct Link {
    cfg: LinkConfig,
    to: (NodeId, PortId),
    busy_until: Instant,
    /// Packets currently queued or in transmission: (serialization-done
    /// time, wire bytes). Purged lazily.
    in_flight: VecDeque<(Instant, u64)>,
    stats: LinkStats,
    /// Optional injected-fault schedule with its own RNG stream.
    fault: Option<FaultPlan>,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, to: (NodeId, PortId)) -> Link {
        Link {
            cfg,
            to,
            busy_until: Instant::ZERO,
            in_flight: VecDeque::new(),
            stats: LinkStats::default(),
            fault: None,
        }
    }

    /// Destination `(node, port)` of this link.
    pub(crate) fn to(&self) -> (NodeId, PortId) {
        self.to
    }

    /// Attach (or replace) the fault plan.
    pub(crate) fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Offer `pkt` to the link at time `now`.
    ///
    /// Returns the delivery instant(s): `primary` is `None` when the packet
    /// was dropped (queue overflow, random loss, or an injected drop);
    /// `duplicate` is `Some` when an injected fault delivers a second copy.
    pub(crate) fn transmit(
        &mut self,
        now: Instant,
        pkt: &Packet,
        rng: &mut ChaCha8Rng,
    ) -> Deliveries {
        let wire_bytes = pkt.wire_size();
        // Purge packets whose serialization completed.
        while let Some(&(done, _)) = self.in_flight.front() {
            if done <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }

        // Injected faults act at the link entrance, before the channel's
        // own loss/queue model, and draw from the plan's private RNG so the
        // global stream is untouched when no plan is attached.
        let verdict = match &mut self.fault {
            Some(plan) => plan.apply(now, pkt),
            None => FaultVerdict::Pass,
        };
        let mut extra = Duration::ZERO;
        let mut dup_extra = None;
        match verdict {
            FaultVerdict::Pass => {}
            FaultVerdict::Drop => {
                self.stats.drops_injected += 1;
                return Deliveries::default();
            }
            FaultVerdict::Duplicate { extra: d } => {
                self.stats.duplicates_injected += 1;
                dup_extra = Some(d);
            }
            FaultVerdict::Reorder { extra: e } => {
                self.stats.reorders_injected += 1;
                extra = e;
            }
            FaultVerdict::Delay { extra: e } => {
                self.stats.delays_injected += 1;
                extra = e;
            }
        }

        if self.cfg.loss > 0.0 && rng.gen::<f64>() < self.cfg.loss {
            self.stats.drops_loss += 1;
            return Deliveries::default();
        }

        if let Some(limit) = self.cfg.queue_bytes {
            let backlog: u64 = self.in_flight.iter().map(|&(_, b)| b).sum();
            if backlog + wire_bytes as u64 > limit {
                self.stats.drops_queue += 1;
                return Deliveries::default();
            }
        }

        let start = self.busy_until.max(now);
        let tx = serialization_time(wire_bytes as u64, self.cfg.rate_bps);
        let done = start + tx;
        self.busy_until = done;
        self.in_flight.push_back((done, wire_bytes as u64));

        let jitter = if self.cfg.jitter > Duration::ZERO {
            Duration::from_nanos(rng.gen_range(0..self.cfg.jitter.nanos().max(1)))
        } else {
            Duration::ZERO
        };

        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire_bytes as u64;
        let arrival = done + self.cfg.delay + jitter + extra;
        Deliveries {
            primary: Some(arrival),
            duplicate: dup_extra.map(|d| arrival + d),
        }
    }

    /// Link statistics so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Mutate the configuration in place (takes effect for future packets).
    pub fn reconfigure(&mut self, f: impl FnOnce(&mut LinkConfig)) {
        f(&mut self.cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultRule, PacketClass};
    use rand_chacha::rand_core::SeedableRng;
    use std::net::Ipv4Addr;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    /// A packet whose wire size is exactly `wire_bytes` (UDP: 28 B of
    /// headers + virtual payload).
    fn pkt(wire_bytes: u32) -> Packet {
        Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), 1),
            (Ipv4Addr::new(10, 0, 0, 2), 2),
            wire_bytes - 28,
        )
    }

    #[test]
    fn infinite_rate_is_pure_delay() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(7)), (1, 0));
        let mut r = rng();
        let at = link
            .transmit(Instant::from_millis(1), &pkt(1500), &mut r)
            .primary
            .unwrap();
        assert_eq!(at, Instant::from_millis(8));
        assert_eq!(link.to(), (1, 0));
    }

    #[test]
    fn serialization_accumulates() {
        // 1 Mbps, 1250-byte packets => 10 ms each.
        let mut link = Link::new(LinkConfig::rate_limited(1_000_000, Duration::ZERO), (0, 0));
        let mut r = rng();
        let a1 = link.transmit(Instant::ZERO, &pkt(1250), &mut r).primary;
        let a2 = link.transmit(Instant::ZERO, &pkt(1250), &mut r).primary;
        assert_eq!(a1, Some(Instant::from_millis(10)));
        assert_eq!(a2, Some(Instant::from_millis(20)));
    }

    #[test]
    fn drop_tail_queue_bounds_backlog() {
        // Queue bound fits exactly two 1000-byte packets beyond nothing:
        // third concurrent offer must drop.
        let cfg = LinkConfig::rate_limited(8_000, Duration::ZERO).with_queue(2_000);
        let mut link = Link::new(cfg, (0, 0));
        let mut r = rng();
        assert!(link
            .transmit(Instant::ZERO, &pkt(1000), &mut r)
            .primary
            .is_some());
        assert!(link
            .transmit(Instant::ZERO, &pkt(1000), &mut r)
            .primary
            .is_some());
        assert!(link
            .transmit(Instant::ZERO, &pkt(1000), &mut r)
            .primary
            .is_none());
        assert_eq!(link.stats().drops_queue, 1);
        // After the first packet drains (1 s at 8 kbps), space frees up.
        assert!(link
            .transmit(Instant::from_secs(1), &pkt(1000), &mut r)
            .primary
            .is_some());
    }

    #[test]
    fn loss_probability_one_drops_everything() {
        let cfg = LinkConfig::delay_only(Duration::ZERO).with_loss(1.0);
        let mut link = Link::new(cfg, (0, 0));
        let mut r = rng();
        for _ in 0..10 {
            assert!(link
                .transmit(Instant::ZERO, &pkt(100), &mut r)
                .primary
                .is_none());
        }
        assert_eq!(link.stats().drops_loss, 10);
        assert_eq!(link.stats().tx_packets, 0);
    }

    #[test]
    fn jitter_stays_in_range() {
        let cfg =
            LinkConfig::delay_only(Duration::from_millis(5)).with_jitter(Duration::from_millis(2));
        let mut link = Link::new(cfg, (0, 0));
        let mut r = rng();
        for _ in 0..100 {
            let at = link
                .transmit(Instant::ZERO, &pkt(100), &mut r)
                .primary
                .unwrap();
            assert!(at >= Instant::from_millis(5));
            assert!(at < Instant::from_millis(7));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_outside_unit_interval_panics() {
        let _ = LinkConfig::delay_only(Duration::ZERO).with_loss(1.5);
    }

    #[test]
    fn injected_drop_is_counted_separately_from_loss() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::ZERO), (0, 0));
        link.set_fault_plan(Some(
            FaultPlan::new(5).with_rule(FaultRule::drop(PacketClass::any(), 1.0).on_nth(2)),
        ));
        let mut r = rng();
        assert!(link
            .transmit(Instant::ZERO, &pkt(100), &mut r)
            .primary
            .is_some());
        assert!(link
            .transmit(Instant::ZERO, &pkt(100), &mut r)
            .primary
            .is_none());
        assert!(link
            .transmit(Instant::ZERO, &pkt(100), &mut r)
            .primary
            .is_some());
        assert_eq!(link.stats().drops_injected, 1);
        assert_eq!(link.stats().drops_loss, 0);
        assert_eq!(link.stats().drops(), 1);
        assert_eq!(link.stats().tx_packets, 2);
    }

    #[test]
    fn injected_duplicate_delivers_second_copy_later() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(3)), (0, 0));
        link.set_fault_plan(Some(
            FaultPlan::new(5).with_rule(
                FaultRule::duplicate(PacketClass::any(), 1.0)
                    .with_extra_delay(Duration::from_millis(4)),
            ),
        ));
        let mut r = rng();
        let d = link.transmit(Instant::ZERO, &pkt(100), &mut r);
        assert_eq!(d.primary, Some(Instant::from_millis(3)));
        assert_eq!(d.duplicate, Some(Instant::from_millis(7)));
        assert_eq!(link.stats().duplicates_injected, 1);
        // The primary copy is the only one counted as a normal tx.
        assert_eq!(link.stats().tx_packets, 1);
    }

    #[test]
    fn injected_reorder_holds_the_packet_back() {
        let mut link = Link::new(LinkConfig::delay_only(Duration::from_millis(1)), (0, 0));
        link.set_fault_plan(Some(FaultPlan::new(5).with_rule(
            FaultRule::reorder(PacketClass::any(), 1.0, Duration::from_millis(10)).on_nth(1),
        )));
        let mut r = rng();
        let first = link
            .transmit(Instant::ZERO, &pkt(100), &mut r)
            .primary
            .unwrap();
        let second = link
            .transmit(Instant::ZERO, &pkt(100), &mut r)
            .primary
            .unwrap();
        assert_eq!(first, Instant::from_millis(11));
        assert_eq!(second, Instant::from_millis(1));
        assert!(second < first, "later offer must overtake the held packet");
        assert_eq!(link.stats().reorders_injected, 1);
    }

    #[test]
    fn faults_disabled_leave_the_global_rng_stream_untouched() {
        // Same channel randomness (jitter) with and without an (empty)
        // fault plan attached: the arrival times must be identical because
        // the plan draws from its own stream.
        let cfg =
            LinkConfig::delay_only(Duration::from_millis(5)).with_jitter(Duration::from_millis(2));
        let run = |plan: Option<FaultPlan>| {
            let mut link = Link::new(cfg.clone(), (0, 0));
            link.set_fault_plan(plan);
            let mut r = rng();
            (0..32)
                .map(|_| link.transmit(Instant::ZERO, &pkt(100), &mut r).primary)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(FaultPlan::new(123))));
    }
}
