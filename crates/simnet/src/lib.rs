//! # acacia-simnet — deterministic discrete-event network simulator
//!
//! The substrate beneath the ACACIA reproduction: an event-driven,
//! packet-level network simulator in the spirit of smoltcp's explicit-time
//! design. Everything is deterministic given a seed; simulated time is
//! integer nanoseconds and never touches the wall clock.
//!
//! Building blocks:
//!
//! * [`time`] — [`Instant`]/[`Duration`] fixed-point sim time.
//! * [`packet`] — IPv4-flavoured [`Packet`]s with byte-accurate wire sizes
//!   and *virtual payload lengths* for volume traffic.
//! * [`sim`] — the [`Simulator`] event loop, the [`Node`] trait and the
//!   [`Ctx`] handle nodes use to send packets and arm timers.
//! * [`wheel`] — the timing-wheel priority queue behind the event loop
//!   (O(1) amortized for the near-future timers that dominate).
//! * [`link`] — serialization + propagation + drop-tail queue + jitter/loss
//!   fault injection.
//! * [`fault`] — deterministic per-link fault plans (drop / duplicate /
//!   reorder / delay, targetable by message class, window or occurrence).
//! * [`router`] — longest-prefix-match IPv4 routing, with an optional
//!   serial per-packet processing cost (software data planes).
//! * [`traffic`] — CBR/Poisson sources, counting sinks, echo reflectors.
//! * [`transport`] — ping prober and greedy AIMD flow (iperf-like).
//! * [`stats`] — series summaries, percentiles, CDFs.
//! * [`cloud`] — EC2 wide-area path presets from the paper's measurements.
//!
//! ## Example
//!
//! ```
//! use acacia_simnet::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! let mut sim = Simulator::new(42);
//! let client = Ipv4Addr::new(10, 0, 0, 1);
//! let server = Ipv4Addr::new(10, 0, 0, 2);
//! let ping = sim.add_node(Box::new(PingAgent::new(
//!     client, server, Duration::from_millis(100), 10,
//! )));
//! let echo = sim.add_node(Box::new(Reflector::new()));
//! sim.connect((ping, 0), (echo, 0), LinkConfig::delay_only(Duration::from_millis(5)));
//! sim.schedule_timer(ping, Instant::ZERO, PingAgent::KICKOFF);
//! sim.run_until_idle();
//! assert_eq!(sim.node_ref::<PingAgent>(ping).rtts().len(), 10);
//! ```

#![deny(unsafe_code)] // allowed only in `shard` (partitioned slice access)
#![warn(missing_docs)]

pub mod cloud;
pub mod fault;
pub mod link;
pub mod packet;
pub mod router;
pub(crate) mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod traffic;
pub mod transport;
pub mod wheel;

pub use fault::{FaultKind, FaultPlan, FaultRule, PacketClass};
pub use link::{ClassStats, LinkConfig, LinkStats};
pub use packet::{FiveTuple, Packet};
pub use router::{Ipv4Net, RouteTable, Router};
pub use sim::{
    default_shards, set_default_shards, Ctx, EvKey, Node, NodeId, PortId, Simulator, TimerHandle,
};
pub use stats::Series;
pub use time::{Duration, Instant};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cloud::Ec2Region;
    pub use crate::fault::{FaultKind, FaultPlan, FaultRule, PacketClass};
    pub use crate::link::LinkConfig;
    pub use crate::packet::{proto, FiveTuple, Packet};
    pub use crate::router::{Ipv4Net, RouteTable, Router};
    pub use crate::sim::{Ctx, Node, NodeId, PortId, Simulator};
    pub use crate::stats::Series;
    pub use crate::time::{Duration, Instant};
    pub use crate::traffic::{Reflector, Sink, UdpSource};
    pub use crate::transport::{GreedyFlow, GreedyReceiver, PingAgent};
}
