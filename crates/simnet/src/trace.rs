//! A lightweight packet-event recorder (tcpdump for the simulator).
//!
//! Wrap any node in a [`Tap`] to record every packet crossing it, with
//! timestamps and direction, without touching the node's logic. Useful for
//! debugging topologies and writing assertions about *sequences* of
//! traffic rather than just counters.

use crate::packet::Packet;
use crate::sim::{Ctx, Node, PortId};
use crate::time::Instant;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// Direction of a recorded event relative to the tapped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Packet arrived at the node.
    In,
    /// Packet left the node.
    Out,
}

/// One recorded packet event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Instant,
    /// Arriving or leaving.
    pub dir: Dir,
    /// Port it crossed.
    pub port: PortId,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub protocol: u8,
    /// Wire size in bytes.
    pub wire_size: u32,
    /// Packet id.
    pub id: u64,
}

/// Shared, cheaply cloneable event log.
#[derive(Clone, Default)]
pub struct TraceLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// New empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    fn record(&self, ev: TraceEvent) {
        self.events.lock().expect("trace log poisoned").push(ev);
    }

    /// Snapshot of all events, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace log poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace log poisoned").len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.events.lock().expect("trace log poisoned").is_empty()
    }

    /// Events matching a predicate.
    pub fn filter(&self, f: impl Fn(&TraceEvent) -> bool) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace log poisoned")
            .iter()
            .filter(|e| f(e))
            .cloned()
            .collect()
    }

    /// Render as a tcpdump-ish text dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().expect("trace log poisoned").iter() {
            out.push_str(&format!(
                "{:>12} {} port{} {} -> {} proto {} len {} id {}\n",
                e.at.to_string(),
                match e.dir {
                    Dir::In => "IN ",
                    Dir::Out => "OUT",
                },
                e.port,
                e.src,
                e.dst,
                e.protocol,
                e.wire_size,
                e.id,
            ));
        }
        out
    }
}

/// A transparent wrapper recording all traffic through `inner`.
pub struct Tap<N: Node> {
    inner: N,
    log: TraceLog,
}

impl<N: Node> Tap<N> {
    /// Wrap `inner`, recording into `log`.
    pub fn new(inner: N, log: TraceLog) -> Tap<N> {
        Tap { inner, log }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &N {
        &self.inner
    }
}

// The tap observes arrivals (it sits in the dispatch path); what a node
// *sends* shows up as an arrival at the peer — to see both directions of a
// link, tap both endpoints. `Dir::Out` is available for tools that
// synthesize egress events from a peer's ingress log.
impl<N: Node> Node for Tap<N> {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        self.log.record(TraceEvent {
            at: ctx.now(),
            dir: Dir::In,
            port,
            src: pkt.src,
            dst: pkt.dst,
            protocol: pkt.protocol,
            wire_size: pkt.wire_size(),
            id: pkt.id,
        });
        self.inner.on_packet(ctx, port, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.inner.on_timer(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;
    use crate::time::Duration;
    use crate::traffic::{Reflector, Sink};

    #[test]
    fn tap_records_inbound_traffic_transparently() {
        let mut sim = Simulator::new(1);
        let log = TraceLog::new();
        let tapped = sim.add_node(Box::new(Tap::new(Reflector::new(), log.clone())));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (sink, 0),
            (tapped, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        let pkt = Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), 5),
            (Ipv4Addr::new(10, 0, 0, 2), 6),
            64,
        )
        .with_id(7);
        sim.inject_packet(tapped, 0, Instant::ZERO, pkt);
        sim.run_until_idle();

        // The reflector still worked (reply reached the sink)...
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 1);
        // ...and the tap saw the request.
        assert_eq!(log.len(), 1);
        let ev = &log.events()[0];
        assert_eq!(ev.dir, Dir::In);
        assert_eq!(ev.id, 7);
        assert_eq!(ev.dst, Ipv4Addr::new(10, 0, 0, 2));
        assert!(log.dump().contains("proto 17"));
    }

    #[test]
    fn filter_selects_events() {
        let log = TraceLog::new();
        for i in 0..5u64 {
            log.record(TraceEvent {
                at: Instant::from_millis(i),
                dir: Dir::In,
                port: 0,
                src: Ipv4Addr::UNSPECIFIED,
                dst: Ipv4Addr::UNSPECIFIED,
                protocol: if i % 2 == 0 { 17 } else { 6 },
                wire_size: 100,
                id: i,
            });
        }
        assert_eq!(log.filter(|e| e.protocol == 17).len(), 3);
        assert_eq!(log.filter(|e| e.protocol == 6).len(), 2);
    }

    #[test]
    fn inner_node_remains_reachable() {
        let log = TraceLog::new();
        let tap = Tap::new(Sink::new(), log);
        assert_eq!(tap.inner().packets(), 0);
    }
}
