//! Packets and protocol constants.
//!
//! A [`Packet`] carries an IPv4-like 5-tuple, an opaque encoded payload
//! ([`bytes::Bytes`]) and a *virtual payload length*. The virtual length lets
//! workload generators model megabytes of traffic without allocating the
//! actual buffers: the wire size of a packet is
//! `IP header + L4 header + payload.len() + app_len`.
//!
//! Encapsulation (e.g. GTP-U in the `acacia-lte` crate) serializes the inner
//! packet's headers into the outer payload and accounts for the inner virtual
//! length, so tunnelled wire sizes stay byte-accurate.

use crate::time::Instant;
use bytes::Bytes;
use std::net::Ipv4Addr;

/// IP protocol numbers used across the workspace.
pub mod proto {
    /// ICMP (used by the ping agent).
    pub const ICMP: u8 = 1;
    /// TCP (used by the greedy "iperf-like" flow).
    pub const TCP: u8 = 6;
    /// UDP (bearers, GTP tunnels, CBR generators).
    pub const UDP: u8 = 17;
    /// SCTP (S1AP control traffic).
    pub const SCTP: u8 = 132;
}

/// IPv4 header size (no options), bytes.
pub const IPV4_HEADER: u32 = 20;
/// UDP header size, bytes.
pub const UDP_HEADER: u32 = 8;
/// TCP header size (no options), bytes.
pub const TCP_HEADER: u32 = 20;
/// ICMP echo header size, bytes.
pub const ICMP_HEADER: u32 = 8;
/// SCTP common header plus one data chunk header, bytes.
pub const SCTP_HEADER: u32 = 12 + 16;

/// L4 header size for a protocol number.
pub fn l4_header_len(protocol: u8) -> u32 {
    match protocol {
        proto::UDP => UDP_HEADER,
        proto::TCP => TCP_HEADER,
        proto::ICMP => ICMP_HEADER,
        proto::SCTP => SCTP_HEADER,
        _ => 0,
    }
}

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FiveTuple {
    /// The reverse direction of this flow.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

/// A simulated network packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source L4 port (0 for ICMP).
    pub src_port: u16,
    /// Destination L4 port (0 for ICMP).
    pub dst_port: u16,
    /// IP protocol number (see [`proto`]).
    pub protocol: u8,
    /// DSCP/TOS byte; the LTE layer maps QCI priorities onto this.
    pub tos: u8,
    /// Encoded payload bytes actually carried (control messages, tunnel
    /// headers). May be empty for pure-volume traffic.
    pub payload: Bytes,
    /// Virtual application payload length that is accounted for on the wire
    /// but not physically stored.
    pub app_len: u32,
    /// Unique packet id assigned by the creator (monotonic per source).
    pub id: u64,
    /// Creation timestamp, for latency accounting.
    pub created: Instant,
}

impl Packet {
    /// A UDP packet with a virtual payload of `app_len` bytes.
    pub fn udp(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), app_len: u32) -> Packet {
        Packet {
            src: src.0,
            dst: dst.0,
            src_port: src.1,
            dst_port: dst.1,
            protocol: proto::UDP,
            tos: 0,
            payload: Bytes::new(),
            app_len,
            id: 0,
            created: Instant::ZERO,
        }
    }

    /// A UDP packet carrying real encoded bytes.
    pub fn udp_with_payload(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), payload: Bytes) -> Packet {
        Packet {
            payload,
            ..Packet::udp(src, dst, 0)
        }
    }

    /// A TCP segment with a virtual payload (used by the greedy flow).
    pub fn tcp(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), app_len: u32) -> Packet {
        Packet {
            protocol: proto::TCP,
            ..Packet::udp(src, dst, app_len)
        }
    }

    /// An ICMP echo request/reply of `app_len` payload bytes.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, app_len: u32) -> Packet {
        Packet {
            src,
            dst,
            src_port: 0,
            dst_port: 0,
            protocol: proto::ICMP,
            tos: 0,
            payload: Bytes::new(),
            app_len,
            id: 0,
            created: Instant::ZERO,
        }
    }

    /// Total on-the-wire size in bytes (IP + L4 headers + stored + virtual
    /// payload).
    pub fn wire_size(&self) -> u32 {
        IPV4_HEADER + l4_header_len(self.protocol) + self.payload.len() as u32 + self.app_len
    }

    /// The packet's 5-tuple.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple {
            src: self.src,
            dst: self.dst,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.protocol,
        }
    }

    /// Builder-style: set the TOS byte.
    pub fn with_tos(mut self, tos: u8) -> Packet {
        self.tos = tos;
        self
    }

    /// Builder-style: set the packet id.
    pub fn with_id(mut self, id: u64) -> Packet {
        self.id = id;
        self
    }

    /// Builder-style: set the creation timestamp.
    pub fn with_created(mut self, at: Instant) -> Packet {
        self.created = at;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn wire_size_accounts_for_headers_and_virtual_payload() {
        let p = Packet::udp((ip(1), 1000), (ip(2), 2000), 1472);
        assert_eq!(p.wire_size(), 20 + 8 + 1472);
        let t = Packet::tcp((ip(1), 1000), (ip(2), 2000), 1448);
        assert_eq!(t.wire_size(), 20 + 20 + 1448);
        let i = Packet::icmp(ip(1), ip(2), 56);
        assert_eq!(i.wire_size(), 20 + 8 + 56);
    }

    #[test]
    fn wire_size_counts_stored_and_virtual_payload_together() {
        let mut p = Packet::udp((ip(1), 1), (ip(2), 2), 100);
        p.payload = Bytes::from_static(b"0123456789");
        assert_eq!(p.wire_size(), 20 + 8 + 10 + 100);
    }

    #[test]
    fn five_tuple_reverse_is_involutive() {
        let p = Packet::udp((ip(1), 1000), (ip(2), 2000), 0);
        let ft = p.five_tuple();
        assert_eq!(ft.reversed().reversed(), ft);
        assert_eq!(ft.reversed().src, ip(2));
        assert_eq!(ft.reversed().dst_port, 1000);
    }

    #[test]
    fn builders_set_fields() {
        let p = Packet::udp((ip(1), 1), (ip(2), 2), 0)
            .with_tos(46)
            .with_id(7)
            .with_created(Instant::from_millis(3));
        assert_eq!(p.tos, 46);
        assert_eq!(p.id, 7);
        assert_eq!(p.created, Instant::from_millis(3));
    }

    #[test]
    fn unknown_protocol_has_no_l4_header() {
        assert_eq!(l4_header_len(99), 0);
        assert_eq!(l4_header_len(proto::SCTP), 28);
    }
}
