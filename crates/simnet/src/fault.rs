//! Deterministic link-layer fault injection.
//!
//! A [`FaultPlan`] attaches to a [`Link`](crate::link::Link) and decides,
//! packet by packet, whether to drop, duplicate, reorder or delay it. Plans
//! are fully deterministic: each carries its **own** ChaCha8 RNG stream,
//! seeded independently of the simulation RNG, so attaching (or detaching)
//! a plan never perturbs jitter/loss draws elsewhere — runs with faults
//! disabled stay byte-identical to runs on a build without fault injection
//! at all.
//!
//! Rules target packets by *message class* ([`PacketClass`]: protocol,
//! source/destination port, TOS byte, or a payload substring tag) and can
//! be scoped to a time window, to the nth matching occurrence, or to a
//! maximum number of firings. The first rule that matches and fires wins.
//!
//! # Node-lifecycle faults
//!
//! A [`NodeFaultPlan`] targets *nodes* instead of links: crash-stop,
//! crash-restart after a configurable outage, and partition. It follows the
//! same determinism contract — its probability draws come from a private
//! RNG stream keyed by `(seed, node, at)`, so rule insertion order never
//! changes which nodes are hit, and attaching an empty (or all-misses)
//! plan is byte-identical to attaching none at all. While a node is down
//! the engine drops every event addressed to it; a crash additionally
//! erases the node's state through [`crate::sim::Node::on_restart`], so
//! recovery happens through the protocol, never through preserved memory.

use crate::packet::Packet;
use crate::sim::{stream_seed, NodeId};
use crate::time::{Duration, Instant};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// What a fault does to a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Silently discard the packet.
    Drop,
    /// Deliver the packet twice (second copy after `extra_delay`).
    Duplicate,
    /// Hold the packet back by `extra_delay` so later traffic overtakes it.
    Reorder,
    /// Add `extra_delay` of latency without reordering intent.
    Delay,
}

/// A message-class selector. Every populated field must match; an empty
/// selector ([`PacketClass::any`]) matches all packets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketClass {
    /// Match the IP protocol number (e.g. SCTP for S1AP/X2AP).
    pub protocol: Option<u8>,
    /// Match the source L4 port (e.g. one service's replies or
    /// heartbeats, which all share a destination port).
    pub src_port: Option<u16>,
    /// Match the destination L4 port.
    pub dst_port: Option<u16>,
    /// Match the TOS/DSCP byte (e.g. the RRC priority marking).
    pub tos: Option<u8>,
    /// Match packets whose stored payload contains `"<tag>"` (with quotes)
    /// — precise per-message targeting of JSON-encoded control messages by
    /// their serde rename tag.
    pub payload_tag: Option<String>,
}

impl PacketClass {
    /// Match every packet.
    pub fn any() -> PacketClass {
        PacketClass::default()
    }

    /// Match a protocol number.
    pub fn protocol(protocol: u8) -> PacketClass {
        PacketClass {
            protocol: Some(protocol),
            ..PacketClass::default()
        }
    }

    /// Match a destination port.
    pub fn dst_port(port: u16) -> PacketClass {
        PacketClass {
            dst_port: Some(port),
            ..PacketClass::default()
        }
    }

    /// Match a source port.
    pub fn src_port(port: u16) -> PacketClass {
        PacketClass {
            src_port: Some(port),
            ..PacketClass::default()
        }
    }

    /// Builder-style: additionally require a protocol number.
    pub fn with_protocol(mut self, protocol: u8) -> PacketClass {
        self.protocol = Some(protocol);
        self
    }

    /// Builder-style: additionally require a destination port.
    pub fn with_dst_port(mut self, port: u16) -> PacketClass {
        self.dst_port = Some(port);
        self
    }

    /// Builder-style: additionally require a source port.
    pub fn with_src_port(mut self, port: u16) -> PacketClass {
        self.src_port = Some(port);
        self
    }

    /// Builder-style: additionally require a TOS byte.
    pub fn with_tos(mut self, tos: u8) -> PacketClass {
        self.tos = Some(tos);
        self
    }

    /// Builder-style: additionally require a payload tag (matched as a
    /// quoted substring of the stored payload).
    pub fn with_payload_tag(mut self, tag: &str) -> PacketClass {
        self.payload_tag = Some(tag.to_string());
        self
    }

    /// Does `pkt` belong to this class?
    pub fn matches(&self, pkt: &Packet) -> bool {
        if let Some(p) = self.protocol {
            if pkt.protocol != p {
                return false;
            }
        }
        if let Some(port) = self.src_port {
            if pkt.src_port != port {
                return false;
            }
        }
        if let Some(port) = self.dst_port {
            if pkt.dst_port != port {
                return false;
            }
        }
        if let Some(tos) = self.tos {
            if pkt.tos != tos {
                return false;
            }
        }
        if let Some(tag) = &self.payload_tag {
            let needle = format!("\"{tag}\"");
            match std::str::from_utf8(&pkt.payload) {
                Ok(text) if text.contains(&needle) => {}
                _ => return false,
            }
        }
        true
    }
}

/// One fault rule: a kind, a class, and scoping knobs.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// What to do to matched packets.
    pub kind: FaultKind,
    /// Which packets to consider.
    pub class: PacketClass,
    /// Probability of firing per matching packet, in `[0, 1]`.
    pub probability: f64,
    /// Only consider packets offered within `[start, end)`.
    pub window: Option<(Instant, Instant)>,
    /// Only fire on the nth matching packet (1-based), exactly once.
    pub nth: Option<u64>,
    /// Stop firing after this many hits.
    pub max_count: Option<u64>,
    /// Extra latency for `Duplicate`/`Reorder`/`Delay` kinds.
    pub extra_delay: Duration,
    seen: u64,
    fired: u64,
}

impl FaultRule {
    fn new(kind: FaultKind, class: PacketClass, probability: f64) -> FaultRule {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability must be a probability"
        );
        FaultRule {
            kind,
            class,
            probability,
            window: None,
            nth: None,
            max_count: None,
            extra_delay: Duration::from_millis(2),
            seen: 0,
            fired: 0,
        }
    }

    /// Drop matching packets with `probability`.
    pub fn drop(class: PacketClass, probability: f64) -> FaultRule {
        FaultRule::new(FaultKind::Drop, class, probability)
    }

    /// Duplicate matching packets with `probability`.
    pub fn duplicate(class: PacketClass, probability: f64) -> FaultRule {
        FaultRule::new(FaultKind::Duplicate, class, probability)
    }

    /// Reorder matching packets (hold back by `extra`) with `probability`.
    pub fn reorder(class: PacketClass, probability: f64, extra: Duration) -> FaultRule {
        FaultRule {
            extra_delay: extra,
            ..FaultRule::new(FaultKind::Reorder, class, probability)
        }
    }

    /// Delay matching packets by `extra` with `probability`.
    pub fn delay(class: PacketClass, probability: f64, extra: Duration) -> FaultRule {
        FaultRule {
            extra_delay: extra,
            ..FaultRule::new(FaultKind::Delay, class, probability)
        }
    }

    /// Builder-style: restrict to a time window `[start, end)`.
    pub fn in_window(mut self, start: Instant, end: Instant) -> FaultRule {
        self.window = Some((start, end));
        self
    }

    /// Builder-style: fire only on the nth matching packet (1-based).
    pub fn on_nth(mut self, n: u64) -> FaultRule {
        assert!(n >= 1, "nth is 1-based");
        self.nth = Some(n);
        self
    }

    /// Builder-style: fire at most `n` times.
    pub fn at_most(mut self, n: u64) -> FaultRule {
        self.max_count = Some(n);
        self
    }

    /// Builder-style: set the extra delay used by duplicate/reorder/delay.
    pub fn with_extra_delay(mut self, extra: Duration) -> FaultRule {
        self.extra_delay = extra;
        self
    }

    /// Matching packets observed so far (within window and class).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Times this rule actually fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// What the plan decided for one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// No rule fired; transmit normally.
    Pass,
    /// Discard the packet.
    Drop,
    /// Transmit normally, plus a second delivery `extra` later.
    Duplicate {
        /// Offset of the duplicate copy after the primary delivery.
        extra: Duration,
    },
    /// Hold the delivery back by `extra` (reordering intent).
    Reorder {
        /// Extra latency added to the delivery.
        extra: Duration,
    },
    /// Add `extra` latency to the delivery.
    Delay {
        /// Extra latency added to the delivery.
        extra: Duration,
    },
}

/// A deterministic, per-link fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    rng: ChaCha8Rng,
}

impl FaultPlan {
    /// An empty plan with its own RNG stream.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Builder-style: append a rule. Rules are evaluated in insertion
    /// order; the first that matches and fires wins.
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Append a rule.
    pub fn add_rule(&mut self, rule: FaultRule) {
        self.rules.push(rule);
    }

    /// The rules, with their live `seen`/`fired` counters.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Decide the fate of a packet offered to the link at `now`.
    pub fn apply(&mut self, now: Instant, pkt: &Packet) -> FaultVerdict {
        for rule in &mut self.rules {
            if let Some((start, end)) = rule.window {
                if now < start || now >= end {
                    continue;
                }
            }
            if !rule.class.matches(pkt) {
                continue;
            }
            rule.seen += 1;
            if let Some(n) = rule.nth {
                if rule.seen != n {
                    continue;
                }
            }
            if let Some(max) = rule.max_count {
                if rule.fired >= max {
                    continue;
                }
            }
            if rule.probability < 1.0 && self.rng.gen::<f64>() >= rule.probability {
                continue;
            }
            rule.fired += 1;
            return match rule.kind {
                FaultKind::Drop => FaultVerdict::Drop,
                FaultKind::Duplicate => FaultVerdict::Duplicate {
                    extra: rule.extra_delay,
                },
                FaultKind::Reorder => FaultVerdict::Reorder {
                    extra: rule.extra_delay,
                },
                FaultKind::Delay => FaultVerdict::Delay {
                    extra: rule.extra_delay,
                },
            };
        }
        FaultVerdict::Pass
    }
}

/// What a node-lifecycle fault does to its target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node crashes at the rule's instant and never comes back: every
    /// event addressed to it from then on is dropped.
    CrashStop,
    /// The node crashes, is dead for `outage`, then restarts with **empty
    /// state**: the engine drops everything addressed to it during the
    /// outage (including timers armed before the crash, which never fire
    /// even after restart) and invokes
    /// [`crate::sim::Node::on_restart`] before the first post-restart
    /// event, so recovery is forced through the protocol.
    CrashRestart {
        /// How long the node stays dead before restarting.
        outage: Duration,
    },
    /// The node keeps running but is cut off from the network for
    /// `duration`: deliveries to it are rejected and its own sends are
    /// dropped, while its timers keep firing and its state is preserved.
    Partition {
        /// How long the node stays unreachable.
        duration: Duration,
    },
}

/// One node-lifecycle fault: a target node, a start instant, a kind and a
/// firing probability.
#[derive(Debug, Clone)]
pub struct NodeFaultRule {
    /// The node this rule targets.
    pub node: NodeId,
    /// When the fault begins.
    pub at: Instant,
    /// What happens to the node.
    pub kind: NodeFaultKind,
    /// Probability the fault actually occurs, in `[0, 1]`. Drawn from a
    /// private stream keyed by `(plan seed, node, at, kind)`, so the draw
    /// is independent of rule insertion order.
    pub probability: f64,
}

impl NodeFaultRule {
    fn new(node: NodeId, at: Instant, kind: NodeFaultKind) -> NodeFaultRule {
        NodeFaultRule {
            node,
            at,
            kind,
            probability: 1.0,
        }
    }

    /// Crash `node` at `at`, permanently.
    pub fn crash_stop(node: NodeId, at: Instant) -> NodeFaultRule {
        NodeFaultRule::new(node, at, NodeFaultKind::CrashStop)
    }

    /// Crash `node` at `at`; it restarts with empty state `outage` later.
    pub fn crash_restart(node: NodeId, at: Instant, outage: Duration) -> NodeFaultRule {
        NodeFaultRule::new(node, at, NodeFaultKind::CrashRestart { outage })
    }

    /// Partition `node` off the network for `duration` starting at `at`.
    pub fn partition(node: NodeId, at: Instant, duration: Duration) -> NodeFaultRule {
        NodeFaultRule::new(node, at, NodeFaultKind::Partition { duration })
    }

    /// Builder-style: make the fault probabilistic.
    pub fn with_probability(mut self, probability: f64) -> NodeFaultRule {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability must be a probability"
        );
        self.probability = probability;
        self
    }
}

/// A compiled down-window for one node (see [`NodeFaultPlan::compile`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Outage {
    /// First instant the node is down (inclusive).
    pub(crate) from: Instant,
    /// First instant the node is back (exclusive); `Instant::MAX` for a
    /// crash-stop.
    pub(crate) until: Instant,
    /// Crash semantics: state is erased at restart and timers armed before
    /// the crash never fire. `false` = partition (state preserved, timers
    /// keep firing, only the network is cut).
    pub(crate) erase: bool,
}

/// The compiled per-node outage schedule, sorted and non-overlapping.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeOutageSet {
    pub(crate) windows: Vec<Outage>,
}

/// A deterministic node-lifecycle fault schedule, attached to a whole
/// simulator via
/// [`Simulator::attach_node_fault_plan`](crate::sim::Simulator::attach_node_fault_plan).
#[derive(Debug, Clone)]
pub struct NodeFaultPlan {
    seed: u64,
    rules: Vec<NodeFaultRule>,
}

impl NodeFaultPlan {
    /// An empty plan with its own RNG stream for probability draws.
    pub fn new(seed: u64) -> NodeFaultPlan {
        NodeFaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder-style: append a rule. Rule order carries no meaning —
    /// whether a probabilistic rule fires depends only on the plan seed
    /// and the rule's `(node, at, kind)`.
    pub fn with_rule(mut self, rule: NodeFaultRule) -> NodeFaultPlan {
        self.rules.push(rule);
        self
    }

    /// Append a rule.
    pub fn add_rule(&mut self, rule: NodeFaultRule) {
        self.rules.push(rule);
    }

    /// The rules as inserted.
    pub fn rules(&self) -> &[NodeFaultRule] {
        &self.rules
    }

    /// Resolve probability draws and compile the plan into per-node outage
    /// schedules. Panics on a rule targeting an unknown node or on
    /// overlapping windows for one node (the lifecycle would be ambiguous).
    pub(crate) fn compile(&self, nnodes: usize) -> Vec<NodeOutageSet> {
        let mut sets = vec![NodeOutageSet::default(); nnodes];
        for rule in &self.rules {
            assert!(
                rule.node < nnodes,
                "node fault targets unknown node {}",
                rule.node
            );
            let kind_tag = match rule.kind {
                NodeFaultKind::CrashStop => 1u64,
                NodeFaultKind::CrashRestart { .. } => 2,
                NodeFaultKind::Partition { .. } => 3,
            };
            if rule.probability < 1.0 {
                // Per-rule stream keyed by content, not insertion order.
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed(
                    self.seed,
                    3,
                    (rule.node as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(kind_tag)
                        ^ rule.at.nanos(),
                ));
                if rng.gen::<f64>() >= rule.probability {
                    continue;
                }
            }
            let (until, erase) = match rule.kind {
                NodeFaultKind::CrashStop => (Instant::MAX, true),
                NodeFaultKind::CrashRestart { outage } => (rule.at + outage, true),
                NodeFaultKind::Partition { duration } => (rule.at + duration, false),
            };
            sets[rule.node].windows.push(Outage {
                from: rule.at,
                until,
                erase,
            });
        }
        for (node, set) in sets.iter_mut().enumerate() {
            set.windows.sort_by_key(|w| (w.from, w.until));
            for pair in set.windows.windows(2) {
                assert!(
                    pair[0].until <= pair[1].from,
                    "overlapping fault windows on node {node}"
                );
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    fn pkt(protocol: u8, dst_port: u16) -> Packet {
        let mut p = Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), 100),
            (Ipv4Addr::new(10, 0, 0, 2), dst_port),
            64,
        );
        p.protocol = protocol;
        p
    }

    #[test]
    fn class_matches_on_all_populated_fields() {
        let class = PacketClass::protocol(132).with_dst_port(36412);
        assert!(class.matches(&pkt(132, 36412)));
        assert!(!class.matches(&pkt(132, 36422)));
        assert!(!class.matches(&pkt(17, 36412)));
        assert!(PacketClass::any().matches(&pkt(6, 9)));
    }

    #[test]
    fn payload_tag_matches_quoted_substring() {
        let class = PacketClass::any().with_payload_tag("PSq");
        let mut p = pkt(132, 36412);
        p.payload = Bytes::from_static(br#"{"PSq":{"imsi":1}}"#);
        assert!(class.matches(&p));
        p.payload = Bytes::from_static(br#"{"PSa":{"imsi":1}}"#);
        assert!(!class.matches(&p));
        p.payload = Bytes::new();
        assert!(!class.matches(&p));
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let mut plan =
            FaultPlan::new(1).with_rule(FaultRule::drop(PacketClass::any(), 1.0).on_nth(2));
        let p = pkt(17, 9);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Pass);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Drop);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Pass);
        assert_eq!(plan.rules()[0].fired(), 1);
        assert_eq!(plan.rules()[0].seen(), 3);
    }

    #[test]
    fn window_scopes_matching() {
        let rule = FaultRule::drop(PacketClass::any(), 1.0)
            .in_window(Instant::from_millis(10), Instant::from_millis(20));
        let mut plan = FaultPlan::new(1).with_rule(rule);
        let p = pkt(17, 9);
        assert_eq!(plan.apply(Instant::from_millis(5), &p), FaultVerdict::Pass);
        assert_eq!(plan.apply(Instant::from_millis(10), &p), FaultVerdict::Drop);
        assert_eq!(plan.apply(Instant::from_millis(20), &p), FaultVerdict::Pass);
        // Out-of-window packets are not even counted as seen.
        assert_eq!(plan.rules()[0].seen(), 1);
    }

    #[test]
    fn max_count_caps_firings() {
        let mut plan =
            FaultPlan::new(1).with_rule(FaultRule::drop(PacketClass::any(), 1.0).at_most(2));
        let p = pkt(17, 9);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Drop);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Drop);
        assert_eq!(plan.apply(Instant::ZERO, &p), FaultVerdict::Pass);
    }

    #[test]
    fn probability_draws_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(seed).with_rule(FaultRule::drop(PacketClass::any(), 0.3));
            let p = pkt(17, 9);
            (0..64)
                .map(|_| plan.apply(Instant::ZERO, &p) == FaultVerdict::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut plan = FaultPlan::new(1)
            .with_rule(FaultRule::duplicate(PacketClass::protocol(132), 1.0))
            .with_rule(FaultRule::drop(PacketClass::any(), 1.0));
        assert!(matches!(
            plan.apply(Instant::ZERO, &pkt(132, 1)),
            FaultVerdict::Duplicate { .. }
        ));
        assert_eq!(plan.apply(Instant::ZERO, &pkt(17, 1)), FaultVerdict::Drop);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn probability_outside_unit_interval_panics() {
        let _ = FaultRule::drop(PacketClass::any(), 1.5);
    }

    fn pkt_from(src_port: u16, dst_port: u16) -> Packet {
        Packet::udp(
            (Ipv4Addr::new(10, 0, 0, 1), src_port),
            (Ipv4Addr::new(10, 0, 0, 2), dst_port),
            64,
        )
    }

    #[test]
    fn src_port_matcher_isolates_one_sender() {
        let class = PacketClass::src_port(8000);
        assert!(class.matches(&pkt_from(8000, 9000)));
        assert!(!class.matches(&pkt_from(8001, 9000)));
        // Composes with the other selectors.
        let both = PacketClass::dst_port(9000).with_src_port(8000);
        assert!(both.matches(&pkt_from(8000, 9000)));
        assert!(!both.matches(&pkt_from(8000, 9001)));
        assert!(!both.matches(&pkt_from(7999, 9000)));
    }

    #[test]
    fn node_plan_compiles_sorted_windows() {
        let plan = NodeFaultPlan::new(1)
            .with_rule(NodeFaultRule::crash_restart(
                2,
                Instant::from_secs(10),
                Duration::from_secs(5),
            ))
            .with_rule(NodeFaultRule::partition(
                2,
                Instant::from_secs(1),
                Duration::from_secs(2),
            ))
            .with_rule(NodeFaultRule::crash_stop(0, Instant::from_secs(3)));
        let sets = plan.compile(4);
        assert_eq!(sets[0].windows.len(), 1);
        assert_eq!(sets[0].windows[0].until, Instant::MAX);
        assert!(sets[0].windows[0].erase);
        assert_eq!(sets[1].windows.len(), 0);
        let w = &sets[2].windows;
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].from, Instant::from_secs(1));
        assert!(!w[0].erase, "partition preserves state");
        assert_eq!(w[1].from, Instant::from_secs(10));
        assert_eq!(w[1].until, Instant::from_secs(15));
    }

    #[test]
    fn node_plan_draws_ignore_insertion_order() {
        let a = NodeFaultRule::crash_stop(0, Instant::from_secs(1)).with_probability(0.5);
        let b = NodeFaultRule::crash_stop(1, Instant::from_secs(2)).with_probability(0.5);
        let hits = |plan: NodeFaultPlan| -> Vec<bool> {
            plan.compile(2)
                .iter()
                .map(|s| !s.windows.is_empty())
                .collect()
        };
        let fwd = hits(NodeFaultPlan::new(9).with_rule(a.clone()).with_rule(b.clone()));
        let rev = hits(NodeFaultPlan::new(9).with_rule(b).with_rule(a));
        assert_eq!(fwd, rev, "draws are keyed by content, not order");
    }

    #[test]
    #[should_panic(expected = "overlapping fault windows")]
    fn overlapping_node_windows_are_rejected() {
        NodeFaultPlan::new(1)
            .with_rule(NodeFaultRule::crash_stop(0, Instant::from_secs(1)))
            .with_rule(NodeFaultRule::partition(
                0,
                Instant::from_secs(2),
                Duration::from_secs(1),
            ))
            .compile(1);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn node_plan_rejects_unknown_nodes() {
        NodeFaultPlan::new(1)
            .with_rule(NodeFaultRule::crash_stop(5, Instant::ZERO))
            .compile(2);
    }
}
