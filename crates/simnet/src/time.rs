//! Simulated time.
//!
//! All simulator clocks are integer nanoseconds since the start of the
//! simulation (smoltcp-style explicit time, no wall clock anywhere). Using a
//! fixed-point representation keeps every run bit-for-bit reproducible and
//! makes event ordering total.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant { nanos: 0 };
    /// The greatest representable instant; used as "never".
    pub const MAX: Instant = Instant { nanos: u64::MAX };

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant { nanos }
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Instant {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Instant {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Instant {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn nanos(&self) -> u64 {
        self.nanos
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Checked addition of a duration.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.nanos.checked_add(d.nanos).map(Instant::from_nanos)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { nanos: 0 };
    /// The greatest representable duration.
    pub const MAX: Duration = Duration { nanos: u64::MAX };

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration {
            nanos: micros * 1_000,
        }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero: durations are lengths.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        let nanos = (secs * 1e9).round();
        if nanos >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration {
                nanos: nanos as u64,
            }
        }
    }

    /// Raw nanoseconds.
    pub const fn nanos(&self) -> u64 {
        self.nanos
    }

    /// Whole microseconds (truncating).
    pub const fn micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Length in seconds as a float (for reporting only).
    pub fn secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Length in milliseconds as a float (for reporting only).
    pub fn millis_f64(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(&self, other: Duration) -> Duration {
        Duration::from_nanos(self.nanos.saturating_add(other.nanos))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: Duration) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(other.nanos))
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(&self, factor: u64) -> Duration {
        Duration::from_nanos(self.nanos.saturating_mul(factor))
    }

    /// Scale by a float factor (clamped non-negative), rounding to nanoseconds.
    pub fn mul_f64(&self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.secs_f64() * factor)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.millis_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant::from_nanos(
            self.nanos
                .checked_add(rhs.nanos)
                .expect("simulated time overflow"),
        )
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant::from_nanos(
            self.nanos
                .checked_sub(rhs.nanos)
                .expect("simulated time underflow"),
        )
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_nanos(
            self.nanos
                .checked_sub(rhs.nanos)
                .expect("instant subtraction underflow"),
        )
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_nanos(
            self.nanos
                .checked_add(rhs.nanos)
                .expect("duration overflow"),
        )
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_nanos(
            self.nanos
                .checked_sub(rhs.nanos)
                .expect("duration underflow"),
        )
    }
}

impl SubAssign<Duration> for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl core::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a.saturating_add(b))
    }
}

/// Duration it takes to serialize `bytes` bytes onto a link of `bits_per_sec`.
///
/// Returns [`Duration::ZERO`] for an infinitely fast (zero-rate-configured)
/// link.
pub fn serialization_time(bytes: u64, bits_per_sec: u64) -> Duration {
    if bits_per_sec == 0 {
        return Duration::ZERO;
    }
    // bits * 1e9 / rate, in u128 to avoid overflow for large byte counts.
    let bits = (bytes as u128) * 8;
    let nanos = bits * 1_000_000_000u128 / bits_per_sec as u128;
    Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Instant::from_secs(1), Instant::from_millis(1_000));
        assert_eq!(Instant::from_millis(1), Instant::from_micros(1_000));
        assert_eq!(Instant::from_micros(1), Instant::from_nanos(1_000));
        assert_eq!(Duration::from_secs(2).millis(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Instant::from_millis(50);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Instant::from_millis(10);
        let late = Instant::from_millis(20);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_millis(10));
    }

    #[test]
    fn from_secs_f64_handles_junk() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1_500));
    }

    #[test]
    fn serialization_time_basics() {
        // 1500 bytes at 12 Mbps = 1 ms.
        assert_eq!(
            serialization_time(1_500, 12_000_000),
            Duration::from_millis(1)
        );
        // Zero rate means "infinitely fast" by convention.
        assert_eq!(serialization_time(1_500, 0), Duration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Duration::from_nanos(5).to_string(), "5ns");
        assert_eq!(Duration::from_micros(5).to_string(), "5.000us");
        assert_eq!(Duration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Duration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&s| Duration::from_secs(s)).sum();
        assert_eq!(total, Duration::from_secs(6));
    }
}
