//! Wide-area path presets calibrated to the paper's measurements.
//!
//! The paper measures RTTs from a smartphone on a commercial LTE network in
//! the US midwest to Amazon EC2 in three regions (Fig. 3(c)): the California
//! region shows the lowest median RTT (~70 ms), Oregon and Virginia higher.
//! The LTE access network itself contributes ~13 ms RTT (Fig. 10(a)), the
//! centralized core adds hierarchical-routing delay, and the remainder is
//! Internet transit. These presets encode the transit leg; the LTE access
//! leg comes from `acacia-lte`'s radio model.

use crate::link::LinkConfig;
use crate::time::Duration;

/// EC2 regions used in the paper's measurement study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ec2Region {
    /// us-west-1 — closest to the midwest vantage point in the paper's data.
    California,
    /// us-west-2.
    Oregon,
    /// us-east-1.
    Virginia,
}

impl Ec2Region {
    /// All regions, in the paper's presentation order.
    pub const ALL: [Ec2Region; 3] = [
        Ec2Region::California,
        Ec2Region::Oregon,
        Ec2Region::Virginia,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Ec2Region::California => "California",
            Ec2Region::Oregon => "Oregon",
            Ec2Region::Virginia => "Virginia",
        }
    }

    /// One-way Internet transit delay from the (midwest) PGW to the region.
    pub fn one_way_delay(&self) -> Duration {
        match self {
            Ec2Region::California => Duration::from_micros(18_500),
            Ec2Region::Oregon => Duration::from_micros(28_000),
            Ec2Region::Virginia => Duration::from_micros(40_000),
        }
    }

    /// Per-packet jitter bound of the transit leg. Wide-area paths in the
    /// paper show long tails (Fig. 3(c) reaches 180 ms), which the uniform
    /// jitter here approximates.
    pub fn jitter(&self) -> Duration {
        match self {
            Ec2Region::California => Duration::from_micros(9_000),
            Ec2Region::Oregon => Duration::from_micros(12_000),
            Ec2Region::Virginia => Duration::from_micros(16_000),
        }
    }

    /// Link configuration for the transit leg (high-rate, delay dominated).
    pub fn link_config(&self) -> LinkConfig {
        LinkConfig::rate_limited(1_000_000_000, self.one_way_delay())
            .with_queue(4 * 1024 * 1024)
            .with_jitter(self.jitter())
    }

    /// Measured uplink bandwidth from the paper's Fig. 3(d), by signal
    /// quality, in bits/s. Uplink capacity is a property of the radio leg
    /// but the paper reports it per-region because TCP throughput over the
    /// longer paths is slightly lower.
    pub fn uplink_bps(&self, excellent_signal: bool) -> u64 {
        let base = match self {
            Ec2Region::California => 12_000_000,
            Ec2Region::Oregon => 11_200_000,
            Ec2Region::Virginia => 10_500_000,
        };
        if excellent_signal {
            base
        } else {
            // "Fair (2/4 bars)" roughly halves the uplink rate in Fig. 3(d).
            base / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn california_is_closest() {
        assert!(Ec2Region::California.one_way_delay() < Ec2Region::Oregon.one_way_delay());
        assert!(Ec2Region::Oregon.one_way_delay() < Ec2Region::Virginia.one_way_delay());
    }

    #[test]
    fn fair_signal_halves_uplink() {
        for region in Ec2Region::ALL {
            assert_eq!(region.uplink_bps(false), region.uplink_bps(true) / 2);
        }
    }

    #[test]
    fn link_config_carries_delay_and_jitter() {
        let cfg = Ec2Region::Virginia.link_config();
        assert_eq!(cfg.delay, Duration::from_micros(40_000));
        assert!(cfg.jitter > Duration::ZERO);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Ec2Region::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
